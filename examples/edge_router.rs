//! An edge-router scenario: realistic mixed traffic through the 4-port
//! Raw router with a synthetic BGP-scale forwarding table, fragmentation
//! of jumbo packets, drops of expired-TTL packets, and full accounting.
//!
//! ```text
//! cargo run --release --example edge_router
//! ```

use std::sync::Arc;

use raw_router::lookup::{synth_addresses, synth_table, ForwardingTable};
use raw_router::net::Packet;
use raw_router::xbar::{RawRouter, RouterConfig};

fn main() {
    // A 5,000-route synthetic table with a realistic prefix-length mix.
    let routes = synth_table(5_000, 4, 2026);
    let table = Arc::new(ForwardingTable::build(&routes));
    println!(
        "forwarding table: {} routes (Patricia depth <= {})",
        routes.len(),
        table.patricia.max_depth()
    );

    // Store-and-forward egress with a 64-word quantum: packets larger
    // than 256 bytes cross the crossbar as multiple fragments and are
    // reassembled per source at the egress (§4.2).
    let cfg = RouterConfig {
        quantum_words: 64,
        cut_through: false,
        ..RouterConfig::default()
    };
    let mut router = RawRouter::new(cfg, Arc::clone(&table));

    // Mixed traffic: sizes from 64 B to 1,500 B, destinations drawn to
    // hit the table, one expired-TTL packet injected deliberately.
    let sizes = [64usize, 256, 576, 1500, 128, 1024];
    let addrs = synth_addresses(&routes, 240, 0.9, 7);
    let mut offered_bytes = 0u64;
    for (k, dst) in addrs.iter().enumerate() {
        let src_port = k % 4;
        let bytes = sizes[k % sizes.len()];
        let ttl = if k == 100 { 1 } else { 64 };
        let p = Packet::synthetic(0x0a0a_0000 + src_port as u32, *dst, bytes, ttl, k as u32);
        offered_bytes += p.total_bytes() as u64;
        router.offer(src_port, 0, &p);
    }

    let drained = router.run_until_drained(6_000_000);
    let cycles = router.machine.cycle();
    println!(
        "drained: {drained} after {cycles} cycles ({:.2} ms at 250 MHz)",
        cycles as f64 / 250e3
    );

    let mut delivered = 0usize;
    let mut delivered_bytes = 0u64;
    for port in 0..4 {
        let out = router.delivered(port);
        let bytes: u64 = out.iter().map(|(_, p)| p.total_bytes() as u64).sum();
        println!("  out port {port}: {} packets, {} bytes", out.len(), bytes);
        delivered += out.len();
        delivered_bytes += bytes;
        // Every delivered packet must be valid and routed correctly.
        for (_, p) in &out {
            assert!(p.header.checksum_ok());
            assert_eq!(p.header.ttl, 63);
            let expect = table
                .lookup(raw_router::lookup::Engine::Patricia, p.header.dst)
                .0;
            assert_eq!(expect, Some(port as u32), "misrouted packet");
        }
    }
    let dropped = router.dropped_count();
    println!(
        "delivered {delivered} + dropped {dropped} = offered {} ({} of {} bytes)",
        router.offered(),
        delivered_bytes,
        offered_bytes
    );
    assert_eq!(delivered as u64 + dropped, router.offered());
    assert_eq!(router.parse_errors(), 0);

    // Fabric statistics.
    for (i, s) in router.eg_stats.iter().enumerate() {
        let s = s.lock().unwrap();
        println!(
            "  egress {i}: {} fragments reassembled into {} packets ({} reasm errors)",
            s.fragments, s.packets, s.reasm_errors
        );
    }
    println!(
        "aggregate goodput across the run: {:.2} Gbps",
        router.throughput_gbps(0, cycles)
    );
}
