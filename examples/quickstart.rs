//! Quickstart: route a handful of packets through the Raw router and
//! inspect what comes out.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use raw_router::lookup::{ForwardingTable, RouteEntry};
use raw_router::net::Packet;
use raw_router::xbar::{RawRouter, RouterConfig};

fn main() {
    // Forwarding table: 10.<p>.0.0/16 -> output port p.
    let routes: Vec<RouteEntry> = (0..4)
        .map(|p| RouteEntry::new(0x0a00_0000 | (p << 16), 16, p))
        .collect();
    let table = Arc::new(ForwardingTable::build(&routes));

    // A 4-port router on a simulated 250 MHz Raw chip, with the default
    // 64-word routing quantum and cut-through egress.
    let mut router = RawRouter::new(RouterConfig::default(), table);

    // Offer one packet per input, each to a different output.
    for src in 0..4u32 {
        let dst = (src + 1) % 4;
        let pkt = Packet::synthetic(
            0x0a0a_0000 + src,         // source address
            0x0a00_0001 | (dst << 16), // inside 10.<dst>.0.0/16
            256,                       // total bytes
            64,                        // TTL
            src,                       // payload seed
        );
        router.offer(src as usize, 0, &pkt);
        println!("offered: port {src} -> 10.{dst}.0.1 (256 B)");
    }

    let ok = router.run_until_drained(200_000);
    assert!(ok, "packets did not drain");
    println!("\nrouter drained after {} cycles\n", router.machine.cycle());

    for port in 0..4 {
        for (cycle, p) in router.delivered(port) {
            println!(
                "port {port} <- {} -> {}  ttl={} checksum_ok={} at cycle {cycle}",
                raw_router::net::fmt_addr(p.header.src),
                raw_router::net::fmt_addr(p.header.dst),
                p.header.ttl,
                p.header.checksum_ok(),
            );
        }
    }

    // Per-tile utilization summary — who did the work?
    println!("\nper-port statistics:");
    for (i, s) in router.ig_stats.iter().enumerate() {
        let s = s.lock().unwrap();
        println!(
            "  ingress {i}: {} packets, {} grants, {} cut-through words",
            s.packets_completed, s.grants, s.words_cut_through
        );
    }
}
