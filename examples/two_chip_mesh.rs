//! Scaling by composition (§8.5): "One solution is simply to build a
//! larger router out of multiple of these small 4-port routers."
//!
//! This example glues two 4-port Raw routers into a 6-external-port
//! system: port 3 of chip A is cabled to port 3 of chip B (an
//! inter-chip trunk), giving external ports A0–A2 and B0–B2. Forwarding
//! tables are hierarchical: each chip sends traffic for the other chip's
//! prefixes down the trunk. The harness relays delivered trunk packets
//! between the chips — the glueless-mesh composition, at line-card
//! granularity.
//!
//! ```text
//! cargo run --release --example two_chip_mesh
//! ```

use std::sync::Arc;

use raw_router::lookup::{ForwardingTable, RouteEntry};
use raw_router::net::Packet;
use raw_router::xbar::{RawRouter, RouterConfig};

/// External address plan: `10.<chip*4 + port>.0.0/16`.
fn prefix(chip: usize, port: usize) -> u32 {
    0x0a00_0000 | (((chip * 4 + port) as u32) << 16)
}

const TRUNK: usize = 3; // local port wired to the other chip

fn chip_table(chip: usize) -> Arc<ForwardingTable> {
    let mut routes = Vec::new();
    for p in 0..3 {
        // Local external ports.
        routes.push(RouteEntry::new(prefix(chip, p), 16, p as u32));
        // The other chip's ports go down the trunk.
        routes.push(RouteEntry::new(prefix(1 - chip, p), 16, TRUNK as u32));
    }
    Arc::new(ForwardingTable::build(&routes))
}

fn main() {
    let cfg = || RouterConfig {
        quantum_words: 32,
        cut_through: true,
        ..RouterConfig::default()
    };
    let mut chips = [
        RawRouter::new(cfg(), chip_table(0)),
        RawRouter::new(cfg(), chip_table(1)),
    ];

    // Traffic: every external port sends to every other external port,
    // including cross-chip flows that must transit the trunk.
    let mut offered = 0usize;
    let mut cross = 0usize;
    for (sc, sp) in (0..2).flat_map(|c| (0..3).map(move |p| (c, p))) {
        for (dc, dp) in (0..2).flat_map(|c| (0..3).map(move |p| (c, p))) {
            if (sc, sp) == (dc, dp) {
                continue;
            }
            let pkt = Packet::synthetic(
                prefix(sc, sp) | (0xf000 + offered as u32),
                prefix(dc, dp) | 1,
                128,
                64,
                offered as u32,
            );
            chips[sc].offer(sp, 0, &pkt);
            offered += 1;
            if sc != dc {
                cross += 1;
            }
        }
    }
    println!("offered {offered} flows across 6 external ports ({cross} cross-chip)");

    // Co-simulate: run both chips in slices; relay trunk deliveries to
    // the peer chip (the inter-chip cable, at line-card granularity).
    let mut relayed = 0usize;
    let mut relayed_per_chip = [0usize; 2];
    for _slice in 0..400 {
        for chip in &mut chips {
            chip.run(500);
        }
        #[allow(clippy::needless_range_loop)]
        for c in 0..2 {
            let out: Vec<Packet> = chips[c]
                .delivered(TRUNK)
                .into_iter()
                .map(|(_, p)| p)
                .collect();
            let release = chips[1 - c].machine.cycle();
            for pkt in out.iter().skip(relayed_per_chip[c]) {
                chips[1 - c].offer(TRUNK, release, pkt);
                relayed_per_chip[c] += 1;
                relayed += 1;
            }
        }
        let done: usize = (0..2)
            .map(|c| (0..3).map(|p| chips[c].delivered(p).len()).sum::<usize>())
            .sum();
        if done == offered {
            break;
        }
    }

    // Validate: every flow delivered at the right external port, TTL
    // decremented once per chip traversed.
    let mut delivered = 0usize;
    for (c, chip) in chips.iter().enumerate() {
        for p in 0..3 {
            for (_, pkt) in chip.delivered(p) {
                assert!(pkt.header.checksum_ok());
                let hops = 64 - pkt.header.ttl;
                let src_chip = ((pkt.header.src >> 16) & 0xff) / 4;
                let expected_hops = if src_chip as usize == c { 1 } else { 2 };
                assert_eq!(
                    hops as usize, expected_hops,
                    "TTL must drop once per chip traversed"
                );
                delivered += 1;
            }
        }
    }
    assert_eq!(delivered, offered, "all flows must arrive");
    println!(
        "delivered {delivered}/{offered}; {relayed} packets transited the trunk; \
         cross-chip packets show two TTL decrements"
    );
    println!("a 6-port router from two 4-port chips — the §8.5 composition");
}
