//! Fabric shoot-out: the Rotating Crossbar on Raw versus the systems of
//! Chapter 2 — a Click software router and a conventional input-queued
//! cell crossbar (FIFO vs VOQ+iSLIP).
//!
//! ```text
//! cargo run --release --example fabric_comparison
//! ```

use std::sync::Arc;

use raw_router::baselines::{saturation_throughput, ClickRouter, Queueing};
use raw_router::lookup::{ForwardingTable, RouteEntry};
use raw_router::net::Packet;
use raw_router::xbar::{RawRouter, RouterConfig};

fn raw_router_peak(bytes: usize) -> f64 {
    let routes: Vec<RouteEntry> = (0..4)
        .map(|p| RouteEntry::new(0x0a00_0000 | (p << 16), 16, p))
        .collect();
    let table = Arc::new(ForwardingTable::build(&routes));
    let cfg = RouterConfig {
        quantum_words: bytes / 4,
        cut_through: true,
        ..RouterConfig::default()
    };
    let mut r = RawRouter::new(cfg, table);
    let n = (300_000 / (bytes / 4)).min(6000);
    for k in 0..n as u32 {
        for src in 0..4u32 {
            let dst = (src + 2) % 4;
            let p = Packet::synthetic(0x0a0a_0000 + src, 0x0a00_0001 | (dst << 16), bytes, 64, k);
            r.offer(src as usize, 0, &p);
        }
    }
    r.run(180_000);
    r.throughput_gbps(20_000, 180_000)
}

fn main() {
    println!("Fabric comparison at 64 B and 1,024 B packets\n");

    let click = ClickRouter::standard();
    for bytes in [64usize, 1024] {
        let raw = raw_router_peak(bytes);
        let cl = click.saturation_gbps(bytes);
        println!("-- {bytes} B packets --");
        println!("  Raw Rotating Crossbar : {raw:6.2} Gbps");
        println!(
            "  Click on a 700MHz PC  : {cl:6.2} Gbps   ({:.0}x slower)",
            raw / cl
        );
    }

    println!("\nConventional cell crossbar, 16 ports, uniform saturation:");
    let fifo = saturation_throughput(Queueing::Fifo, 16, 1, 30_000, 1);
    let voq = saturation_throughput(Queueing::Voq, 16, 4, 30_000, 1);
    println!(
        "  FIFO input queues     : {:5.1}% of line rate (HOL blocking)",
        fifo * 100.0
    );
    println!(
        "  VOQ + iSLIP           : {:5.1}% of line rate",
        voq * 100.0
    );
    println!(
        "\nThe Rotating Crossbar achieves crossbar-class switching on a \
         general-purpose chip:\nits token schedule plays the role iSLIP plays \
         in the GSR backplane, computed by\nthe crossbar tiles themselves \
         from a compile-time-minimized configuration set."
    );
}
