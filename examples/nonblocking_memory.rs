//! §8.2: non-blocking memory over the dynamic network.
//!
//! "While network processors designed to do route resolution are
//! multi-threaded, the Raw architecture is not multi-threaded, but its
//! exposed memory system allows for the same advantages … dynamic
//! messages can be created and sent to the memory system without using
//! the cache. Thus this provides the same advantage of non-blocking
//! reads that a multi-threaded network processor provides."
//!
//! This example dedicates one tile as a memory controller (serving
//! word-read requests from its local store over dynamic network 0) and
//! runs two clients against it:
//!
//! * a **blocking** client that issues one request, waits for the reply,
//!   then computes on it — the classic load-use pattern;
//! * a **non-blocking** client that keeps four requests in flight and
//!   computes on replies as they arrive — the §8.2 pattern.
//!
//! Same work, same network, same controller: the pipelined client
//! finishes ~3-4x sooner.
//!
//! ```text
//! cargo run --release --example nonblocking_memory
//! ```

use raw_router::sim::*;
use std::sync::{Arc, Mutex};

const N_READS: usize = 64;
/// Modeled DRAM access time at the controller.
const DRAM_CYCLES: u32 = 12;

/// The memory-controller tile: replies to `[hdr][addr]` requests with
/// `[hdr][value]` after a DRAM access delay.
struct MemController {
    busy_until: u64,
    pending: Option<(u16, u16, u32)>, // (row, col, addr)
    stage: u8,
}

impl TileProgram for MemController {
    fn tick(&mut self, io: &mut TileIo<'_>) {
        if io.cycle < self.busy_until {
            io.compute(); // serving the DRAM access
            return;
        }
        match self.stage {
            0 => {
                if let Some(h) = io.recv_dyn(0) {
                    // The requester's tile id rides in the user bits.
                    let (_, _, _, user) = unpack_header(h);
                    let t = TileId(user as u16);
                    let (r, c) = GridDim::RAW_PROTOTYPE.coords(t);
                    self.pending = Some((r, c, 0));
                    self.stage = 1;
                }
            }
            1 => {
                if let Some(addr) = io.recv_dyn(0) {
                    let (r, c, _) = self.pending.take().expect("header first");
                    self.pending = Some((r, c, addr));
                    self.busy_until = io.cycle + DRAM_CYCLES as u64;
                    self.stage = 2;
                }
            }
            2 => {
                let (r, c, _) = self.pending.expect("request parsed");
                if io.send_dyn(0, pack_header(r, c, 1, 0)) {
                    self.stage = 3;
                }
            }
            _ => {
                let (_, _, addr) = self.pending.expect("request parsed");
                // The "DRAM": value = f(addr), standing in for a big table.
                if io.send_dyn(0, addr.wrapping_mul(0x9E37_79B9)) {
                    self.pending = None;
                    self.stage = 0;
                }
            }
        }
    }
    fn label(&self) -> &str {
        "memctl"
    }
}

/// A client issuing `N_READS` reads with at most `window` outstanding,
/// accumulating a checksum of the replies.
struct Client {
    mem_rc: (u16, u16),
    my_tile: u32,
    window: usize,
    sent: usize,
    send_stage: u8,
    received: usize,
    recv_stage: u8,
    acc: u32,
    done: Arc<Mutex<Option<(u64, u32)>>>,
}

impl TileProgram for Client {
    fn tick(&mut self, io: &mut TileIo<'_>) {
        if self.received == N_READS {
            return;
        }
        // Prefer draining replies; otherwise keep the window full.
        if io.can_recv_dyn(0) {
            let w = io.recv_dyn(0).expect("polled");
            if self.recv_stage == 0 {
                self.recv_stage = 1; // header word
            } else {
                self.acc = self.acc.wrapping_add(w);
                self.received += 1;
                self.recv_stage = 0;
                if self.received == N_READS {
                    *self.done.lock().unwrap() = Some((io.cycle, self.acc));
                }
            }
            return;
        }
        if self.sent < N_READS && self.sent - self.received < self.window && io.can_send_dyn(0) {
            let (r, c) = self.mem_rc;
            let word = if self.send_stage == 0 {
                pack_header(r, c, 1, self.my_tile)
            } else {
                self.sent as u32 + 1
            };
            let ok = io.send_dyn(0, word);
            debug_assert!(ok);
            if self.send_stage == 0 {
                self.send_stage = 1;
            } else {
                self.send_stage = 0;
                self.sent += 1;
            }
            return;
        }
        io.idle();
    }
    fn label(&self) -> &str {
        "client"
    }
}

fn run(window: usize) -> (u64, u32) {
    let mut m = RawMachine::new(RawConfig::default());
    let dim = m.dim();
    // Controller on tile 3 (an edge tile, like a DRAM-port tile);
    // client on tile 12 — maximally far, 6 hops each way.
    m.set_program(
        TileId(3),
        Box::new(MemController {
            busy_until: 0,
            pending: None,
            stage: 0,
        }),
    );
    let done = Arc::new(Mutex::new(None));
    m.set_program(
        TileId(12),
        Box::new(Client {
            mem_rc: dim.coords(TileId(3)),
            my_tile: 12,
            window,
            sent: 0,
            send_stage: 0,
            received: 0,
            recv_stage: 0,
            acc: 0,
            done: Arc::clone(&done),
        }),
    );
    m.run(20_000);
    let result = *done.lock().unwrap();
    if result.is_none() {
        let s12 = m.stats(TileId(12));
        let s3 = m.stats(TileId(3));
        eprintln!(
            "client busy={} idle={} bR={} bS={}; ctl busy={} bR={} bS={}",
            s12.counts[1],
            s12.counts[0],
            s12.counts[3],
            s12.counts[2],
            s3.counts[1],
            s3.counts[3],
            s3.counts[2]
        );
    }
    result.expect("client finished")
}

fn main() {
    let (t_blocking, sum_b) = run(1);
    let (t_pipelined, sum_p) = run(4);
    assert_eq!(sum_b, sum_p, "same answers either way");
    println!("{N_READS} remote reads, {DRAM_CYCLES}-cycle DRAM, 6-hop dynamic network:");
    println!("  blocking   (1 outstanding): {t_blocking} cycles");
    println!("  pipelined  (4 outstanding): {t_pipelined} cycles");
    println!(
        "  speedup: {:.2}x — the §8.2 non-blocking-memory advantage without threads",
        t_blocking as f64 / t_pipelined as f64
    );
    assert!(
        t_pipelined * 2 < t_blocking,
        "pipelining must win decisively"
    );
}
