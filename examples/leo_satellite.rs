//! Routing in a low-earth-orbit satellite constellation (§8.8).
//!
//! The paper's last future-work item proposes the Raw router as the
//! on-board switch of LEO satellites, whose four ports map naturally to
//! the four inter-satellite links (north/south in-plane, east/west
//! cross-plane). This example builds a small constellation where every
//! satellite is a `RawRouter`, computes next-hop tables from the torus
//! geometry, and routes ground traffic across several satellite hops —
//! checking TTL decrements per hop and end-to-end delivery.
//!
//! ```text
//! cargo run --release --example leo_satellite
//! ```

use std::sync::Arc;

use raw_router::lookup::{ForwardingTable, RouteEntry};
use raw_router::net::Packet;
use raw_router::xbar::{RawRouter, RouterConfig};

/// Constellation dimensions: `PLANES` orbital planes of `PER_PLANE`
/// satellites (a tiny Iridium-like torus).
const PLANES: usize = 3;
const PER_PLANE: usize = 3;

/// Port conventions on each satellite.
const NORTH: usize = 0; // next satellite in the plane
const SOUTH: usize = 1; // previous satellite in the plane
const EAST: usize = 2; // neighboring plane
const WEST: usize = 3;

/// Each satellite `s` owns the ground prefix `10.<s>.0.0/16`.
fn sat_prefix(s: usize) -> u32 {
    0x0a00_0000 | ((s as u32) << 16)
}

fn sat_id(plane: usize, slot: usize) -> usize {
    plane * PER_PLANE + slot
}

/// Shortest-path next hop on the torus: fix the plane (east/west), then
/// the in-plane slot (north/south).
fn next_port(from: usize, to: usize) -> Option<usize> {
    if from == to {
        return None;
    }
    let (fp, fs) = (from / PER_PLANE, from % PER_PLANE);
    let (tp, ts) = (to / PER_PLANE, to % PER_PLANE);
    if fp != tp {
        let east = (tp + PLANES - fp) % PLANES;
        let west = (fp + PLANES - tp) % PLANES;
        return Some(if east <= west { EAST } else { WEST });
    }
    let north = (ts + PER_PLANE - fs) % PER_PLANE;
    let south = (fs + PER_PLANE - ts) % PER_PLANE;
    Some(if north <= south { NORTH } else { SOUTH })
}

/// The forwarding table on satellite `s`: every satellite's ground prefix
/// mapped to the outgoing inter-satellite link (its own prefix goes to an
/// arbitrary port standing in for the downlink).
fn sat_table(s: usize) -> Arc<ForwardingTable> {
    let n = PLANES * PER_PLANE;
    let routes: Vec<RouteEntry> = (0..n)
        .map(|t| {
            let port = next_port(s, t).unwrap_or(NORTH) as u32;
            RouteEntry::new(sat_prefix(t), 16, port)
        })
        .collect();
    Arc::new(ForwardingTable::build(&routes))
}

fn main() {
    let n = PLANES * PER_PLANE;
    println!("constellation: {PLANES} planes x {PER_PLANE} sats = {n} satellites\n");

    // Route a packet from ground under satellite 0 to ground under the
    // diagonally opposite satellite, hop by hop: at each hop a fresh
    // RawRouter (the satellite's switch) carries the packet from its
    // uplink port to the correct inter-satellite link.
    let src_sat = sat_id(0, 0);
    let dst_sat = sat_id(2, 2);
    let mut pkt = Packet::synthetic(
        sat_prefix(src_sat) | 0x0001,
        sat_prefix(dst_sat) | 0x0001,
        256,
        64,
        9,
    );

    let mut here = src_sat;
    let mut hops = 0usize;
    while here != dst_sat {
        let port = next_port(here, dst_sat).expect("not there yet");
        let cfg = RouterConfig {
            quantum_words: 64,
            cut_through: true,
            ..RouterConfig::default()
        };
        let mut sat = RawRouter::new(cfg, sat_table(here));
        // The packet arrives on some uplink port; use the opposite of
        // where it is headed so ingress != egress.
        let in_port = (port + 2) % 4;
        sat.offer(in_port, 0, &pkt);
        assert!(sat.run_until_drained(300_000), "satellite {here} wedged");
        let out = sat.delivered(port);
        assert_eq!(out.len(), 1, "satellite {here} misrouted the packet");
        pkt = out[0].1.clone();
        let next = match port {
            NORTH => sat_id(here / PER_PLANE, (here % PER_PLANE + 1) % PER_PLANE),
            SOUTH => sat_id(
                here / PER_PLANE,
                (here % PER_PLANE + PER_PLANE - 1) % PER_PLANE,
            ),
            EAST => sat_id((here / PER_PLANE + 1) % PLANES, here % PER_PLANE),
            _ => sat_id((here / PER_PLANE + PLANES - 1) % PLANES, here % PER_PLANE),
        };
        hops += 1;
        println!(
            "hop {hops}: sat {here} -> sat {next} via port {port} (ttl now {})",
            pkt.header.ttl
        );
        here = next;
        assert!(hops < 16, "routing loop");
    }

    println!("\ndelivered to satellite {dst_sat} after {hops} hops");
    assert_eq!(pkt.header.ttl, 64 - hops as u8, "one TTL decrement per hop");
    assert!(pkt.header.checksum_ok());
    println!(
        "TTL: 64 -> {} ({} hops), checksum still valid — per-hop IP \
         processing held up across the constellation",
        pkt.header.ttl, hops
    );
}
