//! Computation in the communication interconnect (§8.3 / thesis goal 3).
//!
//! "The addition of computation to the switch fabric removes the
//! difficulty of bringing data near to a computational resource that is
//! able to compute on it." On Raw this is nearly free: a tile ALU
//! instruction can read `$csti` and write `$csto`, so a tile *inside the
//! data path* transforms a stream at the full one-word-per-cycle link
//! rate. This example builds a three-tile pipeline — source → XOR
//! "encryption" tile → sink — and shows the transform costs zero extra
//! cycles per word, then does the same from actual Raw assembly.
//!
//! ```text
//! cargo run --release --example inline_encryption
//! ```

use raw_router::isa::{assemble_switch, IsaCore, Reg};
use raw_router::sim::*;

const KEY: u32 = 0xA5A5_5A5A;

/// The XOR tile's switch program, software-pipelined: a three-word
/// prologue fills the processor's pipeline so that, in steady state, the
/// combined instruction's two routes (word in, transformed word out) both
/// fire every cycle — the same expansion-number discipline the Rotating
/// Crossbar's generated schedules use (§6.2).
fn xor_switch() -> SwitchProgram {
    assemble_switch(
        "route $cWi->$csti\n\
         route $cWi->$csti\n\
         route $cWi->$csti\n\
         l: route $cWi->$csti, $csto->$cEo ; j l",
    )
    .unwrap()
}

/// A native tile program encrypting a stream with one-cycle
/// receive-transform-send operations.
struct XorTile;

impl TileProgram for XorTile {
    fn tick(&mut self, io: &mut TileIo<'_>) {
        let _ = io.recv_op_send(NET0, |w| w ^ KEY);
    }
    fn label(&self) -> &str {
        "xor"
    }
}

fn run_native(n: usize) -> (Vec<u32>, f64) {
    let mut m = RawMachine::new(RawConfig::default());
    // Stream: west edge of tile 4 -> tile 4 switch -> tile 5 proc (XOR)
    // -> tile 6 -> east edge of tile 7.
    // Three trailing flush words push the pipelined tail through.
    m.bind_device(
        EdgePort::new(TileId(4), Dir::West, NET0),
        Box::new(WordSource::new(
            (0..n as u32 + 3).map(|i| i.wrapping_mul(2654435761)),
        )),
    );
    let (sink, handle) = WordSink::new();
    m.bind_device(EdgePort::new(TileId(7), Dir::East, NET0), Box::new(sink));
    m.set_switch_program(
        TileId(4),
        NET0,
        assemble_switch("l: route $cWi->$cEo ; j l").unwrap(),
    );
    m.set_switch_program(TileId(5), NET0, xor_switch());
    m.set_program(TileId(5), Box::new(XorTile));
    m.set_switch_program(
        TileId(6),
        NET0,
        assemble_switch("l: route $cWi->$cEo ; j l").unwrap(),
    );
    m.set_switch_program(
        TileId(7),
        NET0,
        assemble_switch("l: route $cWi->$cEo ; j l").unwrap(),
    );
    m.run(2 * n as u64 + 200);
    let got = handle.lock().unwrap();
    let words: Vec<u32> = got.iter().map(|&(_, w)| w).collect();
    // Steady-state rate over the middle of the stream.
    let mid = &got[n / 4..3 * n / 4];
    let rate = (mid.last().unwrap().0 - mid[0].0) as f64 / (mid.len() - 1) as f64;
    (words, rate)
}

fn main() {
    let n = 512usize;
    let (words, rate) = run_native(n);
    assert!(
        words.len() >= n,
        "only {} of {n} words delivered",
        words.len()
    );
    for (i, w) in words.iter().take(n).enumerate() {
        assert_eq!(*w, (i as u32).wrapping_mul(2654435761) ^ KEY);
    }
    assert!(
        rate < 1.05,
        "in-fabric transform must run at line rate, got {rate:.2}"
    );
    println!(
        "native pipeline: {n} words encrypted in-fabric at {rate:.2} cycles/word \
         (line rate is 1.0)"
    );

    // The same transform as genuine Raw assembly: xor $csto, $csti, $key
    // unrolled — one instruction per word.
    let mut m = RawMachine::new(RawConfig::default());
    m.bind_device(
        EdgePort::new(TileId(4), Dir::West, NET0),
        Box::new(WordSource::new([11u32, 22, 33, 44, 0, 0, 0])), // + pipeline flush
    );
    let (sink, handle) = WordSink::new();
    m.bind_device(EdgePort::new(TileId(7), Dir::East, NET0), Box::new(sink));
    for t in [4u16, 6, 7] {
        m.set_switch_program(
            TileId(t),
            NET0,
            assemble_switch("l: route $cWi->$cEo ; j l").unwrap(),
        );
    }
    m.set_switch_program(TileId(5), NET0, xor_switch());
    let mut asm = String::new();
    for _ in 0..4 {
        asm.push_str("xor $csto, $csti, $s0\n");
    }
    asm.push_str("halt\n");
    let mut core = IsaCore::from_asm(&asm).unwrap();
    core.set_reg(Reg(16), KEY);
    let (core, watch) = core.watched();
    m.set_program(TileId(5), Box::new(core));
    m.run(100);
    let got: Vec<u32> = handle.lock().unwrap().iter().map(|&(_, w)| w).collect();
    assert_eq!(got, vec![11 ^ KEY, 22 ^ KEY, 33 ^ KEY, 44 ^ KEY]);
    let w = watch.lock().unwrap();
    println!(
        "assembly pipeline: 4 words via `xor $csto, $csti, $s0`, {} instructions retired",
        w.retired
    );
    println!("in-fabric computation verified — the §8.3 mechanism costs no bandwidth.");
}
