//! Cross-crate integration tests: workloads → router → delivery
//! validation against the lookup substrate, exercising configurations the
//! paper's evaluation spans.

use std::collections::BTreeMap;
use std::sync::Arc;

use raw_router::lookup::{synth_table, Engine, ForwardingTable, RouteEntry};
use raw_router::net::Packet;
use raw_router::workloads::{generate, Pattern, Workload};
use raw_router::xbar::{RawRouter, RouterConfig};

fn port_table() -> Arc<ForwardingTable> {
    let routes: Vec<RouteEntry> = (0..4)
        .map(|p| RouteEntry::new(0x0a00_0000 | (p << 16), 16, p))
        .collect();
    Arc::new(ForwardingTable::build(&routes))
}

/// Full conservation + correctness audit of a run.
fn audit(router: &RawRouter, table: &ForwardingTable, offered: &[(usize, Packet)]) {
    assert_eq!(router.parse_errors(), 0);
    let mut expected: BTreeMap<usize, usize> = BTreeMap::new();
    for (_, p) in offered {
        let port = table.lookup(Engine::Patricia, p.header.dst).0.unwrap() as usize;
        *expected.entry(port).or_default() += 1;
    }
    for port in 0..4 {
        let out = router.delivered(port);
        assert_eq!(
            out.len(),
            expected.get(&port).copied().unwrap_or(0),
            "delivery count at port {port}"
        );
        for (_, p) in &out {
            assert!(p.header.checksum_ok(), "checksum broken in flight");
            assert_eq!(p.header.ttl, 63, "TTL must decrement exactly once");
            let want = table.lookup(Engine::Patricia, p.header.dst).0.unwrap() as usize;
            assert_eq!(want, port, "packet exited the wrong port");
        }
    }
}

#[test]
fn uniform_traffic_cut_through_end_to_end() {
    let table = port_table();
    let w = Workload::average(256, 40, 11);
    let mut r = RawRouter::new(
        RouterConfig {
            quantum_words: 64,
            cut_through: true,
            ..RouterConfig::default()
        },
        Arc::clone(&table),
    );
    let sched = generate(&w);
    let offered: Vec<(usize, Packet)> = sched.iter().map(|s| (s.port, s.packet.clone())).collect();
    for s in &sched {
        r.offer(s.port, s.release, &s.packet);
    }
    assert!(r.run_until_drained(3_000_000));
    audit(&r, &table, &offered);
}

/// Regression: multi-fragment packets whose padded tail must switch the
/// intake machine into buffering after the wire-sourced fragments
/// (previously wedged the router on mixed-size traffic).
#[test]
fn mixed_sizes_store_forward_drain_completely() {
    let table = port_table();
    let mut r = RawRouter::new(
        RouterConfig {
            quantum_words: 64,
            cut_through: false,
            ..RouterConfig::default()
        },
        Arc::clone(&table),
    );
    let mut offered = Vec::new();
    let sizes = [64usize, 576, 1500, 300, 1024, 72];
    for k in 0..36 {
        let src = k % 4;
        let dst = (k * 7 + 1) % 4;
        let p = Packet::synthetic(
            0x0a0a_0000 + src as u32,
            0x0a00_0001 | ((dst as u32) << 16),
            sizes[k % sizes.len()],
            64,
            k as u32,
        );
        r.offer(src, 0, &p);
        offered.push((src, p));
    }
    assert!(r.run_until_drained(6_000_000), "mixed-size traffic wedged");
    audit(&r, &table, &offered);
    // Payloads survive fragmentation + reassembly bit-exactly.
    let mut seen: Vec<Vec<u8>> = (0..4)
        .flat_map(|p| r.delivered(p))
        .map(|(_, p)| p.payload)
        .collect();
    let mut sent: Vec<Vec<u8>> = offered.iter().map(|(_, p)| p.payload.clone()).collect();
    seen.sort();
    sent.sort();
    assert_eq!(seen, sent);
}

#[test]
fn both_lookup_engines_route_identically() {
    let routes = synth_table(800, 4, 5);
    let table = Arc::new(ForwardingTable::build(&routes));
    let mut deliveries = Vec::new();
    for engine in [Engine::Patricia, Engine::Dir24_8] {
        let mut r = RawRouter::new(
            RouterConfig {
                quantum_words: 32,
                cut_through: true,
                engine,
                ..RouterConfig::default()
            },
            Arc::clone(&table),
        );
        let addrs = raw_router::lookup::synth_addresses(&routes, 32, 0.9, 6);
        for (k, a) in addrs.iter().enumerate() {
            let p = Packet::synthetic(0x0a0a_0000, *a, 128, 64, k as u32);
            r.offer(k % 4, 0, &p);
        }
        assert!(r.run_until_drained(3_000_000));
        let counts: Vec<usize> = (0..4).map(|p| r.delivered(p).len()).collect();
        deliveries.push(counts);
    }
    assert_eq!(deliveries[0], deliveries[1], "engines disagreed end-to-end");
}

#[test]
fn weighted_tokens_skew_hotspot_shares() {
    let table = port_table();
    let mut r = RawRouter::new(
        RouterConfig {
            quantum_words: 64,
            cut_through: true,
            weights: [3, 1, 1, 1],
            ..RouterConfig::default()
        },
        Arc::clone(&table),
    );
    // Offer far more than the window can drain so the shares are
    // measured under sustained backlog.
    let w = Workload {
        pattern: Pattern::Hotspot { dst: 0 },
        ..Workload::peak(256, 3000)
    };
    for s in generate(&w) {
        r.offer(s.port, s.release, &s.packet);
    }
    r.run(150_000);
    let out = r.delivered(0);
    let mut per = [0u64; 4];
    for (_, p) in &out {
        per[(p.header.src & 0x3) as usize] += 1;
    }
    // Port 0 holds the token 3 of every 6 quanta: expect ~3x the share.
    let ratio = per[0] as f64 / per[1].max(1) as f64;
    assert!(
        (2.0..=4.0).contains(&ratio),
        "weighted share off: {per:?} (ratio {ratio:.2})"
    );
}

#[test]
fn deterministic_replay() {
    let table = port_table();
    let mut counts = Vec::new();
    for _ in 0..2 {
        let mut r = RawRouter::new(
            RouterConfig {
                quantum_words: 32,
                cut_through: true,
                ..RouterConfig::default()
            },
            Arc::clone(&table),
        );
        for s in generate(&Workload::average(128, 50, 77)) {
            r.offer(s.port, s.release, &s.packet);
        }
        r.run(150_000);
        let cycles: Vec<u64> = (0..4)
            .flat_map(|p| r.delivered(p))
            .map(|(c, _)| c)
            .collect();
        counts.push(cycles);
    }
    assert_eq!(
        counts[0], counts[1],
        "simulation must be fully deterministic"
    );
}

#[test]
fn bursty_arrivals_with_gaps() {
    let table = port_table();
    let mut r = RawRouter::new(RouterConfig::default(), Arc::clone(&table));
    let w = Workload {
        pattern: Pattern::Bursty { burst: 4 },
        arrivals: raw_router::workloads::Arrivals::Bernoulli {
            slot_cycles: 400,
            p_mille: 500,
        },
        ..Workload::average(128, 25, 3)
    };
    let sched = generate(&w);
    let offered: Vec<(usize, Packet)> = sched.iter().map(|s| (s.port, s.packet.clone())).collect();
    for s in &sched {
        r.offer(s.port, s.release, &s.packet);
    }
    assert!(r.run_until_drained(6_000_000));
    audit(&r, &table, &offered);
}

#[test]
fn workspace_crates_compose_through_the_facade() {
    // The root crate re-exports every subsystem coherently.
    let _ = raw_router::sim::RawConfig::default();
    let _ = raw_router::baselines::ClickRouter::standard();
    let cs = raw_router::xbar::ConfigSpace::enumerate(raw_router::xbar::SchedPolicy::default());
    assert_eq!(raw_router::xbar::config::GLOBAL_SPACE, 2500);
    assert!(cs.minimized_len() < 40);
}
