//! # raw-router — the Raw-processor IP router, reproduced
//!
//! A from-scratch Rust reproduction of *High-Bandwidth Packet Switching
//! on the Raw General-Purpose Architecture* (ICPP 2003): a 4-port
//! multigigabit IP router whose switch fabric — the **Rotating
//! Crossbar** — is implemented entirely on the software-scheduled static
//! network of the MIT Raw tiled processor, here rebuilt as a
//! cycle-accurate simulator.
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use raw_router::lookup::{ForwardingTable, RouteEntry};
//! use raw_router::net::Packet;
//! use raw_router::xbar::{RawRouter, RouterConfig};
//!
//! // A forwarding table: 10.<p>.0.0/16 -> output port p.
//! let routes: Vec<RouteEntry> = (0..4)
//!     .map(|p| RouteEntry::new(0x0a00_0000 | (p << 16), 16, p))
//!     .collect();
//! let table = Arc::new(ForwardingTable::build(&routes));
//!
//! // A 4-port router on a simulated 250 MHz Raw chip.
//! let mut router = RawRouter::new(RouterConfig::default(), table);
//!
//! // Offer a 64-byte packet on port 0, destined to port 2's prefix.
//! let pkt = Packet::synthetic(0x0a0a_0001, 0x0a02_0001, 64, 64, 7);
//! router.offer(0, 0, &pkt);
//! assert!(router.run_until_drained(100_000));
//!
//! let out = router.delivered(2);
//! assert_eq!(out.len(), 1);
//! assert_eq!(out[0].1.header.ttl, 63); // TTL decremented in flight
//! ```
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`sim`] | `raw-sim` | the Raw chip: tiles, static/dynamic networks, caches, tracing |
//! | [`isa`] | `raw-isa` | Raw assembly, assembler, cycle-accurate interpreter |
//! | [`net`] | `raw-net` | IPv4 headers, packets, internal fragmentation |
//! | [`lookup`] | `raw-lookup` | Patricia trie + DIR-24-8 longest-prefix match |
//! | [`xbar`] | `raw-xbar` | the Rotating Crossbar and the assembled router |
//! | [`baselines`] | `raw-baselines` | Click model, FIFO/VOQ+iSLIP crossbar, cells study |
//! | [`workloads`] | `raw-workloads` | seeded traffic generation |
//!
//! Reproduction entry point: `cargo run --release -p raw-bench --bin
//! repro -- all`. See DESIGN.md for the system inventory and
//! EXPERIMENTS.md for paper-vs-measured results.

pub use raw_baselines as baselines;
pub use raw_isa as isa;
pub use raw_lookup as lookup;
pub use raw_net as net;
pub use raw_sim as sim;
pub use raw_workloads as workloads;
pub use raw_xbar as xbar;
