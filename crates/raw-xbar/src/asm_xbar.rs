//! The Crossbar Processor in real Raw assembly (§6.5).
//!
//! "The tile processor code is programmed with the use of software
//! pipelining: the tile processor of the crossbar tile computes the
//! address into the jump table of configurations while the switch
//! processor is routing the body of the previous packet, then … reads
//! the new set of headers and loads the address of the configuration
//! into the program counter of the switch processor."
//!
//! This module generates that program for each crossbar tile and runs it
//! on the `raw-isa` interpreter, as an alternative to the native
//! [`crate::programs::CrossbarProgram`] state machine. The generated
//! assembly:
//!
//! 1. steers the switch to the header-exchange routine (`swpc`),
//! 2. takes its own header from `$csti` and runs the 3-step ring
//!    all-to-all through `$csto`/`$csti`,
//! 3. decodes the four destination masks, forms the jump-table index
//!    with shift-adds,
//! 4. `lw`-loads the table entry (`switch_pc | grant << 31`) through the
//!    data cache,
//! 5. pushes the grant word (consumed by the routine's `h3` route) and
//!    jumps the switch to the selected body routine with `swpcr`,
//! 6. bumps the synchronous token counter and loops.
//!
//! The jump table is indexed over the destination-mask alphabet
//! (16⁴ × 4), which makes the header decode three instructions per
//! header; unicast traffic simply uses one-hot masks.

use raw_isa::IsaCore;

use crate::codegen::CrossbarCode;
use crate::config::ConfigSpace;

/// Word address of the (mask-alphabet) jump table in a crossbar tile's
/// local memory. Entries are `switch_pc | grant << 31`.
pub const ASM_TABLE_BASE: u32 = 0;

/// Build the jump-table image whose entries carry the switch-routine PC
/// directly (the assembly loads it straight into `swpcr`).
pub fn table_image_pc(cs: &ConfigSpace, tile: usize, code: &CrossbarCode) -> Vec<u32> {
    assert!(
        cs.multicast,
        "the assembly crossbar indexes the destination-mask alphabet"
    );
    cs.jump[tile]
        .iter()
        .zip(cs.grant[tile].iter())
        .map(|(&id, &g)| {
            let pc = code.cfg_pc[id as usize] as u32;
            debug_assert!(pc < (1 << 31));
            pc | (u32::from(g) << 31)
        })
        .collect()
}

/// Generate the crossbar tile program for ring position `port`
/// (0..=3). `hdr_pc` is the switch header-exchange routine's PC.
pub fn gen_crossbar_asm_source(port: usize, hdr_pc: usize) -> String {
    let mut s = String::new();
    let mut push = |line: &str| {
        s.push_str(line);
        s.push('\n');
    };
    push("# Crossbar Processor main loop (§6.5), generated");
    push("        li    $s7, -1          # the EMPTY header sentinel");
    push("        li    $s6, 0x7fffffff  # PC mask for table entries");
    push("        move  $s5, $zero       # the synchronous token counter");
    push("main:");
    push(&format!(
        "        swpc  0, {hdr_pc}      # start header exchange"
    ));
    // Ring all-to-all: own header out, three neighbors' headers in, two
    // of them forwarded onward.
    push("        or    $s0, $zero, $csti   # own header (h1)");
    push("        move  $csto, $s0          # ring: send own");
    push("        or    $s1, $zero, $csti   # header of port me-1");
    push("        move  $csto, $s1          # forward");
    push("        or    $s2, $zero, $csti   # header of port me-2");
    push("        move  $csto, $s2          # forward");
    push("        or    $s3, $zero, $csti   # header of port me-3");
    // Decode destination masks: 0 for EMPTY, low nibble otherwise.
    // Register sX holds the header of absolute port (me - X) mod 4; the
    // index digits need absolute port order 0..3.
    for (x, src) in ["$s0", "$s1", "$s2", "$s3"].iter().enumerate() {
        let owner = (port + 4 - x) % 4;
        push(&format!("        andi  $t{owner}, {src}, 0xf"));
        push(&format!("        bne   {src}, $s7, d{x}"));
        push(&format!("        move  $t{owner}, $zero    # EMPTY"));
        push(&format!("d{x}:"));
    }
    // idx = (((token*16 + c0)*16 + c1)*16 + c2)*16 + c3
    push("        andi  $t6, $s5, 3      # token (uniform weights)");
    for d in 0..4 {
        push("        sll   $t6, $t6, 4");
        push(&format!("        add   $t6, $t6, $t{d}"));
    }
    // Table entry -> grant + switch PC.
    push(&format!("        lw    $t5, {ASM_TABLE_BASE}($t6)"));
    push("        srl   $t4, $t5, 31     # grant bit");
    push("        move  $csto, $t4       # grant word (h3)");
    push("        and   $t5, $t5, $s6    # switch routine PC");
    push("        swpcr 0, $t5           # select the configuration");
    push("        addi  $s5, $s5, 1      # token++");
    push("        j     main");
    s
}

/// Assemble the crossbar program for a ring position.
pub fn gen_crossbar_asm(port: usize, hdr_pc: usize) -> IsaCore {
    let src = gen_crossbar_asm_source(port, hdr_pc);
    IsaCore::from_asm(&src)
        .unwrap_or_else(|e| panic!("generated crossbar assembly failed to assemble: {e}\n{src}"))
        .with_label(format!("xbar{port}(asm)"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchedPolicy;
    use crate::layout::RouterLayout;

    #[test]
    fn generated_source_assembles_for_all_ports() {
        for port in 0..4 {
            let src = gen_crossbar_asm_source(port, 1);
            let prog = raw_isa::assemble(&src).expect("assembles");
            // Small enough for instruction memory with huge margin.
            assert!(prog.len() < 64, "{} instructions", prog.len());
        }
    }

    #[test]
    fn decode_order_matches_ring_position() {
        // Port 2's own header lands in digit 2; its first received (from
        // port 1) in digit 1, etc.
        let src = gen_crossbar_asm_source(2, 1);
        assert!(src.contains("andi  $t2, $s0"));
        assert!(src.contains("andi  $t1, $s1"));
        assert!(src.contains("andi  $t0, $s2"));
        assert!(src.contains("andi  $t3, $s3"));
    }

    #[test]
    fn pc_table_matches_codegen() {
        let cs = ConfigSpace::enumerate_multicast(SchedPolicy::ShortestFirst);
        let l = RouterLayout::canonical();
        let code = crate::codegen::gen_crossbar_switch(&l.ports[0], &cs, 16);
        let img = table_image_pc(&cs, 0, &code);
        assert_eq!(img.len(), crate::config::GLOBAL_SPACE_MCAST);
        // Spot-check: an all-EMPTY quantum maps to the idle PC 0 with no
        // grant.
        let gi = crate::config::global_index_mcast(0, [0, 0, 0, 0]);
        assert_eq!(img[gi], 0);
        // The Figure 5-1 permutation grants with a non-idle routine.
        let gi = crate::config::global_index_mcast(0, [1 << 2, 1 << 3, 1 << 0, 1 << 1]);
        assert_eq!(img[gi] >> 31, 1, "granted");
        assert_ne!(img[gi] & 0x7fff_ffff, 0, "non-idle routine");
    }
}
