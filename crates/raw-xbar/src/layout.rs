//! The Figure 7-2 mapping of router functional elements to Raw tiles.
//!
//! Each of the four ports occupies four tiles: an Ingress Processor on a
//! chip edge, a Lookup Processor beside it, one of the four central
//! Crossbar Processors, and an Egress Processor on the opposite edge:
//!
//! ```text
//!          Out0(N)  Out1(N)
//!   Lk0 |  Eg0(1)  Eg1(2)  | Lk1
//! In0 > Ig0(4) X5    X6   Ig1(7) < In1
//! In3 > Ig3(8) X9    X10  Ig2(11)< In2
//!   Lk3 |  Eg3(13) Eg2(14) | Lk2
//!          Out3(S)  Out2(S)
//! ```
//!
//! The Crossbar Processors 5 → 6 → 10 → 9 form the rotating ring; the
//! clockwise direction follows ascending port numbers 0 → 1 → 2 → 3.

use raw_sim::{Dir, GridDim, TileId};

/// Number of router ports on one Raw chip.
pub const NPORTS: usize = 4;

/// A router port's tile assignment and the mesh directions its crossbar
/// tile uses for each logical connection of Figure 6-1.
#[derive(Clone, Copy, Debug)]
pub struct PortTiles {
    pub ingress: TileId,
    pub lookup: TileId,
    pub crossbar: TileId,
    pub egress: TileId,
    /// Chip-edge direction at the ingress tile where the input line card
    /// attaches.
    pub in_edge: Dir,
    /// Chip-edge direction at the egress tile where the output line card
    /// attaches.
    pub out_edge: Dir,
    /// At the crossbar tile: direction toward the Ingress Processor (the
    /// "in" client / grant path).
    pub x_in: Dir,
    /// At the crossbar tile: direction toward the Egress Processor (the
    /// "out" server).
    pub x_out: Dir,
    /// At the crossbar tile: direction toward the clockwise next crossbar
    /// tile (the "cwnext" server; the same physical link pair carries the
    /// "cwprev" client of that neighbor).
    pub x_cw: Dir,
    /// At the crossbar tile: direction toward the counterclockwise next
    /// crossbar tile (the "ccwnext" server).
    pub x_ccw: Dir,
    /// At the ingress tile: direction toward its crossbar tile.
    pub ig_to_xbar: Dir,
    /// At the egress tile: direction its crossbar tile's traffic arrives
    /// from.
    pub eg_from_xbar: Dir,
}

/// The complete 4-port layout on the 4x4 prototype.
#[derive(Clone, Copy, Debug)]
pub struct RouterLayout {
    pub ports: [PortTiles; NPORTS],
    pub dim: GridDim,
}

impl RouterLayout {
    /// The canonical Figure 7-2 layout.
    pub fn canonical() -> RouterLayout {
        let t = TileId;
        let ports = [
            // Port 0: In0 enters tile 4 from the west; Out0 leaves tile 1
            // to the north.
            PortTiles {
                ingress: t(4),
                lookup: t(0),
                crossbar: t(5),
                egress: t(1),
                in_edge: Dir::West,
                out_edge: Dir::North,
                x_in: Dir::West,
                x_out: Dir::North,
                x_cw: Dir::East,
                x_ccw: Dir::South,
                ig_to_xbar: Dir::East,
                eg_from_xbar: Dir::South,
            },
            // Port 1: In1 at tile 7 (east); Out1 at tile 2 (north).
            PortTiles {
                ingress: t(7),
                lookup: t(3),
                crossbar: t(6),
                egress: t(2),
                in_edge: Dir::East,
                out_edge: Dir::North,
                x_in: Dir::East,
                x_out: Dir::North,
                x_cw: Dir::South,
                x_ccw: Dir::West,
                ig_to_xbar: Dir::West,
                eg_from_xbar: Dir::South,
            },
            // Port 2: In2 at tile 11 (east); Out2 at tile 14 (south).
            PortTiles {
                ingress: t(11),
                lookup: t(15),
                crossbar: t(10),
                egress: t(14),
                in_edge: Dir::East,
                out_edge: Dir::South,
                x_in: Dir::East,
                x_out: Dir::South,
                x_cw: Dir::West,
                x_ccw: Dir::North,
                ig_to_xbar: Dir::West,
                eg_from_xbar: Dir::North,
            },
            // Port 3: In3 at tile 8 (west); Out3 at tile 13 (south).
            PortTiles {
                ingress: t(8),
                lookup: t(12),
                crossbar: t(9),
                egress: t(13),
                in_edge: Dir::West,
                out_edge: Dir::South,
                x_in: Dir::West,
                x_out: Dir::South,
                x_cw: Dir::North,
                x_ccw: Dir::East,
                ig_to_xbar: Dir::East,
                eg_from_xbar: Dir::North,
            },
        ];
        RouterLayout {
            ports,
            dim: GridDim::RAW_PROTOTYPE,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_is_consistent() {
        let l = RouterLayout::canonical();
        let g = l.dim;
        for (i, p) in l.ports.iter().enumerate() {
            // Edges are real chip edges.
            assert!(g.is_edge(p.ingress, p.in_edge), "port {i} in edge");
            assert!(g.is_edge(p.egress, p.out_edge), "port {i} out edge");
            // Crossbar directional wiring reaches the named tiles.
            assert_eq!(
                g.neighbor(p.crossbar, p.x_in),
                Some(p.ingress),
                "port {i} x_in"
            );
            assert_eq!(
                g.neighbor(p.crossbar, p.x_out),
                Some(p.egress),
                "port {i} x_out"
            );
            // Ingress/egress sides agree with the crossbar side.
            assert_eq!(g.neighbor(p.ingress, p.ig_to_xbar), Some(p.crossbar));
            assert_eq!(g.neighbor(p.egress, p.eg_from_xbar), Some(p.crossbar));
            // Lookup sits adjacent to its ingress (header handoff is one hop).
            assert_eq!(g.manhattan(p.lookup, p.ingress), 1, "port {i} lookup adj");
            // Ring: cw reaches the next port's crossbar tile.
            let next = l.ports[(i + 1) % NPORTS];
            let prev = l.ports[(i + NPORTS - 1) % NPORTS];
            assert_eq!(
                g.neighbor(p.crossbar, p.x_cw),
                Some(next.crossbar),
                "port {i} cw"
            );
            assert_eq!(
                g.neighbor(p.crossbar, p.x_ccw),
                Some(prev.crossbar),
                "port {i} ccw"
            );
        }
    }

    #[test]
    fn all_sixteen_tiles_are_used_exactly_once() {
        let l = RouterLayout::canonical();
        let mut seen = std::collections::BTreeSet::new();
        for p in &l.ports {
            for t in [p.ingress, p.lookup, p.crossbar, p.egress] {
                assert!(seen.insert(t), "tile {t:?} assigned twice");
            }
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn crossbar_tiles_match_figure_7_2() {
        let l = RouterLayout::canonical();
        let xbars: Vec<u16> = l.ports.iter().map(|p| p.crossbar.0).collect();
        assert_eq!(xbars, vec![5, 6, 10, 9]);
        let ingress: Vec<u16> = l.ports.iter().map(|p| p.ingress.0).collect();
        assert_eq!(
            ingress,
            vec![4, 7, 11, 8],
            "the tiles the efficiency study calls out"
        );
    }
}
