//! The four tile-processor programs of a router port (§4.2), as
//! cycle-stepped state machines with the paper's per-cycle cost model.
//!
//! * [`IngressProgram`] — streams packets in from the line card (network
//!   1), verifies and rewrites the IPv4 header, requests route lookup
//!   over the dynamic network, buffers payload into local memory while
//!   waiting or when denied (2 cycles/word), and per quantum bids into
//!   the Rotating Crossbar, streaming granted fragments either from its
//!   buffer (`lw $csto` — 1 cycle/word) or cut-through from the wire
//!   (`move $csto, $csti2` — 1 cycle/word).
//! * [`LookupProgram`] — answers longest-prefix-match queries against the
//!   forwarding table, charging the engine's access-cost model.
//! * [`CrossbarProgram`] — the distributed Rotating Crossbar algorithm of
//!   Chapter 6: per quantum it takes its ingress's header, runs the ring
//!   all-to-all, indexes the precomputed configuration jump table (a real
//!   timed memory load), returns the grant word, and steers its switch
//!   processor to the selected body routine. The token is a synchronous
//!   counter local to every crossbar tile (§5.1); it is never
//!   transmitted.
//! * [`EgressProgram`] — in cut-through mode monitors fragment tags while
//!   the switch streams bodies straight to the line card; in
//!   store-and-forward mode buffers fragments (2 cycles/word),
//!   reassembles per source port, and streams finished packets out.

use std::sync::{Arc, Mutex};

use raw_lookup::{Engine, ForwardingTable};
use raw_net::{ComputeOp, CorruptRng, FragTag, IpError, Ipv4Header, IPV4_HEADER_WORDS};
use raw_sim::{TileIo, TileProgram, NET0};
use raw_telemetry::{DropReason, SharedSink, Stage};

use crate::codegen::{CrossbarCode, EgressCode, IngressCode};

/// Shared debug event log: `(cycle, port, event)` records of protocol
/// transitions, enabled by the router's `debug_events` flag.
pub type EventLog = Arc<Mutex<Vec<(u64, u8, &'static str)>>>;
use crate::config::{global_index, global_index_mcast, ConfigSpace, HDR_VALUES};
use crate::layout::{PortTiles, NPORTS};

/// The "empty input queue" header word. Never collides with a packed
/// [`FragTag`] (its compute-op bits would be the invalid value 3).
pub const EMPTY_HDR: u32 = 0xFFFF_FFFF;

/// Grant-word values on the crossbar→ingress path.
pub const GRANT: u32 = 1;
pub const DENY: u32 = 0;

/// Word address where a crossbar tile's configuration jump table lives.
pub const XBAR_TABLE_BASE: u32 = 0;

/// Word address of the ingress packet buffer.
pub const IG_BUF_BASE: u32 = 0x1000;

/// Word address (and stride) of the egress per-source reassembly regions.
pub const EG_BUF_BASE: u32 = 0x1000;
pub const EG_BUF_STRIDE: u32 = 0x8000;

// ---------------------------------------------------------------------
// Ingress
// ---------------------------------------------------------------------

/// Observable ingress statistics.
#[derive(Clone, Debug, Default)]
pub struct IngressStats {
    pub packets_started: u64,
    pub packets_completed: u64,
    pub packets_dropped: u64,
    /// Classified drops, indexed by [`DropReason::index`];
    /// `packets_dropped` is always the sum of this array.
    pub drops: [u64; DropReason::COUNT],
    /// Header groups whose claimed length could not be trusted: the
    /// framer cannot drain a known span, so it resynchronizes on the
    /// next idle gap instead (these are *not* in `packets_dropped`).
    pub frame_errors: u64,
    pub words_ingested: u64,
    pub words_buffered: u64,
    pub words_cut_through: u64,
    pub bids: u64,
    pub grants: u64,
    pub denies: u64,
    pub fragments_sent: u64,
    pub wire_fragments: u64,
    pub proc_fragments: u64,
}

struct CurPkt {
    total_words: usize,
    /// Words taken off the wire *by the processor* (header + any buffered
    /// tail); cut-through words are accounted at stream completion.
    arrived: usize,
    /// Words already streamed into the fabric.
    streamed: usize,
    /// Destination port set (one bit per output; several for multicast).
    dst_mask: Option<u8>,
    /// Malformed / TTL-expired: consume from the wire and discard.
    drop: bool,
}

/// How the current fragment will be sourced.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum FragMode {
    /// Payload cut straight from the line card through the switch.
    Wire,
    /// Everything from the processor (buffered tail + padding).
    Proc,
}

/// Ingress queueing discipline.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum IngressQueueing {
    /// The paper's §4.4 design: one packet at a time, head-of-line, with
    /// payload cut-through at peak. Subject to HOL blocking under
    /// contention.
    #[default]
    Fifo,
    /// Virtual output queueing (the Chapter-2 / future-work extension):
    /// packets are buffered into per-destination queues (2 cycles/word,
    /// store-and-forward at the ingress) and the bid rotates across
    /// non-empty queues, eliminating head-of-line blocking at the cost
    /// of the buffering bandwidth.
    Voq,
}

impl IngressQueueing {
    /// True when ingress buffering is per-output (no head-of-line
    /// coupling between destinations). The fabric-level deadlock
    /// verifier keys its channel-dependency escape edges off this.
    pub fn is_voq(&self) -> bool {
        matches!(self, IngressQueueing::Voq)
    }

    pub fn name(&self) -> &'static str {
        match self {
            IngressQueueing::Fifo => "fifo",
            IngressQueueing::Voq => "voq",
        }
    }
}

/// One buffered packet awaiting service in a virtual output queue.
struct VoqPkt {
    base: u32,
    /// Region words reserved for this packet (the packet itself plus any
    /// wrap-waste at the region tail); freed in full on completion.
    reserved: u32,
    total_words: usize,
    streamed: usize,
    seq: u16,
    /// Destination port set for the fragment tags.
    dst_mask: u8,
    /// Telemetry packet id assigned at ingress-accept.
    id: u32,
}

/// Per-destination packet queues in ingress local memory: each output
/// owns a contiguous region managed as a ring of whole packets.
struct VoqState {
    queues: [std::collections::VecDeque<VoqPkt>; NPORTS],
    /// Allocation cursor per region (packets are freed strictly FIFO, so
    /// a head/tail pair per region suffices).
    head: [u32; NPORTS],
    used: [u32; NPORTS],
    /// Round-robin bid pointer across queues.
    rr: usize,
}

/// Words of ingress memory per virtual output queue region. Four regions
/// are sized to fit the 8K-word data cache together (the §4.4 point that
/// the prototype's internal storage bounds buffering): larger regions
/// thrash the cache and double the buffering cost.
pub const VOQ_REGION_WORDS: u32 = 0x800;

impl VoqState {
    fn new() -> VoqState {
        VoqState {
            queues: std::array::from_fn(|_| std::collections::VecDeque::new()),
            head: [0; NPORTS],
            used: [0; NPORTS],
            rr: 0,
        }
    }

    fn region_base(dst: usize) -> u32 {
        IG_BUF_BASE + 0x1000 + dst as u32 * VOQ_REGION_WORDS
    }

    /// Reserve space for a packet headed to the first port of `mask`
    /// (multicast packets queue under their lowest member). Returns the
    /// base address and the words reserved (packet plus any wrap-waste —
    /// the amount [`VoqState::free`] must release), or None when the
    /// region is full (backpressure).
    fn alloc(&mut self, mask: u8, words: usize) -> Option<(u32, u32)> {
        let dst = mask.trailing_zeros() as usize;
        let words = words as u32;
        if self.used[dst] + words > VOQ_REGION_WORDS {
            return None;
        }
        // Keep packets contiguous: wrap the cursor when the tail space
        // is short (the wasted tail counts as used until freed).
        let offset = self.head[dst] % VOQ_REGION_WORDS;
        let (base_off, reserved) = if offset + words > VOQ_REGION_WORDS {
            let waste = VOQ_REGION_WORDS - offset;
            if self.used[dst] + waste + words > VOQ_REGION_WORDS {
                return None;
            }
            (0, waste + words)
        } else {
            (offset, words)
        };
        self.head[dst] += reserved;
        self.used[dst] += reserved;
        Some((Self::region_base(dst) + base_off, reserved))
    }

    fn free(&mut self, dst: usize, reserved: u32) {
        self.used[dst] -= reserved;
    }

    /// Undo the most recent reservation in `dst`'s region (the packet
    /// being buffered was cut short on the wire and never enqueued).
    /// Sound because intake handles one packet at a time: the rolled-back
    /// reservation is always the newest, so the head cursor can rewind.
    fn unalloc(&mut self, dst: usize, reserved: u32) {
        self.head[dst] -= reserved;
        self.used[dst] -= reserved;
    }

    /// Packets waiting across all queues (diagnostics).
    #[allow(dead_code)]
    fn total_queued(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }
}

enum Intake {
    /// No packet being parsed.
    Idle,
    /// Collecting the five header words (delivered by ingest routines).
    NeedHdr { have: usize },
    /// Header verification + TTL/checksum rewrite (modeled cycles).
    Verify { left: u32 },
    /// Send the two-word lookup request over the dynamic network.
    LookupSend { stage: u8 },
    /// Await the two-word reply (stage 0 = header, 1 = port).
    LookupWait { stage: u8 },
    /// Route resolved; fragments can be planned.
    Ready,
    /// A processor-sourced fragment needs its words buffered first:
    /// ingest words `[streamed+got .. streamed+need)` into local memory.
    BufferTail { need: usize, got: usize },
    /// VOQ mode: waiting for queue-region space (backpressure).
    AllocVoq,
    /// VOQ mode: store the rewritten header words at the packet's base
    /// (`reserved` region words roll back if the wire cuts out).
    StoreHdrVoq { base: u32, reserved: u32, i: usize },
    /// VOQ mode: buffer the whole packet into its queue's region
    /// (`got` of `need` payload words received; header words land
    /// first).
    BufferAll {
        base: u32,
        reserved: u32,
        need: usize,
        got: usize,
    },
    /// Discard the rest of a bad packet from the wire.
    Drain { left: usize },
}

/// The ingress's switch-steering state.
#[allow(clippy::large_enum_variant)]
enum Drive {
    /// Pick the next switch routine (or do processor-only work).
    Idle,
    /// An ingest routine is delivering `left` wire words to the processor.
    Ingest { left: usize },
    /// Send the bid word through the fire-and-forget bid routine.
    BidSend { word: u32, real: bool },
    /// Collect the outstanding grant word.
    CollectGrant { real: bool },
    /// Wait for the switch to finish the bid routine, then start the
    /// granted stream.
    StartStream,
    /// Feed the processor-sourced words of the active stream routine.
    Stream { mode: FragMode, sent: usize },
    /// Consume the header-prefetch coda words (the fragment is already
    /// accounted; these words belong to the next packet or are idles).
    StreamTail { left: usize },
    /// Wait for the stream routine to finish routing wire words, then
    /// account the fragment.
    EndStream,
    /// Wait for the stream routine to finish (fragment already
    /// accounted by the prefetch path).
    WaitHalt,
}

pub struct IngressProgram {
    port: u8,
    quantum: usize,
    ingest_pc: [usize; 4],
    bid_send_pc: usize,
    grant_recv_pc: usize,
    stream_wf_last_pc: usize,
    stream_wf_more_pc: usize,
    stream_wc_more_pc: usize,
    stream_wc_last_pc: usize,
    stream_proc_pc: usize,
    stream_proc_nc_pc: usize,
    lookup_tile: (u16, u16),
    verify_cycles: u32,
    compute_op: ComputeOp,
    queueing: IngressQueueing,
    /// Scheduler mode: bid the whole VOQ occupancy mask instead of one
    /// rotating head-of-queue header; the grant word names the VOQ the
    /// crossbar's arbiter elected to serve. Requires VOQ queueing.
    sched: bool,
    voq: VoqState,
    seq: u16,
    cur: Option<CurPkt>,
    hdr_words: [u32; IPV4_HEADER_WORDS],
    intake: Intake,
    drive: Drive,
    pending_tag: Option<(FragTag, FragMode, Option<usize>)>,
    /// A wire word received but not yet stored (store may miss-stall).
    pending_store: Option<(u32, u32)>,
    /// Ingest routines issued since the last bid; a bid is forced after
    /// the budget so this port never stalls the other ports' quanta for
    /// long. FIFO mode keeps the budget tiny (the peak path ingests via
    /// stream cut-through); VOQ mode buffers whole packets between
    /// service opportunities and needs a packet-sized budget.
    ingests_since_bid: u32,
    /// A bid was sent whose grant word has not been collected yet
    /// (`Some(real)`).
    grant_outstanding: Option<bool>,
    /// Cycle of the current tick (for event logging from inner helpers).
    now: u64,
    label: String,
    pub stats: Arc<Mutex<IngressStats>>,
    pub events: Option<EventLog>,
    /// Telemetry sink for per-packet lifecycle stamps (None = no stamps).
    pub telemetry: Option<SharedSink>,
    /// Next per-port packet id, handed out at ingress-accept.
    next_id: u32,
    /// Id of the packet currently owned by the intake pipeline.
    cur_id: u32,
}

impl IngressProgram {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        port: u8,
        tiles: &PortTiles,
        code: &IngressCode,
        quantum: usize,
        lookup_row_col: (u16, u16),
        verify_cycles: u32,
        compute_op: ComputeOp,
        queueing: IngressQueueing,
        sched: bool,
    ) -> (IngressProgram, Arc<Mutex<IngressStats>>) {
        let _ = tiles;
        assert!(
            !sched || queueing == IngressQueueing::Voq,
            "scheduler mode bids VOQ occupancy masks"
        );
        let stats = Arc::new(Mutex::new(IngressStats::default()));
        (
            IngressProgram {
                port,
                quantum,
                ingest_pc: code.ingest_pc,
                bid_send_pc: code.bid_send_pc,
                grant_recv_pc: code.grant_recv_pc,
                stream_wf_last_pc: code.stream_wf_last_pc,
                stream_wf_more_pc: code.stream_wf_more_pc,
                stream_wc_more_pc: code.stream_wc_more_pc,
                stream_wc_last_pc: code.stream_wc_last_pc,
                stream_proc_pc: code.stream_proc_pc,
                stream_proc_nc_pc: code.stream_proc_nc_pc,
                lookup_tile: lookup_row_col,
                verify_cycles,
                compute_op,
                queueing,
                sched,
                voq: VoqState::new(),
                seq: 0,
                cur: None,
                hdr_words: [0; IPV4_HEADER_WORDS],
                intake: Intake::Idle,
                drive: Drive::Idle,
                pending_tag: None,
                pending_store: None,
                ingests_since_bid: 0,
                grant_outstanding: None,
                now: 0,
                label: format!("ingress{port}"),
                stats: Arc::clone(&stats),
                events: None,
                telemetry: None,
                next_id: 0,
                cur_id: 0,
            },
            stats,
        )
    }

    fn ev(&self, cycle: u64, what: &'static str) {
        if let Some(log) = &self.events {
            log.lock().unwrap().push((cycle, self.port, what));
        }
    }

    /// Record a per-packet lifecycle stamp when a telemetry sink is
    /// attached; a single branch otherwise.
    fn stamp(&self, cycle: u64, id: u32, stage: Stage) {
        if let Some(sink) = &self.telemetry {
            sink.lock()
                .unwrap()
                .packet_event(cycle, self.port, id, stage);
        }
    }

    /// Count a classified drop (graceful degradation: malformed input is
    /// counted and discarded, never panicked on) and stamp it into
    /// telemetry. Keeps `packets_dropped` equal to the sum of the
    /// per-reason counters.
    fn record_drop(&mut self, reason: DropReason) {
        let mut s = self.stats.lock().unwrap();
        s.packets_dropped += 1;
        s.drops[reason.index()] += 1;
        drop(s);
        if let Some(sink) = &self.telemetry {
            sink.lock()
                .unwrap()
                .packet_drop(self.now, self.port, reason);
        }
        if let Some(log) = &self.events {
            log.lock()
                .unwrap()
                .push((self.now, self.port, reason.name()));
        }
    }

    /// Plan the next fragment of a head-of-queue packet, if any. In VOQ
    /// mode the bid rotates across non-empty virtual output queues (the
    /// HOL-blocking fix of §2.2.2); fragments stream from the buffered
    /// packet, processor-sourced. Returns the tag, the stream mode, and
    /// the VOQ index being served (None for the FIFO path).
    fn plan_fragment(&self) -> Option<(FragTag, FragMode, Option<usize>)> {
        if self.queueing == IngressQueueing::Voq {
            // Rotate from the rr pointer to the first non-empty queue.
            for k in 0..NPORTS {
                let q = (self.voq.rr + k) % NPORTS;
                if self.voq.queues[q].is_empty() {
                    continue;
                }
                return Some((self.voq_head_tag(q), FragMode::Proc, Some(q)));
            }
            return None;
        }
        let c = self.cur.as_ref()?;
        let dst_mask = c.dst_mask?;
        if c.drop || c.streamed >= c.total_words {
            return None;
        }
        let remaining = c.total_words - c.streamed;
        let frag_words = remaining.min(self.quantum);
        let pads = self.quantum - frag_words;
        let mode = if pads == 0 {
            FragMode::Wire
        } else {
            FragMode::Proc
        };
        // Proc-sourced fragments must be fully buffered first.
        if mode == FragMode::Proc {
            let first_needed = c.streamed.max(IPV4_HEADER_WORDS);
            let have = c.arrived.max(first_needed);
            if have < c.streamed + frag_words || self.pending_store.is_some() {
                return None;
            }
        }
        Some((
            FragTag {
                dst_mask,
                src_port: self.port,
                words: frag_words as u16,
                seq: self.seq % raw_net::frag::SEQ_MODULUS,
                first: c.streamed == 0,
                last: remaining <= self.quantum,
                op: self.compute_op,
            },
            mode,
            None,
        ))
    }

    /// Scheduler-mode bid word: the VOQ occupancy mask (bit `j` set ⇔
    /// queue `j` has a packet to serve). 0 = nothing queued.
    fn voq_mask(&self) -> u8 {
        let mut m = 0u8;
        for (j, q) in self.voq.queues.iter().enumerate() {
            if !q.is_empty() {
                m |= 1 << j;
            }
        }
        m
    }

    /// The fragment tag for serving VOQ `q`'s head packet now. Shared by
    /// the rotating-bid planner and the scheduler-mode grant path (which
    /// learns the elected queue only when the grant word arrives).
    fn voq_head_tag(&self, q: usize) -> FragTag {
        let p = self.voq.queues[q].front().expect("serving an empty VOQ");
        let remaining = p.total_words - p.streamed;
        let frag_words = remaining.min(self.quantum);
        FragTag {
            dst_mask: p.dst_mask,
            src_port: self.port,
            words: frag_words as u16,
            seq: p.seq,
            first: p.streamed == 0,
            last: remaining <= self.quantum,
            op: self.compute_op,
        }
    }

    /// How many wire words the intake machine wants delivered next.
    fn wire_words_wanted(&self) -> usize {
        match &self.intake {
            Intake::Idle => 1, // speculatively start the next header
            Intake::NeedHdr { have } => IPV4_HEADER_WORDS - have,
            Intake::BufferTail { need, got } => need - got,
            Intake::BufferAll { need, got, .. } => need - got,
            Intake::Drain { left } => *left,
            _ => 0,
        }
    }

    /// Accept one word delivered by an ingest routine.
    fn accept_wire_word(&mut self, w: u32) {
        self.stats.lock().unwrap().words_ingested += 1;
        match &mut self.intake {
            Intake::Idle => {
                if w == crate::devices::WIRE_IDLE {
                    return; // inter-packet idle frame
                }
                self.hdr_words[0] = w;
                self.intake = Intake::NeedHdr { have: 1 };
                self.stats.lock().unwrap().packets_started += 1;
                self.cur_id = self.next_id;
                self.next_id = self.next_id.wrapping_add(1);
                self.stamp(self.now, self.cur_id, Stage::IngressAccept);
            }
            Intake::NeedHdr { have } => {
                if w == crate::devices::WIRE_IDLE {
                    // Idles never appear inside a packet: the line went
                    // quiet mid-header, so the rest is never coming.
                    self.record_drop(DropReason::Truncated);
                    self.cur = None;
                    self.intake = Intake::Idle;
                    return;
                }
                self.hdr_words[*have] = w;
                *have += 1;
                if *have == IPV4_HEADER_WORDS {
                    self.intake = Intake::Verify {
                        left: self.verify_cycles,
                    };
                }
            }
            Intake::BufferTail { need, got } => {
                if w == crate::devices::WIRE_IDLE {
                    // Truncated mid-tail (defensive: injected truncation
                    // requires VOQ mode, where this path is unused).
                    self.record_drop(DropReason::Truncated);
                    self.cur = None;
                    self.intake = Intake::Idle;
                    return;
                }
                let c = self.cur.as_mut().expect("buffering a packet");
                let addr = IG_BUF_BASE + c.arrived as u32;
                self.pending_store = Some((addr, w));
                c.arrived += 1;
                *got += 1;
                if got == need {
                    self.intake = Intake::Ready;
                }
            }
            Intake::BufferAll {
                base,
                reserved,
                need,
                got,
            } => {
                if w == crate::devices::WIRE_IDLE {
                    // The wire cut out before the claimed length: roll
                    // back the queue-region reservation (the packet was
                    // never enqueued) and count a truncation drop.
                    let rsv = *reserved;
                    let dst = {
                        let c = self.cur.as_ref().expect("buffering a packet");
                        (c.dst_mask.expect("routed").trailing_zeros() as usize) % NPORTS
                    };
                    self.voq.unalloc(dst, rsv);
                    self.record_drop(DropReason::Truncated);
                    self.cur = None;
                    self.intake = Intake::Idle;
                    return;
                }
                let c = self.cur.as_mut().expect("buffering a packet");
                let addr = *base + c.arrived as u32;
                self.pending_store = Some((addr, w));
                c.arrived += 1;
                *got += 1;
                if got == need {
                    // Whole packet buffered: enqueue it and move on to
                    // the next header immediately.
                    let pkt = VoqPkt {
                        base: *base,
                        reserved: *reserved,
                        total_words: c.total_words,
                        streamed: 0,
                        seq: self.seq % raw_net::frag::SEQ_MODULUS,
                        dst_mask: c.dst_mask.expect("routed before buffering"),
                        id: self.cur_id,
                    };
                    self.seq = self.seq.wrapping_add(1);
                    let dst = (pkt.dst_mask.trailing_zeros() as usize) % NPORTS;
                    self.voq.queues[dst].push_back(pkt);
                    self.cur = None;
                    self.intake = Intake::Idle;
                    if let Some(log) = &self.events {
                        let e: &'static str = ["enq0", "enq1", "enq2", "enq3"][dst];
                        log.lock().unwrap().push((self.now, self.port, e));
                    }
                }
            }
            Intake::Drain { left } => {
                if w == crate::devices::WIRE_IDLE {
                    // Idle before the claimed length: the discarded
                    // packet's tail was itself cut short. The drop is
                    // already counted; just resynchronize.
                    self.cur = None;
                    self.intake = Intake::Idle;
                    return;
                }
                *left -= 1;
                if *left == 0 {
                    self.cur = None;
                    self.intake = Intake::Idle;
                }
            }
            st => unreachable!(
                "ingest delivered word {w:#x} while intake state {} cannot accept",
                match st {
                    Intake::Verify { .. } => "Verify",
                    Intake::LookupSend { .. } => "LookupSend",
                    Intake::LookupWait { .. } => "LookupWait",
                    Intake::Ready => "Ready",
                    Intake::AllocVoq => "AllocVoq",
                    Intake::StoreHdrVoq { .. } => "StoreHdrVoq",
                    _ => "?",
                }
            ),
        }
    }

    /// Processor-only intake work (no switch interaction): deferred
    /// stores, header verification, the lookup round trip. Returns true
    /// if a cycle was spent.
    fn proc_step(&mut self, io: &mut TileIo<'_>) -> bool {
        if let Some((addr, w)) = self.pending_store {
            if io.store(addr, w) {
                self.pending_store = None;
                self.stats.lock().unwrap().words_buffered += 1;
            }
            return true;
        }
        match &mut self.intake {
            Intake::Verify { left } => {
                io.compute();
                *left -= 1;
                if *left != 0 {
                    return true;
                }
                match Ipv4Header::from_words(&self.hdr_words) {
                    Ok(mut h) => {
                        let total_words =
                            IPV4_HEADER_WORDS + (h.total_len as usize - 20).div_ceil(4);
                        let drop = h.forward_hop().is_err();
                        if !drop {
                            self.hdr_words = h.to_words();
                        }
                        self.cur = Some(CurPkt {
                            total_words,
                            arrived: IPV4_HEADER_WORDS,
                            streamed: 0,
                            dst_mask: None,
                            drop,
                        });
                        if drop {
                            self.record_drop(DropReason::TtlExpired);
                            self.intake = Intake::Drain {
                                left: total_words - IPV4_HEADER_WORDS,
                            };
                        } else {
                            self.intake = Intake::LookupSend { stage: 0 };
                        }
                    }
                    Err(e) => {
                        // Graceful degradation: when the claimed length
                        // survived the corruption, the malformed packet is
                        // counted under its reason and its exact payload
                        // span drained, keeping the framer packet-aligned.
                        // A garbled length cannot be trusted, so those
                        // count a frame error and resynchronize on the
                        // next idle gap instead.
                        let reason = match e {
                            IpError::BadChecksum => Some(DropReason::BadChecksum),
                            IpError::BadVersion(_) => Some(DropReason::BadVersion),
                            // An IHL other than 5 claims option words the
                            // five-word wire format never carries.
                            IpError::BadIhl(_) | IpError::Truncated => Some(DropReason::BadIhl),
                            IpError::BadTotalLength | IpError::TtlExpired => None,
                        };
                        let total_len = (self.hdr_words[0] & 0xffff) as usize;
                        self.cur = None;
                        match reason {
                            Some(r) if total_len >= 20 => {
                                self.record_drop(r);
                                let payload = (total_len - 20).div_ceil(4);
                                self.intake = if payload > 0 {
                                    Intake::Drain { left: payload }
                                } else {
                                    Intake::Idle
                                };
                            }
                            _ => {
                                self.stats.lock().unwrap().frame_errors += 1;
                                self.intake = Intake::Idle;
                            }
                        }
                    }
                }
                true
            }
            Intake::LookupSend { stage } => {
                let (row, col) = self.lookup_tile;
                let word = if *stage == 0 {
                    raw_sim::pack_header(row, col, 1, self.port as u32)
                } else {
                    self.hdr_words[4] // destination address
                };
                if io.can_send_dyn(0) {
                    let ok = io.send_dyn(0, word);
                    debug_assert!(ok);
                    if *stage == 0 {
                        *stage = 1;
                        self.stamp(io.cycle, self.cur_id, Stage::LookupIssue);
                    } else {
                        self.intake = Intake::LookupWait { stage: 0 };
                    }
                    true
                } else {
                    false
                }
            }
            Intake::LookupWait { stage } if io.can_recv_dyn(0) => {
                let w = io.recv_dyn(0).expect("polled");
                if *stage == 0 {
                    *stage = 1;
                } else {
                    self.ev(io.cycle, "lookup-done");
                    let c = self.cur.as_mut().expect("lookup for a packet");
                    let mask = match raw_lookup::decode_hop(w) {
                        raw_lookup::Hop::Unicast(p) => 1 << (p & 0x3),
                        raw_lookup::Hop::Multicast(m) => m & 0xf,
                    };
                    c.dst_mask = Some(mask);
                    if let Some(sink) = &self.telemetry {
                        let mut g = sink.lock().unwrap();
                        g.packet_event(io.cycle, self.port, self.cur_id, Stage::LookupComplete);
                        g.packet_dst(self.port, self.cur_id, mask);
                    }
                    if self.queueing == IngressQueueing::Voq {
                        self.intake = Intake::AllocVoq;
                    } else {
                        // Decide whether the tail needs buffering.
                        let frag_words = (c.total_words - c.streamed).min(self.quantum);
                        let pads = self.quantum - frag_words;
                        self.intake = if pads > 0 {
                            Intake::BufferTail {
                                need: c.total_words - c.arrived,
                                got: 0,
                            }
                        } else {
                            Intake::Ready
                        };
                        // Zero-length tail (packet exactly the header…)
                        if let Intake::BufferTail { need: 0, .. } = self.intake {
                            self.intake = Intake::Ready;
                        }
                    }
                }
                true
            }
            Intake::AllocVoq => {
                // Poll for queue-region space (one compute cycle per
                // attempt; full region = backpressure to the line).
                io.compute();
                let c = self.cur.as_ref().expect("routed packet");
                let mask = c.dst_mask.expect("routed");
                if let Some((base, reserved)) = self.voq.alloc(mask, c.total_words) {
                    self.intake = Intake::StoreHdrVoq {
                        base,
                        reserved,
                        i: 0,
                    };
                }
                true
            }
            Intake::StoreHdrVoq { base, reserved, i } => {
                let (b, rsv, k) = (*base, *reserved, *i);
                if io.store(b + k as u32, self.hdr_words[k]) {
                    if k + 1 == IPV4_HEADER_WORDS {
                        let c = self.cur.as_ref().expect("routed packet");
                        let need = c.total_words - c.arrived;
                        if need == 0 {
                            // Header-only packet: enqueue immediately.
                            let pkt = VoqPkt {
                                base: b,
                                reserved: rsv,
                                total_words: c.total_words,
                                streamed: 0,
                                seq: self.seq % raw_net::frag::SEQ_MODULUS,
                                dst_mask: c.dst_mask.expect("routed"),
                                id: self.cur_id,
                            };
                            self.seq = self.seq.wrapping_add(1);
                            let dst = (pkt.dst_mask.trailing_zeros() as usize) % NPORTS;
                            self.voq.queues[dst].push_back(pkt);
                            self.cur = None;
                            self.intake = Intake::Idle;
                        } else {
                            self.intake = Intake::BufferAll {
                                base: b,
                                reserved: rsv,
                                need,
                                got: 0,
                            };
                        }
                    } else {
                        self.intake = Intake::StoreHdrVoq {
                            base: b,
                            reserved: rsv,
                            i: k + 1,
                        };
                    }
                }
                true
            }
            _ => false,
        }
    }

    /// Mark fragment completion after its stream routine retired.
    fn finish_fragment(&mut self, tag: FragTag, mode: FragMode, voq_q: Option<usize>) {
        if let Some(q) = voq_q {
            // VOQ service: advance the head packet; free and dequeue on
            // completion; rotate the bid pointer for fairness.
            let done = {
                let p = self.voq.queues[q].front_mut().expect("serving");
                p.streamed += tag.words as usize;
                p.streamed >= p.total_words
            };
            if done {
                let p = self.voq.queues[q].pop_front().expect("serving");
                self.voq.free(q, p.reserved);
                self.stats.lock().unwrap().packets_completed += 1;
            }
            self.voq.rr = (q + 1) % NPORTS;
            let mut s = self.stats.lock().unwrap();
            s.fragments_sent += 1;
            s.proc_fragments += 1;
            return;
        }
        let mut done = false;
        if let Some(c) = &mut self.cur {
            if mode == FragMode::Wire {
                // The switch pulled these words directly off the wire.
                let wire_words = if tag.first {
                    tag.words as usize - IPV4_HEADER_WORDS
                } else {
                    tag.words as usize
                };
                c.arrived += wire_words;
                self.stats.lock().unwrap().words_cut_through += wire_words as u64;
            }
            c.streamed += tag.words as usize;
            done = c.streamed >= c.total_words;
            if !done {
                // If the next fragment is a padded tail it must be
                // processor-sourced, so its words need buffering now.
                let remaining = c.total_words - c.streamed;
                if remaining < self.quantum && matches!(self.intake, Intake::Ready) {
                    let need = c.total_words - c.arrived;
                    self.intake = if need > 0 {
                        Intake::BufferTail { need, got: 0 }
                    } else {
                        Intake::Ready
                    };
                }
            }
        }
        let mut s = self.stats.lock().unwrap();
        s.fragments_sent += 1;
        match mode {
            FragMode::Wire => s.wire_fragments += 1,
            FragMode::Proc => s.proc_fragments += 1,
        }
        if done {
            s.packets_completed += 1;
            drop(s);
            self.seq = self.seq.wrapping_add(1);
            self.cur = None;
            self.intake = Intake::Idle;
        }
    }

    /// Pick the next ingest chunk size index for `want` words.
    fn chunk_for(want: usize) -> (usize, usize) {
        for (i, n) in crate::codegen::INGEST_CHUNKS.iter().enumerate().rev() {
            if *n <= want {
                return (i, *n);
            }
        }
        (0, 1)
    }
}

impl TileProgram for IngressProgram {
    fn tick(&mut self, io: &mut TileIo<'_>) {
        self.now = io.cycle;
        match &mut self.drive {
            Drive::Idle => {
                if !io.switch_halted(NET0) {
                    // The switch is still finishing a routine: use the
                    // cycle for processor-only intake work.
                    if !self.proc_step(io) {
                        io.idle();
                    }
                    return;
                }
                // Choose the next routine. Real bids take priority; then
                // wire-word delivery for the intake machine (the line
                // always carries words — idle frames between packets —
                // so ingest routines complete promptly); an empty bid is
                // forced after two ingests so the fabric keeps rotating.
                let want = self.wire_words_wanted();
                // While a grant is outstanding, the switch is free: run
                // ingest chunks (up to a budget) before collecting it —
                // this is what lets intake overlap the crossbar quantum.
                if let Some(real) = self.grant_outstanding {
                    let budget = match self.queueing {
                        IngressQueueing::Voq => 12,
                        IngressQueueing::Fifo => 2,
                    };
                    if want > 0 && self.ingests_since_bid < budget {
                        let (i, n) = Self::chunk_for(want);
                        self.ingests_since_bid += 1;
                        self.ev(io.cycle, "ingest");
                        io.set_switch_pc(NET0, self.ingest_pc[i]);
                        self.drive = Drive::Ingest { left: n };
                        return;
                    }
                    self.grant_outstanding = None;
                    io.set_switch_pc(NET0, self.grant_recv_pc);
                    self.drive = Drive::CollectGrant { real };
                    return;
                }
                if self.sched {
                    // Scheduler mode: bid the whole occupancy mask; which
                    // queue gets served is the arbiter's choice, learned
                    // from the grant word — no fragment is planned yet.
                    let mask = self.voq_mask();
                    if mask != 0 {
                        self.pending_tag = None;
                        self.ingests_since_bid = 0;
                        self.ev(io.cycle, "bid-real");
                        io.set_switch_pc(NET0, self.bid_send_pc);
                        self.drive = Drive::BidSend {
                            word: u32::from(mask),
                            real: true,
                        };
                        return;
                    }
                } else if let Some((tag, mode, voq_q)) = self.plan_fragment() {
                    self.pending_tag = Some((tag, mode, voq_q));
                    self.ingests_since_bid = 0;
                    self.ev(io.cycle, "bid-real");
                    io.set_switch_pc(NET0, self.bid_send_pc);
                    self.drive = Drive::BidSend {
                        word: tag.pack(),
                        real: true,
                    };
                    return;
                }
                // Bounded processor-only work (verification, the lookup
                // round trip) runs to completion before we spend a bid
                // round trip — a real bid usually follows immediately.
                if matches!(
                    self.intake,
                    Intake::Verify { .. }
                        | Intake::LookupSend { .. }
                        | Intake::LookupWait { .. }
                        | Intake::AllocVoq
                        | Intake::StoreHdrVoq { .. }
                ) || self.pending_store.is_some()
                {
                    if !self.proc_step(io) {
                        io.idle(); // lookup reply in flight
                    }
                    return;
                }
                if want > 0 && self.ingests_since_bid < 2 {
                    let (i, n) = Self::chunk_for(want);
                    self.ingests_since_bid += 1;
                    self.ev(io.cycle, "ingest");
                    io.set_switch_pc(NET0, self.ingest_pc[i]);
                    self.drive = Drive::Ingest { left: n };
                    return;
                }
                // Keep the crossbar rotating (and clear the ingest debt).
                // Scheduler mode's empty bid is the all-zero request mask
                // (EMPTY_HDR would decode as the all-ports mask there).
                self.ingests_since_bid = 0;
                self.ev(io.cycle, "bid-empty");
                io.set_switch_pc(NET0, self.bid_send_pc);
                self.drive = Drive::BidSend {
                    word: if self.sched { 0 } else { EMPTY_HDR },
                    real: false,
                };
            }
            Drive::Ingest { left } => {
                // A deferred store must land before the next word is
                // pulled (receive + store = the 2-cycles/word buffering
                // cost of §4.4).
                if self.pending_store.is_some() {
                    self.proc_step(io);
                    return;
                }
                if io.can_recv_static(NET0) {
                    let w = io.recv_static(NET0).expect("polled");
                    let l = *left - 1;
                    self.accept_wire_word(w);
                    if l == 0 {
                        self.drive = Drive::Idle;
                    } else {
                        self.drive = Drive::Ingest { left: l };
                    }
                } else if !self.proc_step(io) {
                    io.idle();
                }
            }
            Drive::BidSend { word, real } => {
                let (w, real) = (*word, *real);
                if io.send_static(w) {
                    self.stats.lock().unwrap().bids += 1;
                    self.grant_outstanding = Some(real);
                    self.drive = Drive::Idle;
                }
            }
            Drive::CollectGrant { real } => {
                if io.can_recv_static(NET0) {
                    let g = io.recv_static(NET0).expect("polled");
                    // Scheduler-mode grant words carry the elected VOQ in
                    // bits 8.. (token mode sends bare GRANT/DENY, so the
                    // low-byte compare is equivalent there).
                    let granted = (g & 0xff) == GRANT && *real;
                    let mut s = self.stats.lock().unwrap();
                    if granted {
                        s.grants += 1;
                    } else if *real {
                        s.denies += 1;
                    }
                    drop(s);
                    if granted && self.sched {
                        // Plan the fragment only now: the arbiter picked
                        // the queue. Sound because queues only grow
                        // between bid and grant — the bid mask's queues
                        // still have their head packets.
                        let q = ((g >> 8) & 0x3) as usize;
                        debug_assert!(
                            !self.voq.queues[q].is_empty(),
                            "arbiter granted VOQ {q} which was never bid"
                        );
                        self.pending_tag = Some((self.voq_head_tag(q), FragMode::Proc, Some(q)));
                    }
                    if granted {
                        self.ev(io.cycle, "granted");
                        if self.telemetry.is_some() {
                            // The granted packet: the served VOQ head, or
                            // the single in-flight FIFO packet.
                            let id = match &self.pending_tag {
                                Some((_, _, Some(q))) => self.voq.queues[*q].front().map(|p| p.id),
                                _ => Some(self.cur_id),
                            };
                            if let Some(id) = id {
                                self.stamp(io.cycle, id, Stage::CrossbarGrant);
                            }
                        }
                        self.drive = Drive::StartStream;
                    } else {
                        self.ev(io.cycle, "denied");
                        self.pending_tag = None;
                        self.drive = Drive::Idle;
                    }
                } else if !self.proc_step(io) {
                    // Waiting for the crossbar's grant word: this is an
                    // arbitration wait, not plain idleness — attributed
                    // to the token protocol or the slot scheduler so the
                    // head-to-head stall tables separate the two.
                    if self.sched {
                        io.hint_arb_wait();
                    } else {
                        io.hint_token_wait();
                    }
                    io.idle();
                }
            }
            Drive::StartStream => {
                if io.switch_halted(NET0) {
                    let (tag, mode, _) = self.pending_tag.expect("granted");
                    let pc = match (mode, tag.first, tag.last) {
                        (FragMode::Wire, true, true) => self.stream_wf_last_pc,
                        (FragMode::Wire, true, false) => self.stream_wf_more_pc,
                        (FragMode::Wire, false, false) => self.stream_wc_more_pc,
                        (FragMode::Wire, false, true) => self.stream_wc_last_pc,
                        (FragMode::Proc, _, _) if self.queueing == IngressQueueing::Voq => {
                            // No prefetch coda: VOQ ingestion is
                            // decoupled from streaming, so the coda
                            // words could land mid-parse.
                            self.stream_proc_nc_pc
                        }
                        (FragMode::Proc, _, _) => self.stream_proc_pc,
                    };
                    io.set_switch_pc(NET0, pc);
                    self.drive = Drive::Stream { mode, sent: 0 };
                } else if !self.proc_step(io) {
                    io.idle();
                }
            }
            Drive::Stream { mode, sent } => {
                let (tag, _, voq_q) = self.pending_tag.expect("streaming");
                let m = *mode;
                let k = *sent;
                // How many words must the processor source?
                let proc_words = match (m, tag.first) {
                    (FragMode::Wire, true) => 1 + IPV4_HEADER_WORDS,
                    (FragMode::Wire, false) => 1,
                    (FragMode::Proc, _) => 1 + self.quantum,
                };
                if k == proc_words {
                    // Final-fragment FIFO routines end with the header
                    // prefetch coda: account the fragment now and consume
                    // the coda words as next-packet intake. VOQ routines
                    // have no coda.
                    if tag.last && self.queueing == IngressQueueing::Fifo {
                        let (tag, mode, voq_q) = self.pending_tag.take().expect("streaming");
                        self.ev(io.cycle, "stream-last");
                        self.finish_fragment(tag, mode, voq_q);
                        self.drive = Drive::StreamTail {
                            left: crate::codegen::PREFETCH_WORDS,
                        };
                    } else {
                        self.drive = Drive::EndStream;
                    }
                    self.tick(io);
                    return;
                }
                let ok = if k == 0 {
                    io.send_static(tag.pack())
                } else {
                    match m {
                        FragMode::Wire => io.send_static(self.hdr_words[k - 1]),
                        FragMode::Proc if k > tag.words as usize => {
                            io.send_static(0) // padding
                        }
                        FragMode::Proc => {
                            if let Some(q) = voq_q {
                                // VOQ: stream from the buffered packet
                                // (header included at its base).
                                let pkt = self.voq.queues[q].front().expect("serving");
                                let pkt_idx = pkt.streamed + (k - 1);
                                io.load_send(pkt.base + pkt_idx as u32)
                            } else {
                                let c = self.cur.as_ref().expect("streaming");
                                let pkt_idx = c.streamed + (k - 1);
                                if pkt_idx < IPV4_HEADER_WORDS {
                                    io.send_static(self.hdr_words[pkt_idx])
                                } else {
                                    io.load_send(IG_BUF_BASE + pkt_idx as u32)
                                }
                            }
                        }
                    }
                };
                if ok {
                    *sent = k + 1;
                }
            }
            Drive::StreamTail { left } => {
                if self.pending_store.is_some() {
                    self.proc_step(io);
                    return;
                }
                if io.can_recv_static(NET0) {
                    let w = io.recv_static(NET0).expect("polled");
                    let l = *left - 1;
                    self.accept_wire_word(w);
                    self.drive = if l == 0 {
                        Drive::WaitHalt
                    } else {
                        Drive::StreamTail { left: l }
                    };
                } else if !self.proc_step(io) {
                    io.idle();
                }
            }
            Drive::WaitHalt => {
                if io.switch_halted(NET0) {
                    self.ev(io.cycle, "stream-end");
                    self.drive = Drive::Idle;
                    self.tick(io);
                } else if !self.proc_step(io) {
                    io.idle();
                }
            }
            Drive::EndStream => {
                if io.switch_halted(NET0) {
                    let (tag, mode, voq_q) = self.pending_tag.take().expect("streamed");
                    self.ev(io.cycle, "stream-end");
                    self.finish_fragment(tag, mode, voq_q);
                    self.drive = Drive::Idle;
                    // Re-enter Idle in the same tick (the WaitHalt idiom):
                    // ending the turn here would record no io action, and
                    // the event-skip engine would park the tile waiting
                    // for an external event — which never comes when the
                    // wire FIFO is already full and every peer is blocked
                    // on this tile's next bid.
                    self.tick(io);
                } else if !self.proc_step(io) {
                    io.idle();
                }
            }
        }
    }

    fn label(&self) -> &str {
        &self.label
    }
}

// ---------------------------------------------------------------------
// Lookup
// ---------------------------------------------------------------------

#[derive(Clone, Debug, Default)]
pub struct LookupStats {
    pub lookups: u64,
    pub total_cost_cycles: u64,
    /// Lookups forced onto the default route by fault injection
    /// ([`LookupProgram::inject_misses`]).
    pub injected_misses: u64,
}

enum LkSt {
    WaitHdr,
    WaitAddr,
    Compute { left: u32, port: u32 },
    SendHdr { port: u32 },
    SendPort { port: u32 },
}

pub struct LookupProgram {
    table: Arc<ForwardingTable>,
    engine: Engine,
    ingress_rc: (u16, u16),
    st: LkSt,
    /// Deterministic miss injection: `(rng, miss_ppm, penalty_cycles)`.
    fault: Option<(CorruptRng, u32, u32)>,
    label: String,
    pub stats: Arc<Mutex<LookupStats>>,
}

impl LookupProgram {
    pub fn new(
        port: u8,
        table: Arc<ForwardingTable>,
        engine: Engine,
        ingress_row_col: (u16, u16),
    ) -> (LookupProgram, Arc<Mutex<LookupStats>>) {
        let stats = Arc::new(Mutex::new(LookupStats::default()));
        (
            LookupProgram {
                table,
                engine,
                ingress_rc: ingress_row_col,
                st: LkSt::WaitHdr,
                fault: None,
                label: format!("lookup{port}"),
                stats: Arc::clone(&stats),
            },
            stats,
        )
    }

    /// Arm deterministic lookup-miss injection: with probability
    /// `miss_ppm` parts-per-million a lookup discards the table's answer
    /// and falls back to the default route (port 0) after `penalty`
    /// extra cycles — the table-miss / stale-route fault class. The
    /// draws come from a seeded [`CorruptRng`], so runs replay exactly.
    pub fn inject_misses(&mut self, seed: u64, miss_ppm: u32, penalty: u32) {
        self.fault = Some((CorruptRng::new(seed), miss_ppm, penalty));
    }
}

impl TileProgram for LookupProgram {
    fn tick(&mut self, io: &mut TileIo<'_>) {
        match &mut self.st {
            LkSt::WaitHdr => {
                if io.recv_dyn(0).is_some() {
                    self.st = LkSt::WaitAddr;
                }
            }
            LkSt::WaitAddr => {
                if let Some(addr) = io.recv_dyn(0) {
                    let (hop, mut cost) = self.table.lookup(self.engine, addr);
                    // The raw next-hop travels back intact: a plain port
                    // number, or a `MULTICAST_FLAG`-encoded port set.
                    // Unroutable addresses fall back to port 0 (synthetic
                    // tables always carry a default route; defensive).
                    let mut port = hop.unwrap_or(0);
                    let mut injected = false;
                    if let Some((rng, ppm, penalty)) = &mut self.fault {
                        if rng.chance_ppm(*ppm) {
                            port = 0;
                            cost += *penalty;
                            injected = true;
                        }
                    }
                    let mut s = self.stats.lock().unwrap();
                    s.lookups += 1;
                    if injected {
                        s.injected_misses += 1;
                    }
                    s.total_cost_cycles += cost as u64;
                    drop(s);
                    self.st = LkSt::Compute {
                        left: cost.max(1),
                        port,
                    };
                }
            }
            LkSt::Compute { left, port } => {
                io.compute();
                *left -= 1;
                if *left == 0 {
                    self.st = LkSt::SendHdr { port: *port };
                }
            }
            LkSt::SendHdr { port } => {
                let (row, col) = self.ingress_rc;
                let h = raw_sim::pack_header(row, col, 1, 0);
                if io.send_dyn(0, h) {
                    self.st = LkSt::SendPort { port: *port };
                }
            }
            LkSt::SendPort { port } => {
                let p = *port;
                if io.send_dyn(0, p) {
                    self.st = LkSt::WaitHdr;
                }
            }
        }
    }

    fn label(&self) -> &str {
        &self.label
    }
}

// ---------------------------------------------------------------------
// Crossbar
// ---------------------------------------------------------------------

#[derive(Clone, Debug, Default)]
pub struct XbarStats {
    pub quanta: u64,
    pub grants_issued: u64,
    pub active_quanta: u64,
    pub token_history_check: u64,
    /// Scheduler mode only: total arbitration iterations charged (iSLIP
    /// runs up to `iters` request/grant/accept rounds per quantum).
    pub sched_iterations: u64,
    /// Scheduler mode only: total matched input/output pairs granted.
    pub sched_matched: u64,
}

enum XbSt {
    WaitHalt,
    RecvOwn,
    RingSendOwn,
    RingRecv {
        k: usize,
    },
    RingFwd {
        k: usize,
    },
    ComputeIdx {
        left: u32,
    },
    LoadEntry,
    SendGrant {
        grant: bool,
        gword: u32,
        cfg_pc: usize,
    },
    SwpcCfg {
        cfg_pc: usize,
    },
}

pub struct CrossbarProgram {
    port: u8,
    /// True when the jump table covers the multicast alphabet.
    multicast: bool,
    /// Scheduler mode (`Some`): the bid words are raw VOQ request masks
    /// and this tile's replica of the arbiter turns them into a
    /// matching, realized against the ordinary unicast jump table via
    /// `global_index(0, ..)` (see `config::schedule_matching`). All four
    /// crossbar tiles run identical replicas over identical bid vectors,
    /// so their matchings agree without extra communication — exactly
    /// how the paper replicates the token counter (§5.1).
    sched: Option<Box<dyn raw_sched::Scheduler>>,
    /// Scheduler mode: the matching the current quantum realizes.
    matching: [Option<u8>; NPORTS],
    /// Encoded headers of all four ports this quantum (unicast alphabet:
    /// 0..=3 dest + 4 empty; multicast alphabet: the destination mask;
    /// scheduler mode: the raw VOQ request mask, 0 = nothing queued).
    hdrs: [u8; NPORTS],
    /// The token schedule (weighted round robin, §8.7) and position.
    token_seq: Vec<u8>,
    q: usize,
    idx_cycles: u32,
    cfg_pcs: Vec<usize>,
    st: XbSt,
    /// The header word currently being forwarded around the ring.
    ring_word: u32,
    label: String,
    pub stats: Arc<Mutex<XbarStats>>,
    pub events: Option<EventLog>,
    /// Debug ring of (quantum, gi, cfg_pc) decisions.
    pub decisions: Arc<Mutex<Vec<(usize, usize, usize)>>>,
}

impl CrossbarProgram {
    pub fn new(
        port: u8,
        code: &CrossbarCode,
        token_seq: Vec<u8>,
        idx_cycles: u32,
        multicast: bool,
        sched: Option<Box<dyn raw_sched::Scheduler>>,
    ) -> (CrossbarProgram, Arc<Mutex<XbarStats>>) {
        assert!(!token_seq.is_empty());
        assert!(
            sched.is_none() || !multicast,
            "scheduler arbitration is unicast-only"
        );
        let stats = Arc::new(Mutex::new(XbarStats::default()));
        let empty_code = if sched.is_some() || multicast {
            0
        } else {
            HDR_VALUES as u8 - 1
        };
        (
            CrossbarProgram {
                port,
                multicast,
                sched,
                matching: [None; NPORTS],
                hdrs: [empty_code; NPORTS],
                token_seq,
                q: 0,
                idx_cycles,
                cfg_pcs: code.cfg_pc.clone(),
                st: XbSt::WaitHalt,
                ring_word: 0,
                events: None,
                decisions: Arc::new(Mutex::new(Vec::new())),
                label: format!("xbar{port}"),
                stats: Arc::clone(&stats),
            },
            stats,
        )
    }

    /// Build the jump-table image preloaded into this tile's data memory:
    /// `entry = cfg_id | granted << 31`.
    pub fn table_image(cs: &ConfigSpace, tile: usize) -> Vec<u32> {
        cs.jump[tile]
            .iter()
            .zip(cs.grant[tile].iter())
            .map(|(&id, &g)| u32::from(id) | (u32::from(g) << 31))
            .collect()
    }

    fn hdr_code(&self, w: u32) -> u8 {
        if self.sched.is_some() {
            // Scheduler-mode bid words carry the raw VOQ request mask.
            (w & 0xf) as u8
        } else if self.multicast {
            if w == EMPTY_HDR {
                0 // empty = no destinations
            } else {
                FragTag::unpack(w).dst_mask & 0xf
            }
        } else if w == EMPTY_HDR {
            NPORTS as u8 // "empty"
        } else {
            FragTag::unpack(w).unicast_dst().unwrap_or(0) & 0x3
        }
    }

    fn table_index(&self) -> usize {
        if self.sched.is_some() {
            // The matching, re-encoded as unicast headers with the token
            // pinned at 0: the same jump-table entry on every tile (see
            // `config::schedule_matching`).
            let hdrs: [u8; NPORTS] =
                std::array::from_fn(|i| self.matching[i].unwrap_or(NPORTS as u8));
            global_index(0, hdrs)
        } else if self.multicast {
            global_index_mcast(self.token(), self.hdrs)
        } else {
            global_index(self.token(), self.hdrs)
        }
    }

    fn token(&self) -> u8 {
        self.token_seq[self.q % self.token_seq.len()]
    }
}

impl TileProgram for CrossbarProgram {
    fn tick(&mut self, io: &mut TileIo<'_>) {
        let me = self.port as usize;
        match &mut self.st {
            XbSt::WaitHalt => {
                if io.switch_halted(NET0) {
                    // hdr_pc is always 1 in generated code, but carry it
                    // through cfg_pcs' sibling field for robustness.
                    io.set_switch_pc(NET0, 1);
                    self.st = XbSt::RecvOwn;
                } else {
                    io.idle();
                }
            }
            XbSt::RecvOwn => {
                if let Some(w) = io.recv_static(NET0) {
                    self.hdrs[me] = self.hdr_code(w);
                    self.ring_word = w;
                    self.st = XbSt::RingSendOwn;
                }
            }
            XbSt::RingSendOwn => {
                if io.send_static(self.ring_word) {
                    self.st = XbSt::RingRecv { k: 0 };
                }
            }
            XbSt::RingRecv { k } => {
                let kk = *k;
                if let Some(w) = io.recv_static(NET0) {
                    // k-th received word is the header of port (me-1-k).
                    let owner = (me + NPORTS - 1 - kk) % NPORTS;
                    self.hdrs[owner] = self.hdr_code(w);
                    self.ring_word = w;
                    self.st = if kk < 2 {
                        XbSt::RingFwd { k: kk }
                    } else {
                        // All four bids are in. In scheduler mode run the
                        // arbiter replica now and charge its iteration
                        // cost on top of the baseline index computation
                        // (NPORTS cycles per request/grant/accept round).
                        let mut left = self.idx_cycles;
                        if let Some(s) = self.sched.as_mut() {
                            let reqs: [u16; NPORTS] =
                                std::array::from_fn(|i| u16::from(self.hdrs[i]));
                            let m = s.arbitrate(&reqs);
                            debug_assert!(raw_sched::matching_is_valid(&reqs, &m));
                            self.matching = std::array::from_fn(|i| m[i]);
                            let iters = s.last_iterations();
                            left += NPORTS as u32 * iters;
                            let mut st = self.stats.lock().unwrap();
                            st.sched_iterations += u64::from(iters);
                            st.sched_matched += raw_sched::matching_size(&m) as u64;
                        }
                        XbSt::ComputeIdx { left }
                    };
                }
            }
            XbSt::RingFwd { k } => {
                let kk = *k;
                if io.send_static(self.ring_word) {
                    self.st = XbSt::RingRecv { k: kk + 1 };
                }
            }
            XbSt::ComputeIdx { left } => {
                io.compute();
                *left -= 1;
                if *left == 0 {
                    self.st = XbSt::LoadEntry;
                }
            }
            XbSt::LoadEntry => {
                let gi = self.table_index();
                if let Some(entry) = io.load(XBAR_TABLE_BASE + gi as u32) {
                    let grant = entry >> 31 == 1;
                    let cfg_id = (entry & 0xffff) as usize;
                    let cfg_pc = self.cfg_pcs[cfg_id];
                    let gword = if self.sched.is_some() {
                        // Scheduler mode: the grant word also names the
                        // VOQ being served (the ingress bid a mask, not
                        // a destination). The jump table must agree with
                        // the matching — the routability property proven
                        // by `matchings_are_always_routable` / RV801.
                        debug_assert_eq!(grant, self.matching[me].is_some());
                        match self.matching[me] {
                            Some(dst) => GRANT | (u32::from(dst) << 8),
                            None => DENY,
                        }
                    } else if grant {
                        GRANT
                    } else {
                        DENY
                    };
                    self.st = XbSt::SendGrant {
                        grant,
                        gword,
                        cfg_pc,
                    };
                }
            }
            XbSt::SendGrant {
                grant,
                gword,
                cfg_pc,
            } => {
                let (g, gw, pc) = (*grant, *gword, *cfg_pc);
                if io.send_static(gw) {
                    let mut s = self.stats.lock().unwrap();
                    s.quanta += 1;
                    if g {
                        s.grants_issued += 1;
                    }
                    if pc != 0 {
                        s.active_quanta += 1;
                    }
                    drop(s);
                    self.st = XbSt::SwpcCfg { cfg_pc: pc };
                }
            }
            XbSt::SwpcCfg { cfg_pc } => {
                let pc = *cfg_pc;
                if self.events.is_some() {
                    let gi = self.table_index();
                    self.decisions.lock().unwrap().push((self.q, gi, pc));
                }
                // Even the idle configuration targets the PC-0 WaitPc, so
                // the switch returns to a known sync point.
                io.set_switch_pc(NET0, pc);
                self.q += 1; // the synchronous token counter (§5.1)
                self.st = XbSt::WaitHalt;
            }
        }
    }

    fn label(&self) -> &str {
        &self.label
    }
}

// ---------------------------------------------------------------------
// Egress
// ---------------------------------------------------------------------

#[derive(Clone, Debug, Default)]
pub struct EgressStats {
    pub fragments: u64,
    pub packets: u64,
    pub words_stored: u64,
    pub words_streamed_out: u64,
    pub reasm_errors: u64,
}

/// Egress operating mode.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EgressMode {
    /// Bodies stream switch→line card; the processor only sees tags.
    /// Requires every packet to fit one quantum.
    CutThrough,
    /// Bodies are buffered and reassembled per source (§4.2) and then
    /// streamed out over network 1.
    StoreForward,
}

enum EgSt {
    Swpc,
    Tag,
    WaitHalt,
    // store-forward path
    RecvWord { j: usize },
    StoreWord { j: usize, word: u32 },
    Output { src: usize, i: usize, len: usize },
}

struct SrcAssembly {
    words: usize,
    expect_seq: Option<u16>,
}

pub struct EgressProgram {
    port: u8,
    mode: EgressMode,
    quantum: usize,
    cut_pc: usize,
    store_pc: usize,
    st: EgSt,
    tag: Option<FragTag>,
    asm: [SrcAssembly; NPORTS],
    label: String,
    pub stats: Arc<Mutex<EgressStats>>,
    /// Telemetry sink for first/last-word egress stamps.
    pub telemetry: Option<SharedSink>,
}

impl EgressProgram {
    pub fn new(
        port: u8,
        code: &EgressCode,
        quantum: usize,
        mode: EgressMode,
    ) -> (EgressProgram, Arc<Mutex<EgressStats>>) {
        let stats = Arc::new(Mutex::new(EgressStats::default()));
        (
            EgressProgram {
                port,
                mode,
                quantum,
                cut_pc: code.cut_pc,
                store_pc: code.store_pc,
                st: EgSt::Swpc,
                tag: None,
                asm: std::array::from_fn(|_| SrcAssembly {
                    words: 0,
                    expect_seq: None,
                }),
                label: format!("egress{port}"),
                stats: Arc::clone(&stats),
                telemetry: None,
            },
            stats,
        )
    }

    fn buf_addr(src: usize, i: usize) -> u32 {
        EG_BUF_BASE + src as u32 * EG_BUF_STRIDE + i as u32
    }

    /// Record an egress-side lifecycle stamp for `src_port`'s packet.
    fn stamp(&self, cycle: u64, src_port: u8, stage: Stage) {
        if let Some(sink) = &self.telemetry {
            sink.lock()
                .unwrap()
                .egress_event(cycle, src_port, self.port, stage);
        }
    }
}

impl TileProgram for EgressProgram {
    fn tick(&mut self, io: &mut TileIo<'_>) {
        match &mut self.st {
            EgSt::Swpc => {
                if io.switch_halted(NET0) {
                    let pc = match self.mode {
                        EgressMode::CutThrough => self.cut_pc,
                        EgressMode::StoreForward => self.store_pc,
                    };
                    io.set_switch_pc(NET0, pc);
                    self.st = EgSt::Tag;
                } else {
                    io.idle();
                }
            }
            EgSt::Tag => {
                // Blocking receive: an idle output port parks here,
                // blocked on receive (gray in Figure 7-3).
                if let Some(w) = io.recv_static(NET0) {
                    let tag = FragTag::unpack(w);
                    let mut s = self.stats.lock().unwrap();
                    s.fragments += 1;
                    if tag.last {
                        s.packets += 1;
                    }
                    drop(s);
                    if self.mode == EgressMode::StoreForward {
                        // Reassembly protocol check, once per fragment.
                        let src = tag.src_port as usize;
                        let a = &mut self.asm[src];
                        let ok = match (a.expect_seq, tag.first) {
                            (None, true) => true,
                            (Some(sq), false) => sq == tag.seq,
                            _ => false,
                        };
                        if !ok {
                            self.stats.lock().unwrap().reasm_errors += 1;
                            a.words = 0; // resynchronize on this fragment
                        }
                        a.expect_seq = Some(tag.seq);
                    }
                    self.tag = Some(tag);
                    if self.mode == EgressMode::CutThrough && tag.first {
                        // The switch streams the body straight to the line
                        // card behind this tag: the first payload word is
                        // leaving now.
                        self.stamp(io.cycle, tag.src_port, Stage::FirstWordEgress);
                    }
                    self.st = match self.mode {
                        EgressMode::CutThrough => EgSt::WaitHalt,
                        EgressMode::StoreForward => EgSt::RecvWord { j: 0 },
                    };
                }
            }
            EgSt::WaitHalt => {
                if io.switch_halted(NET0) {
                    if let Some(tag) = self.tag.take() {
                        if tag.last {
                            self.stamp(io.cycle, tag.src_port, Stage::LastWordEgress);
                        }
                    }
                    self.st = EgSt::Swpc;
                    self.tick(io);
                } else {
                    io.idle();
                }
            }
            EgSt::RecvWord { j } => {
                let jj = *j;
                if jj == self.quantum {
                    // Fragment fully received: if it completed a packet,
                    // stream it out.
                    let tag = self.tag.take().expect("mid-fragment");
                    let src = tag.src_port as usize;
                    if tag.last {
                        let len = self.asm[src].words;
                        self.asm[src].words = 0;
                        self.asm[src].expect_seq = None;
                        self.st = EgSt::Output { src, i: 0, len };
                    } else {
                        self.st = EgSt::Swpc;
                    }
                    self.tick(io);
                    return;
                }
                if let Some(w) = io.recv_static(NET0) {
                    let tag = self.tag.expect("mid-fragment");
                    if jj < tag.words as usize {
                        self.st = EgSt::StoreWord { j: jj, word: w };
                    } else {
                        *j = jj + 1; // discard padding
                    }
                }
            }
            EgSt::StoreWord { j, word } => {
                let (jj, w) = (*j, *word);
                let tag = self.tag.expect("mid-fragment");
                let src = tag.src_port as usize;
                let _ = jj;
                let idx = self.asm[src].words;
                if io.store(Self::buf_addr(src, idx), w) {
                    self.asm[src].words += 1;
                    self.stats.lock().unwrap().words_stored += 1;
                    self.st = EgSt::RecvWord { j: jj + 1 };
                }
            }
            EgSt::Output { src, i, len } => {
                let (s, ii, l) = (*src, *i, *len);
                if ii == l {
                    self.st = EgSt::Swpc;
                    self.tick(io);
                    return;
                }
                if io.load_send(Self::buf_addr(s, ii)) {
                    *i = ii + 1;
                    self.stats.lock().unwrap().words_streamed_out += 1;
                    if ii == 0 {
                        self.stamp(io.cycle, s as u8, Stage::FirstWordEgress);
                    }
                    if ii + 1 == l {
                        self.stamp(io.cycle, s as u8, Stage::LastWordEgress);
                    }
                }
            }
        }
    }

    fn label(&self) -> &str {
        &self.label
    }
}
