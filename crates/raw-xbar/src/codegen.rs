//! The compile-time switch-code generator (§6.4–6.5).
//!
//! The third pass of the paper's automatic scheduler: convert the
//! minimized configuration set into Raw switch programs. Each crossbar
//! tile's switch memory holds
//!
//! * a `WaitPc` sync point at PC 0 (also serving as the idle
//!   configuration),
//! * the **header-exchange routine**: take the local header from the
//!   ingress, run the three-step ring all-to-all, and return the
//!   grant/deny word (the phases of Figure 6-2), and
//! * one **body routine per distinct local configuration**: `quantum + 1`
//!   unrolled route instructions (one fragment tag plus the quantum's
//!   payload words) for each active server, ending in `WaitPc`.
//!
//! The §6.2 feasibility argument is executable here: with the minimized
//! configuration set the generated program fits the 8,192-entry switch
//! instruction memory; one routine per *global* configuration (2,500 of
//! them) would overflow it by two orders of magnitude
//! ([`unminimized_instr_count`]).

use raw_sim::{Route, SwPort, SwitchCtrl, SwitchInstr, SwitchProgram, NET0, NET1};

use crate::config::{Client, ConfigSpace, LocalConfig};
use crate::layout::PortTiles;

/// Switch-code identity of a local configuration: everything the switch
/// routine depends on (the grant boolean goes to the processor instead).
pub fn switch_code_key(c: &LocalConfig) -> (Client, Client, Client, u8, u8, u8) {
    (c.out, c.cw, c.ccw, c.out_dist, c.cw_dist, c.ccw_dist)
}

/// Generated crossbar switch code for one tile.
pub struct CrossbarCode {
    pub program: SwitchProgram,
    /// PC of the header-exchange routine.
    pub hdr_pc: usize,
    /// PC of each local configuration's body routine, indexed by the
    /// [`ConfigSpace`] configuration id (idle configurations point at the
    /// PC-0 sync point).
    pub cfg_pc: Vec<usize>,
}

/// Mesh direction of a client at this tile.
fn client_port(p: &PortTiles, c: Client) -> Option<SwPort> {
    match c {
        Client::None => None,
        Client::In => Some(SwPort::from_dir(p.x_in)),
        // Data traveling clockwise arrives from the counterclockwise
        // neighbor's direction, and vice versa.
        Client::CwPrev => Some(SwPort::from_dir(p.x_ccw)),
        Client::CcwPrev => Some(SwPort::from_dir(p.x_cw)),
    }
}

/// The full software-pipelined body routine for `lc` (§6.2's "expansion
/// numbers"): each server's route stream is skewed by its source
/// distance, so one instruction never couples word `k` of a near flow
/// with word `k` of a far flow. Without this skew, independent flows
/// crossing one tile serialize each other around the ring (the paper:
/// the switch code "needs to be carefully software-pipelined or
/// loop-unrolled in order to avoid the deadlock of Raw static
/// networks").
fn body_instrs(p: &PortTiles, lc: &LocalConfig, quantum: usize) -> Vec<SwitchInstr> {
    let servers: Vec<(Route, usize)> = [
        (lc.out, lc.out_dist, SwPort::from_dir(p.x_out)),
        (lc.cw, lc.cw_dist, SwPort::from_dir(p.x_cw)),
        (lc.ccw, lc.ccw_dist, SwPort::from_dir(p.x_ccw)),
    ]
    .into_iter()
    .filter_map(|(client, dist, dst)| {
        client_port(p, client).map(|src| (Route::new(NET0, src, dst), dist as usize))
    })
    .collect();
    let frag_len = quantum + 1; // tag + payload words
    let depth = servers.iter().map(|&(_, d)| d).max().unwrap_or(0);
    let mut instrs = Vec::with_capacity(frag_len + depth);
    for i in 0..frag_len + depth {
        let routes: Vec<Route> = servers
            .iter()
            .filter(|&&(_, d)| i >= d && i < d + frag_len)
            .map(|&(r, _)| r)
            .collect();
        // A far-source-only configuration has route-less prologue slots;
        // they become switch nops, preserving the pipeline alignment.
        instrs.push(SwitchInstr::new(routes, SwitchCtrl::Next));
    }
    instrs
}

/// Generate the crossbar switch program for one tile.
pub fn gen_crossbar_switch(p: &PortTiles, cs: &ConfigSpace, quantum: usize) -> CrossbarCode {
    let mut instrs = vec![SwitchInstr::wait_pc()]; // [0] sync/idle
    let hdr_pc = instrs.len();
    let in_port = SwPort::from_dir(p.x_in);
    let cw_out = SwPort::from_dir(p.x_cw);
    let cw_in = SwPort::from_dir(p.x_ccw); // from the cw-upstream tile
                                           // h1: local header from the ingress.
    instrs.push(SwitchInstr::new(
        vec![Route::new(NET0, in_port, SwPort::Proc)],
        SwitchCtrl::Next,
    ));
    // h2 x3: ring all-to-all (send own/forwarded header clockwise while
    // taking the upstream tile's header).
    for _ in 0..3 {
        instrs.push(SwitchInstr::new(
            vec![
                Route::new(NET0, SwPort::Proc, cw_out),
                Route::new(NET0, cw_in, SwPort::Proc),
            ],
            SwitchCtrl::Next,
        ));
    }
    // h3: grant/deny word back to the ingress.
    instrs.push(SwitchInstr::new(
        vec![Route::new(NET0, SwPort::Proc, in_port)],
        SwitchCtrl::Next,
    ));
    instrs.push(SwitchInstr::wait_pc());

    // Body routines, deduplicated by switch-code identity.
    let mut by_key: std::collections::BTreeMap<_, usize> = std::collections::BTreeMap::new();
    let mut cfg_pc = Vec::with_capacity(cs.configs.len());
    for lc in &cs.configs {
        if lc.is_idle() {
            cfg_pc.push(0); // the PC-0 WaitPc is the idle routine
            continue;
        }
        let key = switch_code_key(lc);
        let pc = *by_key.entry(key).or_insert_with(|| {
            let pc = instrs.len();
            instrs.extend(body_instrs(p, lc, quantum));
            instrs.push(SwitchInstr::wait_pc());
            pc
        });
        cfg_pc.push(pc);
    }

    CrossbarCode {
        program: SwitchProgram::new(instrs),
        hdr_pc,
        cfg_pc,
    }
}

/// Hypothetical switch-program size with one body routine per *global*
/// configuration — the naive scheme §6.1 shows cannot fit.
pub fn unminimized_instr_count(quantum: usize) -> usize {
    // 1 sync + header routine (5 + WaitPc) + 2,500 x (quantum+1 routes + WaitPc)
    1 + 6 + crate::config::GLOBAL_SPACE * (quantum + 2)
}

/// Ingress switch code (network 0 carries the line card, the bid
/// protocol, and the crossbar-bound stream; the processor steers between
/// routines). The layout encodes the §4.3 data path:
///
/// * `ingest_pc[k]` — take `2^k` line-card words to the processor
///   (header parsing, tail-fragment buffering, bad-packet draining);
/// * `bid_pc` — one instruction carrying both the bid word out and the
///   grant word back;
/// * `stream_wire_first_pc` — fragment-tag + 5 rewritten header words
///   from the processor, then `quantum - 5` payload words cut **straight
///   from the line card into the crossbar** (the processor never touches
///   the payload — this is what lets a port approach one word per
///   cycle);
/// * `stream_wire_cont_pc` — tag from the processor, `quantum` payload
///   words cut through (continuation fragments);
/// * `stream_proc_pc` — everything from the processor (buffered tails,
///   padding).
pub struct IngressCode {
    pub program: SwitchProgram,
    /// PCs of the 1/2/4/8-word ingest routines (index = log2 of count).
    pub ingest_pc: [usize; 4],
    pub bid_pc: usize,
    /// Fire-and-forget bid (grant collected separately, letting ingest
    /// routines run during the crossbar's quantum).
    pub bid_send_pc: usize,
    pub grant_recv_pc: usize,
    /// First fragment, wire-sourced; `_last` variants append the
    /// header-prefetch coda (five line-card words to the processor) so
    /// the next packet's header parse overlaps this stream's tail.
    pub stream_wf_last_pc: usize,
    pub stream_wf_more_pc: usize,
    pub stream_wc_more_pc: usize,
    pub stream_wc_last_pc: usize,
    /// Processor-sourced fragment (always a packet's last), with coda.
    pub stream_proc_pc: usize,
    /// Processor-sourced fragment without the prefetch coda (used by the
    /// VOQ ingress, whose intake is decoupled from streaming).
    pub stream_proc_nc_pc: usize,
}

/// Words of next-packet header prefetched at the end of a final-fragment
/// stream routine. The line always carries words (idle frames between
/// packets), so the coda never wedges.
pub const PREFETCH_WORDS: usize = raw_net::IPV4_HEADER_WORDS;

pub const INGEST_CHUNKS: [usize; 4] = [1, 2, 4, 8];

pub fn gen_ingress_switch(p: &PortTiles, quantum: usize) -> IngressCode {
    assert!(
        quantum > raw_net::IPV4_HEADER_WORDS,
        "quantum must exceed the IP header"
    );
    let to_xbar = SwPort::from_dir(p.ig_to_xbar);
    let from_wire = SwPort::from_dir(p.in_edge);
    let mut instrs = vec![SwitchInstr::wait_pc()];

    let mut ingest_pc = [0usize; 4];
    for (i, n) in INGEST_CHUNKS.iter().enumerate() {
        ingest_pc[i] = instrs.len();
        for _ in 0..*n {
            instrs.push(SwitchInstr::new(
                vec![Route::new(NET0, from_wire, SwPort::Proc)],
                SwitchCtrl::Next,
            ));
        }
        instrs.push(SwitchInstr::wait_pc());
    }

    let bid_pc = instrs.len();
    instrs.push(SwitchInstr::new(
        vec![
            Route::new(NET0, SwPort::Proc, to_xbar),
            Route::new(NET0, to_xbar, SwPort::Proc),
        ],
        SwitchCtrl::Next,
    ));
    instrs.push(SwitchInstr::wait_pc());

    // Split bid: send now, collect the grant later, so the switch is
    // free for ingest routines while the crossbar's quantum runs.
    let bid_send_pc = instrs.len();
    instrs.push(SwitchInstr::new(
        vec![Route::new(NET0, SwPort::Proc, to_xbar)],
        SwitchCtrl::Next,
    ));
    instrs.push(SwitchInstr::wait_pc());
    let grant_recv_pc = instrs.len();
    instrs.push(SwitchInstr::new(
        vec![Route::new(NET0, to_xbar, SwPort::Proc)],
        SwitchCtrl::Next,
    ));
    instrs.push(SwitchInstr::wait_pc());

    let proc_route = || {
        SwitchInstr::new(
            vec![Route::new(NET0, SwPort::Proc, to_xbar)],
            SwitchCtrl::Next,
        )
    };
    let wire_route =
        || SwitchInstr::new(vec![Route::new(NET0, from_wire, to_xbar)], SwitchCtrl::Next);
    let prefetch = || {
        SwitchInstr::new(
            vec![Route::new(NET0, from_wire, SwPort::Proc)],
            SwitchCtrl::Next,
        )
    };

    let mut stream_routine = |proc_words: usize, wire_words: usize, coda: bool| -> usize {
        let pc = instrs.len();
        for _ in 0..proc_words {
            instrs.push(proc_route());
        }
        for _ in 0..wire_words {
            instrs.push(wire_route());
        }
        if coda {
            for _ in 0..PREFETCH_WORDS {
                instrs.push(prefetch());
            }
        }
        instrs.push(SwitchInstr::wait_pc());
        pc
    };

    let hw = raw_net::IPV4_HEADER_WORDS;
    let stream_wf_last_pc = stream_routine(1 + hw, quantum - hw, true);
    let stream_wf_more_pc = stream_routine(1 + hw, quantum - hw, false);
    let stream_wc_more_pc = stream_routine(1, quantum, false);
    let stream_wc_last_pc = stream_routine(1, quantum, true);
    let stream_proc_pc = stream_routine(1 + quantum, 0, true);
    let stream_proc_nc_pc = stream_routine(1 + quantum, 0, false);

    IngressCode {
        program: SwitchProgram::new(instrs),
        ingest_pc,
        bid_pc,
        bid_send_pc,
        grant_recv_pc,
        stream_wf_last_pc,
        stream_wf_more_pc,
        stream_wc_more_pc,
        stream_wc_last_pc,
        stream_proc_pc,
        stream_proc_nc_pc,
    }
}

/// Egress switch code (network 0). Two modes:
///
/// * **cut-through** (`cut_pc`): the fragment tag is duplicated to the
///   processor *and* the output line; the body words stream straight to
///   the line card without touching the processor — the configuration
///   that lets a port sustain ~1 word/cycle;
/// * **store** (`store_pc`): everything is delivered to the processor,
///   which buffers and reassembles (§4.2) and later streams the finished
///   packet out over network 1.
pub struct EgressCode {
    pub program: SwitchProgram,
    pub cut_pc: usize,
    pub store_pc: usize,
}

pub fn gen_egress_switch(p: &PortTiles, quantum: usize) -> EgressCode {
    let from_xbar = SwPort::from_dir(p.eg_from_xbar);
    let to_edge = SwPort::from_dir(p.out_edge);
    let mut instrs = vec![SwitchInstr::wait_pc()];
    let cut_pc = instrs.len();
    // Tag: multicast to processor + line.
    instrs.push(SwitchInstr::new(
        vec![
            Route::new(NET0, from_xbar, SwPort::Proc),
            Route::new(NET0, from_xbar, to_edge),
        ],
        SwitchCtrl::Next,
    ));
    for _ in 0..quantum {
        instrs.push(SwitchInstr::new(
            vec![Route::new(NET0, from_xbar, to_edge)],
            SwitchCtrl::Next,
        ));
    }
    instrs.push(SwitchInstr::wait_pc());
    let store_pc = instrs.len();
    for _ in 0..quantum + 1 {
        instrs.push(SwitchInstr::new(
            vec![Route::new(NET0, from_xbar, SwPort::Proc)],
            SwitchCtrl::Next,
        ));
    }
    instrs.push(SwitchInstr::wait_pc());
    EgressCode {
        program: SwitchProgram::new(instrs),
        cut_pc,
        store_pc,
    }
}

/// Egress network-1 switch code: a free-running processor-to-line loop
/// used by store-and-forward output streaming.
pub fn gen_egress_net1(p: &PortTiles) -> SwitchProgram {
    let to_edge = SwPort::from_dir(p.out_edge);
    SwitchProgram::new(vec![SwitchInstr::new(
        vec![Route::new(NET1, SwPort::Proc, to_edge)],
        SwitchCtrl::Jump(0),
    )])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchedPolicy;
    use crate::layout::RouterLayout;

    #[test]
    fn minimized_program_fits_switch_imem() {
        let cs = ConfigSpace::enumerate(SchedPolicy::ShortestFirst);
        let l = RouterLayout::canonical();
        for quantum in [16usize, 64, 256] {
            for p in &l.ports {
                let code = gen_crossbar_switch(p, &cs, quantum);
                assert!(
                    code.program.fits_switch_imem(),
                    "quantum {quantum}: {} instructions exceed switch IMEM",
                    code.program.len()
                );
            }
        }
    }

    #[test]
    fn unminimized_program_cannot_fit() {
        // §6.1: 2,500 configurations leave ~3.3 instructions each — far
        // less than a body routine needs. The naive layout overflows for
        // every practical quantum.
        for quantum in [16usize, 64, 256] {
            assert!(
                unminimized_instr_count(quantum) > raw_sim::SWITCH_IMEM_INSTRS,
                "quantum {quantum}"
            );
        }
        // And by a huge factor at the evaluation quantum.
        assert!(unminimized_instr_count(64) > 20 * raw_sim::SWITCH_IMEM_INSTRS);
    }

    #[test]
    fn idle_config_reuses_sync_point() {
        let cs = ConfigSpace::enumerate(SchedPolicy::ShortestFirst);
        let l = RouterLayout::canonical();
        let code = gen_crossbar_switch(&l.ports[0], &cs, 16);
        let idle_id = cs
            .configs
            .iter()
            .position(|c| c.is_idle())
            .expect("an idle config exists");
        assert_eq!(code.cfg_pc[idle_id], 0);
    }

    #[test]
    fn duplicate_switch_code_is_shared() {
        let cs = ConfigSpace::enumerate(SchedPolicy::ShortestFirst);
        let l = RouterLayout::canonical();
        let code = gen_crossbar_switch(&l.ports[0], &cs, 16);
        // Configs that differ only in the blocked flag share a routine.
        use std::collections::BTreeMap;
        let mut pc_of: BTreeMap<_, usize> = BTreeMap::new();
        for (i, lc) in cs.configs.iter().enumerate() {
            let key = switch_code_key(lc);
            if let Some(&pc) = pc_of.get(&key) {
                assert_eq!(code.cfg_pc[i], pc, "config {i} must share its routine");
            } else {
                pc_of.insert(key, code.cfg_pc[i]);
            }
        }
    }

    #[test]
    fn body_routes_respect_tile_orientation_and_skew() {
        let l = RouterLayout::canonical();
        let lc = LocalConfig {
            out: Client::CwPrev,
            cw: Client::In,
            ccw: Client::None,
            out_dist: 1,
            cw_dist: 0,
            ccw_dist: 0,
            blocked: false,
        };
        let q = 8usize;
        // Port 0's crossbar tile (5): out=N, cw=E, in=W, cwprev arrives S.
        let instrs = body_instrs(&l.ports[0], &lc, q);
        // Skewed by the out server's distance 1: one prologue + one
        // epilogue instruction around q+1 steady-state ones.
        assert_eq!(instrs.len(), q + 2);
        // Prologue: only the distance-0 server (In -> cw).
        assert_eq!(
            instrs[0].routes,
            vec![Route::new(NET0, SwPort::W, SwPort::E)]
        );
        // Steady state: both servers.
        assert_eq!(instrs[1].routes.len(), 2);
        assert!(instrs[1]
            .routes
            .contains(&Route::new(NET0, SwPort::S, SwPort::N)));
        // Epilogue: only the distance-1 server.
        assert_eq!(
            instrs[q + 1].routes,
            vec![Route::new(NET0, SwPort::S, SwPort::N)]
        );
        // Port 2's crossbar tile (10) mirrors the orientation.
        let instrs = body_instrs(&l.ports[2], &lc, q);
        assert!(instrs[1]
            .routes
            .contains(&Route::new(NET0, SwPort::N, SwPort::S)));
        assert!(instrs[1]
            .routes
            .contains(&Route::new(NET0, SwPort::E, SwPort::W)));
    }

    #[test]
    fn ingress_and_egress_code_shapes() {
        let l = RouterLayout::canonical();
        let q = 16usize;
        let ic = gen_ingress_switch(&l.ports[0], q);
        // The bid instruction carries both directions.
        assert_eq!(ic.program.instrs[ic.bid_pc].routes.len(), 2);
        // Wire-first-last stream: 6 proc words, q-5 wire words, 5-word
        // header-prefetch coda, WaitPc.
        let s = ic.stream_wf_last_pc;
        assert_eq!(ic.program.instrs[s].routes[0].src, SwPort::Proc);
        assert_eq!(
            ic.program.instrs[s + 6].routes[0].src,
            SwPort::from_dir(l.ports[0].in_edge)
        );
        let coda0 = s + 6 + (q - 5);
        assert_eq!(ic.program.instrs[coda0].routes[0].dst, SwPort::Proc);
        assert_eq!(
            ic.program.instrs[coda0 + PREFETCH_WORDS].ctrl,
            SwitchCtrl::WaitPc
        );
        // Wire-first-more has no coda.
        let m = ic.stream_wf_more_pc;
        assert_eq!(ic.program.instrs[m + 6 + (q - 5)].ctrl, SwitchCtrl::WaitPc);
        // Continuation stream: tag then q wire words.
        let c = ic.stream_wc_more_pc;
        assert_eq!(ic.program.instrs[c].routes[0].src, SwPort::Proc);
        assert_eq!(ic.program.instrs[c + 1 + q].ctrl, SwitchCtrl::WaitPc);
        // Ingest chunks are 1/2/4/8 wire-to-proc routes.
        for (i, n) in INGEST_CHUNKS.iter().enumerate() {
            let pc = ic.ingest_pc[i];
            for k in 0..*n {
                assert_eq!(ic.program.instrs[pc + k].routes[0].dst, SwPort::Proc);
            }
            assert_eq!(ic.program.instrs[pc + n].ctrl, SwitchCtrl::WaitPc);
        }
        let ec = gen_egress_switch(&l.ports[0], q);
        // Cut routine starts with the tag multicast.
        assert_eq!(ec.program.instrs[ec.cut_pc].routes.len(), 2);
        assert_eq!(ec.program.instrs[ec.store_pc].routes.len(), 1);
    }
}
