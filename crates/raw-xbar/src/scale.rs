//! Scalability of the Rotating Crossbar (§8.5).
//!
//! The 4-port router's ring fabric generalizes to `N` crossbar tiles;
//! this module models the generalized schedule at slot granularity (one
//! slot = one routing quantum) to study how the token ring scales. The
//! result motivates the paper's own §8.5 position: a ring's bisection is
//! constant while uniform traffic crosses it proportionally to `N`, so
//! past small port counts one should "build a larger router out of
//! multiple of these small 4-port routers" rather than grow the ring.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One slot of the generalized sequential walk on an `n`-tile ring.
/// `bids[i]` is input `i`'s destination (or `None`); returns the grant
/// vector. Shortest-direction-first, clockwise on ties, token priority.
pub fn ring_walk(bids: &[Option<usize>], token: usize) -> Vec<bool> {
    let n = bids.len();
    let mut cw = vec![false; n];
    let mut ccw = vec![false; n];
    let mut out = vec![false; n];
    let mut granted = vec![false; n];
    for k in 0..n {
        let i = (token + k) % n;
        let Some(dst) = bids[i] else { continue };
        if out[dst] {
            continue;
        }
        let d_cw = (dst + n - i) % n;
        let d_ccw = (n - d_cw) % n;
        let dirs: [bool; 2] = if d_ccw < d_cw {
            [false, true] // ccw first
        } else {
            [true, false]
        };
        'dir: for &is_cw in &dirs {
            let d = if is_cw { d_cw } else { d_ccw };
            let links: &mut Vec<bool> = if is_cw { &mut cw } else { &mut ccw };
            let idx = |s: usize| {
                if is_cw {
                    (i + s) % n
                } else {
                    (i + n - s) % n
                }
            };
            for s in 0..d {
                if links[idx(s)] {
                    continue 'dir;
                }
            }
            for s in 0..d {
                links[idx(s)] = true;
            }
            out[dst] = true;
            granted[i] = true;
            break;
        }
    }
    granted
}

/// Saturation throughput (grants per port per slot) of an `n`-port ring
/// crossbar under uniform head-of-line destinations.
pub fn ring_saturation_throughput(n: usize, slots: u64, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    // Head-of-line bids persist until granted (FIFO inputs, as in §4.4).
    let mut hol: Vec<Option<usize>> = (0..n).map(|_| Some(rng.gen_range(0..n))).collect();
    let mut grants = 0u64;
    for slot in 0..slots {
        let g = ring_walk(&hol, (slot % n as u64) as usize);
        for i in 0..n {
            if g[i] {
                grants += 1;
                hol[i] = Some(rng.gen_range(0..n));
            }
        }
    }
    grants as f64 / (slots as f64 * n as f64)
}

/// The multi-chip alternative (§8.5): a two-dimensional mesh of 4-port
/// routers. With `k^2` chips each contributing its external ports at the
/// mesh perimeter, per-port throughput stays flat because fabric capacity
/// grows with the chip count. Modeled analytically: the mesh bisection is
/// `2k` chip-to-chip links versus uniform cross-traffic of `P/2` ports'
/// worth, with `P = 4k` perimeter ports.
pub fn mesh_scaling_throughput(k: usize) -> f64 {
    let ports = 4.0 * k as f64;
    let bisection = 2.0 * k as f64;
    // Uniform traffic: half the port load crosses the bisection.
    (bisection / (ports / 2.0)).min(1.0)
}

/// One port count of the §8.5 scaling comparison.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScalingPoint {
    pub ports: usize,
    /// Grants per port per slot of the single `n`-port token ring.
    pub ring_throughput: f64,
    /// The analytic mesh-of-4-port-routers model at the same port count.
    pub mesh_throughput: f64,
}

/// The ring-vs-composition scaling curve, reusable by any experiment
/// that wants the §8.5 baseline on its own table (the fabric study
/// plots measured Clos throughput against these modeled points).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScalingCurve {
    pub slots: u64,
    pub seed: u64,
    pub points: Vec<ScalingPoint>,
}

impl ScalingCurve {
    /// Measure the ring walk at each port count (and evaluate the mesh
    /// model alongside). Deterministic in `(port_counts, slots, seed)`.
    pub fn measure(port_counts: &[usize], slots: u64, seed: u64) -> ScalingCurve {
        ScalingCurve {
            slots,
            seed,
            points: port_counts
                .iter()
                .map(|&n| ScalingPoint {
                    ports: n,
                    ring_throughput: ring_saturation_throughput(n, slots, seed),
                    mesh_throughput: mesh_scaling_throughput(n / 4),
                })
                .collect(),
        }
    }

    /// The ring's per-port saturation throughput at `ports`, if that
    /// port count was measured.
    pub fn ring_at(&self, ports: usize) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.ports == ports)
            .map(|p| p.ring_throughput)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_curve_is_deterministic_and_matches_point_fns() {
        let a = ScalingCurve::measure(&[4, 8, 16], 5_000, 5);
        let b = ScalingCurve::measure(&[4, 8, 16], 5_000, 5);
        assert_eq!(a, b);
        assert_eq!(a.points.len(), 3);
        for p in &a.points {
            assert_eq!(
                p.ring_throughput,
                ring_saturation_throughput(p.ports, 5_000, 5)
            );
            assert_eq!(p.mesh_throughput, mesh_scaling_throughput(p.ports / 4));
        }
        assert_eq!(a.ring_at(8), Some(a.points[1].ring_throughput));
        assert_eq!(a.ring_at(12), None);
    }

    #[test]
    fn four_port_walk_matches_config_module() {
        use crate::config::{schedule, Bid, SchedPolicy};
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..500 {
            let bids4: [Option<usize>; 4] = std::array::from_fn(|_| {
                if rng.gen_bool(0.8) {
                    Some(rng.gen_range(0..4))
                } else {
                    None
                }
            });
            let token = rng.gen_range(0..4u8);
            let generic = ring_walk(&bids4, token as usize);
            let specific = schedule(
                std::array::from_fn(|i| match bids4[i] {
                    Some(d) => Bid::unicast(d as u8),
                    None => Bid::EMPTY,
                }),
                token,
                SchedPolicy::ShortestFirst,
            );
            assert_eq!(
                generic,
                &specific.granted[..],
                "generic ring walk diverged for {bids4:?} token {token}"
            );
        }
    }

    #[test]
    fn four_ports_sustain_high_throughput() {
        let t = ring_saturation_throughput(4, 50_000, 1);
        assert!(t > 0.62, "4-port ring saturation {t:.3}");
    }

    #[test]
    fn ring_throughput_decays_with_port_count() {
        let t4 = ring_saturation_throughput(4, 30_000, 2);
        let t8 = ring_saturation_throughput(8, 30_000, 2);
        let t16 = ring_saturation_throughput(16, 30_000, 2);
        assert!(t4 > t8 && t8 > t16, "{t4:.3} {t8:.3} {t16:.3}");
        // Ring bisection is constant: throughput per port falls roughly
        // like 1/N for large N.
        assert!(t16 < 0.5 * t4, "ring must degrade markedly by 16 ports");
    }

    #[test]
    fn mesh_of_small_routers_scales_flat() {
        // The §8.5 recommendation: mesh capacity keeps pace with ports.
        for k in 1..8 {
            assert!((mesh_scaling_throughput(k) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn walk_grants_are_feasible() {
        // No two grants may share an output.
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let n = rng.gen_range(3..12);
            let bids: Vec<Option<usize>> = (0..n)
                .map(|_| {
                    if rng.gen_bool(0.9) {
                        Some(rng.gen_range(0..n))
                    } else {
                        None
                    }
                })
                .collect();
            let g = ring_walk(&bids, rng.gen_range(0..n));
            let mut outs = std::collections::BTreeSet::new();
            for i in 0..n {
                if g[i] {
                    assert!(outs.insert(bids[i].unwrap()), "output granted twice");
                }
            }
        }
    }

    #[test]
    fn token_holder_always_wins_with_a_bid() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..200 {
            let n = rng.gen_range(3..10);
            let bids: Vec<Option<usize>> = (0..n).map(|_| Some(rng.gen_range(0..n))).collect();
            let token = rng.gen_range(0..n);
            let g = ring_walk(&bids, token);
            assert!(g[token], "the master tile's bid must be granted (§5.1)");
        }
    }
}
