//! The Rotating Crossbar configuration space and its minimization
//! (Chapter 6 of the paper).
//!
//! A *global* configuration is one point of
//! `SPACE = |Hdr0| x … x |Hdr3| x |Token| = 5^4 x 4 = 2,500`: what each of
//! the four ingresses wants (one of four output ports, or empty) and
//! which crossbar tile holds the token. The compile-time scheduler's
//! "sequential walk starting from the master tile downstream across all
//! crossbar tiles" turns each global configuration into per-tile *local*
//! configurations: an assignment of each tile's three servers (`out`,
//! `cwnext`, `ccwnext`) to one of its clients (`∅`, `in`, `cwprev`,
//! `ccwprev`), plus the expansion number (the hop distance of each
//! server's data source, needed to size the switch code's pipeline) and
//! the ingress-blocked flag. Only a small self-sufficient subset of local
//! configurations is ever produced — that subset, not the 2,500 global
//! points, is what must fit in a tile's 8K-word instruction memories
//! (§6.2: a ~78x reduction, to 32 entries in the paper's counting).

use std::collections::BTreeMap;

use crate::layout::NPORTS;

/// A port number, 0..=3.
pub type Port = u8;

/// An ingress's bid for a quantum: destination ports requested (empty =
/// nothing to send). Unicast bids request one port; the §8.6 multicast
/// extension requests several.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
pub struct Bid(pub u8);

impl Bid {
    pub const EMPTY: Bid = Bid(0);

    pub fn unicast(dst: Port) -> Bid {
        assert!((dst as usize) < NPORTS);
        Bid(1 << dst)
    }

    pub fn multicast(dsts: &[Port]) -> Bid {
        let mut b = 0u8;
        for &d in dsts {
            assert!((d as usize) < NPORTS);
            b |= 1 << d;
        }
        Bid(b)
    }

    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    pub fn contains(self, p: Port) -> bool {
        self.0 & (1 << p) != 0
    }

    pub fn ports(self) -> impl Iterator<Item = Port> {
        (0..NPORTS as u8).filter(move |p| self.0 & (1 << p) != 0)
    }

    pub fn fanout(self) -> u32 {
        self.0.count_ones()
    }

    /// The single destination of a unicast bid.
    pub fn single(self) -> Option<Port> {
        if self.fanout() == 1 {
            self.ports().next()
        } else {
            None
        }
    }
}

/// The client feeding one server of a crossbar tile (Table 6.1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
pub enum Client {
    /// No data this quantum.
    #[default]
    None,
    /// The tile's own Ingress Processor.
    In,
    /// The clockwise-upstream crossbar tile.
    CwPrev,
    /// The counterclockwise-upstream crossbar tile.
    CcwPrev,
}

/// One crossbar tile's configuration for a quantum: which client drives
/// each of its three servers, with each server's *expansion number* —
/// the ring distance from the data's source tile (0 for `In`), which the
/// paper's scheduler uses to software-pipeline the generated switch code.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
pub struct LocalConfig {
    pub out: Client,
    pub cw: Client,
    pub ccw: Client,
    pub out_dist: u8,
    pub cw_dist: u8,
    pub ccw_dist: u8,
    /// True when this tile's ingress had a bid that was not granted
    /// (the "special boolean value" of §6.2).
    pub blocked: bool,
}

impl LocalConfig {
    /// No servers driven.
    pub fn is_idle(&self) -> bool {
        self.out == Client::None && self.cw == Client::None && self.ccw == Client::None
    }

    /// Largest source distance among active servers (the tile's pipeline
    /// depth requirement).
    pub fn expansion(&self) -> u8 {
        self.out_dist.max(self.cw_dist).max(self.ccw_dist)
    }

    /// True if this tile's own ingress streams this quantum.
    pub fn in_active(&self) -> bool {
        self.out == Client::In || self.cw == Client::In || self.ccw == Client::In
    }
}

/// Direction a granted flow travels around the ring.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RingDir {
    Cw,
    Ccw,
}

/// How the sequential walk picks a ring direction.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SchedPolicy {
    /// Try the shorter way first; clockwise on ties (matches the
    /// Figure 5-1 example, where all distances tie and the clockwise
    /// connection is taken first).
    #[default]
    ShortestFirst,
    /// Always try clockwise first.
    CwFirst,
}

/// The outcome of scheduling one quantum.
#[derive(Clone, Debug)]
pub struct GlobalSchedule {
    pub locals: [LocalConfig; NPORTS],
    /// Whether each ingress streams its fragment this quantum.
    pub granted: [bool; NPORTS],
    /// Ring direction each granted *unicast* flow took (multicast flows
    /// may use both).
    pub dirs: [Option<RingDir>; NPORTS],
}

/// Reserved ring/output resources during the walk.
#[derive(Default)]
struct Resources {
    /// `cw[i]`: the clockwise link from tile i to tile (i+1)%4, as an
    /// Option holding the flow's source port.
    cw: [Option<Port>; NPORTS],
    /// `ccw[i]`: the counterclockwise link from tile i to tile (i+3)%4.
    ccw: [Option<Port>; NPORTS],
    /// `out[i]`: the link from crossbar tile i to egress i.
    out: [Option<Port>; NPORTS],
}

fn cw_dist(from: usize, to: usize) -> usize {
    (to + NPORTS - from) % NPORTS
}

/// The compile-time scheduler's sequential walk (§6.4): starting at the
/// master (token) tile and proceeding downstream, fill in reservations
/// for inter-crossbar and crossbar-to-output connections.
pub fn schedule(bids: [Bid; NPORTS], token: Port, policy: SchedPolicy) -> GlobalSchedule {
    let mut res = Resources::default();
    let mut granted = [false; NPORTS];
    let mut dirs: [Option<RingDir>; NPORTS] = [None; NPORTS];

    for k in 0..NPORTS {
        let i = (token as usize + k) % NPORTS;
        let bid = bids[i];
        if bid.is_empty() {
            continue;
        }
        if let Some(dst) = bid.single() {
            // Unicast: one output plus a one-direction ring path.
            let dst = dst as usize;
            if res.out[dst].is_some() {
                continue; // output contention: a higher-priority flow won
            }
            let d_cw = cw_dist(i, dst);
            let d_ccw = (NPORTS - d_cw) % NPORTS;
            let try_order = match policy {
                SchedPolicy::CwFirst => [RingDir::Cw, RingDir::Ccw],
                SchedPolicy::ShortestFirst => {
                    if d_ccw < d_cw {
                        [RingDir::Ccw, RingDir::Cw]
                    } else {
                        [RingDir::Cw, RingDir::Ccw]
                    }
                }
            };
            for dir in try_order {
                if try_reserve_unicast(&mut res, i, dst, dir) {
                    granted[i] = true;
                    dirs[i] = Some(dir);
                    break;
                }
            }
        } else {
            // Multicast (§8.6): all requested outputs plus ring spans in
            // each needed direction must be free; all-or-nothing.
            if try_reserve_multicast(&mut res, i, bid) {
                granted[i] = true;
            }
        }
    }

    let locals = derive_locals(&res, &bids, &granted);
    GlobalSchedule {
        locals,
        granted,
        dirs,
    }
}

/// Realize an externally computed crossbar *matching* (`matching[i] =
/// Some(dst)` connects ingress `i` to egress `dst`; distinct inputs map
/// to distinct outputs) as a [`GlobalSchedule`] on the ring.
///
/// This is the bridge between the `raw-sched` arbiters and the paper's
/// jump-table machinery: the walk is run with the token pinned at 0, so
/// a matching maps to the *same* unicast jump-table entry on every
/// crossbar tile (`global_index(0, hdrs)` with `hdrs[i] =
/// matching[i].unwrap_or(4)`), and no scheduler-specific tables are
/// needed. Soundness — that the walk grants *every* matched input, i.e.
/// that any injective matching is simultaneously routable on the ring —
/// holds only under [`SchedPolicy::ShortestFirst`] (under `CwFirst` the
/// greedy long clockwise paths exhaust the ring: e.g. `[3,2,0,1]` loses
/// the `2→0` flow), so the policy is pinned here and the router rejects
/// scheduler mode with any other policy. The guarantee is checked
/// exhaustively by `matchings_are_always_routable` below and re-proven
/// per-arbiter by the RV801 analysis.
pub fn schedule_matching(matching: [Option<Port>; NPORTS]) -> GlobalSchedule {
    let bids: [Bid; NPORTS] = std::array::from_fn(|i| matching[i].map_or(Bid::EMPTY, Bid::unicast));
    let sched = schedule(bids, 0, SchedPolicy::ShortestFirst);
    for i in 0..NPORTS {
        debug_assert_eq!(
            sched.granted[i],
            matching[i].is_some(),
            "injective matching {matching:?} not fully routable",
        );
    }
    sched
}

fn try_reserve_unicast(res: &mut Resources, src: usize, dst: usize, dir: RingDir) -> bool {
    let d = match dir {
        RingDir::Cw => cw_dist(src, dst),
        RingDir::Ccw => cw_dist(dst, src),
    };
    // Check.
    for s in 0..d {
        let free = match dir {
            RingDir::Cw => res.cw[(src + s) % NPORTS].is_none(),
            RingDir::Ccw => res.ccw[(src + NPORTS - s) % NPORTS].is_none(),
        };
        if !free {
            return false;
        }
    }
    // Reserve.
    for s in 0..d {
        match dir {
            RingDir::Cw => res.cw[(src + s) % NPORTS] = Some(src as Port),
            RingDir::Ccw => res.ccw[(src + NPORTS - s) % NPORTS] = Some(src as Port),
        }
    }
    res.out[dst] = Some(src as Port);
    true
}

fn try_reserve_multicast(res: &mut Resources, src: usize, bid: Bid) -> bool {
    // Split destinations into a clockwise span and a counterclockwise
    // span (ties go clockwise); the flow is duplicated at tap points by
    // the switch crossbar.
    let mut cw_far = 0usize; // furthest cw distance needed
    let mut ccw_far = 0usize;
    for dst in bid.ports() {
        let dst = dst as usize;
        if res.out[dst].is_some() {
            return false;
        }
        let d_cw = cw_dist(src, dst);
        let d_ccw = (NPORTS - d_cw) % NPORTS;
        if d_cw == 0 {
            continue; // own egress, no ring span
        }
        if d_cw <= d_ccw {
            cw_far = cw_far.max(d_cw);
        } else {
            ccw_far = ccw_far.max(d_ccw);
        }
    }
    // Check spans.
    for s in 0..cw_far {
        if res.cw[(src + s) % NPORTS].is_some() {
            return false;
        }
    }
    for s in 0..ccw_far {
        if res.ccw[(src + NPORTS - s) % NPORTS].is_some() {
            return false;
        }
    }
    // Reserve.
    for s in 0..cw_far {
        res.cw[(src + s) % NPORTS] = Some(src as Port);
    }
    for s in 0..ccw_far {
        res.ccw[(src + NPORTS - s) % NPORTS] = Some(src as Port);
    }
    for dst in bid.ports() {
        res.out[dst as usize] = Some(src as Port);
    }
    true
}

/// Re-express the global reservation as per-tile client/server
/// assignments — the §6.2 change of focus that collapses the space.
fn derive_locals(
    res: &Resources,
    bids: &[Bid; NPORTS],
    granted: &[bool; NPORTS],
) -> [LocalConfig; NPORTS] {
    std::array::from_fn(|i| {
        let mut lc = LocalConfig {
            blocked: !granted[i] && !bids[i].is_empty(),
            ..LocalConfig::default()
        };
        // cwnext server: the clockwise link leaving tile i.
        if let Some(srcp) = res.cw[i] {
            let src = srcp as usize;
            let d = cw_dist(src, i);
            lc.cw = if src == i { Client::In } else { Client::CwPrev };
            lc.cw_dist = d as u8;
        }
        // ccwnext server: the counterclockwise link leaving tile i.
        if let Some(srcp) = res.ccw[i] {
            let src = srcp as usize;
            let d = cw_dist(i, src); // ccw hops from src to i
            lc.ccw = if src == i {
                Client::In
            } else {
                Client::CcwPrev
            };
            lc.ccw_dist = d as u8;
        }
        // out server: the link to egress i.
        if let Some(srcp) = res.out[i] {
            let src = srcp as usize;
            if src == i {
                lc.out = Client::In;
                lc.out_dist = 0;
            } else {
                // Which way did the flow arrive? It holds the incoming
                // link of whichever direction it traveled.
                let via_cw = res.cw[(i + NPORTS - 1) % NPORTS] == Some(srcp);
                if via_cw {
                    lc.out = Client::CwPrev;
                    lc.out_dist = cw_dist(src, i) as u8;
                } else {
                    debug_assert_eq!(res.ccw[(i + 1) % NPORTS], Some(srcp));
                    lc.out = Client::CcwPrev;
                    lc.out_dist = cw_dist(i, src) as u8;
                }
            }
        }
        lc
    })
}

/// The enumerated configuration space: every reachable `LocalConfig`, a
/// dense id assignment, and the 2,500-entry jump table each crossbar
/// tile's processor indexes at run time.
pub struct ConfigSpace {
    /// Distinct local configurations, id = index.
    pub configs: Vec<LocalConfig>,
    /// `jump[tile][global_index]` = local-config id for that tile.
    pub jump: [Vec<u16>; NPORTS],
    /// `grant[tile][global_index]` = whether that tile's ingress streams.
    pub grant: [Vec<bool>; NPORTS],
    pub policy: SchedPolicy,
    /// True if the index covers the multicast alphabet (§8.6).
    pub multicast: bool,
}

/// Header encoding used in the unicast global index: 0..=3 a destination
/// port, 4 = empty. (`|Hdr| = 5` — the paper's alphabet.)
pub const HDR_VALUES: usize = NPORTS + 1;

/// The paper's global space size: `5^4 x 4 = 2,500` (§6.1).
pub const GLOBAL_SPACE: usize = HDR_VALUES * HDR_VALUES * HDR_VALUES * HDR_VALUES * NPORTS;

/// Header alphabet with multicast bids: every destination *mask*
/// 0..=15 (0 = empty). The §8.6 extension's space: `16^4 x 4`.
pub const HDR_VALUES_MCAST: usize = 1 << NPORTS;
pub const GLOBAL_SPACE_MCAST: usize =
    HDR_VALUES_MCAST * HDR_VALUES_MCAST * HDR_VALUES_MCAST * HDR_VALUES_MCAST * NPORTS;

/// Flatten `(token, h0..h3)` into a unicast jump-table index.
pub fn global_index(token: Port, hdrs: [u8; NPORTS]) -> usize {
    let mut idx = token as usize;
    for h in hdrs {
        debug_assert!((h as usize) < HDR_VALUES);
        idx = idx * HDR_VALUES + h as usize;
    }
    idx
}

/// Flatten `(token, mask0..mask3)` into a multicast jump-table index.
pub fn global_index_mcast(token: Port, masks: [u8; NPORTS]) -> usize {
    let mut idx = token as usize;
    for m in masks {
        debug_assert!((m as usize) < HDR_VALUES_MCAST);
        idx = idx * HDR_VALUES_MCAST + m as usize;
    }
    idx
}

impl ConfigSpace {
    /// Enumerate the whole unicast global space under `policy` (the
    /// paper's 2,500-point space).
    pub fn enumerate(policy: SchedPolicy) -> ConfigSpace {
        Self::enumerate_inner(policy, false)
    }

    /// Enumerate the multicast-extended space (§8.6): destination masks
    /// instead of single ports, `16^4 x 4` global points.
    pub fn enumerate_multicast(policy: SchedPolicy) -> ConfigSpace {
        Self::enumerate_inner(policy, true)
    }

    fn enumerate_inner(policy: SchedPolicy, multicast: bool) -> ConfigSpace {
        let (hdr_values, space) = if multicast {
            (HDR_VALUES_MCAST, GLOBAL_SPACE_MCAST)
        } else {
            (HDR_VALUES, GLOBAL_SPACE)
        };
        let mut ids: BTreeMap<LocalConfig, u16> = BTreeMap::new();
        let mut configs: Vec<LocalConfig> = Vec::new();
        let mut jump: [Vec<u16>; NPORTS] = std::array::from_fn(|_| vec![0u16; space]);
        let mut grant: [Vec<bool>; NPORTS] = std::array::from_fn(|_| vec![false; space]);

        for token in 0..NPORTS as u8 {
            let mut hdrs = [0u8; NPORTS];
            loop {
                let bids: [Bid; NPORTS] = std::array::from_fn(|i| {
                    if multicast {
                        Bid(hdrs[i])
                    } else if hdrs[i] as usize == NPORTS {
                        Bid::EMPTY
                    } else {
                        Bid::unicast(hdrs[i])
                    }
                });
                let sched = schedule(bids, token, policy);
                let gi = if multicast {
                    global_index_mcast(token, hdrs)
                } else {
                    global_index(token, hdrs)
                };
                for t in 0..NPORTS {
                    let lc = sched.locals[t];
                    let id = *ids.entry(lc).or_insert_with(|| {
                        configs.push(lc);
                        (configs.len() - 1) as u16
                    });
                    jump[t][gi] = id;
                    grant[t][gi] = sched.granted[t];
                }
                // Odometer over the header space.
                let mut c = 0;
                loop {
                    hdrs[c] += 1;
                    if (hdrs[c] as usize) < hdr_values {
                        break;
                    }
                    hdrs[c] = 0;
                    c += 1;
                    if c == NPORTS {
                        break;
                    }
                }
                if c == NPORTS {
                    break;
                }
            }
        }
        ConfigSpace {
            configs,
            jump,
            grant,
            policy,
            multicast,
        }
    }

    /// Number of distinct local configurations — the paper's minimized
    /// space (32 entries in its counting).
    pub fn minimized_len(&self) -> usize {
        self.configs.len()
    }

    /// The §6.2 reduction factor over the raw global space.
    pub fn reduction_factor(&self) -> f64 {
        let space = if self.multicast {
            GLOBAL_SPACE_MCAST
        } else {
            GLOBAL_SPACE
        };
        space as f64 / self.minimized_len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uni(d: Port) -> Bid {
        Bid::unicast(d)
    }

    #[test]
    fn space_size_matches_section_6_1() {
        assert_eq!(GLOBAL_SPACE, 2500);
    }

    /// Soundness of the `raw-sched` bridge: *every* partial injective
    /// matching (209 of them at 4 ports) is simultaneously routable by
    /// the token-0 shortest-first walk. This is what lets the
    /// scheduler-mode crossbar reuse the unicast jump table: a
    /// conflict-free grant set never loses a flow to ring contention.
    /// (`CwFirst` does *not* have this property — see the counterexample
    /// asserted below — which is why `schedule_matching` pins the
    /// policy.)
    #[test]
    fn matchings_are_always_routable() {
        let mut count = 0usize;
        // Odometer over [None, Some(0)..Some(3)]^4, filtered injective.
        for x in 0..HDR_VALUES.pow(NPORTS as u32) {
            let mut v = x;
            let m: [Option<Port>; NPORTS] = std::array::from_fn(|_| {
                let h = v % HDR_VALUES;
                v /= HDR_VALUES;
                (h < NPORTS).then_some(h as Port)
            });
            let mut used = 0u8;
            let injective = m.iter().flatten().all(|&d| {
                let fresh = used & (1 << d) == 0;
                used |= 1 << d;
                fresh
            });
            if !injective {
                continue;
            }
            count += 1;
            let s = schedule_matching(m);
            for i in 0..NPORTS {
                assert_eq!(s.granted[i], m[i].is_some(), "{m:?}");
            }
        }
        assert_eq!(count, 209); // sum_k C(4,k)^2 * k!

        // The CwFirst counterexample that forces the policy pin: greedy
        // clockwise routing of 0→3 and 1→2 exhausts the links flow 2→0
        // needs in either direction.
        let bids = [
            Bid::unicast(3),
            Bid::unicast(2),
            Bid::unicast(0),
            Bid::unicast(1),
        ];
        let s = schedule(bids, 0, SchedPolicy::CwFirst);
        assert!(!s.granted.iter().all(|&g| g));
    }

    /// The Figure 5-1 worked example: bids [2,3,0,1] with the token at
    /// port 0 — all four flows granted, ports 0 and 2 clockwise, ports 1
    /// and 3 counterclockwise.
    #[test]
    fn figure_5_1_configuration() {
        let s = schedule(
            [uni(2), uni(3), uni(0), uni(1)],
            0,
            SchedPolicy::ShortestFirst,
        );
        assert_eq!(s.granted, [true; 4]);
        assert_eq!(s.dirs[0], Some(RingDir::Cw));
        assert_eq!(s.dirs[1], Some(RingDir::Ccw));
        assert_eq!(s.dirs[2], Some(RingDir::Cw));
        assert_eq!(s.dirs[3], Some(RingDir::Ccw));
        // Every tile drives its out server, none is blocked.
        for lc in s.locals {
            assert_ne!(lc.out, Client::None);
            assert!(!lc.blocked);
        }
    }

    #[test]
    fn output_contention_grants_token_order() {
        // Everyone wants port 2; the token holder wins, others blocked.
        for token in 0..4u8 {
            let s = schedule([uni(2); 4], token, SchedPolicy::default());
            let winners: Vec<usize> = (0..4).filter(|&i| s.granted[i]).collect();
            assert_eq!(winners, vec![token as usize], "token {token}");
            for i in 0..4 {
                assert_eq!(s.locals[i].blocked, i != token as usize);
            }
        }
    }

    #[test]
    fn self_destined_flow_uses_no_ring_links() {
        let s = schedule(
            [uni(0), Bid::EMPTY, Bid::EMPTY, Bid::EMPTY],
            0,
            SchedPolicy::default(),
        );
        assert!(s.granted[0]);
        let lc = s.locals[0];
        assert_eq!(lc.out, Client::In);
        assert_eq!(lc.cw, Client::None);
        assert_eq!(lc.ccw, Client::None);
        // Others idle.
        for lc in &s.locals[1..] {
            assert!(lc.is_idle());
        }
    }

    #[test]
    fn pass_through_tiles_forward() {
        // Port 0 to port 2 clockwise passes through tile 1.
        let s = schedule(
            [uni(2), Bid::EMPTY, Bid::EMPTY, Bid::EMPTY],
            0,
            SchedPolicy::CwFirst,
        );
        assert!(s.granted[0]);
        assert_eq!(s.locals[0].cw, Client::In);
        assert_eq!(s.locals[1].cw, Client::CwPrev, "tile 1 forwards clockwise");
        assert_eq!(s.locals[1].cw_dist, 1);
        assert_eq!(s.locals[2].out, Client::CwPrev);
        assert_eq!(s.locals[2].out_dist, 2);
        assert!(s.locals[3].is_idle());
    }

    #[test]
    fn shortest_first_prefers_one_hop_ccw() {
        // Port 1 -> port 0: ccw distance 1, cw distance 3.
        let s = schedule(
            [Bid::EMPTY, uni(0), Bid::EMPTY, Bid::EMPTY],
            1,
            SchedPolicy::ShortestFirst,
        );
        assert_eq!(s.dirs[1], Some(RingDir::Ccw));
        assert_eq!(s.locals[1].ccw, Client::In);
        assert_eq!(s.locals[0].out, Client::CcwPrev);
        assert_eq!(s.locals[0].out_dist, 1);
    }

    #[test]
    fn downstream_falls_back_to_other_direction() {
        // Token at 0; port 0 takes cw links toward 2; port 1 also wants a
        // cw path (to 3) but link 1->2 is used, so it must go ccw.
        let s = schedule(
            [uni(2), uni(3), Bid::EMPTY, Bid::EMPTY],
            0,
            SchedPolicy::CwFirst,
        );
        assert!(s.granted[0] && s.granted[1]);
        assert_eq!(s.dirs[0], Some(RingDir::Cw));
        assert_eq!(s.dirs[1], Some(RingDir::Ccw));
    }

    #[test]
    fn token_priority_rotates_grants() {
        // Conflicting bids: 0 and 2 both to port 1.
        let bids = [uni(1), Bid::EMPTY, uni(1), Bid::EMPTY];
        let s0 = schedule(bids, 0, SchedPolicy::default());
        assert!(s0.granted[0] && !s0.granted[2]);
        let s2 = schedule(bids, 2, SchedPolicy::default());
        assert!(!s2.granted[0] && s2.granted[2]);
    }

    #[test]
    fn every_nonempty_bid_grants_when_alone() {
        for src in 0..4u8 {
            for dst in 0..4u8 {
                for token in 0..4u8 {
                    let mut bids = [Bid::EMPTY; 4];
                    bids[src as usize] = uni(dst);
                    let s = schedule(bids, token, SchedPolicy::default());
                    assert!(
                        s.granted[src as usize],
                        "lone flow {src}->{dst} (token {token}) must be granted"
                    );
                }
            }
        }
    }

    #[test]
    fn multicast_taps_multiple_outputs() {
        let bid = Bid::multicast(&[1, 2, 3]);
        let s = schedule(
            [bid, Bid::EMPTY, Bid::EMPTY, Bid::EMPTY],
            0,
            SchedPolicy::default(),
        );
        assert!(s.granted[0]);
        // Tiles 1, 2, 3 all drive their out servers from this one flow.
        for t in 1..4 {
            assert_ne!(s.locals[t].out, Client::None, "tile {t} must tap the flow");
        }
        // At least one intermediate tile both forwards and taps (the
        // switch-multicast configuration).
        let dup = (0..4).any(|t| {
            let lc = s.locals[t];
            (lc.out == Client::CwPrev && lc.cw == Client::CwPrev)
                || (lc.out == Client::CcwPrev && lc.ccw == Client::CcwPrev)
                || (lc.out == Client::In
                    && lc.in_active()
                    && (lc.cw == Client::In || lc.ccw == Client::In))
        });
        assert!(
            dup,
            "multicast must duplicate at a tap point: {:?}",
            s.locals
        );
    }

    #[test]
    fn multicast_is_all_or_nothing() {
        // Port 1 already owns output 2 (token order); port 0's multicast
        // {2,3} must be denied entirely.
        let s = schedule(
            [Bid::multicast(&[2, 3]), uni(2), Bid::EMPTY, Bid::EMPTY],
            1,
            SchedPolicy::default(),
        );
        assert!(s.granted[1]);
        assert!(!s.granted[0]);
        assert!(s.locals[0].blocked);
        // Output 3 untouched.
        assert_eq!(s.locals[3].out, Client::None);
    }

    #[test]
    fn enumeration_minimizes_space() {
        let cs = ConfigSpace::enumerate(SchedPolicy::ShortestFirst);
        let n = cs.minimized_len();
        // The paper's counting arrives at 32 entries; our derivation
        // (clients x expansion numbers x blocked flag) must land in the
        // same ballpark and keep the ~78x reduction of §6.2.
        assert!(
            (20..=40).contains(&n),
            "minimized space has {n} entries; expected the paper's ~32"
        );
        assert!(
            cs.reduction_factor() >= 60.0,
            "reduction factor {} below the paper's ~78x",
            cs.reduction_factor()
        );
        // Every jump entry points at a valid config.
        for t in 0..NPORTS {
            assert_eq!(cs.jump[t].len(), GLOBAL_SPACE);
            assert!(cs.jump[t].iter().all(|&id| (id as usize) < n));
        }
    }

    #[test]
    fn multicast_enumeration_minimizes_too() {
        let cs = ConfigSpace::enumerate_multicast(SchedPolicy::ShortestFirst);
        assert_eq!(cs.jump[0].len(), GLOBAL_SPACE_MCAST);
        // Fanout configurations (one client feeding several servers)
        // appear, yet the set stays two orders below the global space.
        assert!(
            cs.minimized_len() > ConfigSpace::enumerate(SchedPolicy::ShortestFirst).minimized_len()
        );
        assert!(cs.minimized_len() < 200, "got {}", cs.minimized_len());
        assert!(cs.reduction_factor() > 1000.0);
        // The unicast subspace embeds identically: spot-check Figure 5-1.
        let gi = global_index_mcast(0, [1 << 2, 1 << 3, 1 << 0, 1 << 1]);
        for t in 0..NPORTS {
            assert!(cs.grant[t][gi], "tile {t} granted");
        }
    }

    #[test]
    fn enumeration_is_deterministic() {
        let a = ConfigSpace::enumerate(SchedPolicy::ShortestFirst);
        let b = ConfigSpace::enumerate(SchedPolicy::ShortestFirst);
        assert_eq!(a.configs, b.configs);
        assert_eq!(a.jump[2], b.jump[2]);
    }

    #[test]
    fn grants_match_schedule() {
        let cs = ConfigSpace::enumerate(SchedPolicy::ShortestFirst);
        // Spot-check the Figure 5-1 point.
        let gi = global_index(0, [2, 3, 0, 1]);
        for t in 0..NPORTS {
            assert!(cs.grant[t][gi], "tile {t} granted in the 5-1 config");
            let lc = cs.configs[cs.jump[t][gi] as usize];
            assert_ne!(lc.out, Client::None);
        }
    }

    /// §5.4: with all inputs backlogged, the token guarantees each input
    /// sends at least once every four quanta, whatever the bids.
    #[test]
    fn token_prevents_starvation() {
        // Adversarial: all inputs permanently bid for output 0.
        let bids = [uni(0); 4];
        let mut sent = [0u32; 4];
        for q in 0..16u32 {
            let token = (q % 4) as u8;
            let s = schedule(bids, token, SchedPolicy::default());
            #[allow(clippy::needless_range_loop)]
            for i in 0..4 {
                if s.granted[i] {
                    sent[i] += 1;
                }
            }
        }
        for (i, &n) in sent.iter().enumerate() {
            assert_eq!(n, 4, "input {i} must win exactly once per rotation");
        }
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    fn uni(d: Port) -> Bid {
        Bid::unicast(d)
    }

    /// A distance-3 flow occupies three consecutive ring links and shows
    /// the full expansion-number gradient along its path.
    #[test]
    fn three_hop_flow_distances() {
        // Port 1 -> port 0 forced clockwise (1->2->3->0).
        let s = schedule(
            [Bid::EMPTY, uni(0), Bid::EMPTY, Bid::EMPTY],
            1,
            SchedPolicy::CwFirst,
        );
        assert!(s.granted[1]);
        assert_eq!(s.locals[1].cw, Client::In);
        assert_eq!(s.locals[1].cw_dist, 0);
        assert_eq!(s.locals[2].cw, Client::CwPrev);
        assert_eq!(s.locals[2].cw_dist, 1);
        assert_eq!(s.locals[3].cw, Client::CwPrev);
        assert_eq!(s.locals[3].cw_dist, 2);
        assert_eq!(s.locals[0].out, Client::CwPrev);
        assert_eq!(s.locals[0].out_dist, 3);
        assert_eq!(s.locals[0].expansion(), 3);
    }

    /// The two policies agree on grants whenever no direction choice is
    /// contested (single bidder).
    #[test]
    fn policies_agree_for_lone_flows() {
        for src in 0..4u8 {
            for dst in 0..4u8 {
                let mut bids = [Bid::EMPTY; 4];
                bids[src as usize] = uni(dst);
                let a = schedule(bids, 0, SchedPolicy::CwFirst);
                let b = schedule(bids, 0, SchedPolicy::ShortestFirst);
                assert_eq!(a.granted, b.granted, "{src}->{dst}");
            }
        }
    }

    /// Under full backlog the walk always produces a maximal matching:
    /// no denied input could have been granted given the reservations.
    #[test]
    fn walk_is_maximal_for_unicast() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..500 {
            let bids: [Bid; 4] = std::array::from_fn(|_| uni(rng.gen_range(0..4)));
            let token = rng.gen_range(0..4u8);
            let s = schedule(bids, token, SchedPolicy::ShortestFirst);
            // Every denied input's destination must be claimed by a
            // granted input (output contention is the only denial cause
            // with at most 2 ring links needed and shortest-first
            // fallback... verify the weaker, always-true property).
            for i in 0..4 {
                if !s.granted[i] {
                    let dst = bids[i].single().unwrap() as usize;
                    let someone_else = (0..4)
                        .any(|j| j != i && s.granted[j] && bids[j].single() == bids[i].single());
                    assert!(
                        someone_else || s.locals[dst].out != Client::None,
                        "denied {i}->{dst} with its output unused: {s:?}"
                    );
                }
            }
        }
    }
}
