//! Line cards: the off-chip devices feeding and draining the router.
//!
//! The paper assumes "a large amount of buffering on the input and output
//! external to the Raw Processor" (§4.4); these devices are that
//! buffering. The input card releases packets according to a schedule
//! (saturation = back-to-back) and streams their words into the chip edge
//! at up to one word per cycle; the output card parses the outgoing word
//! stream back into packets and timestamps them.

use std::any::Any;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use raw_net::{FragTag, Packet};
use raw_sim::EdgeDevice;

/// The word a synchronous line transmits between packets (think SONET
/// idle frames): the link always carries words, and the ingress discards
/// idles while hunting for the next header. Idles never appear inside a
/// packet.
pub const WIRE_IDLE: u32 = 0xFFFF_FFFE;

/// Input line card. Packets become available at their release cycle and
/// are streamed in order, one word per cycle, as the chip accepts them;
/// between packets — and after the last offered packet — the line carries
/// [`WIRE_IDLE`] words, like a synchronous link's idle frames. The line
/// never goes silent: the ingress bid/grant protocol relies on ingest
/// routines completing promptly, so an injectable word must exist every
/// cycle. (This is also why the default conservative
/// `EdgeDevice::next_inject_event` — "this cycle" — is exact here, and
/// why the event-skip fast-forward correctly never engages while a line
/// card is attached: the modeled hardware really does have a state
/// transition every cycle.)
pub struct LineCardIn {
    queue: VecDeque<(u64, Vec<u32>)>,
    cur: Option<(Vec<u32>, usize)>,
    /// Slow-line-card fault windows `(start, end)`: while one covers the
    /// current cycle the card emits idle frames instead of starting the
    /// next packet. Windows apply at packet boundaries only — an
    /// in-flight packet always finishes, because idles never appear
    /// inside a packet.
    pause: Vec<(u64, u64)>,
    pub words_offered: u64,
    pub idle_words: u64,
    pub packets_offered: u64,
}

impl LineCardIn {
    pub fn new() -> LineCardIn {
        LineCardIn {
            queue: VecDeque::new(),
            cur: None,
            pause: Vec::new(),
            words_offered: 0,
            idle_words: 0,
            packets_offered: 0,
        }
    }

    /// Queue a packet for injection at `release` (cycles).
    pub fn offer(&mut self, release: u64, pkt: &Packet) {
        self.offer_words(release, pkt.to_words());
    }

    /// Queue a raw word stream for injection at `release` — the fault
    /// injection entry point for corrupted packets. The caller owns the
    /// framing: a stream truncated short of its header's claimed length
    /// should end with a [`WIRE_IDLE`] word so the ingress can observe
    /// the cut even under back-to-back traffic.
    pub fn offer_words(&mut self, release: u64, words: Vec<u32>) {
        self.queue.push_back((release, words));
        self.packets_offered += 1;
    }

    /// Emit idle frames (no new packet starts) during `[start, start+len)`.
    pub fn pause_window(&mut self, start: u64, len: u64) {
        if len > 0 {
            self.pause.push((start, start + len));
        }
    }

    fn paused(&self, cycle: u64) -> bool {
        self.pause.iter().any(|&(s, e)| (s..e).contains(&cycle))
    }

    /// Packets not yet fully injected.
    pub fn backlog(&self) -> usize {
        self.queue.len() + usize::from(self.cur.is_some())
    }
}

impl Default for LineCardIn {
    fn default() -> Self {
        Self::new()
    }
}

impl EdgeDevice for LineCardIn {
    fn pull_in(&mut self, cycle: u64) -> Option<u32> {
        if self.cur.is_none() {
            if self.paused(cycle) {
                self.idle_words += 1;
                return Some(WIRE_IDLE);
            }
            match self.queue.front() {
                Some(&(release, _)) if release <= cycle => {
                    let (_, words) = self.queue.pop_front().unwrap();
                    self.cur = Some((words, 0));
                }
                _ => {
                    self.idle_words += 1;
                    return Some(WIRE_IDLE);
                }
            }
        }
        let (words, idx) = self.cur.as_mut().unwrap();
        let w = words[*idx];
        *idx += 1;
        if *idx == words.len() {
            self.cur = None;
        }
        self.words_offered += 1;
        Some(w)
    }

    // `next_inject_event` keeps its conservative default (`Some(now)`):
    // the line offers a word — real or idle — every single cycle.

    fn next_accept_event(&self, _now: u64) -> Option<u64> {
        None // can_push is constantly true (default impl)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// How the output card frames the stream it receives.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OutFraming {
    /// Cut-through egress: `[tag][quantum words]` per fragment, padding
    /// included; each fragment is a whole packet.
    TaggedQuantum { quantum: usize },
    /// Store-and-forward egress: raw packet words, framed by the IPv4
    /// total-length field.
    RawPackets,
}

/// Everything the output card collected.
#[derive(Clone, Debug, Default)]
pub struct OutCollector {
    /// `(completion_cycle, packet)` in arrival order.
    pub packets: Vec<(u64, Packet)>,
    pub words: u64,
    pub parse_errors: u64,
    /// Fragmented packets seen on a cut-through port (a configuration
    /// error: cut-through requires single-fragment packets).
    pub unexpected_fragments: u64,
}

enum OutState {
    WaitTag,
    Body {
        real: usize,
        pad: usize,
        words: Vec<u32>,
    },
    Raw {
        words: Vec<u32>,
        need: Option<usize>,
    },
}

/// Output line card.
pub struct LineCardOut {
    framing: OutFraming,
    state: OutState,
    /// Egress-backpressure fault windows `(start, end)`: while one covers
    /// the current cycle the card refuses words, pushing back into the
    /// chip's edge FIFO (and from there into the switch fabric).
    stall: Vec<(u64, u64)>,
    pub collected: Arc<Mutex<OutCollector>>,
}

impl LineCardOut {
    pub fn new(framing: OutFraming) -> (LineCardOut, Arc<Mutex<OutCollector>>) {
        let collected = Arc::new(Mutex::new(OutCollector::default()));
        let state = match framing {
            OutFraming::TaggedQuantum { .. } => OutState::WaitTag,
            OutFraming::RawPackets => OutState::Raw {
                words: Vec::new(),
                need: None,
            },
        };
        (
            LineCardOut {
                framing,
                state,
                stall: Vec::new(),
                collected: Arc::clone(&collected),
            },
            collected,
        )
    }

    /// Refuse outgoing words during `[start, start+len)` (backpressure).
    pub fn stall_window(&mut self, start: u64, len: u64) {
        if len > 0 {
            self.stall.push((start, start + len));
        }
    }

    fn stalled(&self, cycle: u64) -> bool {
        self.stall.iter().any(|&(s, e)| (s..e).contains(&cycle))
    }

    fn finish_packet(col: &mut OutCollector, words: &[u32], cycle: u64) {
        match Packet::from_words(words) {
            Ok(p) => col.packets.push((cycle, p)),
            Err(_) => col.parse_errors += 1,
        }
    }
}

impl EdgeDevice for LineCardOut {
    fn is_injector(&self) -> bool {
        false // pure sink: never offers words into the chip
    }

    fn can_push(&self, cycle: u64) -> bool {
        !self.stalled(cycle)
    }

    fn push_out(&mut self, word: u32, cycle: u64) {
        debug_assert!(!self.stalled(cycle));
        let mut col = self.collected.lock().unwrap();
        col.words += 1;
        match (&mut self.state, self.framing) {
            (OutState::WaitTag, OutFraming::TaggedQuantum { quantum }) => {
                let tag = FragTag::unpack(word);
                if !(tag.first && tag.last) {
                    col.unexpected_fragments += 1;
                }
                self.state = OutState::Body {
                    real: tag.words as usize,
                    pad: quantum - tag.words as usize,
                    words: Vec::with_capacity(tag.words as usize),
                };
            }
            (OutState::Body { real, pad, words }, _) => {
                if words.len() < *real {
                    words.push(word);
                    if words.len() == *real && *pad == 0 {
                        Self::finish_packet(&mut col, words, cycle);
                        self.state = OutState::WaitTag;
                    }
                } else {
                    *pad -= 1;
                    if *pad == 0 {
                        Self::finish_packet(&mut col, words, cycle);
                        self.state = OutState::WaitTag;
                    }
                }
            }
            (OutState::Raw { words, need }, _) => {
                words.push(word);
                if need.is_none() && words.len() >= raw_net::IPV4_HEADER_WORDS {
                    // Total length lives in the low half of word 0.
                    let total_len = (words[0] & 0xffff) as usize;
                    if total_len < 20 {
                        col.parse_errors += 1;
                        words.clear();
                        return;
                    }
                    *need = Some(raw_net::IPV4_HEADER_WORDS + (total_len - 20).div_ceil(4));
                }
                if let Some(n) = *need {
                    if words.len() == n {
                        Self::finish_packet(&mut col, words, cycle);
                        words.clear();
                        *need = None;
                    }
                }
            }
            (OutState::WaitTag, OutFraming::RawPackets) => unreachable!(),
        }
    }

    fn next_inject_event(&self, _now: u64) -> Option<u64> {
        None // never sources words
    }

    fn next_accept_event(&self, now: u64) -> Option<u64> {
        // Inside a stall window `can_push` flips back on at its end;
        // outside one, report the next window start so the event-skip
        // fast-forward never jumps over a backpressure transition.
        self.stall
            .iter()
            .filter_map(|&(s, e)| {
                if (s..e).contains(&now) {
                    Some(e)
                } else if s >= now {
                    Some(s)
                } else {
                    None
                }
            })
            .min()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_card_in_streams_in_order_after_release() {
        let mut lc = LineCardIn::new();
        let p = Packet::synthetic(1, 2, 64, 64, 0);
        lc.offer(10, &p);
        assert_eq!(lc.pull_in(5), Some(WIRE_IDLE), "idle frames before release");
        let mut got = Vec::new();
        for c in 10..40 {
            if let Some(w) = lc.pull_in(c) {
                if w != WIRE_IDLE {
                    got.push(w);
                }
            }
        }
        assert_eq!(got, p.to_words());
        assert_eq!(lc.backlog(), 0);
        assert!(lc.idle_words >= 1);
    }

    #[test]
    fn line_card_in_always_carries_words() {
        // The bid/grant protocol depends on the line never going silent:
        // an exhausted card still emits idle frames, and its inject event
        // is always "this cycle".
        let mut lc = LineCardIn::new();
        assert_eq!(lc.pull_in(0), Some(WIRE_IDLE), "idles before any offer");
        assert_eq!(lc.next_inject_event(7), Some(7));
        let p = Packet::synthetic(1, 2, 64, 64, 0);
        lc.offer(10, &p);
        for c in 0..p.to_words().len() as u64 {
            assert!(lc.pull_in(10 + c).is_some());
        }
        assert_eq!(lc.backlog(), 0);
        assert_eq!(lc.pull_in(60), Some(WIRE_IDLE), "idles after exhaustion");
        assert_eq!(lc.next_inject_event(60), Some(60));
    }

    #[test]
    fn out_card_parses_tagged_quantum_stream() {
        let quantum = 32usize;
        let (mut lc, col) = LineCardOut::new(OutFraming::TaggedQuantum { quantum });
        let p = Packet::synthetic(0x0a000001, 0x0a000002, 64, 64, 1);
        let words = p.to_words();
        let tag = FragTag {
            dst_mask: 1 << 1,
            src_port: 0,
            words: words.len() as u16,
            seq: 0,
            first: true,
            last: true,
            op: raw_net::ComputeOp::None,
        };
        lc.push_out(tag.pack(), 100);
        for (i, w) in words.iter().enumerate() {
            lc.push_out(*w, 101 + i as u64);
        }
        for i in 0..quantum - words.len() {
            lc.push_out(0, 200 + i as u64);
        }
        let c = col.lock().unwrap();
        assert_eq!(c.packets.len(), 1);
        assert_eq!(c.parse_errors, 0);
        // The delivered packet matches, with TTL untouched here (the
        // ingress does the decrement, not the line card).
        assert_eq!(c.packets[0].1, p);
    }

    #[test]
    fn out_card_parses_raw_packet_stream() {
        let (mut lc, col) = LineCardOut::new(OutFraming::RawPackets);
        let a = Packet::synthetic(1, 2, 64, 9, 1);
        let b = Packet::synthetic(3, 4, 132, 9, 2);
        let mut cyc = 0;
        for p in [&a, &b] {
            for w in p.to_words() {
                lc.push_out(w, cyc);
                cyc += 1;
            }
        }
        let c = col.lock().unwrap();
        assert_eq!(c.packets.len(), 2);
        assert_eq!(c.packets[0].1, a);
        assert_eq!(c.packets[1].1, b);
    }

    #[test]
    fn out_card_counts_corrupt_streams() {
        let quantum = 8usize;
        let (mut lc, col) = LineCardOut::new(OutFraming::TaggedQuantum { quantum });
        let tag = FragTag {
            dst_mask: 1,
            src_port: 0,
            words: 8,
            seq: 0,
            first: true,
            last: true,
            op: raw_net::ComputeOp::None,
        };
        lc.push_out(tag.pack(), 0);
        for i in 0..8 {
            lc.push_out(i, 1 + i as u64); // garbage, not a valid packet
        }
        assert_eq!(col.lock().unwrap().parse_errors, 1);
    }
}
