//! The assembled 4-port Raw router: machine + switch code + tile
//! programs + line cards, with measurement helpers for the paper's
//! experiments.

use std::sync::{Arc, Mutex};

use raw_lookup::{Engine, ForwardingTable};
use raw_net::{ComputeOp, Packet};
use raw_sim::{EdgePort, RawConfig, RawMachine, TraceWindow, NET0, NET1};

use crate::codegen;
use crate::config::{ConfigSpace, SchedPolicy};
use crate::devices::{LineCardIn, LineCardOut, OutCollector, OutFraming};
use crate::layout::{RouterLayout, NPORTS};
/// Per-crossbar-tile decision log: `(quantum, table index, routine pc)`.
pub type DecisionLog = Arc<Mutex<Vec<(usize, usize, usize)>>>;

use crate::programs::{
    CrossbarProgram, EgressMode, EgressProgram, EgressStats, IngressProgram, IngressStats,
    LookupProgram, LookupStats, XbarStats, XBAR_TABLE_BASE,
};

/// Router-level configuration.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Routing-quantum size in payload words (§5.1: "one quantum of
    /// routing time … measured by the number of 32-bit words").
    pub quantum_words: usize,
    /// Egress mode: cut-through (packets must fit one quantum) or
    /// store-and-forward reassembly.
    pub cut_through: bool,
    pub policy: SchedPolicy,
    /// Weighted-token QoS (§8.7): port `i` holds the token for
    /// `weights[i]` consecutive quanta per rotation.
    pub weights: [u32; NPORTS],
    pub engine: Engine,
    /// Ingress header-verification/rewrite cost in cycles.
    pub verify_cycles: u32,
    /// Crossbar jump-table index computation cost in cycles.
    pub idx_cycles: u32,
    /// Computation-in-fabric opcode stamped on fragment tags (§8.3).
    pub compute_op: ComputeOp,
    /// Ingress queueing discipline: the paper's FIFO (with cut-through)
    /// or virtual output queueing (HOL-blocking-free, store-and-forward).
    pub queueing: crate::programs::IngressQueueing,
    /// Run the Crossbar Processors as generated Raw *assembly* on the
    /// `raw-isa` interpreter instead of native state machines (§6.5).
    /// Implies the destination-mask jump table (as with `multicast`) and
    /// requires uniform token weights.
    pub asm_crossbar: bool,
    /// Enable the §8.6 multicast extension: the configuration space and
    /// jump tables cover destination *masks* (16^4 x 4 points), and the
    /// forwarding table may return `raw_lookup::encode_multicast` hops.
    /// Requires a quantum small enough that the larger minimized set
    /// still fits switch instruction memory.
    pub multicast: bool,
    /// Record protocol events into [`RawRouter::events`].
    pub debug_events: bool,
    /// Deterministic lookup-table fault injection (chaos testing): forced
    /// misses fall back to the default route after a penalty.
    pub lookup_fault: Option<LookupFault>,
    /// Crossbar arbitration policy. [`raw_sched::SchedKind::Token`] is
    /// the paper's protocol unchanged. The alternatives (iSLIP,
    /// crosspoint-queued) replace the token walk with a replicated
    /// per-slot arbiter over VOQ occupancy masks: same static network,
    /// same ingest and egress paths, different matchings. Non-token
    /// arbiters require VOQ queueing, unicast traffic, the native
    /// crossbar cores, and the shortest-first policy (the only one under
    /// which every injective matching is ring-routable).
    pub arbiter: raw_sched::SchedKind,
    pub raw: RawConfig,
}

/// Lookup-miss fault-injection parameters (see
/// [`crate::programs::LookupProgram::inject_misses`]). Each port's
/// Lookup Processor draws from its own stream, salted from `seed`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LookupFault {
    pub seed: u64,
    /// Forced-miss probability in parts-per-million.
    pub miss_ppm: u32,
    /// Extra cycles a forced miss costs (the fruitless full walk plus
    /// the default-route fetch).
    pub penalty_cycles: u32,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            quantum_words: 64,
            cut_through: true,
            policy: SchedPolicy::default(),
            weights: [1; NPORTS],
            engine: Engine::Patricia,
            verify_cycles: 8,
            idx_cycles: 4,
            compute_op: ComputeOp::None,
            queueing: crate::programs::IngressQueueing::Fifo,
            asm_crossbar: false,
            multicast: false,
            debug_events: false,
            lookup_fault: None,
            arbiter: raw_sched::SchedKind::Token,
            raw: RawConfig::default(),
        }
    }
}

/// Expand token weights into the cyclic token schedule.
pub fn token_schedule(weights: [u32; NPORTS]) -> Vec<u8> {
    let mut seq = Vec::new();
    for (i, &w) in weights.iter().enumerate() {
        for _ in 0..w.max(1) {
            seq.push(i as u8);
        }
    }
    seq
}

/// The assembled router.
pub struct RawRouter {
    pub machine: RawMachine,
    /// Optional protocol event log (see [`RouterConfig::debug_events`]).
    pub events: crate::programs::EventLog,
    /// Per-crossbar-tile (quantum, table index, routine pc) decisions,
    /// recorded when `debug_events` is set.
    pub xb_decisions: [DecisionLog; NPORTS],
    /// Architectural watches on the interpreted crossbar cores
    /// (`asm_crossbar` mode only).
    pub asm_watches: Vec<raw_isa::WatchHandle>,
    pub layout: RouterLayout,
    pub cfg: RouterConfig,
    pub cs: Arc<ConfigSpace>,
    in_ports: [EdgePort; NPORTS],
    out_ports: [EdgePort; NPORTS],
    out_cols: [Arc<Mutex<OutCollector>>; NPORTS],
    pub ig_stats: [Arc<Mutex<IngressStats>>; NPORTS],
    pub lk_stats: [Arc<Mutex<LookupStats>>; NPORTS],
    pub xb_stats: [Arc<Mutex<XbarStats>>; NPORTS],
    pub eg_stats: [Arc<Mutex<EgressStats>>; NPORTS],
    offered: u64,
}

impl RawRouter {
    pub fn new(cfg: RouterConfig, table: Arc<ForwardingTable>) -> RawRouter {
        match RawRouter::try_new(cfg, table) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`RawRouter::new`] with a telemetry sink attached (panicking
    /// constructor for tests and harnesses).
    pub fn new_with_telemetry(
        cfg: RouterConfig,
        table: Arc<ForwardingTable>,
        telemetry: raw_telemetry::SharedSink,
    ) -> RawRouter {
        match RawRouter::try_new_with_telemetry(cfg, table, Some(telemetry)) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// Build the router, validating the configuration and every generated
    /// switch program ([`raw_sim::SwitchProgram::validate`]) at the
    /// codegen boundary instead of relying on downstream assertions.
    pub fn try_new(cfg: RouterConfig, table: Arc<ForwardingTable>) -> Result<RawRouter, String> {
        RawRouter::try_new_with_telemetry(cfg, table, None)
    }

    /// [`RawRouter::try_new`] with a telemetry sink threaded through the
    /// machine (tile-state and switch-stall attribution) and the
    /// ingress/egress programs (packet lifecycle stamps). `RouterConfig`
    /// stays `Clone + Debug`, so the sink is a separate argument.
    pub fn try_new_with_telemetry(
        cfg: RouterConfig,
        table: Arc<ForwardingTable>,
        telemetry: Option<raw_telemetry::SharedSink>,
    ) -> Result<RawRouter, String> {
        if !(1..=raw_net::MAX_FRAG_WORDS).contains(&cfg.quantum_words) {
            return Err(format!(
                "quantum of {} words must fit the fragment tag's word-count field (1..={})",
                cfg.quantum_words,
                raw_net::MAX_FRAG_WORDS
            ));
        }
        if cfg.quantum_words <= raw_net::IPV4_HEADER_WORDS {
            return Err(format!(
                "quantum of {} words must exceed the {}-word IP header",
                cfg.quantum_words,
                raw_net::IPV4_HEADER_WORDS
            ));
        }
        let layout = RouterLayout::canonical();
        let mut machine = RawMachine::new(cfg.raw.clone());
        if let Some(sink) = &telemetry {
            machine.set_telemetry(Arc::clone(sink));
        }
        // A NullSink receives no-ops only; don't thread it into the
        // per-packet program stamps (the machine keeps the handle so
        // `take_telemetry` still returns it).
        let telemetry = telemetry.filter(|s| !raw_telemetry::is_null(s));
        if cfg.asm_crossbar && !cfg.weights.iter().all(|&w| w == 1) {
            return Err("the assembly crossbar uses a plain modulo-4 token".into());
        }
        if !cfg.arbiter.is_token() {
            if cfg.queueing != crate::programs::IngressQueueing::Voq {
                return Err(format!(
                    "the {} arbiter bids VOQ occupancy masks and requires VOQ queueing",
                    cfg.arbiter.name()
                ));
            }
            if cfg.multicast {
                return Err(format!(
                    "the {} arbiter computes unicast matchings; multicast needs the token protocol",
                    cfg.arbiter.name()
                ));
            }
            if cfg.asm_crossbar {
                return Err(format!(
                    "the {} arbiter runs on the native crossbar cores only",
                    cfg.arbiter.name()
                ));
            }
            if cfg.policy != SchedPolicy::ShortestFirst {
                return Err(format!(
                    "the {} arbiter requires the shortest-first ring policy: only under it is \
                     every injective matching simultaneously routable",
                    cfg.arbiter.name()
                ));
            }
        }
        let cs = Arc::new(if cfg.multicast || cfg.asm_crossbar {
            ConfigSpace::enumerate_multicast(cfg.policy)
        } else {
            ConfigSpace::enumerate(cfg.policy)
        });
        let token_seq = token_schedule(cfg.weights);
        let dim = layout.dim;

        let events: crate::programs::EventLog = Arc::new(Mutex::new(Vec::new()));
        let mut xb_decisions: Vec<DecisionLog> = Vec::new();
        let mut asm_watches: Vec<raw_isa::WatchHandle> = Vec::new();
        let mut in_ports = Vec::with_capacity(NPORTS);
        let mut out_ports = Vec::with_capacity(NPORTS);
        let mut out_cols = Vec::with_capacity(NPORTS);
        let mut ig_stats = Vec::with_capacity(NPORTS);
        let mut lk_stats = Vec::with_capacity(NPORTS);
        let mut xb_stats = Vec::with_capacity(NPORTS);
        let mut eg_stats = Vec::with_capacity(NPORTS);

        for (i, p) in layout.ports.iter().enumerate() {
            let port = i as u8;
            // --- Ingress ---
            let ig_code = codegen::gen_ingress_switch(p, cfg.quantum_words);
            ig_code
                .program
                .validate()
                .map_err(|e| format!("port {i} ingress switch program: {e}"))?;
            machine.set_switch_program(p.ingress, NET0, ig_code.program.clone());
            let (mut ig, igs) = IngressProgram::new(
                port,
                p,
                &ig_code,
                cfg.quantum_words,
                dim.coords(p.lookup),
                cfg.verify_cycles,
                cfg.compute_op,
                cfg.queueing,
                !cfg.arbiter.is_token(),
            );
            if cfg.debug_events {
                ig.events = Some(Arc::clone(&events));
            }
            ig.telemetry = telemetry.clone();
            machine.set_program(p.ingress, Box::new(ig));
            ig_stats.push(igs);
            let in_port = EdgePort::new(p.ingress, p.in_edge, NET0);
            machine.bind_device(in_port, Box::new(LineCardIn::new()));
            in_ports.push(in_port);

            // --- Lookup ---
            let (mut lk, lks) =
                LookupProgram::new(port, Arc::clone(&table), cfg.engine, dim.coords(p.ingress));
            if let Some(f) = cfg.lookup_fault {
                // Salt the seed per port so the four streams differ while
                // the whole campaign stays a function of one seed.
                lk.inject_misses(f.seed.wrapping_add(i as u64), f.miss_ppm, f.penalty_cycles);
            }
            machine.set_program(p.lookup, Box::new(lk));
            lk_stats.push(lks);

            // --- Crossbar ---
            let xb_code = codegen::gen_crossbar_switch(p, &cs, cfg.quantum_words);
            xb_code
                .program
                .validate()
                .map_err(|e| format!("port {i} crossbar switch program: {e}"))?;
            machine.set_switch_program(p.crossbar, NET0, xb_code.program.clone());
            if cfg.asm_crossbar {
                // The §6.5 path: generated Raw assembly with a
                // PC-carrying jump table, interpreted cycle-accurately.
                let image = crate::asm_xbar::table_image_pc(&cs, i, &xb_code);
                machine.write_tile_mem(p.crossbar, 0, &image);
                let core = crate::asm_xbar::gen_crossbar_asm(i, xb_code.hdr_pc);
                let (core, watch) = core.watched();
                asm_watches.push(watch);
                machine.set_program(p.crossbar, Box::new(core));
                // Statistics are not collected from the interpreted core;
                // keep placeholder slots so indices line up.
                let (_unused, xbs) = CrossbarProgram::new(
                    port,
                    &xb_code,
                    token_seq.clone(),
                    cfg.idx_cycles,
                    true,
                    None,
                );
                xb_decisions.push(Arc::new(Mutex::new(Vec::new())));
                xb_stats.push(xbs);
            } else {
                let image = CrossbarProgram::table_image(&cs, i);
                machine.write_tile_mem(p.crossbar, XBAR_TABLE_BASE as usize, &image);
                // Each crossbar tile runs its own replica of the arbiter;
                // identical bid vectors keep the replicas in lockstep
                // (the raw-sched lockstep test), mirroring how the token
                // counter is replicated rather than transmitted.
                let sched = (!cfg.arbiter.is_token()).then(|| cfg.arbiter.build(NPORTS));
                let (mut xb, xbs) = CrossbarProgram::new(
                    port,
                    &xb_code,
                    token_seq.clone(),
                    cfg.idx_cycles,
                    cfg.multicast,
                    sched,
                );
                if cfg.debug_events {
                    xb.events = Some(Arc::clone(&events));
                }
                xb_decisions.push(Arc::clone(&xb.decisions));
                machine.set_program(p.crossbar, Box::new(xb));
                xb_stats.push(xbs);
            }

            // --- Egress ---
            let eg_code = codegen::gen_egress_switch(p, cfg.quantum_words);
            eg_code
                .program
                .validate()
                .map_err(|e| format!("port {i} egress switch program: {e}"))?;
            machine.set_switch_program(p.egress, NET0, eg_code.program.clone());
            let eg_net1 = codegen::gen_egress_net1(p);
            eg_net1
                .validate()
                .map_err(|e| format!("port {i} egress net-1 switch program: {e}"))?;
            machine.set_switch_program(p.egress, NET1, eg_net1);
            let mode = if cfg.cut_through {
                EgressMode::CutThrough
            } else {
                EgressMode::StoreForward
            };
            let (mut eg, egs) = EgressProgram::new(port, &eg_code, cfg.quantum_words, mode);
            eg.telemetry = telemetry.clone();
            machine.set_program(p.egress, Box::new(eg));
            eg_stats.push(egs);
            let (framing, out_port) = if cfg.cut_through {
                (
                    OutFraming::TaggedQuantum {
                        quantum: cfg.quantum_words,
                    },
                    EdgePort::new(p.egress, p.out_edge, NET0),
                )
            } else {
                (
                    OutFraming::RawPackets,
                    EdgePort::new(p.egress, p.out_edge, NET1),
                )
            };
            let (out, col) = LineCardOut::new(framing);
            machine.bind_device(out_port, Box::new(out));
            out_ports.push(out_port);
            out_cols.push(col);
        }

        // With the fabric fully assembled (switch programs, tile
        // programs, line cards), lower it to a compiled execution plan
        // when the configuration selects the compiled engine. The
        // install step revalidates the plan against the machine's own
        // lowering, so a successful return here cannot change observable
        // behavior — only the cost of reaching it.
        raw_compile::compile_if_enabled(&mut machine)
            .map_err(|e| format!("schedule-specialization compile: {e}"))?;

        Ok(RawRouter {
            machine,
            events,
            asm_watches,
            xb_decisions: xb_decisions.try_into().map_err(|_| ()).unwrap(),
            layout,
            cfg,
            cs,
            in_ports: in_ports.try_into().map_err(|_| ()).unwrap(),
            out_ports: out_ports.try_into().map_err(|_| ()).unwrap(),
            out_cols: out_cols.try_into().map_err(|_| ()).unwrap(),
            ig_stats: ig_stats.try_into().map_err(|_| ()).unwrap(),
            lk_stats: lk_stats.try_into().map_err(|_| ()).unwrap(),
            xb_stats: xb_stats.try_into().map_err(|_| ()).unwrap(),
            eg_stats: eg_stats.try_into().map_err(|_| ()).unwrap(),
            offered: 0,
        })
    }

    /// Queue a packet for injection on input `port` at `release` cycles.
    pub fn offer(&mut self, port: usize, release: u64, pkt: &Packet) {
        if self.cfg.cut_through {
            assert!(
                pkt.total_words() <= self.cfg.quantum_words,
                "cut-through egress requires packets (<= {} words) to fit one quantum; got {}",
                self.cfg.quantum_words,
                pkt.total_words()
            );
        }
        let lc = self
            .machine
            .device_mut::<LineCardIn>(self.in_ports[port])
            .expect("line card bound");
        lc.offer(release, pkt);
        self.offered += 1;
    }

    /// Total packets offered so far.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Queue a raw word stream on input `port` at `release` — the fault
    /// injection path for corrupted packets (no cut-through size check:
    /// a malformed stream is exactly what is being tested). Counts as
    /// one offered packet. A stream truncated short of its claimed
    /// length should be padded with [`crate::devices::WIRE_IDLE`] words
    /// back to that length, so the ingress observes the cut while the
    /// wire framing stays aligned under back-to-back traffic.
    pub fn offer_raw(&mut self, port: usize, release: u64, words: Vec<u32>) {
        let lc = self
            .machine
            .device_mut::<LineCardIn>(self.in_ports[port])
            .expect("line card bound");
        lc.offer_words(release, words);
        self.offered += 1;
    }

    /// Slow-line-card fault: input `port` emits only idle frames during
    /// `[start, start+len)`; an in-flight packet finishes first.
    pub fn pause_input(&mut self, port: usize, start: u64, len: u64) {
        self.machine
            .device_mut::<LineCardIn>(self.in_ports[port])
            .expect("line card bound")
            .pause_window(start, len);
    }

    /// Egress-backpressure fault: output `port` refuses words during
    /// `[start, start+len)`, pushing back into the fabric.
    pub fn stall_output(&mut self, port: usize, start: u64, len: u64) {
        self.machine
            .device_mut::<LineCardOut>(self.out_ports[port])
            .expect("line card bound")
            .stall_window(start, len);
    }

    /// Packets queued at input `port`'s line card that the fabric has
    /// not yet consumed (the in-flight packet counts as one). A
    /// multi-router fabric reads this to decide whether the upstream
    /// link may hand over more packets — receiver congestion becomes
    /// link occupancy becomes sender backpressure.
    pub fn input_backlog(&mut self, port: usize) -> usize {
        self.machine
            .device_mut::<LineCardIn>(self.in_ports[port])
            .expect("line card bound")
            .backlog()
    }

    /// Classified ingress drops aggregated across ports, indexed by
    /// [`raw_telemetry::DropReason::index`].
    pub fn drop_reasons(&self) -> [u64; raw_telemetry::DropReason::COUNT] {
        let mut out = [0u64; raw_telemetry::DropReason::COUNT];
        for s in &self.ig_stats {
            let s = s.lock().unwrap();
            for (o, d) in out.iter_mut().zip(s.drops.iter()) {
                *o += d;
            }
        }
        out
    }

    pub fn run(&mut self, cycles: u64) {
        self.machine.run(cycles);
    }

    /// Packets the ingresses dropped (bad header / expired TTL).
    pub fn dropped_count(&self) -> u64 {
        self.ig_stats
            .iter()
            .map(|s| s.lock().unwrap().packets_dropped)
            .sum()
    }

    /// Run until every offered packet has been delivered or dropped, or
    /// `max_cycles` pass. Returns true on full accounting.
    pub fn run_until_drained(&mut self, max_cycles: u64) -> bool {
        let deadline = self.machine.cycle() + max_cycles;
        while self.machine.cycle() < deadline {
            if self.delivered_count() + self.dropped_count() >= self.offered {
                return true;
            }
            self.machine.run(256);
        }
        self.delivered_count() + self.dropped_count() >= self.offered
    }

    /// Packets delivered at output `port`, in arrival order.
    pub fn delivered(&self, port: usize) -> Vec<(u64, Packet)> {
        self.out_cols[port].lock().unwrap().packets.clone()
    }

    pub fn collector(&self, port: usize) -> Arc<Mutex<OutCollector>> {
        Arc::clone(&self.out_cols[port])
    }

    pub fn delivered_count(&self) -> u64 {
        self.out_cols
            .iter()
            .map(|c| c.lock().unwrap().packets.len() as u64)
            .sum()
    }

    /// Total output parse errors across ports (must be zero in a healthy
    /// run).
    pub fn parse_errors(&self) -> u64 {
        self.out_cols
            .iter()
            .map(|c| {
                let c = c.lock().unwrap();
                c.parse_errors + c.unexpected_fragments
            })
            .sum()
    }

    /// Bits of delivered IP packets whose completion fell in
    /// `[from_cycle, to_cycle)`.
    pub fn delivered_bits_between(&self, from_cycle: u64, to_cycle: u64) -> u64 {
        self.out_cols
            .iter()
            .map(|c| {
                c.lock()
                    .unwrap()
                    .packets
                    .iter()
                    .filter(|(cyc, _)| (from_cycle..to_cycle).contains(cyc))
                    .map(|(_, p)| p.total_bytes() as u64 * 8)
                    .sum::<u64>()
            })
            .sum()
    }

    /// Packets delivered in a cycle window.
    pub fn delivered_packets_between(&self, from_cycle: u64, to_cycle: u64) -> u64 {
        self.out_cols
            .iter()
            .map(|c| {
                c.lock()
                    .unwrap()
                    .packets
                    .iter()
                    .filter(|(cyc, _)| (from_cycle..to_cycle).contains(cyc))
                    .count() as u64
            })
            .sum()
    }

    /// Aggregate throughput over a cycle window, in Gbps at the
    /// configured clock.
    pub fn throughput_gbps(&self, from_cycle: u64, to_cycle: u64) -> f64 {
        let bits = self.delivered_bits_between(from_cycle, to_cycle) as f64;
        let secs = (to_cycle - from_cycle) as f64 / (self.cfg.raw.clock_mhz as f64 * 1e6);
        bits / secs / 1e9
    }

    /// Packets per second over a cycle window (the paper's Mpps metric,
    /// scaled).
    pub fn pps(&self, from_cycle: u64, to_cycle: u64) -> f64 {
        let pkts = self.delivered_packets_between(from_cycle, to_cycle) as f64;
        let secs = (to_cycle - from_cycle) as f64 / (self.cfg.raw.clock_mhz as f64 * 1e6);
        pkts / secs
    }

    /// Start a Figure 7-3 style utilization trace.
    pub fn start_trace(&mut self, start_cycle: u64, len: usize) {
        self.machine.start_trace(start_cycle, len);
    }

    pub fn take_trace(&mut self) -> Option<TraceWindow> {
        self.machine.take_trace()
    }

    /// The synchronous token counters of all four crossbar tiles must
    /// agree (§5.1). Returns the counts for assertion in tests.
    pub fn token_counters(&self) -> [u64; NPORTS] {
        std::array::from_fn(|i| self.xb_stats[i].lock().unwrap().quanta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Arc<ForwardingTable> {
        use raw_lookup::RouteEntry;
        let routes: Vec<RouteEntry> = (0..4)
            .map(|p| RouteEntry::new(0x0a00_0000 | (p << 16), 16, p))
            .collect();
        Arc::new(ForwardingTable::build(&routes))
    }

    #[test]
    fn try_new_rejects_bad_configurations() {
        let e = RawRouter::try_new(
            RouterConfig {
                quantum_words: 0,
                ..RouterConfig::default()
            },
            table(),
        )
        .err()
        .expect("zero quantum must be rejected");
        assert!(e.contains("quantum"), "{e}");

        let e = RawRouter::try_new(
            RouterConfig {
                quantum_words: raw_net::IPV4_HEADER_WORDS,
                ..RouterConfig::default()
            },
            table(),
        )
        .err()
        .expect("header-sized quantum must be rejected");
        assert!(e.contains("IP header"), "{e}");

        let e = RawRouter::try_new(
            RouterConfig {
                asm_crossbar: true,
                weights: [2, 1, 1, 1],
                quantum_words: 16,
                ..RouterConfig::default()
            },
            table(),
        )
        .err()
        .expect("weighted token with asm crossbar must be rejected");
        assert!(e.contains("token"), "{e}");

        // A non-token arbiter needs VOQ queueing, unicast traffic, the
        // native crossbar cores, and the shortest-first ring policy.
        let islip = raw_sched::SchedKind::Islip { iters: 4 };
        let e = RawRouter::try_new(
            RouterConfig {
                arbiter: islip,
                ..RouterConfig::default()
            },
            table(),
        )
        .err()
        .expect("scheduler without VOQ must be rejected");
        assert!(e.contains("VOQ"), "{e}");

        let voq_base = RouterConfig {
            arbiter: islip,
            queueing: crate::programs::IngressQueueing::Voq,
            cut_through: false,
            ..RouterConfig::default()
        };
        let e = RawRouter::try_new(
            RouterConfig {
                multicast: true,
                quantum_words: 16,
                ..voq_base.clone()
            },
            table(),
        )
        .err()
        .expect("scheduler with multicast must be rejected");
        assert!(e.contains("multicast"), "{e}");

        let e = RawRouter::try_new(
            RouterConfig {
                asm_crossbar: true,
                quantum_words: 16,
                ..voq_base.clone()
            },
            table(),
        )
        .err()
        .expect("scheduler with asm crossbar must be rejected");
        assert!(e.contains("native"), "{e}");

        let e = RawRouter::try_new(
            RouterConfig {
                policy: SchedPolicy::CwFirst,
                ..voq_base.clone()
            },
            table(),
        )
        .err()
        .expect("scheduler with CwFirst must be rejected");
        assert!(e.contains("shortest-first"), "{e}");

        // And the valid scheduler configuration is accepted.
        assert!(RawRouter::try_new(voq_base, table()).is_ok());
    }

    #[test]
    fn try_new_accepts_the_default_configuration() {
        assert!(RawRouter::try_new(RouterConfig::default(), table()).is_ok());
    }
}
