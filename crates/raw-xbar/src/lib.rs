//! # raw-xbar — the Rotating Crossbar router on the Raw processor
//!
//! This crate is the paper's primary contribution, rebuilt on the
//! [`raw_sim`] substrate:
//!
//! * [`layout`] — the Figure 7-2 mapping of ingress / lookup / crossbar /
//!   egress elements onto the 16 tiles;
//! * [`config`] — the 2,500-point global configuration space (§6.1), the
//!   sequential-walk compile-time scheduler (§6.4), and its minimization
//!   to a small self-sufficient set of per-tile local configurations
//!   (§6.2);
//! * [`codegen`] — the third scheduler pass: generated switch programs
//!   (header-exchange routine + one unrolled body routine per local
//!   configuration) that fit the 8K-entry switch instruction memory —
//!   and provably would not without the minimization;
//! * [`programs`] — the four tile programs, including the distributed
//!   token algorithm of Chapter 5 (fair, deadlock-free by the counting
//!   discipline of the generated schedules);
//! * [`devices`] — input/output line cards with external buffering;
//! * [`router`] — the assembled 4-port router with throughput, latency,
//!   and utilization measurement.

pub mod asm_xbar;
pub mod codegen;
pub mod config;
pub mod devices;
pub mod layout;
pub mod programs;
pub mod router;
pub mod scale;

pub use config::{
    schedule_matching, Bid, Client, ConfigSpace, GlobalSchedule, LocalConfig, RingDir, SchedPolicy,
};
pub use devices::{LineCardIn, LineCardOut, OutCollector, OutFraming};
pub use layout::{PortTiles, RouterLayout, NPORTS};
pub use programs::{
    EgressMode, EgressStats, IngressQueueing, IngressStats, LookupStats, XbarStats,
};
pub use raw_sched::SchedKind;
pub use router::{token_schedule, LookupFault, RawRouter, RouterConfig};
pub use scale::{
    mesh_scaling_throughput, ring_saturation_throughput, ring_walk, ScalingCurve, ScalingPoint,
};
