//! Property tests over the whole router: any small random workload, in
//! either egress mode, drains completely with per-flow order, intact
//! payloads, exactly-once delivery to the right ports, and lock-step
//! token counters — the §5.4/§5.5 guarantees as executable properties.

use std::sync::Arc;

use proptest::prelude::*;
use raw_lookup::{ForwardingTable, RouteEntry};
use raw_net::Packet;
use raw_xbar::{RawRouter, RouterConfig};

fn port_table() -> Arc<ForwardingTable> {
    let routes: Vec<RouteEntry> = (0..4)
        .map(|p| RouteEntry::new(0x0a00_0000 | (p << 16), 16, p))
        .collect();
    Arc::new(ForwardingTable::build(&routes))
}

#[derive(Clone, Debug)]
struct Offer {
    src: usize,
    dst: u8,
    bytes: usize,
    gap: u64,
}

fn arb_offer(max_bytes: usize) -> impl Strategy<Value = Offer> {
    (0usize..4, 0u8..4, 24usize..max_bytes, 0u64..600).prop_map(|(src, dst, bytes, gap)| Offer {
        src,
        dst,
        bytes,
        gap,
    })
}

fn run_case(offers: &[Offer], quantum: usize, cut_through: bool) -> Result<(), TestCaseError> {
    let table = port_table();
    let cfg = RouterConfig {
        quantum_words: quantum,
        cut_through,
        ..RouterConfig::default()
    };
    let mut r = RawRouter::new(cfg, table);
    let mut release = [0u64; 4];
    let mut sent: Vec<(usize, Packet)> = Vec::new();
    for (k, o) in offers.iter().enumerate() {
        let bytes = if cut_through {
            // Cut-through requires single-quantum packets.
            o.bytes.min(quantum * 4)
        } else {
            o.bytes
        };
        let mut p = Packet::synthetic(
            0x0a0a_0000 + o.src as u32,
            0x0a00_0001 | ((o.dst as u32) << 16),
            bytes.max(24),
            64,
            k as u32,
        );
        p.header.id = k as u16;
        p.header.checksum = p.header.compute_checksum();
        release[o.src] += o.gap;
        r.offer(o.src, release[o.src], &p);
        sent.push((o.src, p));
    }
    prop_assert!(
        r.run_until_drained(5_000_000),
        "workload wedged: {} of {} delivered",
        r.delivered_count(),
        r.offered()
    );
    prop_assert_eq!(r.parse_errors(), 0);

    // Exactly-once delivery to the right output, payload intact.
    let mut got: Vec<(usize, Packet)> = Vec::new();
    for port in 0..4 {
        for (_, p) in r.delivered(port) {
            got.push((port, p));
        }
    }
    prop_assert_eq!(got.len(), sent.len());
    for (port, p) in &got {
        prop_assert!(p.header.checksum_ok());
        prop_assert_eq!(p.header.ttl, 63);
        prop_assert_eq!(((p.header.dst >> 16) & 0x3) as usize, *port);
        // Match against exactly one sent packet (by id + payload).
        let matched = sent
            .iter()
            .filter(|(_, s)| s.header.id == p.header.id && s.payload == p.payload)
            .count();
        prop_assert!(matched >= 1, "delivered packet matches nothing sent");
    }

    // Per (input, output) flow order: ids must appear in send order.
    for src in 0..4usize {
        for dstp in 0..4usize {
            let sent_ids: Vec<u16> = sent
                .iter()
                .filter(|(s, p)| *s == src && ((p.header.dst >> 16) & 0x3) as usize == dstp)
                .map(|(_, p)| p.header.id)
                .collect();
            let got_ids: Vec<u16> = r
                .delivered(dstp)
                .iter()
                .filter(|(_, p)| (p.header.src & 0x3) as usize == src)
                .map(|(_, p)| p.header.id)
                .collect();
            prop_assert_eq!(sent_ids, got_ids, "flow {}->{} reordered", src, dstp);
        }
    }

    // §5.1: the synchronous token counters never diverge by more than a
    // quantum in flight.
    let tokens = r.token_counters();
    let spread = tokens.iter().max().unwrap() - tokens.iter().min().unwrap();
    prop_assert!(spread <= 1, "token counters diverged: {:?}", tokens);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn cut_through_router_is_correct_for_any_small_workload(
        offers in proptest::collection::vec(arb_offer(250), 1..10),
        quantum in 16usize..96,
    ) {
        run_case(&offers, quantum, true)?;
    }

    #[test]
    fn store_forward_router_is_correct_for_any_small_workload(
        offers in proptest::collection::vec(arb_offer(1500), 1..8),
        quantum in 16usize..96,
    ) {
        run_case(&offers, quantum, false)?;
    }
}
