//! End-to-end telemetry tests on the assembled router: every delivered
//! packet gets a complete, monotone lifecycle record; the per-tile state
//! counters conserve cycles; attaching a sink never changes results.

use std::sync::Arc;

use raw_lookup::{ForwardingTable, RouteEntry};
use raw_net::Packet;
use raw_telemetry::{shared, with_sink, Recorder, SharedSink, StageSpan};
use raw_xbar::{IngressQueueing, RawRouter, RouterConfig};

/// A table that maps 10.<p>.0.0/16 to port p.
fn port_table() -> Arc<ForwardingTable> {
    let routes: Vec<RouteEntry> = (0..4)
        .map(|p| RouteEntry::new(0x0a00_0000 | (p << 16), 16, p))
        .collect();
    Arc::new(ForwardingTable::build(&routes))
}

fn packet(src_port: u32, dst_port: u32, bytes: usize, seed: u32) -> Packet {
    Packet::synthetic(
        0x0a0a_0000 + src_port,
        0x0a00_0001 | (dst_port << 16),
        bytes,
        64,
        seed,
    )
}

fn instrumented(cfg: RouterConfig) -> (RawRouter, SharedSink) {
    let sink = shared(Recorder::new(16, raw_sim::NUM_STATIC_NETS));
    let r = RawRouter::new_with_telemetry(cfg, port_table(), sink.clone());
    (r, sink)
}

/// Assert a complete, monotone lifecycle for every delivered packet.
fn check_lives(sink: &SharedSink, delivered: u64, label: &str) {
    with_sink::<Recorder, _>(sink, |rec| {
        assert_eq!(
            rec.lives().len() as u64,
            delivered,
            "{label}: every delivered packet must close a lifecycle"
        );
        assert_eq!(rec.unmatched_egress, 0, "{label}: egress stamps matched");
        assert_eq!(rec.open_packets(), 0, "{label}: no packet left open");
        for life in rec.lives() {
            for span in StageSpan::ALL {
                assert!(
                    span.of(life).is_some(),
                    "{label}: packet {}:{} missing the {} span",
                    life.port,
                    life.id,
                    span.name()
                );
            }
        }
    });
}

#[test]
fn cut_through_lifecycles_are_complete() {
    let (mut r, sink) = instrumented(RouterConfig::default());
    for src in 0..4u32 {
        for dst in 0..4u32 {
            r.offer(src as usize, 0, &packet(src, dst, 128, src * 4 + dst));
        }
    }
    assert!(r.run_until_drained(400_000), "packets must drain");
    assert_eq!(r.parse_errors(), 0);
    check_lives(&sink, r.delivered_count(), "cut-through");
    with_sink::<Recorder, _>(&sink, |rec| {
        // Each packet closed on the output port the table routes it to.
        let mut per_dst = [0u64; 4];
        for life in rec.lives() {
            per_dst[life.dst as usize] += 1;
        }
        assert_eq!(per_dst, [4, 4, 4, 4]);
    });
}

#[test]
fn store_forward_voq_lifecycles_are_complete() {
    let cfg = RouterConfig {
        cut_through: false,
        queueing: IngressQueueing::Voq,
        quantum_words: 32,
        ..RouterConfig::default()
    };
    let (mut r, sink) = instrumented(cfg);
    // Multi-fragment packets: 256 bytes = 64 words > the 32-word quantum.
    for src in 0..4u32 {
        r.offer(src as usize, 0, &packet(src, (src + 1) % 4, 256, src));
    }
    assert!(r.run_until_drained(400_000), "packets must drain");
    assert_eq!(r.parse_errors(), 0);
    check_lives(&sink, r.delivered_count(), "store-forward");
}

#[test]
fn router_conservation_holds_per_tile() {
    let (mut r, sink) = instrumented(RouterConfig::default());
    for src in 0..4u32 {
        r.offer(src as usize, 0, &packet(src, (src + 2) % 4, 64, src));
    }
    r.run(30_000);
    let cycles = r.machine.cycle();
    with_sink::<Recorder, _>(&sink, |rec| {
        assert!(
            rec.conservation_violations(cycles).is_empty(),
            "per-tile busy+idle+stalls must equal {cycles} cycles"
        );
    });
}

#[test]
fn telemetry_does_not_change_router_results() {
    let run = |instrument: bool| -> (u64, u64, Vec<(u64, Packet)>) {
        let mut r = if instrument {
            instrumented(RouterConfig::default()).0
        } else {
            RawRouter::new(RouterConfig::default(), port_table())
        };
        for src in 0..4u32 {
            for dst in 0..4u32 {
                r.offer(src as usize, 0, &packet(src, dst, 128, src * 4 + dst));
            }
        }
        r.run(120_000);
        let delivered: Vec<(u64, Packet)> = (0..4).flat_map(|p| r.delivered(p)).collect();
        (r.machine.cycle(), r.delivered_count(), delivered)
    };
    let (c1, n1, d1) = run(true);
    let (c2, n2, d2) = run(false);
    assert_eq!((c1, n1), (c2, n2));
    assert_eq!(d1.len(), d2.len());
    for ((t1, p1), (t2, p2)) in d1.iter().zip(d2.iter()) {
        assert_eq!(t1, t2, "delivery cycles must be bit-identical");
        assert_eq!(p1.payload, p2.payload);
        assert_eq!(p1.header.dst, p2.header.dst);
    }
}
