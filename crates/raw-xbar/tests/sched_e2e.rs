//! End-to-end tests of the scheduler-mode router: iSLIP and crosspoint-
//! queued arbitration running on the same static network, switch code,
//! and ingest/egress paths as the paper's rotating token — only the
//! per-quantum matching differs.

use std::sync::Arc;

use raw_lookup::{ForwardingTable, RouteEntry};
use raw_net::Packet;
use raw_sim::EngineMode;
use raw_xbar::{RawRouter, RouterConfig, SchedKind};

/// A table that maps 10.<p>.0.0/16 to port p.
fn port_table() -> Arc<ForwardingTable> {
    let routes: Vec<RouteEntry> = (0..4)
        .map(|p| RouteEntry::new(0x0a00_0000 | (p << 16), 16, p))
        .collect();
    Arc::new(ForwardingTable::build(&routes))
}

fn addr_for(p: u32) -> u32 {
    0x0a00_0001 | (p << 16)
}

fn packet(src_port: u32, dst_port: u32, bytes: usize, seed: u32) -> Packet {
    Packet::synthetic(0x0a0a_0000 + src_port, addr_for(dst_port), bytes, 64, seed)
}

/// The scheduler head-to-head configuration: VOQ ingresses (required by
/// the mask-bid protocol) with everything else at defaults.
fn sched_cfg(kind: SchedKind) -> RouterConfig {
    RouterConfig {
        quantum_words: 32,
        cut_through: true,
        queueing: raw_xbar::IngressQueueing::Voq,
        arbiter: kind,
        ..RouterConfig::default()
    }
}

#[test]
fn every_scheduler_delivers_every_port_pair() {
    for kind in SchedKind::all() {
        let mut r = RawRouter::new(sched_cfg(kind), port_table());
        let mut expect = [0usize; 4];
        for round in 0..3u32 {
            for src in 0..4u32 {
                for dst in 0..4u32 {
                    r.offer(
                        src as usize,
                        0,
                        &packet(src, dst, 128, round * 16 + src * 4 + dst),
                    );
                    expect[dst as usize] += 1;
                }
            }
        }
        assert!(
            r.run_until_drained(4_000_000),
            "{}: traffic wedged",
            kind.name()
        );
        #[allow(clippy::needless_range_loop)]
        for dst in 0..4usize {
            let out = r.delivered(dst);
            assert_eq!(out.len(), expect[dst], "{}: port {dst}", kind.name());
            for (_, p) in &out {
                assert_eq!(p.header.ttl, 63, "{}", kind.name());
                assert!(p.header.checksum_ok(), "{}", kind.name());
            }
        }
        assert_eq!(r.parse_errors(), 0, "{}", kind.name());
    }
}

#[test]
fn schedulers_deliver_identical_packet_sets() {
    // Same offered workload under all three arbiters: the delivered
    // multiset per output (payload checksums) must be identical — the
    // scheduler changes *when*, never *what* or *where*.
    let deliver = |kind: SchedKind| -> [Vec<Vec<u8>>; 4] {
        let mut r = RawRouter::new(sched_cfg(kind), port_table());
        for k in 0..10u32 {
            for src in 0..4u32 {
                r.offer(
                    src as usize,
                    0,
                    &packet(src, (src + 1 + k) % 4, 96, k * 4 + src),
                );
            }
        }
        assert!(r.run_until_drained(4_000_000), "{}", kind.name());
        std::array::from_fn(|p| {
            let mut v: Vec<Vec<u8>> = r
                .delivered(p)
                .into_iter()
                .map(|(_, pk)| pk.payload)
                .collect();
            v.sort();
            v
        })
    };
    let [token, islip, cq] = SchedKind::all().map(deliver);
    assert_eq!(token, islip);
    assert_eq!(token, cq);
}

#[test]
fn per_flow_order_survives_every_scheduler() {
    for kind in SchedKind::all() {
        let mut r = RawRouter::new(sched_cfg(kind), port_table());
        for i in 0..8u16 {
            let mut p = packet(0, 1, 96, i as u32);
            p.header.id = i;
            p.header.checksum = p.header.compute_checksum();
            r.offer(0, 0, &p);
        }
        assert!(r.run_until_drained(2_000_000), "{}", kind.name());
        let ids: Vec<u16> = r.delivered(1).iter().map(|(_, p)| p.header.id).collect();
        assert_eq!(ids, (0..8).collect::<Vec<u16>>(), "{}", kind.name());
    }
}

#[test]
fn crossbar_replicas_stay_in_lockstep() {
    // The four crossbar tiles each run a private arbiter replica over
    // the same bid vectors; their quantum counters must agree (within
    // the one-quantum skew of the drain cutoff) and every granted pair
    // must show up in the scheduler statistics.
    for kind in [
        SchedKind::Islip { iters: 4 },
        SchedKind::CrosspointQueued { capacity: 4 },
    ] {
        let mut r = RawRouter::new(sched_cfg(kind), port_table());
        for k in 0..8u32 {
            for src in 0..4u32 {
                r.offer(
                    src as usize,
                    0,
                    &packet(src, (src + 2) % 4, 128, k * 4 + src),
                );
            }
        }
        assert!(r.run_until_drained(4_000_000), "{}", kind.name());
        let quanta: Vec<u64> = (0..4)
            .map(|i| r.xb_stats[i].lock().unwrap().quanta)
            .collect();
        let max = *quanta.iter().max().unwrap();
        let min = *quanta.iter().min().unwrap();
        assert!(
            max - min <= 1,
            "{}: quanta diverged {quanta:?}",
            kind.name()
        );
        for i in 0..4 {
            let s = r.xb_stats[i].lock().unwrap();
            assert!(s.sched_iterations > 0, "{}: tile {i}", kind.name());
            assert!(s.sched_matched > 0, "{}: tile {i}", kind.name());
            // Grants the tile issued for its own ingress are a subset of
            // the matched pairs its replica computed.
            assert!(s.grants_issued <= s.sched_matched, "{}", kind.name());
        }
    }
}

#[test]
fn scheduler_mode_is_engine_invariant() {
    // The arbiters live in tile programs, so the accelerated engines
    // must reproduce the per-cycle run exactly: same delivery cycles,
    // same grant counts.
    let run = |engine: EngineMode| -> (Vec<(u64, u16)>, u64) {
        let mut cfg = sched_cfg(SchedKind::Islip { iters: 4 });
        cfg.raw.engine = engine;
        let mut r = RawRouter::new(cfg, port_table());
        for k in 0..6u32 {
            for src in 0..4u32 {
                r.offer(
                    src as usize,
                    0,
                    &packet(src, (3 - src) % 4, 96, k * 4 + src),
                );
            }
        }
        assert!(r.run_until_drained(4_000_000));
        let mut out: Vec<(u64, u16)> = (0..4)
            .flat_map(|p| r.delivered(p))
            .map(|(c, pk)| (c, pk.header.id))
            .collect();
        out.sort();
        let grants: u64 = (0..4)
            .map(|i| r.xb_stats[i].lock().unwrap().grants_issued)
            .sum();
        (out, grants)
    };
    let base = run(EngineMode::PerCycle);
    assert_eq!(base, run(EngineMode::EventSkip));
    assert_eq!(base, run(EngineMode::Compiled));
}
