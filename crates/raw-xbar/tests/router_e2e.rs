//! End-to-end router tests: packets in on line cards, through ingress →
//! lookup → Rotating Crossbar → egress, out on line cards, with full
//! validation of the delivered IP packets.

use std::sync::Arc;

use raw_lookup::{ForwardingTable, RouteEntry};
use raw_net::Packet;
use raw_xbar::{RawRouter, RouterConfig};

/// A table that maps 10.<p>.0.0/16 to port p.
fn port_table() -> Arc<ForwardingTable> {
    let routes: Vec<RouteEntry> = (0..4)
        .map(|p| RouteEntry::new(0x0a00_0000 | (p << 16), 16, p))
        .collect();
    Arc::new(ForwardingTable::build(&routes))
}

/// Address inside output port `p`'s prefix.
fn addr_for(p: u32) -> u32 {
    0x0a00_0001 | (p << 16)
}

fn packet(src_port: u32, dst_port: u32, bytes: usize, seed: u32) -> Packet {
    Packet::synthetic(0x0a0a_0000 + src_port, addr_for(dst_port), bytes, 64, seed)
}

#[test]
fn single_packet_traverses_router() {
    let mut r = RawRouter::new(RouterConfig::default(), port_table());
    let p = packet(0, 2, 64, 1);
    r.offer(0, 0, &p);
    assert!(r.run_until_drained(60_000), "packet never delivered");
    let out = r.delivered(2);
    assert_eq!(out.len(), 1, "packet must exit on port 2");
    let got = &out[0].1;
    // Routed correctly, TTL decremented, checksum still valid, payload
    // intact.
    assert_eq!(got.header.ttl, 63);
    assert!(got.header.checksum_ok());
    assert_eq!(got.payload, p.payload);
    assert_eq!(got.header.dst, p.header.dst);
    assert_eq!(r.parse_errors(), 0);
    // No misdelivery.
    for port in [0usize, 1, 3] {
        assert!(
            r.delivered(port).is_empty(),
            "port {port} got a stray packet"
        );
    }
}

#[test]
fn packets_to_every_port_pair() {
    let mut r = RawRouter::new(RouterConfig::default(), port_table());
    let mut expect = [0usize; 4];
    for src in 0..4u32 {
        for dst in 0..4u32 {
            let p = packet(src, dst, 128, src * 4 + dst);
            r.offer(src as usize, 0, &p);
            expect[dst as usize] += 1;
        }
    }
    assert!(r.run_until_drained(400_000), "not all 16 packets delivered");
    #[allow(clippy::needless_range_loop)]
    for dst in 0..4usize {
        let out = r.delivered(dst);
        assert_eq!(out.len(), expect[dst], "port {dst}");
        for (_, p) in &out {
            assert_eq!(p.header.ttl, 63);
            assert!(p.header.checksum_ok());
        }
    }
    assert_eq!(r.parse_errors(), 0);
}

#[test]
fn per_flow_order_is_preserved() {
    let mut r = RawRouter::new(RouterConfig::default(), port_table());
    // 8 packets from port 0 to port 1 with increasing IP ids.
    for i in 0..8u16 {
        let mut p = packet(0, 1, 256, i as u32);
        p.header.id = i;
        p.header.checksum = p.header.compute_checksum();
        r.offer(0, 0, &p);
    }
    assert!(r.run_until_drained(400_000));
    let out = r.delivered(1);
    assert_eq!(out.len(), 8);
    let ids: Vec<u16> = out.iter().map(|(_, p)| p.header.id).collect();
    assert_eq!(ids, (0..8).collect::<Vec<u16>>(), "FIFO per-flow order");
    // Completion cycles strictly increase.
    for w in out.windows(2) {
        assert!(w[0].0 < w[1].0);
    }
}

#[test]
fn figure_5_1_permutation_all_ports_concurrent() {
    // The Figure 5-1 pattern: 0->2, 1->3, 2->0, 3->1, all at once, many
    // packets — every port both sends and receives continuously.
    let mut r = RawRouter::new(RouterConfig::default(), port_table());
    let n = 12;
    for k in 0..n {
        for src in 0..4u32 {
            let dst = (src + 2) % 4;
            r.offer(src as usize, 0, &packet(src, dst, 256, k * 7 + src));
        }
    }
    assert!(r.run_until_drained(2_000_000), "permutation traffic wedged");
    for dst in 0..4usize {
        assert_eq!(r.delivered(dst).len(), n as usize, "port {dst}");
    }
    assert_eq!(r.parse_errors(), 0);
    // The four token counters stayed in lock-step (§5.1's synchronous
    // counter claim).
    let tokens = r.token_counters();
    let max = *tokens.iter().max().unwrap();
    let min = *tokens.iter().min().unwrap();
    assert!(max - min <= 1, "token counters diverged: {tokens:?}");
}

#[test]
fn output_contention_serializes_but_delivers_all() {
    // All four inputs target port 0 — the §5.4 fairness scenario.
    let mut r = RawRouter::new(RouterConfig::default(), port_table());
    let n = 6;
    for k in 0..n {
        for src in 0..4u32 {
            r.offer(src as usize, 0, &packet(src, 0, 128, k * 11 + src));
        }
    }
    assert!(r.run_until_drained(2_000_000), "hotspot traffic wedged");
    assert_eq!(r.delivered(0).len(), 4 * n as usize);
    assert_eq!(r.parse_errors(), 0);
    // Every ingress got grants — no starvation.
    for (i, s) in r.ig_stats.iter().enumerate() {
        let s = s.lock().unwrap();
        assert!(s.grants >= n as u64, "ingress {i} starved: {:?}", *s);
    }
}

#[test]
fn store_and_forward_reassembles_fragmented_packets() {
    // Quantum 32 words but 1,024-byte (256-word) packets: 8 fragments
    // per packet, reassembled by the egress.
    let cfg = RouterConfig {
        quantum_words: 32,
        cut_through: false,
        ..RouterConfig::default()
    };
    let mut r = RawRouter::new(cfg, port_table());
    let p0 = packet(0, 2, 1024, 5);
    let p1 = packet(1, 2, 1024, 6);
    r.offer(0, 0, &p0);
    r.offer(1, 0, &p1); // interleaves with p0's fragments at egress 2
    assert!(r.run_until_drained(2_000_000), "fragmented packets wedged");
    let out = r.delivered(2);
    assert_eq!(out.len(), 2);
    for (_, p) in &out {
        assert_eq!(p.header.ttl, 63);
        assert!(p.header.checksum_ok());
        assert_eq!(p.total_bytes(), 1024);
    }
    // Both payloads intact (order between flows unspecified).
    let payloads: Vec<&Vec<u8>> = out.iter().map(|(_, p)| &p.payload).collect();
    assert!(payloads.contains(&&p0.payload));
    assert!(payloads.contains(&&p1.payload));
    let eg = r.eg_stats[2].lock().unwrap();
    assert_eq!(eg.reasm_errors, 0);
    assert_eq!(eg.fragments, 16);
}

#[test]
fn ttl_expired_packets_are_dropped() {
    let mut r = RawRouter::new(RouterConfig::default(), port_table());
    let mut p = packet(0, 1, 64, 9);
    p.header.ttl = 1;
    p.header.checksum = p.header.compute_checksum();
    r.offer(0, 0, &p);
    // A good packet behind it still flows.
    r.offer(0, 0, &packet(0, 1, 64, 10));
    assert!(
        r.run_until_drained(200_000),
        "good packet stuck behind drop"
    );
    assert_eq!(r.delivered(1).len(), 1);
    assert_eq!(r.ig_stats[0].lock().unwrap().packets_dropped, 1);
}

#[test]
fn idle_router_stays_quiet_and_sane() {
    let mut r = RawRouter::new(RouterConfig::default(), port_table());
    r.run(20_000);
    assert_eq!(r.delivered_count(), 0);
    assert_eq!(r.parse_errors(), 0);
    // The crossbar keeps cycling empty quanta without wedging.
    let q = r.xb_stats[0].lock().unwrap().quanta;
    assert!(q > 100, "crossbar made only {q} quanta in 20k cycles");
    let tokens = r.token_counters();
    assert!(tokens.iter().max().unwrap() - tokens.iter().min().unwrap() <= 1);
}

#[test]
fn multicast_packet_fans_out_to_all_subscribed_ports() {
    // §8.6 end-to-end: a class-D route fans one packet out to ports
    // 1, 2 and 3 through the fabric's switch multicast, while unicast
    // traffic keeps flowing.
    let mut routes: Vec<RouteEntry> = (0..4)
        .map(|p| RouteEntry::new(0x0a00_0000 | (p << 16), 16, p))
        .collect();
    routes.push(RouteEntry::new(
        0xe000_0000,
        4,
        raw_lookup::encode_multicast(0b1110),
    ));
    let table = Arc::new(ForwardingTable::build(&routes));
    let cfg = RouterConfig {
        quantum_words: 32,
        cut_through: true,
        multicast: true,
        ..RouterConfig::default()
    };
    let mut r = RawRouter::new(cfg, table);
    // One multicast packet from port 0 plus a unicast chaser per port.
    let mc = Packet::synthetic(0x0a0a_0000, 0xe000_0005, 128, 64, 1);
    r.offer(0, 0, &mc);
    for src in 0..4u32 {
        r.offer(src as usize, 0, &packet(src, (src + 1) % 4, 128, 10 + src));
    }
    r.run(200_000);
    // The multicast copy reached ports 1..3 (not 0), each intact.
    for port in 1..4usize {
        let copies: Vec<_> = r
            .delivered(port)
            .into_iter()
            .filter(|(_, p)| p.header.dst == 0xe000_0005)
            .collect();
        assert_eq!(copies.len(), 1, "port {port} must get exactly one copy");
        let (_, p) = &copies[0];
        assert_eq!(p.header.ttl, 63);
        assert!(p.header.checksum_ok());
        assert_eq!(p.payload, mc.payload);
    }
    assert!(
        !r.delivered(0)
            .iter()
            .any(|(_, p)| p.header.dst == 0xe000_0005),
        "the source port is not in the group"
    );
    // The unicast chasers all arrived too.
    let unicast_total: usize = (0..4)
        .map(|p| {
            r.delivered(p)
                .iter()
                .filter(|(_, q)| q.header.dst != 0xe000_0005)
                .count()
        })
        .sum();
    assert_eq!(unicast_total, 4);
    assert_eq!(r.parse_errors(), 0);
}

#[test]
fn multicast_mode_still_routes_plain_unicast() {
    // The multicast jump table embeds the unicast behavior.
    let cfg = RouterConfig {
        quantum_words: 64,
        cut_through: true,
        multicast: true,
        ..RouterConfig::default()
    };
    let mut r = RawRouter::new(cfg, port_table());
    for src in 0..4u32 {
        r.offer(src as usize, 0, &packet(src, (src + 2) % 4, 256, src));
    }
    assert!(r.run_until_drained(400_000));
    for dst in 0..4usize {
        assert_eq!(r.delivered(dst).len(), 1, "port {dst}");
    }
    assert_eq!(r.parse_errors(), 0);
}

#[test]
fn voq_ingress_routes_correctly() {
    // Basic sanity in VOQ mode: mixed destinations from one port.
    let cfg = RouterConfig {
        quantum_words: 32,
        cut_through: true,
        queueing: raw_xbar::IngressQueueing::Voq,
        ..RouterConfig::default()
    };
    let mut r = RawRouter::new(cfg, port_table());
    for k in 0..12u32 {
        r.offer(0, 0, &packet(0, k % 4, 128, k));
    }
    assert!(r.run_until_drained(2_000_000), "VOQ traffic wedged");
    for dst in 0..4usize {
        let out = r.delivered(dst);
        assert_eq!(out.len(), 3, "port {dst}");
        for (_, p) in &out {
            assert_eq!(p.header.ttl, 63);
            assert!(p.header.checksum_ok());
        }
    }
    assert_eq!(r.parse_errors(), 0);
}

#[test]
fn voq_defeats_head_of_line_blocking() {
    // HOL scenario: every port's queue starts with a long burst to the
    // contended port 0, followed by one packet to an uncontended port.
    // FIFO ingresses serialize the whole burst before the tail packet
    // moves; VOQ lets the tail packet overtake.
    let offer_all = |r: &mut RawRouter| {
        for src in 0..4u32 {
            for k in 0..20u32 {
                r.offer(src as usize, 0, &packet(src, 0, 64, k));
            }
            // The HOL victim: destined to an idle output.
            let mut v = packet(src, src + 10, 64, 99);
            v.header.dst = 0x0a00_0001 | (((src + 1) % 4) << 16);
            v.header.checksum = v.header.compute_checksum();
            r.offer(src as usize, 0, &v);
        }
    };
    let victim_time = |queueing| -> u64 {
        let cfg = RouterConfig {
            quantum_words: 16,
            cut_through: true,
            queueing,
            ..RouterConfig::default()
        };
        let mut r = RawRouter::new(cfg, port_table());
        offer_all(&mut r);
        assert!(r.run_until_drained(4_000_000));
        // Completion cycle of the last victim packet (ips outside port 0).
        (0..4)
            .flat_map(|p| r.delivered(p))
            .filter(|(_, p)| ((p.header.dst >> 16) & 0x3) != 0)
            .map(|(c, _)| c)
            .max()
            .expect("victims delivered")
    };
    let fifo = victim_time(raw_xbar::IngressQueueing::Fifo);
    let voq = victim_time(raw_xbar::IngressQueueing::Voq);
    assert!(
        voq * 10 < fifo * 7,
        "VOQ must let victims overtake the hotspot burst: fifo {fifo} vs voq {voq}"
    );
}

#[test]
fn assembly_crossbar_routes_like_the_native_one() {
    // The §6.5 path: crossbar tiles run generated Raw assembly on the
    // cycle-accurate interpreter. Same traffic, same deliveries.
    let run = |asm: bool| -> Vec<Vec<u16>> {
        let cfg = RouterConfig {
            quantum_words: 16,
            cut_through: true,
            asm_crossbar: asm,
            ..RouterConfig::default()
        };
        let mut r = RawRouter::new(cfg, port_table());
        for k in 0..6u32 {
            for src in 0..4u32 {
                let mut p = packet(src, (src + k) % 4, 64, k * 5 + src);
                p.header.id = k as u16;
                p.header.checksum = p.header.compute_checksum();
                r.offer(src as usize, 0, &p);
            }
        }
        assert!(
            r.run_until_drained(3_000_000),
            "asm={asm} traffic wedged: {} of {}",
            r.delivered_count(),
            r.offered()
        );
        assert_eq!(r.parse_errors(), 0);
        (0..4)
            .map(|port| {
                let mut ids: Vec<u16> =
                    r.delivered(port).iter().map(|(_, p)| p.header.id).collect();
                ids.sort_unstable();
                ids
            })
            .collect()
    };
    let native = run(false);
    let asm = run(true);
    assert_eq!(native, asm, "assembly crossbar diverged from native");
}

#[test]
fn assembly_crossbar_sustains_permutation_traffic() {
    let cfg = RouterConfig {
        quantum_words: 64,
        cut_through: true,
        asm_crossbar: true,
        ..RouterConfig::default()
    };
    let mut r = RawRouter::new(cfg, port_table());
    for k in 0..20u32 {
        for src in 0..4u32 {
            r.offer(src as usize, 0, &packet(src, (src + 2) % 4, 256, k));
        }
    }
    assert!(r.run_until_drained(2_000_000));
    for dst in 0..4usize {
        assert_eq!(r.delivered(dst).len(), 20, "port {dst}");
    }
    assert_eq!(r.parse_errors(), 0);
}

#[test]
fn corrupt_checksum_packet_is_dropped_and_stream_resyncs() {
    // A packet with a broken header checksum is discarded by the ingress
    // (§4.2's verification). The checksum leaves the claimed length
    // intact, so the drop is classified, the exact payload span drained,
    // and the framer stays packet-aligned: the very next packet parses
    // cleanly with no idle gap needed, and drained-accounting holds
    // (delivered + dropped == offered).
    use raw_telemetry::DropReason;
    let mut r = RawRouter::new(RouterConfig::default(), port_table());
    let mut bad = packet(0, 1, 64, 5);
    bad.header.checksum ^= 0x5aa5; // corrupt
    r.offer(0, 0, &bad);
    let good = packet(0, 2, 64, 6);
    r.offer(0, 0, &good);
    assert!(r.run_until_drained(400_000), "accounting must close");
    assert_eq!(r.delivered(2).len(), 1, "good packet lost after corruption");
    assert!(
        r.delivered(1).is_empty(),
        "the corrupt packet must not pass"
    );
    let ig = r.ig_stats[0].lock().unwrap();
    assert_eq!(ig.packets_dropped, 1, "{ig:?}");
    assert_eq!(ig.drops[DropReason::BadChecksum.index()], 1, "{ig:?}");
    assert_eq!(ig.frame_errors, 0, "{ig:?}");
    drop(ig);
    assert_eq!(r.parse_errors(), 0);
}

#[test]
fn jumbo_packets_fragment_and_reassemble() {
    // A 9000-byte jumbo crosses the fabric as ~36 fragments at quantum
    // 64 and reassembles bit-exactly.
    let cfg = RouterConfig {
        quantum_words: 64,
        cut_through: false,
        ..RouterConfig::default()
    };
    let mut r = RawRouter::new(cfg, port_table());
    let jumbo = packet(0, 3, 9000, 7);
    r.offer(0, 0, &jumbo);
    assert!(r.run_until_drained(4_000_000), "jumbo wedged");
    let out = r.delivered(3);
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].1.payload, jumbo.payload);
    assert_eq!(out[0].1.header.ttl, 63);
    let frags = r.eg_stats[3].lock().unwrap().fragments;
    assert_eq!(frags as usize, 2250usize.div_ceil(64), "9000B = 2250 words");
}

#[test]
fn back_to_back_minimum_packets_sustain_peak() {
    // 64-byte packets at saturation: sustained delivery rate within the
    // measured envelope (sanity guard against performance regressions).
    let cfg = RouterConfig {
        quantum_words: 16,
        cut_through: true,
        ..RouterConfig::default()
    };
    let mut r = RawRouter::new(cfg, port_table());
    for k in 0..600u32 {
        for src in 0..4u32 {
            r.offer(src as usize, 0, &packet(src, (src + 2) % 4, 64, k));
        }
    }
    r.run(60_000);
    let gbps = r.throughput_gbps(10_000, 60_000);
    assert!(
        gbps > 4.5,
        "64B peak regressed to {gbps:.2} Gbps (expected ~5.4)"
    );
    assert_eq!(r.parse_errors(), 0);
}
