//! Differential test: the executable iSLIP scheduler vs the
//! `raw-baselines` abstract cost model (§2.2.2).
//!
//! The baselines crate predicts what VOQ+iSLIP should deliver
//! (saturation throughput ≈ 1.0, convergence in ~log n iterations);
//! `raw_sched::IslipArb` is the scheduler that actually runs on the Raw
//! fabric. This test drives both through the *same* Bernoulli uniform
//! arrival process (same `StdRng` seed, same draw order, same queue
//! capacity and departure rules) and requires cell-for-cell agreement:
//! the two implementations are one algorithm in two roles, and any
//! drift between them would invalidate the cost model's §2.2.2 claims.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use raw_baselines::fabric::{saturation_throughput, CrossbarSim, FabricConfig, Queueing};
use raw_sched::{matching_size, IslipArb, Scheduler};

/// Cell-level VOQ harness around the executable scheduler, mirroring
/// `raw_baselines::fabric::CrossbarSim` (VOQ mode) draw for draw.
struct CellHarness {
    n: usize,
    queues: Vec<Vec<VecDeque<()>>>,
    rng: StdRng,
    sched: IslipArb,
    queue_capacity: usize,
    delivered: u64,
    offered: u64,
    dropped: u64,
    iterations: u64,
    slots: u64,
}

impl CellHarness {
    fn new(n: usize, iters: u32, seed: u64, queue_capacity: usize) -> CellHarness {
        CellHarness {
            n,
            queues: (0..n).map(|_| vec![VecDeque::new(); n]).collect(),
            rng: StdRng::seed_from_u64(seed),
            sched: IslipArb::new(n, iters),
            queue_capacity,
            delivered: 0,
            offered: 0,
            dropped: 0,
            iterations: 0,
            slots: 0,
        }
    }

    fn step_uniform(&mut self, load: f64) {
        let n = self.n;
        for i in 0..n {
            if self.rng.gen_bool(load.clamp(0.0, 1.0)) {
                let d = self.rng.gen_range(0..n);
                self.offered += 1;
                let occ: usize = self.queues[i].iter().map(|q| q.len()).sum();
                if occ >= self.queue_capacity {
                    self.dropped += 1;
                } else {
                    self.queues[i][d].push_back(());
                }
            }
        }
        let requests: Vec<u16> = (0..n)
            .map(|i| {
                (0..n)
                    .filter(|&d| !self.queues[i][d].is_empty())
                    .fold(0u16, |m, d| m | (1 << d))
            })
            .collect();
        let m = self.sched.arbitrate(&requests);
        if requests.iter().any(|&r| r != 0) {
            self.iterations += u64::from(self.sched.last_iterations());
        }
        self.delivered += matching_size(&m) as u64;
        for (i, g) in m.iter().enumerate() {
            if let Some(d) = g {
                self.queues[i][*d as usize].pop_front().expect("matched");
            }
        }
        self.slots += 1;
    }

    fn throughput(&self) -> f64 {
        self.delivered as f64 / (self.slots as f64 * self.n as f64)
    }
}

#[test]
fn executable_islip_matches_the_baselines_model_cell_for_cell() {
    for (ports, iters, seed) in [(16usize, 4u32, 3u64), (16, 1, 9), (4, 4, 7), (8, 2, 11)] {
        let slots = 20_000u64;
        let mut model = CrossbarSim::new(FabricConfig {
            ports,
            queueing: Queueing::Voq,
            islip_iters: iters,
            seed,
            ..FabricConfig::default()
        });
        model.run_uniform(1.0, slots);

        let mut exec = CellHarness::new(ports, iters, seed, 10_000);
        for _ in 0..slots {
            exec.step_uniform(1.0);
        }

        // Same RNG stream, same algorithm: agreement must be exact —
        // well inside the §2.2.2 tolerance, and any future drift
        // between model and executable scheduler fails loudly.
        assert_eq!(
            model.report.delivered_cells, exec.delivered,
            "n={ports} iters={iters} seed={seed}: delivered cells diverged"
        );
        assert_eq!(
            model.report.iterations_used, exec.iterations,
            "n={ports} iters={iters} seed={seed}: convergence iterations diverged"
        );
        assert_eq!(model.report.offered_cells, exec.offered);
        assert_eq!(model.report.dropped_cells, exec.dropped);
        let (mt, et) = (model.report.throughput(ports), exec.throughput());
        assert!(
            (mt - et).abs() < 1e-12,
            "throughput: model {mt:.6} vs executable {et:.6}"
        );
    }
}

#[test]
fn saturation_throughput_and_convergence_meet_the_papers_claims() {
    // The headline §2.2.2 numbers, reproduced by the executable
    // scheduler: VOQ+iSLIP saturates near 1.0 while FIFO queueing (one
    // head-of-line request per input) hits the 2-√2 ≈ 0.586 wall.
    let mut voq = CellHarness::new(16, 4, 3, 10_000);
    for _ in 0..20_000 {
        voq.step_uniform(1.0);
    }
    let t = voq.throughput();
    assert!(t > 0.95, "executable iSLIP saturation {t:.3}");
    let model_t = saturation_throughput(Queueing::Voq, 16, 4, 20_000, 3);
    assert!(
        (t - model_t).abs() < 0.05,
        "executable {t:.3} vs model {model_t:.3} beyond tolerance"
    );

    // Convergence: at saturation the desynchronized pointers settle to
    // ~1 iteration per slot; the mean must agree with the model's.
    let mean_iters = voq.iterations as f64 / voq.slots as f64;
    assert!(
        mean_iters < 2.0,
        "iSLIP should converge in ~1 iteration at saturation, got {mean_iters:.2}"
    );
}
