//! iSLIP — the Tiny Tera's iterative request/grant/accept matcher.
//!
//! Per slot, up to `iters` iterations run over the *unmatched* ports:
//!
//! 1. **Request** — every unmatched input requests every unmatched
//!    output it has traffic for.
//! 2. **Grant** — every requested output grants the first requesting
//!    input at or after its grant pointer.
//! 3. **Accept** — every granted input accepts the first granting
//!    output at or after its accept pointer; the pair leaves the pool.
//!
//! Pointers advance only on *first-iteration* accepts
//! (`grant_ptr[out] = in+1`, `accept_ptr[in] = out+1`): that is the
//! "slip" that desynchronizes the output pointers under load, turning
//! the matcher into a time-division round-robin with 100% throughput on
//! uniform traffic and bounded service intervals for every
//! persistently-backlogged pair (the RV802 analysis proves the bound
//! exhaustively for 4 ports).
//!
//! The control flow below mirrors
//! `raw_baselines::fabric::CrossbarSim::schedule_and_depart` statement
//! for statement — including the per-iteration `iterations_used`
//! accounting — so the executable scheduler and the abstract cost model
//! are differentially comparable (`tests/differential.rs`).

use crate::{Matching, Scheduler};

pub struct IslipArb {
    n: usize,
    iters: u32,
    grant_ptr: Vec<usize>,
    accept_ptr: Vec<usize>,
    last_iters: u32,
}

impl IslipArb {
    pub fn new(n: usize, iters: u32) -> IslipArb {
        assert!((2..=16).contains(&n), "port count {n} out of range");
        assert!(iters >= 1, "at least one iteration");
        IslipArb {
            n,
            iters,
            grant_ptr: vec![0; n],
            accept_ptr: vec![0; n],
            last_iters: 0,
        }
    }

    /// Pointer snapshot `(grant, accept)` for the verifier's
    /// pointer-advance check.
    pub fn pointers(&self) -> (&[usize], &[usize]) {
        (&self.grant_ptr, &self.accept_ptr)
    }
}

impl Scheduler for IslipArb {
    fn name(&self) -> &'static str {
        "islip"
    }

    fn ports(&self) -> usize {
        self.n
    }

    fn arbitrate(&mut self, requests: &[u16]) -> Matching {
        assert_eq!(requests.len(), self.n);
        let n = self.n;
        let mut in_match: Matching = vec![None; n];
        let mut out_matched = vec![false; n];
        self.last_iters = 0;
        for iter in 0..self.iters {
            // 1. Request: unmatched inputs over unmatched outputs.
            let mut reqs: Vec<Vec<usize>> = vec![Vec::new(); n]; // per output
            let mut any = false;
            for i in 0..n {
                if in_match[i].is_some() {
                    continue;
                }
                for (j, r) in reqs.iter_mut().enumerate() {
                    if !out_matched[j] && requests[i] & (1 << j) != 0 {
                        r.push(i);
                        any = true;
                    }
                }
            }
            if !any {
                break;
            }
            self.last_iters += 1;
            // 2. Grant: first requesting input at/after the pointer.
            let mut grants: Vec<Vec<usize>> = vec![Vec::new(); n]; // per input
            for (j, r) in reqs.iter().enumerate() {
                if r.is_empty() {
                    continue;
                }
                let g = (0..n)
                    .map(|k| (self.grant_ptr[j] + k) % n)
                    .find(|i| r.contains(i))
                    .expect("some request exists");
                grants[g].push(j);
            }
            // 3. Accept: first granting output at/after the pointer.
            for (i, g) in grants.iter().enumerate() {
                if g.is_empty() {
                    continue;
                }
                let j = (0..n)
                    .map(|k| (self.accept_ptr[i] + k) % n)
                    .find(|j| g.contains(j))
                    .expect("some grant exists");
                in_match[i] = Some(j as u8);
                out_matched[j] = true;
                if iter == 0 {
                    // Pointers advance only for first-iteration matches.
                    self.grant_ptr[j] = (i + 1) % n;
                    self.accept_ptr[i] = (j + 1) % n;
                }
            }
        }
        in_match
    }

    fn last_iterations(&self) -> u32 {
        self.last_iters.max(1)
    }

    fn reset(&mut self) {
        self.grant_ptr.iter_mut().for_each(|p| *p = 0);
        self.accept_ptr.iter_mut().for_each(|p| *p = 0);
        self.last_iters = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{matching_is_valid, matching_size};

    #[test]
    fn saturated_uniform_demand_converges_to_perfect_matchings() {
        let mut s = IslipArb::new(4, 4);
        let reqs = vec![0b1111u16; 4];
        for _ in 0..8 {
            s.arbitrate(&reqs); // desynchronize the pointers
        }
        for _ in 0..16 {
            let m = s.arbitrate(&reqs);
            assert!(matching_is_valid(&reqs, &m));
            assert_eq!(matching_size(&m), 4, "saturated iSLIP must match all");
            // Once desynchronized, one iteration suffices (the TDM
            // steady state the Tiny Tera analysis predicts).
            assert_eq!(s.last_iterations(), 1);
        }
    }

    #[test]
    fn iterations_help_within_a_single_slot() {
        // A request pattern where one iteration strands an input: inputs
        // 0 and 1 both want output 0 (and 1), input 2 wants 0 only.
        let reqs = vec![0b0011u16, 0b0011, 0b0001, 0];
        let m1 = {
            let mut s = IslipArb::new(4, 1);
            s.arbitrate(&reqs)
        };
        let m4 = {
            let mut s = IslipArb::new(4, 4);
            s.arbitrate(&reqs)
        };
        assert!(matching_size(&m4) >= matching_size(&m1));
        assert_eq!(matching_size(&m4), 2, "four iterations fill the matching");
    }

    #[test]
    fn pointer_update_only_on_first_iteration() {
        let mut s = IslipArb::new(4, 4);
        // Slot 1: all want output 0. First-iteration accept advances
        // grant_ptr[0] past the winner.
        let reqs = vec![1u16, 1, 1, 1];
        let m = s.arbitrate(&reqs);
        assert_eq!(m[0], Some(0), "pointer at 0 grants input 0 first");
        let (gp, ap) = s.pointers();
        assert_eq!(gp[0], 1, "grant pointer slipped past input 0");
        assert_eq!(ap[0], 1, "accept pointer slipped past output 0");
        // Other pointers untouched.
        assert!(gp[1..].iter().all(|&p| p == 0));
    }
}
