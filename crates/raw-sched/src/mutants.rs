//! Deliberately broken arbiters for the RV8xx negative battery.
//!
//! Each mutant violates exactly one scheduler contract, and the
//! verifier must reject it with the matching code:
//!
//! - [`ConflictArb`] → `RV801`: grants one output to several inputs
//!   (every requesting input takes its lowest requested output with no
//!   uniqueness check — the classic forgotten-arbiter bug).
//! - [`StuckPointerArb`] → `RV802`: iSLIP whose pointers never advance;
//!   under persistent demand the fixed priority starves every pair
//!   shadowed by a lower-numbered competitor.
//! - [`UnboundedCqArb`] → `RV803`: a crosspoint-queued arbiter whose
//!   ingest ignores the buffer capacity; a hotspot column grows its
//!   losing crosspoints without bound.

use crate::{Matching, Scheduler};

/// Grants every requesting input its lowest requested output — no
/// output-uniqueness, so any shared destination produces a port
/// conflict (two inputs driving one crossbar output).
pub struct ConflictArb {
    n: usize,
}

impl ConflictArb {
    pub fn new(n: usize) -> ConflictArb {
        ConflictArb { n }
    }
}

impl Scheduler for ConflictArb {
    fn name(&self) -> &'static str {
        "mutant-conflict"
    }

    fn ports(&self) -> usize {
        self.n
    }

    fn arbitrate(&mut self, requests: &[u16]) -> Matching {
        requests
            .iter()
            .map(|&r| {
                if r == 0 {
                    None
                } else {
                    Some(r.trailing_zeros() as u8)
                }
            })
            .collect()
    }

    fn reset(&mut self) {}
}

/// iSLIP with frozen pointers: grant and accept always scan from port
/// 0. Input 0 monopolizes every output it requests; persistent
/// lower-priority pairs are never served.
pub struct StuckPointerArb {
    n: usize,
    iters: u32,
}

impl StuckPointerArb {
    pub fn new(n: usize, iters: u32) -> StuckPointerArb {
        StuckPointerArb { n, iters }
    }
}

impl Scheduler for StuckPointerArb {
    fn name(&self) -> &'static str {
        "mutant-stuck-pointer"
    }

    fn ports(&self) -> usize {
        self.n
    }

    fn arbitrate(&mut self, requests: &[u16]) -> Matching {
        let n = self.n;
        let mut in_match: Matching = vec![None; n];
        let mut out_matched = vec![false; n];
        for _ in 0..self.iters {
            let mut progress = false;
            // Grant: each unmatched output takes the lowest unmatched
            // requesting input (pointer stuck at 0); accept: the lowest
            // granting output (likewise stuck).
            let mut grants: Vec<Vec<usize>> = vec![Vec::new(); n];
            for (j, g) in grants.iter_mut().enumerate() {
                if out_matched[j] {
                    continue;
                }
                if let Some(i) =
                    (0..n).find(|&i| in_match[i].is_none() && requests[i] & (1 << j) != 0)
                {
                    g.push(i);
                }
            }
            for (j, g) in grants.iter().enumerate() {
                let Some(&i) = g.first() else { continue };
                if in_match[i].is_none() {
                    in_match[i] = Some(j as u8);
                    out_matched[j] = true;
                    progress = true;
                }
            }
            if !progress {
                break;
            }
        }
        in_match
    }

    fn reset(&mut self) {}
}

/// Crosspoint-queued with no capacity guard on ingest. Reports the
/// capacity it *should* honor via [`Scheduler::occupancy`], so the
/// RV803 bound check sees the overflow.
pub struct UnboundedCqArb {
    n: usize,
    claimed_cap: u32,
    occ: Vec<u32>,
    in_rr: Vec<usize>,
    out_rr: Vec<usize>,
    drain_start: usize,
}

impl UnboundedCqArb {
    pub fn new(n: usize, claimed_cap: u32) -> UnboundedCqArb {
        UnboundedCqArb {
            n,
            claimed_cap,
            occ: vec![0; n * n],
            in_rr: vec![0; n],
            out_rr: vec![0; n],
            drain_start: 0,
        }
    }
}

impl Scheduler for UnboundedCqArb {
    fn name(&self) -> &'static str {
        "mutant-unbounded-cq"
    }

    fn ports(&self) -> usize {
        self.n
    }

    fn arbitrate(&mut self, requests: &[u16]) -> Matching {
        let n = self.n;
        for (i, &req) in requests.iter().enumerate() {
            for j in 0..n {
                if req & (1 << j) == 0 {
                    self.occ[i * n + j] = 0;
                }
            }
        }
        // Ingest without the `occ < cap` guard — the seeded bug.
        for (i, &req) in requests.iter().enumerate() {
            for k in 0..n {
                let j = (self.in_rr[i] + k) % n;
                if req & (1 << j) != 0 {
                    self.occ[i * n + j] += 1;
                    self.in_rr[i] = (j + 1) % n;
                    break;
                }
            }
        }
        let mut matching = vec![None; n];
        let mut in_used = vec![false; n];
        for k in 0..n {
            let j = (self.drain_start + k) % n;
            for l in 0..n {
                let i = (self.out_rr[j] + l) % n;
                if self.occ[i * n + j] > 0 && !in_used[i] {
                    self.occ[i * n + j] -= 1;
                    self.out_rr[j] = (i + 1) % n;
                    in_used[i] = true;
                    matching[i] = Some(j as u8);
                    break;
                }
            }
        }
        self.drain_start = (self.drain_start + 1) % n;
        matching
    }

    fn reset(&mut self) {
        self.occ.iter_mut().for_each(|o| *o = 0);
        self.in_rr.iter_mut().for_each(|p| *p = 0);
        self.out_rr.iter_mut().for_each(|p| *p = 0);
        self.drain_start = 0;
    }

    fn occupancy(&self) -> Option<(&[u32], u32)> {
        Some((&self.occ, self.claimed_cap))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching_is_valid;

    #[test]
    fn conflict_mutant_produces_an_invalid_matching() {
        let mut s = ConflictArb::new(4);
        let reqs = vec![1u16, 1, 0, 0]; // both want output 0
        let m = s.arbitrate(&reqs);
        assert!(!matching_is_valid(&reqs, &m));
    }

    #[test]
    fn stuck_pointer_mutant_starves_a_shadowed_pair() {
        let mut s = StuckPointerArb::new(4, 4);
        // Inputs 0 and 1 both persistently request output 0 only.
        let reqs = vec![1u16, 1, 0, 0];
        for _ in 0..32 {
            let m = s.arbitrate(&reqs);
            assert!(matching_is_valid(&reqs, &m), "conflict-free, just unfair");
            assert_eq!(m[0], Some(0), "the frozen pointer always picks input 0");
            assert_eq!(m[1], None, "input 1 starves");
        }
    }

    #[test]
    fn unbounded_mutant_overflows_its_claimed_capacity() {
        let mut s = UnboundedCqArb::new(4, 2);
        let reqs = vec![1u16; 4]; // hotspot column 0
        for _ in 0..16 {
            s.arbitrate(&reqs);
        }
        let (occ, cap) = s.occupancy().unwrap();
        assert!(occ.iter().any(|&o| o > cap), "ingest must have overflowed");
    }
}
