//! The paper's rotating token (§5.1), lifted to the matching level.
//!
//! One input holds the token each quantum and is served first; the walk
//! then proceeds in ring order, each input taking its first requested
//! output that is still free. This is the matching-level shadow of
//! `raw_xbar::config::schedule`'s sequential reservation walk: the walk
//! additionally places ring links (and can refuse a bid for link
//! congestion under multicast), but for unicast bids the token-order
//! output reservation below grants exactly the same set — the RV801
//! routability check re-derives that equivalence against the real
//! config space.
//!
//! With FIFO ingress queueing each request mask has at most one bit (the
//! head-of-line destination), and this arbiter degenerates to the
//! paper's design: HOL blocking and all. With VOQ masks it becomes
//! "token-priority first-fit", still single-pass and stateless beyond
//! the token counter.

use crate::{Matching, Scheduler};

pub struct TokenArb {
    n: usize,
    token: usize,
}

impl TokenArb {
    pub fn new(n: usize) -> TokenArb {
        assert!((2..=16).contains(&n), "port count {n} out of range");
        TokenArb { n, token: 0 }
    }

    /// Current token holder (tests and the verifier's priority check).
    pub fn token(&self) -> usize {
        self.token
    }
}

impl Scheduler for TokenArb {
    fn name(&self) -> &'static str {
        "token"
    }

    fn ports(&self) -> usize {
        self.n
    }

    fn arbitrate(&mut self, requests: &[u16]) -> Matching {
        assert_eq!(requests.len(), self.n);
        let n = self.n;
        let mut matching = vec![None; n];
        let mut used = 0u32;
        for k in 0..n {
            let i = (self.token + k) % n;
            for j in 0..n {
                if requests[i] & (1 << j) != 0 && used & (1 << j) == 0 {
                    matching[i] = Some(j as u8);
                    used |= 1 << j;
                    break;
                }
            }
        }
        self.token = (self.token + 1) % n;
        matching
    }

    fn reset(&mut self) {
        self.token = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching_is_valid;

    #[test]
    fn token_holder_always_wins_its_request() {
        let mut s = TokenArb::new(4);
        // All inputs want output 0 only: the grant follows the token.
        let reqs = vec![1u16; 4];
        for slot in 0..12 {
            let holder = s.token();
            let m = s.arbitrate(&reqs);
            assert!(matching_is_valid(&reqs, &m));
            assert_eq!(m[holder], Some(0), "slot {slot}: token holder denied");
            assert_eq!(crate::matching_size(&m), 1, "one output, one grant");
        }
    }

    #[test]
    fn input_level_wait_is_bounded_by_the_ring() {
        // Any input with a persistent request is served within n slots
        // (when its token turn comes it picks first).
        let mut s = TokenArb::new(4);
        let reqs = vec![0b1111u16; 4];
        let mut waited = [0usize; 4];
        for _ in 0..32 {
            let m = s.arbitrate(&reqs);
            for i in 0..4 {
                if m[i].is_some() {
                    waited[i] = 0;
                } else {
                    waited[i] += 1;
                    assert!(waited[i] < 4, "input {i} waited a full rotation");
                }
            }
        }
    }
}
