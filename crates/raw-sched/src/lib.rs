//! # raw-sched — the switch-scheduling laboratory
//!
//! The paper's Rotating Crossbar (§5) is one point in the switch-
//! scheduling design space: a synchronous token walk over the ports'
//! head-of-line bids. This crate abstracts the per-quantum arbitration
//! step — occupancy in, crossbar matching out — so alternative
//! schedulers run on the *same* static network with identical ingest
//! and egress paths, differing only in how the four Crossbar Processors
//! turn the exchanged bid words into a grant set.
//!
//! Three schedulers share the [`Scheduler`] trait:
//!
//! - [`TokenArb`] — the paper's rotating token, lifted from the
//!   `raw_xbar::config::schedule` walk to the matching level: the token
//!   holder is served first, then the remaining inputs in ring order,
//!   each taking its first still-free requested output.
//! - [`IslipArb`] — the iSLIP iterative matcher of the Tiny Tera: per-
//!   output grant pointers and per-input accept pointers, multiple
//!   request/grant/accept iterations per slot, pointers advancing only
//!   on first-iteration accepts (the "slip" that desynchronizes the
//!   pointers and yields 100% throughput under uniform traffic). The
//!   implementation mirrors `raw_baselines::fabric::CrossbarSim`
//!   statement for statement so the executable scheduler and the
//!   abstract cost model stay differentially testable.
//! - [`CqArb`] — a crosspoint-queued crossbar in the FlexCross mould:
//!   a small buffer at every input×output crosspoint decouples input
//!   and output contention; inputs spray cells into crosspoint buffers
//!   round-robin, outputs drain their column round-robin. The buffers
//!   here are *virtual* (occupancy counters mirroring the real VOQ
//!   state), which keeps the scheduler deployable on the Raw fabric
//!   where payloads stream ingress→egress without an intermediate copy.
//!
//! [`mutants`] holds deliberately broken arbiters (port-conflict
//! matchings, stuck iSLIP pointers, an unbounded crosspoint buffer) for
//! the RV8xx verifier's negative battery.
//!
//! All schedulers support runtime port counts (the criterion bench runs
//! them at 16 ports; the Raw router instantiates them at 4) and are
//! fully deterministic: the four Crossbar Processors replicate one
//! scheduler instance each and feed it identical bid vectors, so their
//! matchings agree without exchanging any state beyond the §5.1 header
//! all-to-all — exactly how the paper's token counter is replicated.

pub mod cq;
pub mod islip;
pub mod mutants;
pub mod token;

pub use cq::CqArb;
pub use islip::IslipArb;
pub use token::TokenArb;

/// A crossbar matching: `matching[i] = Some(j)` connects input `i` to
/// output `j` for one quantum. Distinct inputs must map to distinct
/// outputs, and every connection must have been requested (see
/// [`matching_is_valid`]).
pub type Matching = Vec<Option<u8>>;

/// Per-slot crossbar arbitration: occupancy in, matching out.
///
/// `requests[i]` is the bitmask of outputs input `i` has traffic for
/// (bit `j` set ⇔ input `i`'s virtual output queue `j` is non-empty).
/// One call is one routing quantum; the scheduler owns whatever state
/// persists across slots (token position, pointers, crosspoint
/// occupancy).
pub trait Scheduler: Send {
    /// Stable scheduler name (report keys, bench labels).
    fn name(&self) -> &'static str;

    /// Port count this instance was built for.
    fn ports(&self) -> usize;

    /// Arbitrate one slot. Implementations must return a matching that
    /// satisfies [`matching_is_valid`] for the given requests; the
    /// RV801 analysis enforces this over the full request space.
    fn arbitrate(&mut self, requests: &[u16]) -> Matching;

    /// Iterations the last [`Scheduler::arbitrate`] call used (1 for
    /// single-pass arbiters). The crossbar charges its index-compute
    /// phase proportionally, and the iSLIP differential test compares
    /// this against the `raw-baselines` cost model.
    fn last_iterations(&self) -> u32 {
        1
    }

    /// Restore the power-on state (token at 0, pointers at 0, empty
    /// crosspoint buffers).
    fn reset(&mut self);

    /// Crosspoint-buffer occupancy (row-major `ports*ports`) and its
    /// per-crosspoint capacity, for buffered schedulers. `None` for
    /// bufferless ones. The RV803 analysis asserts the bound along
    /// every trace it drives.
    fn occupancy(&self) -> Option<(&[u32], u32)> {
        None
    }
}

/// Selectable arbitration policy for the router (and anything else that
/// builds schedulers by name).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SchedKind {
    /// The paper's rotating token (§5.1).
    #[default]
    Token,
    /// iSLIP with `iters` request/grant/accept iterations per slot.
    Islip { iters: u32 },
    /// Crosspoint-queued with `capacity` cells per crosspoint buffer.
    CrosspointQueued { capacity: u32 },
}

impl SchedKind {
    /// Build a fresh scheduler instance for `ports` ports.
    pub fn build(&self, ports: usize) -> Box<dyn Scheduler> {
        match *self {
            SchedKind::Token => Box::new(TokenArb::new(ports)),
            SchedKind::Islip { iters } => Box::new(IslipArb::new(ports, iters)),
            SchedKind::CrosspointQueued { capacity } => Box::new(CqArb::new(ports, capacity)),
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            SchedKind::Token => "token",
            SchedKind::Islip { .. } => "islip",
            SchedKind::CrosspointQueued { .. } => "cq",
        }
    }

    /// True for the paper's token scheduler (the router keeps its
    /// original single-bid wire protocol for it).
    pub fn is_token(&self) -> bool {
        matches!(self, SchedKind::Token)
    }

    /// The three real schedulers at reference parameters, for sweeps.
    pub fn all() -> [SchedKind; 3] {
        [
            SchedKind::Token,
            SchedKind::Islip { iters: 4 },
            SchedKind::CrosspointQueued { capacity: 4 },
        ]
    }
}

/// Check a matching against the requests that produced it: every
/// connection must be requested, and no output may serve two inputs.
pub fn matching_is_valid(requests: &[u16], matching: &[Option<u8>]) -> bool {
    if matching.len() != requests.len() {
        return false;
    }
    let mut used = 0u32;
    for (i, &g) in matching.iter().enumerate() {
        let Some(j) = g else { continue };
        let j = j as usize;
        if j >= requests.len() || requests[i] & (1 << j) == 0 {
            return false; // unrequested grant
        }
        if used & (1 << j) != 0 {
            return false; // output double-granted
        }
        used |= 1 << j;
    }
    true
}

/// Grants in a matching (matched input/output pairs).
pub fn matching_size(matching: &[Option<u8>]) -> usize {
    matching.iter().filter(|m| m.is_some()).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_request_matrices(n: usize) -> impl Iterator<Item = Vec<u16>> {
        let full = 1u32 << n;
        let total = full.pow(n as u32);
        (0..total).map(move |mut x| {
            (0..n)
                .map(|_| {
                    let m = (x % full) as u16;
                    x /= full;
                    m
                })
                .collect()
        })
    }

    #[test]
    fn matching_validity_catches_conflicts_and_phantom_grants() {
        let reqs = vec![0b0001u16, 0b0011, 0b0100, 0b0000];
        assert!(matching_is_valid(&reqs, &[Some(0), Some(1), Some(2), None]));
        // Output 0 granted twice.
        assert!(!matching_is_valid(&reqs, &[Some(0), Some(0), None, None]));
        // Input 3 granted without a request.
        assert!(!matching_is_valid(&reqs, &[None, None, None, Some(3)]));
        // Input 2 granted an output it did not request.
        assert!(!matching_is_valid(&reqs, &[None, None, Some(3), None]));
    }

    #[test]
    fn every_scheduler_is_valid_over_the_exhaustive_one_shot_space() {
        // 4 ports, all 16^4 request matrices, fresh state each: the
        // stateful-trace version of this check is RV801's job.
        for kind in SchedKind::all() {
            let mut s = kind.build(4);
            for reqs in all_request_matrices(4) {
                s.reset();
                let m = s.arbitrate(&reqs);
                assert!(
                    matching_is_valid(&reqs, &m),
                    "{}: invalid matching {m:?} for requests {reqs:?}",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn full_diagonal_demand_yields_a_perfect_matching() {
        for kind in SchedKind::all() {
            let mut s = kind.build(4);
            // Permutation demand: input i -> output (i+1)%4 only.
            let reqs: Vec<u16> = (0..4).map(|i| 1u16 << ((i + 1) % 4)).collect();
            // Warm the crosspoint buffers / pointers, then demand a full
            // matching every slot.
            for _ in 0..4 {
                s.arbitrate(&reqs);
            }
            let m = s.arbitrate(&reqs);
            assert_eq!(
                matching_size(&m),
                4,
                "{}: conflict-free demand must be fully granted, got {m:?}",
                kind.name()
            );
        }
    }

    #[test]
    fn schedulers_support_runtime_port_counts() {
        for kind in SchedKind::all() {
            for n in [2usize, 8, 16] {
                let mut s = kind.build(n);
                assert_eq!(s.ports(), n);
                let reqs: Vec<u16> = (0..n).map(|_| ((1u32 << n) - 1) as u16).collect();
                for _ in 0..2 * n {
                    let m = s.arbitrate(&reqs);
                    assert!(matching_is_valid(&reqs, &m));
                }
                // Saturated all-to-all demand: a warmed scheduler must
                // produce a perfect matching.
                let m = s.arbitrate(&reqs);
                assert_eq!(matching_size(&m), n, "{} at n={n}", kind.name());
            }
        }
    }

    #[test]
    fn replicated_instances_stay_in_lockstep() {
        // The four Crossbar Processors each run their own instance over
        // the same bid stream; matchings must agree bit for bit.
        for kind in SchedKind::all() {
            let mut a = kind.build(4);
            let mut b = kind.build(4);
            let mut x = 1u32;
            for _ in 0..500 {
                // xorshift32 request stream
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                let reqs: Vec<u16> = (0..4).map(|i| ((x >> (4 * i)) & 0xf) as u16).collect();
                assert_eq!(a.arbitrate(&reqs), b.arbitrate(&reqs), "{}", kind.name());
            }
        }
    }
}
