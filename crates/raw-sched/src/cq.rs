//! Crosspoint-queued crossbar (FlexCross-style).
//!
//! A buffered crossbar places a small queue at every input×output
//! crosspoint: inputs forward cells into their row without coordinating
//! with other inputs, outputs drain their column without coordinating
//! with other outputs, and the buffers absorb the transient contention
//! that forces iterative matching in a bufferless crossbar. The price
//! is the `n²` buffer area — FlexCross's trade.
//!
//! On the Raw fabric the crosspoint buffers are *virtual*: occupancy
//! counters replicated inside each Crossbar Processor, mirroring the
//! ingress VOQ state that the bid masks report. A granted (i, j) pair
//! streams its payload ingress→egress directly (same static-network
//! path as every other scheduler); the counters only decide *who* gets
//! the path. The mirror is kept honest by clamping: a cleared request
//! bit means the VOQ behind the crosspoint drained, so its virtual
//! occupancy resets to zero.
//!
//! Per slot:
//!
//! 1. **Clamp** — `occ[i][j] := 0` wherever request bit `j` of input
//!    `i` is clear.
//! 2. **Ingest** — each input forwards one cell round-robin into the
//!    first requested crosspoint with room (`occ < capacity` — the
//!    RV803 bound, maintained by construction and re-proved by
//!    induction along every verifier trace).
//! 3. **Drain** — outputs pick in rotating priority order (the rotation
//!    prevents a fixed output from always claiming a shared input
//!    first — the pair-level starvation RV802 would catch); each output
//!    serves the first occupied crosspoint of its column at or after
//!    its round-robin pointer whose input is still unclaimed this slot.

use crate::{Matching, Scheduler};

pub struct CqArb {
    n: usize,
    cap: u32,
    /// Row-major virtual crosspoint occupancy: `occ[i * n + j]`.
    occ: Vec<u32>,
    /// Per-input ingest round-robin pointer (over outputs).
    in_rr: Vec<usize>,
    /// Per-output drain round-robin pointer (over inputs).
    out_rr: Vec<usize>,
    /// Which output drains first this slot (rotates every slot).
    drain_start: usize,
}

impl CqArb {
    pub fn new(n: usize, capacity: u32) -> CqArb {
        assert!((2..=16).contains(&n), "port count {n} out of range");
        assert!(capacity >= 1, "crosspoint buffers need at least one cell");
        CqArb {
            n,
            cap: capacity,
            occ: vec![0; n * n],
            in_rr: vec![0; n],
            out_rr: vec![0; n],
            drain_start: 0,
        }
    }
}

impl Scheduler for CqArb {
    fn name(&self) -> &'static str {
        "cq"
    }

    fn ports(&self) -> usize {
        self.n
    }

    fn arbitrate(&mut self, requests: &[u16]) -> Matching {
        assert_eq!(requests.len(), self.n);
        let n = self.n;
        // 1. Clamp to the real VOQ state.
        for (i, &req) in requests.iter().enumerate() {
            for j in 0..n {
                if req & (1 << j) == 0 {
                    self.occ[i * n + j] = 0;
                }
            }
        }
        // 2. Ingest one cell per input.
        for (i, &req) in requests.iter().enumerate() {
            for k in 0..n {
                let j = (self.in_rr[i] + k) % n;
                if req & (1 << j) != 0 && self.occ[i * n + j] < self.cap {
                    self.occ[i * n + j] += 1;
                    self.in_rr[i] = (j + 1) % n;
                    break;
                }
            }
        }
        // 3. Drain one cell per output, inputs unique across the slot.
        let mut matching = vec![None; n];
        let mut in_used = vec![false; n];
        for k in 0..n {
            let j = (self.drain_start + k) % n;
            for l in 0..n {
                let i = (self.out_rr[j] + l) % n;
                if self.occ[i * n + j] > 0 && !in_used[i] {
                    self.occ[i * n + j] -= 1;
                    self.out_rr[j] = (i + 1) % n;
                    in_used[i] = true;
                    matching[i] = Some(j as u8);
                    break;
                }
            }
        }
        self.drain_start = (self.drain_start + 1) % n;
        matching
    }

    fn reset(&mut self) {
        self.occ.iter_mut().for_each(|o| *o = 0);
        self.in_rr.iter_mut().for_each(|p| *p = 0);
        self.out_rr.iter_mut().for_each(|p| *p = 0);
        self.drain_start = 0;
    }

    fn occupancy(&self) -> Option<(&[u32], u32)> {
        Some((&self.occ, self.cap))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{matching_is_valid, matching_size, Scheduler};

    #[test]
    fn occupancy_never_exceeds_capacity() {
        let mut s = CqArb::new(4, 2);
        let mut x = 7u32;
        for _ in 0..2000 {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            let reqs: Vec<u16> = (0..4).map(|i| ((x >> (4 * i)) & 0xf) as u16).collect();
            let m = s.arbitrate(&reqs);
            assert!(matching_is_valid(&reqs, &m));
            let (occ, cap) = s.occupancy().unwrap();
            assert!(occ.iter().all(|&o| o <= cap));
        }
    }

    #[test]
    fn clamp_mirrors_a_drained_voq() {
        let mut s = CqArb::new(4, 4);
        let reqs = vec![0b0010u16, 0, 0, 0];
        s.arbitrate(&reqs);
        // Queue drained: the request bit clears, the virtual cell must
        // not linger (it would grant a stream with nothing to send).
        let m = s.arbitrate(&[0, 0, 0, 0]);
        assert_eq!(matching_size(&m), 0);
        assert!(s.occupancy().unwrap().0.iter().all(|&o| o == 0));
    }

    #[test]
    fn hotspot_column_serves_all_inputs_round_robin() {
        let mut s = CqArb::new(4, 2);
        let reqs = vec![1u16; 4]; // everyone wants output 0
        let mut served = [0u32; 4];
        for _ in 0..40 {
            let m = s.arbitrate(&reqs);
            assert!(matching_size(&m) <= 1, "one output can serve one input");
            for (i, g) in m.iter().enumerate() {
                if g.is_some() {
                    served[i] += 1;
                }
            }
        }
        let (lo, hi) = (*served.iter().min().unwrap(), *served.iter().max().unwrap());
        assert!(hi - lo <= 1, "column drain must round-robin: {served:?}");
    }

    #[test]
    fn buffers_absorb_a_burst_then_drain() {
        let mut s = CqArb::new(4, 4);
        // Input 0 bursts at output 0 while it is busy with input 1.
        for _ in 0..6 {
            s.arbitrate(&[0b0001, 0b0001, 0, 0]);
        }
        // Burst over: input 0 stops requesting; the clamp clears its
        // leftover virtual cells and only real traffic is granted.
        let m = s.arbitrate(&[0, 0b0001, 0, 0]);
        assert_eq!(m[1], Some(0));
        assert_eq!(m[0], None);
    }
}
