//! The router's *internal* fragmentation framing.
//!
//! §4.2: the Ingress Processor "is also used for fragmentation of IP
//! packets if their size exceeds the internal tile-to-tile data transfer
//! block on the Raw chip", and the Egress Processor "is used to perform
//! the reassembly of large IP packets fragmented by the Ingress
//! Processor". A packet crossing the Rotating Crossbar is cut into
//! fragments of at most one routing quantum; each fragment is prefixed by
//! a one-word tag so the Egress Processor can stitch packets back
//! together. §8.3's computation-in-the-fabric extension rides on spare
//! bits of the same tag.

/// What the switch fabric should compute on a fragment's payload as it
/// streams through (§8.3: "special bits in the headers that are exchanged
/// around the routing ring").
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ComputeOp {
    #[default]
    None,
    /// XOR-stream "encryption" — the demonstration payload transform.
    XorStream,
    /// Running one's-complement sum (payload checksumming offload).
    Checksum,
}

impl ComputeOp {
    fn to_bits(self) -> u32 {
        match self {
            ComputeOp::None => 0,
            ComputeOp::XorStream => 1,
            ComputeOp::Checksum => 2,
        }
    }

    fn from_bits(b: u32) -> ComputeOp {
        match b & 0x3 {
            1 => ComputeOp::XorStream,
            2 => ComputeOp::Checksum,
            _ => ComputeOp::None,
        }
    }
}

/// The one-word fragment tag.
///
/// Layout: `[3:0]` destination port *set* (one bit per output — a single
/// bit for unicast, several for the §8.6 multicast extension), `[6:4]`
/// source port, `[16:7]` payload words in this fragment, `[26:17]`
/// packet sequence number (per source port, wrapping), `[27]` first
/// fragment, `[28]` last fragment, `[30:29]` compute op, `[31]` reserved
/// zero (so a packed tag can never collide with the all-ones control
/// words).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FragTag {
    /// Destination ports as a bit set (bit `p` = output port `p`).
    pub dst_mask: u8,
    pub src_port: u8,
    pub words: u16,
    pub seq: u16,
    pub first: bool,
    pub last: bool,
    pub op: ComputeOp,
}

/// Maximum payload words one fragment can carry (10-bit field).
pub const MAX_FRAG_WORDS: usize = 1023;
/// Sequence numbers wrap at 10 bits.
pub const SEQ_MODULUS: u16 = 1 << 10;

impl FragTag {
    /// A unicast tag's destination port.
    pub fn unicast_dst(&self) -> Option<u8> {
        if self.dst_mask.count_ones() == 1 {
            Some(self.dst_mask.trailing_zeros() as u8)
        } else {
            None
        }
    }

    /// True if the tag fans out to more than one output.
    pub fn is_multicast(&self) -> bool {
        self.dst_mask.count_ones() > 1
    }

    pub fn pack(&self) -> u32 {
        debug_assert!(self.dst_mask < 16 && self.src_port < 8);
        debug_assert!((self.words as usize) <= MAX_FRAG_WORDS);
        debug_assert!(self.seq < SEQ_MODULUS);
        u32::from(self.dst_mask)
            | (u32::from(self.src_port) << 4)
            | (u32::from(self.words) << 7)
            | (u32::from(self.seq) << 17)
            | ((self.first as u32) << 27)
            | ((self.last as u32) << 28)
            | (self.op.to_bits() << 29)
    }

    pub fn unpack(w: u32) -> FragTag {
        FragTag {
            dst_mask: (w & 0xf) as u8,
            src_port: ((w >> 4) & 0x7) as u8,
            words: ((w >> 7) & 0x3ff) as u16,
            seq: ((w >> 17) & 0x3ff) as u16,
            first: (w >> 27) & 1 == 1,
            last: (w >> 28) & 1 == 1,
            op: ComputeOp::from_bits(w >> 29),
        }
    }
}

/// One fragment: its tag plus payload words.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Fragment {
    pub tag: FragTag,
    pub words: Vec<u32>,
}

/// Split a packet's word stream into fragments of at most `quantum`
/// payload words. `seq` identifies the packet (per source port).
pub fn fragment(
    packet_words: &[u32],
    src_port: u8,
    dst_mask: u8,
    seq: u16,
    quantum: usize,
    op: ComputeOp,
) -> Vec<Fragment> {
    assert!(
        (1..=MAX_FRAG_WORDS).contains(&quantum),
        "bad quantum {quantum}"
    );
    assert!(!packet_words.is_empty(), "cannot fragment an empty packet");
    let n = packet_words.len().div_ceil(quantum);
    let mut out = Vec::with_capacity(n);
    for (i, chunk) in packet_words.chunks(quantum).enumerate() {
        out.push(Fragment {
            tag: FragTag {
                dst_mask,
                src_port,
                words: chunk.len() as u16,
                seq: seq % SEQ_MODULUS,
                first: i == 0,
                last: i == n - 1,
                op,
            },
            words: chunk.to_vec(),
        });
    }
    out
}

/// Reassembly error.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReasmError {
    /// A non-first fragment arrived with no packet in progress.
    NoPacketInProgress,
    /// A fragment's sequence number did not match the packet in progress.
    SeqMismatch { expected: u16, got: u16 },
    /// A first fragment arrived while another packet was still open.
    UnexpectedFirst,
    /// The fragment's declared word count disagrees with its payload.
    LengthMismatch,
    /// The accumulated payload disagrees with the total length the IP
    /// header in the first fragment claimed — a duplicated, missing, or
    /// mis-sized fragment. The partial packet is discarded.
    PayloadLengthMismatch { expected: usize, got: usize },
}

/// Expected whole-packet word count, derived from the IPv4 header at the
/// front of a first fragment's payload. `None` when the payload does not
/// start with a plausible option-less IPv4 header (the reassembler also
/// carries opaque word streams in unit tests).
fn expected_packet_words(first_words: &[u32]) -> Option<usize> {
    let w0 = *first_words.first()?;
    if w0 >> 24 != 0x45 {
        return None;
    }
    let total_len = (w0 & 0xffff) as usize;
    if total_len < 20 {
        return None;
    }
    Some(5 + (total_len - 20).div_ceil(4))
}

/// Per-(egress, source-port) reassembler: fragments from one source
/// arrive in order over the crossbar (the fabric preserves per-flow
/// order), so reassembly is a simple accumulation. When the first
/// fragment carries an IPv4 header, the header's total length bounds the
/// accumulation — duplicated or missing fragments surface as
/// [`ReasmError::PayloadLengthMismatch`] instead of a corrupt packet.
#[derive(Clone, Debug, Default)]
pub struct Reassembler {
    in_progress: Option<(u16, Vec<u32>)>,
    /// Word count the in-progress packet must reach, when known.
    expected: Option<usize>,
    /// Completed packets count (for statistics).
    pub completed: u64,
}

impl Reassembler {
    pub fn new() -> Reassembler {
        Reassembler::default()
    }

    /// Feed one fragment; returns the full packet word stream when its
    /// last fragment arrives.
    pub fn push(&mut self, frag: &Fragment) -> Result<Option<Vec<u32>>, ReasmError> {
        if frag.words.len() != frag.tag.words as usize {
            return Err(ReasmError::LengthMismatch);
        }
        match (&mut self.in_progress, frag.tag.first) {
            (Some(_), true) => return Err(ReasmError::UnexpectedFirst),
            (None, false) => return Err(ReasmError::NoPacketInProgress),
            (None, true) => {
                self.expected = expected_packet_words(&frag.words);
                self.in_progress = Some((frag.tag.seq, frag.words.clone()));
            }
            (Some((seq, buf)), false) => {
                if *seq != frag.tag.seq {
                    return Err(ReasmError::SeqMismatch {
                        expected: *seq,
                        got: frag.tag.seq,
                    });
                }
                buf.extend_from_slice(&frag.words);
            }
        }
        let got = self.in_progress.as_ref().map_or(0, |(_, buf)| buf.len());
        if let Some(expected) = self.expected {
            // Overshoot (duplicated fragment) is detectable immediately;
            // undershoot (missing fragment) only once `last` arrives.
            if got > expected || (frag.tag.last && got != expected) {
                self.in_progress = None;
                self.expected = None;
                return Err(ReasmError::PayloadLengthMismatch { expected, got });
            }
        }
        if frag.tag.last {
            let (_, words) = self.in_progress.take().expect("just inserted");
            self.expected = None;
            self.completed += 1;
            Ok(Some(words))
        } else {
            Ok(None)
        }
    }

    /// True if a packet is partially assembled.
    pub fn is_mid_packet(&self) -> bool {
        self.in_progress.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_pack_unpack_roundtrip() {
        let t = FragTag {
            dst_mask: 0b1010,
            src_port: 5,
            words: 1000,
            seq: 0x2bc,
            first: true,
            last: false,
            op: ComputeOp::Checksum,
        };
        assert_eq!(FragTag::unpack(t.pack()), t);
        assert!(t.is_multicast());
        assert_eq!(t.unicast_dst(), None);
        let u = FragTag {
            dst_mask: 0b0100,
            ..t
        };
        assert_eq!(u.unicast_dst(), Some(2));
        // Bit 31 stays clear: tags never collide with all-ones controls.
        assert_eq!(t.pack() >> 31, 0);
    }

    #[test]
    fn fragment_covers_all_words() {
        let words: Vec<u32> = (0..256).collect();
        let frags = fragment(&words, 1, 2, 7, 64, ComputeOp::None);
        assert_eq!(frags.len(), 4);
        assert!(frags[0].tag.first && !frags[0].tag.last);
        assert!(!frags[3].tag.first && frags[3].tag.last);
        let total: usize = frags.iter().map(|f| f.words.len()).sum();
        assert_eq!(total, 256);
    }

    #[test]
    fn small_packet_is_single_fragment() {
        let words: Vec<u32> = (0..16).collect();
        let frags = fragment(&words, 0, 3, 1, 64, ComputeOp::None);
        assert_eq!(frags.len(), 1);
        assert!(frags[0].tag.first && frags[0].tag.last);
        assert_eq!(frags[0].tag.words, 16);
    }

    #[test]
    fn uneven_tail_fragment() {
        let words: Vec<u32> = (0..100).collect();
        let frags = fragment(&words, 0, 0, 0, 64, ComputeOp::None);
        assert_eq!(frags.len(), 2);
        assert_eq!(frags[0].tag.words, 64);
        assert_eq!(frags[1].tag.words, 36);
    }

    #[test]
    fn reassembly_roundtrip() {
        let words: Vec<u32> = (0..500).map(|i| i * 3).collect();
        let frags = fragment(&words, 2, 1, 42, 64, ComputeOp::None);
        let mut r = Reassembler::new();
        let mut out = None;
        for f in &frags {
            out = r.push(f).unwrap();
        }
        assert_eq!(out.unwrap(), words);
        assert_eq!(r.completed, 1);
        assert!(!r.is_mid_packet());
    }

    #[test]
    fn reassembly_detects_protocol_violations() {
        let words: Vec<u32> = (0..128).collect();
        let frags = fragment(&words, 0, 0, 9, 64, ComputeOp::None);
        let mut r = Reassembler::new();
        // Non-first fragment with nothing open.
        assert_eq!(r.push(&frags[1]), Err(ReasmError::NoPacketInProgress));
        // Open a packet, then feed a wrong-seq continuation.
        assert_eq!(r.push(&frags[0]), Ok(None));
        let mut bad = frags[1].clone();
        bad.tag.seq = 10;
        assert_eq!(
            r.push(&bad),
            Err(ReasmError::SeqMismatch {
                expected: 9,
                got: 10
            })
        );
        // Another first while mid-packet.
        assert_eq!(r.push(&frags[0]), Err(ReasmError::UnexpectedFirst));
        // Length mismatch.
        let mut short = frags[1].clone();
        short.words.pop();
        assert_eq!(r.push(&short), Err(ReasmError::LengthMismatch));
    }

    #[test]
    fn header_length_check_catches_duplicate_and_missing_fragments() {
        use crate::packet::Packet;
        let p = Packet::synthetic(1, 2, 512, 64, 11);
        let frags = fragment(&p.to_words(), 0, 1, 3, 32, ComputeOp::None);
        assert!(frags.len() >= 4, "want a multi-fragment packet");

        // Duplicated middle fragment: the stream overshoots the header's
        // claimed length by the time `last` arrives, never yielding a
        // corrupt packet.
        let mut r = Reassembler::new();
        let mut caught = false;
        for f in frags[..2].iter().chain(&frags[1..]) {
            match r.push(f) {
                Ok(done) => assert!(done.is_none(), "corrupt packet delivered"),
                Err(e) => {
                    assert!(matches!(e, ReasmError::PayloadLengthMismatch { .. }));
                    caught = true;
                    break;
                }
            }
        }
        assert!(caught, "duplicate fragment went unnoticed");
        assert!(!r.is_mid_packet(), "bad accumulation must be discarded");

        // Missing middle fragment: caught when `last` arrives short.
        let mut r = Reassembler::new();
        assert_eq!(r.push(&frags[0]), Ok(None));
        for f in &frags[2..] {
            let got = r.push(f);
            if f.tag.last {
                assert!(matches!(got, Err(ReasmError::PayloadLengthMismatch { .. })));
            } else {
                assert_eq!(got, Ok(None));
            }
        }
        assert!(!r.is_mid_packet());
    }

    #[test]
    fn seq_wraps_at_modulus() {
        let words: Vec<u32> = (0..8).collect();
        let frags = fragment(&words, 0, 0, SEQ_MODULUS + 5, 64, ComputeOp::None);
        assert_eq!(frags[0].tag.seq, 5);
    }
}
