//! IPv4 header handling: parse, build, verify, and the per-hop mutation a
//! router applies (TTL decrement with incremental checksum update).

use crate::checksum;

/// Errors from header parsing or per-hop processing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IpError {
    Truncated,
    BadVersion(u8),
    BadIhl(u8),
    BadChecksum,
    TtlExpired,
    BadTotalLength,
}

impl std::fmt::Display for IpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IpError::Truncated => write!(f, "truncated header"),
            IpError::BadVersion(v) => write!(f, "bad IP version {v}"),
            IpError::BadIhl(i) => write!(f, "bad IHL {i}"),
            IpError::BadChecksum => write!(f, "header checksum mismatch"),
            IpError::TtlExpired => write!(f, "TTL expired"),
            IpError::BadTotalLength => write!(f, "bad total length"),
        }
    }
}

impl std::error::Error for IpError {}

/// A parsed IPv4 header (options unsupported: IHL must be 5, the common
/// case the paper's fast path handles).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Ipv4Header {
    pub dscp_ecn: u8,
    pub total_len: u16,
    pub id: u16,
    pub flags_frag: u16,
    pub ttl: u8,
    pub proto: u8,
    pub checksum: u16,
    pub src: u32,
    pub dst: u32,
}

/// Header length in bytes (IHL=5).
pub const IPV4_HEADER_BYTES: usize = 20;
/// Header length in 32-bit words.
pub const IPV4_HEADER_WORDS: usize = 5;

impl Ipv4Header {
    /// A fresh header with a correct checksum.
    pub fn new(src: u32, dst: u32, total_len: u16, ttl: u8, proto: u8) -> Ipv4Header {
        let mut h = Ipv4Header {
            dscp_ecn: 0,
            total_len,
            id: 0,
            flags_frag: 0x4000, // DF, as modern stacks default
            ttl,
            proto,
            checksum: 0,
            src,
            dst,
        };
        h.checksum = h.compute_checksum();
        h
    }

    /// Parse and fully validate (version, IHL, checksum, total length).
    ///
    /// Every slice index is bounds-checked against the buffer *before* it
    /// is taken — in particular a header whose IHL claims more bytes than
    /// the buffer holds is an [`IpError::Truncated`] error, never a
    /// slice-index panic.
    pub fn parse(b: &[u8]) -> Result<Ipv4Header, IpError> {
        if b.len() < IPV4_HEADER_BYTES {
            return Err(IpError::Truncated);
        }
        let version = b[0] >> 4;
        if version != 4 {
            return Err(IpError::BadVersion(version));
        }
        let ihl = b[0] & 0xf;
        if ihl < 5 {
            return Err(IpError::BadIhl(ihl));
        }
        // The header claims `ihl * 4` bytes; a shorter buffer is a
        // truncation, whatever the IHL value.
        if b.len() < ihl as usize * 4 {
            return Err(IpError::Truncated);
        }
        // Options (IHL > 5) are unsupported on the fast path.
        if ihl != 5 {
            return Err(IpError::BadIhl(ihl));
        }
        if !checksum::verify(&b[..IPV4_HEADER_BYTES]) {
            return Err(IpError::BadChecksum);
        }
        let h = Ipv4Header {
            dscp_ecn: b[1],
            total_len: u16::from_be_bytes([b[2], b[3]]),
            id: u16::from_be_bytes([b[4], b[5]]),
            flags_frag: u16::from_be_bytes([b[6], b[7]]),
            ttl: b[8],
            proto: b[9],
            checksum: u16::from_be_bytes([b[10], b[11]]),
            src: u32::from_be_bytes([b[12], b[13], b[14], b[15]]),
            dst: u32::from_be_bytes([b[16], b[17], b[18], b[19]]),
        };
        if (h.total_len as usize) < IPV4_HEADER_BYTES {
            return Err(IpError::BadTotalLength);
        }
        Ok(h)
    }

    /// Serialize to 20 bytes with the stored checksum field.
    pub fn to_bytes(&self) -> [u8; IPV4_HEADER_BYTES] {
        let mut b = [0u8; IPV4_HEADER_BYTES];
        b[0] = 0x45;
        b[1] = self.dscp_ecn;
        b[2..4].copy_from_slice(&self.total_len.to_be_bytes());
        b[4..6].copy_from_slice(&self.id.to_be_bytes());
        b[6..8].copy_from_slice(&self.flags_frag.to_be_bytes());
        b[8] = self.ttl;
        b[9] = self.proto;
        b[10..12].copy_from_slice(&self.checksum.to_be_bytes());
        b[12..16].copy_from_slice(&self.src.to_be_bytes());
        b[16..20].copy_from_slice(&self.dst.to_be_bytes());
        b
    }

    /// The correct checksum for the current field values.
    pub fn compute_checksum(&self) -> u16 {
        let mut b = self.to_bytes();
        b[10] = 0;
        b[11] = 0;
        checksum::checksum(&b)
    }

    /// True if the stored checksum matches the fields.
    pub fn checksum_ok(&self) -> bool {
        checksum::verify(&self.to_bytes())
    }

    /// The per-hop forwarding mutation (§4.2: "the necessary processing of
    /// the IP header, including the checksum computation and decrement of
    /// the 'Time to Live' field"). Uses the RFC 1624 incremental update.
    pub fn forward_hop(&mut self) -> Result<(), IpError> {
        if self.ttl <= 1 {
            return Err(IpError::TtlExpired);
        }
        let old_word = u16::from_be_bytes([self.ttl, self.proto]);
        self.ttl -= 1;
        let new_word = u16::from_be_bytes([self.ttl, self.proto]);
        self.checksum = checksum::incremental_update(self.checksum, old_word, new_word);
        Ok(())
    }

    /// Header as five big-endian 32-bit words (the shape in which it
    /// travels over the static network to the Lookup Processor).
    pub fn to_words(&self) -> [u32; IPV4_HEADER_WORDS] {
        let b = self.to_bytes();
        std::array::from_fn(|i| {
            u32::from_be_bytes([b[4 * i], b[4 * i + 1], b[4 * i + 2], b[4 * i + 3]])
        })
    }

    /// Inverse of [`Ipv4Header::to_words`], with validation.
    pub fn from_words(w: &[u32; IPV4_HEADER_WORDS]) -> Result<Ipv4Header, IpError> {
        let mut b = [0u8; IPV4_HEADER_BYTES];
        for (i, word) in w.iter().enumerate() {
            b[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        Ipv4Header::parse(&b)
    }
}

/// Render a dotted-quad address (diagnostics).
pub fn fmt_addr(a: u32) -> String {
    format!(
        "{}.{}.{}.{}",
        (a >> 24) & 0xff,
        (a >> 16) & 0xff,
        (a >> 8) & 0xff,
        a & 0xff
    )
}

/// Parse a dotted-quad address.
pub fn parse_addr(s: &str) -> Option<u32> {
    let mut parts = s.split('.');
    let mut a: u32 = 0;
    for _ in 0..4 {
        let oct: u32 = parts.next()?.parse().ok()?;
        if oct > 255 {
            return None;
        }
        a = (a << 8) | oct;
    }
    if parts.next().is_some() {
        return None;
    }
    Some(a)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hdr() -> Ipv4Header {
        Ipv4Header::new(
            parse_addr("10.0.0.1").unwrap(),
            parse_addr("192.168.1.7").unwrap(),
            1024,
            64,
            6,
        )
    }

    #[test]
    fn build_parse_roundtrip() {
        let h = hdr();
        assert!(h.checksum_ok());
        let b = h.to_bytes();
        let p = Ipv4Header::parse(&b).unwrap();
        assert_eq!(p, h);
    }

    #[test]
    fn words_roundtrip() {
        let h = hdr();
        let w = h.to_words();
        assert_eq!(Ipv4Header::from_words(&w).unwrap(), h);
        // First word carries version/IHL in the top byte.
        assert_eq!(w[0] >> 24, 0x45);
    }

    #[test]
    fn forward_hop_keeps_checksum_valid() {
        let mut h = hdr();
        for expected_ttl in (1..64).rev() {
            h.forward_hop().unwrap();
            assert_eq!(h.ttl, expected_ttl);
            assert!(h.checksum_ok(), "checksum broke at ttl {expected_ttl}");
        }
        assert_eq!(h.forward_hop(), Err(IpError::TtlExpired));
    }

    #[test]
    fn parse_rejects_corruption() {
        let h = hdr();
        let mut b = h.to_bytes();
        b[16] ^= 0x40; // flip a destination bit
        assert_eq!(Ipv4Header::parse(&b), Err(IpError::BadChecksum));
        let mut b = h.to_bytes();
        b[0] = 0x65; // IPv6 version nibble
        assert!(matches!(Ipv4Header::parse(&b), Err(IpError::BadVersion(6))));
        let mut b = h.to_bytes().to_vec();
        b[0] = 0x46; // IHL 6 claims 24 bytes
        assert_eq!(Ipv4Header::parse(&b), Err(IpError::Truncated));
        b.extend_from_slice(&[0; 4]); // now the options fit, but are unsupported
        assert!(matches!(Ipv4Header::parse(&b), Err(IpError::BadIhl(6))));
        let mut b = h.to_bytes();
        b[0] = 0x44; // IHL below the minimum
        assert!(matches!(Ipv4Header::parse(&b), Err(IpError::BadIhl(4))));
        assert_eq!(Ipv4Header::parse(&b[..10]), Err(IpError::Truncated));
    }

    #[test]
    fn parse_never_panics_on_truncated_header_corpus() {
        // Every prefix of a valid header, and of headers claiming larger
        // IHLs, must parse to a clean error — never a slice-index panic.
        let h = hdr();
        for ihl in 5u8..=15 {
            let mut full = h.to_bytes().to_vec();
            full[0] = 0x40 | ihl;
            full.resize(ihl as usize * 4, 0);
            for len in 0..full.len() {
                let got = Ipv4Header::parse(&full[..len]);
                assert_eq!(
                    got,
                    Err(IpError::Truncated),
                    "ihl {ihl} truncated to {len} bytes"
                );
            }
        }
    }

    #[test]
    fn addr_helpers() {
        assert_eq!(parse_addr("1.2.3.4"), Some(0x01020304));
        assert_eq!(parse_addr("256.0.0.1"), None);
        assert_eq!(parse_addr("1.2.3"), None);
        assert_eq!(fmt_addr(0xC0A80107), "192.168.1.7");
    }
}
