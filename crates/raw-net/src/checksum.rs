//! The Internet checksum (RFC 1071) and its incremental update
//! (RFC 1624), as computed by the Ingress Processor when it verifies a
//! header and decrements the TTL.

/// One's-complement sum over 16-bit big-endian words. An odd trailing
/// byte is padded with zero, per RFC 1071.
pub fn ones_complement_sum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [b] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*b, 0]));
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    sum as u16
}

/// The Internet checksum of `data` (the field itself must be zeroed or
/// excluded by the caller).
pub fn checksum(data: &[u8]) -> u16 {
    !ones_complement_sum(data)
}

/// Verify a block whose checksum field is in place: the one's-complement
/// sum of the whole block must be `0xffff`.
pub fn verify(data: &[u8]) -> bool {
    ones_complement_sum(data) == 0xffff
}

/// RFC 1624 incremental update: recompute a checksum after one 16-bit
/// word of the covered data changed from `old_word` to `new_word`.
/// This is the constant-time path a router uses for the TTL decrement.
pub fn incremental_update(old_check: u16, old_word: u16, new_word: u16) -> u16 {
    // HC' = ~(~HC + ~m + m')   (RFC 1624 eqn. 3)
    let mut sum = u32::from(!old_check) + u32::from(!old_word) + u32::from(new_word);
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The classic RFC 1071 worked example.
    #[test]
    fn rfc1071_example() {
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(ones_complement_sum(&data), 0xddf2);
        assert_eq!(checksum(&data), !0xddf2);
    }

    #[test]
    fn checksum_roundtrip_verifies() {
        let mut data = vec![
            0x45u8, 0x00, 0x00, 0x54, 0x12, 0x34, 0x40, 0x00, 0x40, 0x01, 0, 0,
        ];
        data.extend_from_slice(&[10, 0, 0, 1, 10, 0, 0, 2]);
        let c = checksum(&data);
        data[10] = (c >> 8) as u8;
        data[11] = (c & 0xff) as u8;
        assert!(verify(&data));
    }

    #[test]
    fn odd_length_padding() {
        // RFC 1071: odd byte is treated as the high byte of a final word.
        assert_eq!(ones_complement_sum(&[0xab]), 0xab00);
        assert_eq!(ones_complement_sum(&[0x12, 0x34, 0x56]), 0x1234 + 0x5600);
    }

    #[test]
    fn incremental_matches_full_recompute() {
        // TTL decrement changes the (TTL, protocol) 16-bit word.
        let mut hdr = vec![
            0x45u8, 0x00, 0x00, 0x54, 0x12, 0x34, 0x40, 0x00, 64, 6, 0, 0, 10, 1, 2, 3, 10, 4, 5, 6,
        ];
        let c0 = checksum(&hdr);
        hdr[10] = (c0 >> 8) as u8;
        hdr[11] = (c0 & 0xff) as u8;
        assert!(verify(&hdr));
        // Decrement TTL 64 -> 63.
        let old_word = u16::from_be_bytes([hdr[8], hdr[9]]);
        hdr[8] = 63;
        let new_word = u16::from_be_bytes([hdr[8], hdr[9]]);
        let c1_inc = incremental_update(c0, old_word, new_word);
        hdr[10] = 0;
        hdr[11] = 0;
        let c1_full = checksum(&hdr);
        assert_eq!(c1_inc, c1_full);
    }

    #[test]
    fn all_zero_data() {
        assert_eq!(checksum(&[0u8; 20]), 0xffff);
    }
}
