//! # raw-net — the IPv4 substrate of the Raw router
//!
//! Everything the router's data path needs to speak IP:
//!
//! * [`checksum`] — the Internet checksum, including the RFC 1624
//!   incremental update used for TTL decrements;
//! * [`ipv4`] — header parse/build/validate and the per-hop forwarding
//!   mutation performed by the Ingress Processor;
//! * [`packet`] — whole packets as 32-bit word streams (the form in which
//!   line cards feed the Raw static network);
//! * [`frag`] — the router's internal fragmentation framing: packets
//!   larger than one routing quantum cross the Rotating Crossbar as
//!   tagged fragments and are reassembled by the Egress Processor (§4.2),
//!   with spare tag bits carrying the §8.3 compute-in-fabric opcode;
//! * [`corrupt`] — deterministic, length-preserving packet mutators for
//!   the `raw-chaos` fault-injection campaigns.

pub mod checksum;
pub mod corrupt;
pub mod frag;
pub mod ipv4;
pub mod packet;

pub use corrupt::CorruptRng;
pub use frag::{fragment, ComputeOp, FragTag, Fragment, ReasmError, Reassembler, MAX_FRAG_WORDS};
pub use ipv4::{fmt_addr, parse_addr, IpError, Ipv4Header, IPV4_HEADER_BYTES, IPV4_HEADER_WORDS};
pub use packet::Packet;
