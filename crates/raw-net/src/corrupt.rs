//! Deterministic packet-corruption primitives for fault injection.
//!
//! Each mutator takes a packet's on-wire word stream (as produced by
//! [`crate::Packet::to_words`]) and applies one fault class. The mutators
//! are *length-preserving* except [`truncate_tail`]: the header's
//! `total_len` field is never touched, so a corrupted packet still frames
//! exactly as many words as it claims and the router can account for it
//! per-packet (drop the claimed length, resynchronize on the next
//! header). Randomness comes from the caller's [`CorruptRng`] so a fault
//! campaign replays bit-identically from its seed.

use crate::ipv4::{Ipv4Header, IPV4_HEADER_WORDS};

/// A small deterministic RNG (splitmix64 seeding + xorshift64*), so fault
/// injection does not depend on platform RNGs and replays exactly.
#[derive(Clone, Debug)]
pub struct CorruptRng {
    state: u64,
}

impl CorruptRng {
    pub fn new(seed: u64) -> CorruptRng {
        // splitmix64 step so nearby seeds diverge immediately.
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        CorruptRng {
            state: if z == 0 { 1 } else { z },
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u32) -> u32 {
        assert!(n > 0);
        (self.next_u64() % u64::from(n)) as u32
    }

    /// True with probability `ppm` parts-per-million.
    pub fn chance_ppm(&mut self, ppm: u32) -> bool {
        ppm > 0 && self.next_u64() % 1_000_000 < u64::from(ppm)
    }
}

/// Flip one header bit, never in the `total_len` field, so the packet
/// still frames correctly but fails validation (checksum, version, or
/// IHL) at the ingress parse.
pub fn flip_header_bit(words: &mut [u32], rng: &mut CorruptRng) {
    assert!(words.len() >= IPV4_HEADER_WORDS);
    // Header bits 0..160, little-end of word 0 first; bits 0..16 of word
    // 0 are total_len and stay intact.
    let bit = loop {
        let b = rng.below(32 * IPV4_HEADER_WORDS as u32);
        if b >= 16 {
            break b;
        }
    };
    words[bit as usize / 32] ^= 1 << (bit % 32);
}

/// Flip one payload bit (no-op for header-only packets). The IP checksum
/// covers only the header, so the packet is still *delivered* — payload
/// integrity is the end host's problem, exactly as on a real router.
pub fn flip_payload_bit(words: &mut [u32], rng: &mut CorruptRng) {
    let payload_words = words.len() - IPV4_HEADER_WORDS;
    if payload_words == 0 {
        return;
    }
    let bit = rng.below(32 * payload_words as u32);
    words[IPV4_HEADER_WORDS + bit as usize / 32] ^= 1 << (bit % 32);
}

/// Drop 1..=len-1 tail words: the wire goes idle before the header's
/// claimed length arrives.
pub fn truncate_tail(words: &mut Vec<u32>, rng: &mut CorruptRng) {
    let cut = 1 + rng.below(words.len() as u32 - 1) as usize;
    words.truncate(words.len() - cut);
}

/// XOR the checksum field with a random nonzero 16-bit value.
pub fn bad_checksum(words: &mut [u32], rng: &mut CorruptRng) {
    let x = 1 + rng.below(0xffff);
    words[2] ^= x; // word 2 low half is the checksum field
}

/// Set TTL to 0 or 1 with a recomputed checksum: a well-formed packet
/// that expires at this hop.
pub fn expire_ttl(words: &mut [u32], rng: &mut CorruptRng) {
    rewrite_header(words, |h| h.ttl = (rng.below(2)) as u8);
}

/// Set the version nibble to a random non-4 value, checksum recomputed so
/// the version check is what rejects it.
pub fn bad_version(words: &mut [u32], rng: &mut CorruptRng) {
    let v = loop {
        let v = rng.below(16);
        if v != 4 {
            break v;
        }
    };
    words[0] = (words[0] & 0x0fff_ffff) | (v << 28);
    fix_checksum_raw(words);
}

/// Set the IHL nibble to a random non-5 value, checksum recomputed. Small
/// values reject as `BadIhl`; large values claim more header bytes than
/// arrive and reject as `Truncated` — the satellite-1 hardening path.
pub fn bad_ihl(words: &mut [u32], rng: &mut CorruptRng) {
    let i = loop {
        let i = rng.below(16);
        if i != 5 {
            break i;
        }
    };
    words[0] = (words[0] & 0xf0ff_ffff) | (i << 24);
    fix_checksum_raw(words);
}

/// Parse, mutate, and re-serialize the header with a correct checksum.
fn rewrite_header(words: &mut [u32], f: impl FnOnce(&mut Ipv4Header)) {
    let mut hw = [0u32; IPV4_HEADER_WORDS];
    hw.copy_from_slice(&words[..IPV4_HEADER_WORDS]);
    let mut h = Ipv4Header::from_words(&hw).expect("corrupting a valid packet");
    f(&mut h);
    h.checksum = h.compute_checksum();
    words[..IPV4_HEADER_WORDS].copy_from_slice(&h.to_words());
}

/// Recompute the checksum over the raw header words without parsing
/// (needed once the version/IHL fields are already garbage).
fn fix_checksum_raw(words: &mut [u32]) {
    words[2] &= 0xffff_0000; // zero the checksum field
    let mut sum: u32 = 0;
    for w in words[..IPV4_HEADER_WORDS].iter() {
        sum += w >> 16;
        sum += w & 0xffff;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    words[2] |= !sum & 0xffff;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipv4::IpError;
    use crate::packet::Packet;

    fn words() -> Vec<u32> {
        Packet::synthetic(0x0a000001, 0x0a010001, 256, 64, 7).to_words()
    }

    fn parse5(w: &[u32]) -> Result<Ipv4Header, IpError> {
        let mut hw = [0u32; IPV4_HEADER_WORDS];
        hw.copy_from_slice(&w[..IPV4_HEADER_WORDS]);
        Ipv4Header::from_words(&hw)
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = CorruptRng::new(0xC4A0);
        let mut b = CorruptRng::new(0xC4A0);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = CorruptRng::new(0xC4A1);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn header_flip_always_rejects_and_preserves_length() {
        for seed in 0..200 {
            let mut rng = CorruptRng::new(seed);
            let mut w = words();
            let before = w.len();
            flip_header_bit(&mut w, &mut rng);
            assert_eq!(w.len(), before);
            assert_eq!(w[0] & 0xffff, 256, "total_len must survive");
            assert!(parse5(&w).is_err(), "seed {seed} still parsed");
        }
    }

    #[test]
    fn payload_flip_still_parses() {
        for seed in 0..50 {
            let mut rng = CorruptRng::new(seed);
            let mut w = words();
            flip_payload_bit(&mut w, &mut rng);
            assert_eq!(parse5(&w).unwrap().total_len, 256);
            assert_ne!(w, words(), "a payload bit must actually flip");
        }
    }

    #[test]
    fn classified_mutations_reject_as_claimed() {
        for seed in 0..50 {
            let mut rng = CorruptRng::new(seed);
            let mut w = words();
            bad_checksum(&mut w, &mut rng);
            assert_eq!(parse5(&w), Err(IpError::BadChecksum));

            let mut w = words();
            expire_ttl(&mut w, &mut rng);
            let h = parse5(&w).unwrap();
            assert!(h.ttl <= 1);
            assert!(h.checksum_ok());

            let mut w = words();
            bad_version(&mut w, &mut rng);
            assert!(matches!(parse5(&w), Err(IpError::BadVersion(_))));

            let mut w = words();
            bad_ihl(&mut w, &mut rng);
            assert!(matches!(
                parse5(&w),
                Err(IpError::BadIhl(_)) | Err(IpError::Truncated)
            ));

            let mut w = words();
            let before = w.len();
            truncate_tail(&mut w, &mut rng);
            assert!(!w.is_empty() && w.len() < before);
        }
    }
}
