//! Whole packets as the router sees them: an IPv4 header plus payload,
//! convertible to and from the 32-bit word streams that flow over the Raw
//! static network edge ports.

use crate::ipv4::{IpError, Ipv4Header, IPV4_HEADER_BYTES, IPV4_HEADER_WORDS};

/// An IPv4 packet. `payload` excludes the header; the header's
/// `total_len` is kept consistent with `payload.len()`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Packet {
    pub header: Ipv4Header,
    pub payload: Vec<u8>,
}

impl Packet {
    /// Build a packet of exactly `total_bytes` (header + payload), with a
    /// deterministic payload pattern derived from `seed`.
    pub fn synthetic(src: u32, dst: u32, total_bytes: usize, ttl: u8, seed: u32) -> Packet {
        assert!(
            (IPV4_HEADER_BYTES..=65535).contains(&total_bytes),
            "total length out of range: {total_bytes}"
        );
        let payload_len = total_bytes - IPV4_HEADER_BYTES;
        let mut payload = Vec::with_capacity(payload_len);
        let mut x = seed ^ 0x9e37_79b9;
        for i in 0..payload_len {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            payload.push((x >> 24) as u8 ^ i as u8);
        }
        Packet {
            header: Ipv4Header::new(src, dst, total_bytes as u16, ttl, 17),
            payload,
        }
    }

    /// Total on-wire length in bytes.
    pub fn total_bytes(&self) -> usize {
        IPV4_HEADER_BYTES + self.payload.len()
    }

    /// Total length in 32-bit words, rounding the payload up to a whole
    /// word (the static network moves whole words; the header's
    /// `total_len` preserves the exact byte count).
    pub fn total_words(&self) -> usize {
        IPV4_HEADER_WORDS + self.payload.len().div_ceil(4)
    }

    /// Serialize to the word stream a line card feeds into the chip.
    pub fn to_words(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.total_words());
        out.extend_from_slice(&self.header.to_words());
        let mut chunks = self.payload.chunks_exact(4);
        for c in &mut chunks {
            out.push(u32::from_be_bytes([c[0], c[1], c[2], c[3]]));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut last = [0u8; 4];
            last[..rem.len()].copy_from_slice(rem);
            out.push(u32::from_be_bytes(last));
        }
        out
    }

    /// Parse a word stream back into a packet, validating the header and
    /// length framing.
    pub fn from_words(words: &[u32]) -> Result<Packet, IpError> {
        if words.len() < IPV4_HEADER_WORDS {
            return Err(IpError::Truncated);
        }
        let mut hw = [0u32; IPV4_HEADER_WORDS];
        hw.copy_from_slice(&words[..IPV4_HEADER_WORDS]);
        let header = Ipv4Header::from_words(&hw)?;
        let payload_len = header.total_len as usize - IPV4_HEADER_BYTES;
        let need_words = IPV4_HEADER_WORDS + payload_len.div_ceil(4);
        if words.len() < need_words {
            return Err(IpError::Truncated);
        }
        let mut payload = Vec::with_capacity(payload_len);
        for (i, w) in words[IPV4_HEADER_WORDS..need_words].iter().enumerate() {
            let b = w.to_be_bytes();
            let take = (payload_len - 4 * i).min(4);
            payload.extend_from_slice(&b[..take]);
        }
        Ok(Packet { header, payload })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_sizes_match_paper_sweep() {
        // The evaluation sweeps 64..1024-byte packets.
        for size in [64usize, 128, 256, 512, 1024] {
            let p = Packet::synthetic(1, 2, size, 64, 42);
            assert_eq!(p.total_bytes(), size);
            assert_eq!(p.header.total_len as usize, size);
            assert_eq!(p.total_words(), size / 4, "sizes are word multiples");
        }
    }

    #[test]
    fn word_roundtrip_exact() {
        let p = Packet::synthetic(0x0a000001, 0xc0a80101, 256, 64, 7);
        let w = p.to_words();
        assert_eq!(w.len(), 64);
        let q = Packet::from_words(&w).unwrap();
        assert_eq!(q, p);
    }

    #[test]
    fn word_roundtrip_unaligned_payload() {
        // 67 bytes: payload of 47 bytes, 12 words ceil -> padding in play.
        let p = Packet::synthetic(1, 2, 67, 9, 3);
        let w = p.to_words();
        assert_eq!(w.len(), 5 + 12);
        let q = Packet::from_words(&w).unwrap();
        assert_eq!(q, p);
    }

    #[test]
    fn from_words_rejects_truncation() {
        let p = Packet::synthetic(1, 2, 128, 64, 1);
        let w = p.to_words();
        assert!(Packet::from_words(&w[..3]).is_err());
        assert!(Packet::from_words(&w[..w.len() - 1]).is_err());
    }

    #[test]
    fn deterministic_payloads() {
        let a = Packet::synthetic(1, 2, 512, 64, 5);
        let b = Packet::synthetic(1, 2, 512, 64, 5);
        let c = Packet::synthetic(1, 2, 512, 64, 6);
        assert_eq!(a, b);
        assert_ne!(a.payload, c.payload);
    }
}
