//! Property tests over the IPv4 substrate: serialization round trips,
//! checksum algebra, and fragmentation/reassembly identity.

use proptest::prelude::*;
use raw_net::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Packet -> words -> packet is the identity for any size/fields.
    #[test]
    fn packet_word_roundtrip(
        src in any::<u32>(),
        dst in any::<u32>(),
        bytes in 20usize..2000,
        ttl in 2u8..255,
        seed in any::<u32>(),
    ) {
        let p = Packet::synthetic(src, dst, bytes, ttl, seed);
        let q = Packet::from_words(&p.to_words()).unwrap();
        prop_assert_eq!(p, q);
    }

    /// The RFC 1624 incremental checksum update matches a full
    /// recomputation for any starting header and any number of hops.
    #[test]
    fn incremental_checksum_matches_full(
        src in any::<u32>(),
        dst in any::<u32>(),
        ttl in 2u8..255,
        hops in 1u8..64,
    ) {
        let mut h = Ipv4Header::new(src, dst, 500, ttl, 17);
        let hops = hops.min(ttl - 1);
        for _ in 0..hops {
            h.forward_hop().unwrap();
        }
        prop_assert_eq!(h.ttl, ttl - hops);
        prop_assert!(h.checksum_ok(), "incremental update drifted");
        prop_assert_eq!(h.checksum, h.compute_checksum());
    }

    /// Any corruption of a serialized header is caught by parse (the
    /// checksum covers every byte).
    #[test]
    fn parse_rejects_any_single_bit_flip(
        src in any::<u32>(),
        dst in any::<u32>(),
        bit in 0usize..160,
    ) {
        let h = Ipv4Header::new(src, dst, 100, 64, 6);
        let mut b = h.to_bytes();
        b[bit / 8] ^= 1 << (bit % 8);
        // Either the checksum/format catches it, or (for checksum-field
        // flips) the checksum no longer matches the fields.
        match Ipv4Header::parse(&b) {
            Err(_) => {}
            Ok(parsed) => prop_assert!(
                parsed != h,
                "a bit flip must never parse back to the original"
            ),
        }
    }

    /// fragment + reassemble is the identity for any packet and quantum.
    #[test]
    fn fragment_reassemble_identity(
        words in proptest::collection::vec(any::<u32>(), 1..600),
        quantum in 1usize..128,
        src in 0u8..4,
        dst in 0u8..4,
        seq in 0u16..1024,
    ) {
        let frags = fragment(&words, src, 1 << dst, seq, quantum, ComputeOp::None);
        prop_assert_eq!(frags.len(), words.len().div_ceil(quantum));
        let mut r = Reassembler::new();
        let mut out = None;
        for f in &frags {
            prop_assert!(f.words.len() <= quantum);
            prop_assert_eq!(f.tag.src_port, src);
            out = r.push(f).unwrap();
        }
        prop_assert_eq!(out.unwrap(), words);
    }

    /// Fragment tags survive pack/unpack for every field combination.
    #[test]
    fn tag_roundtrip(
        dst_mask in 0u8..16,
        src in 0u8..8,
        words in 0u16..1024,
        seq in 0u16..1024,
        first in any::<bool>(),
        last in any::<bool>(),
    ) {
        let t = FragTag {
            dst_mask,
            src_port: src,
            words,
            seq,
            first,
            last,
            op: ComputeOp::XorStream,
        };
        prop_assert_eq!(FragTag::unpack(t.pack()), t);
        prop_assert_eq!(t.pack() >> 31, 0, "bit 31 reserved clear");
    }
}
