//! Property tests over the IPv4 substrate: serialization round trips,
//! checksum algebra, and fragmentation/reassembly identity.

use proptest::prelude::*;
use raw_net::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Packet -> words -> packet is the identity for any size/fields.
    #[test]
    fn packet_word_roundtrip(
        src in any::<u32>(),
        dst in any::<u32>(),
        bytes in 20usize..2000,
        ttl in 2u8..255,
        seed in any::<u32>(),
    ) {
        let p = Packet::synthetic(src, dst, bytes, ttl, seed);
        let q = Packet::from_words(&p.to_words()).unwrap();
        prop_assert_eq!(p, q);
    }

    /// The RFC 1624 incremental checksum update matches a full
    /// recomputation for any starting header and any number of hops.
    #[test]
    fn incremental_checksum_matches_full(
        src in any::<u32>(),
        dst in any::<u32>(),
        ttl in 2u8..255,
        hops in 1u8..64,
    ) {
        let mut h = Ipv4Header::new(src, dst, 500, ttl, 17);
        let hops = hops.min(ttl - 1);
        for _ in 0..hops {
            h.forward_hop().unwrap();
        }
        prop_assert_eq!(h.ttl, ttl - hops);
        prop_assert!(h.checksum_ok(), "incremental update drifted");
        prop_assert_eq!(h.checksum, h.compute_checksum());
    }

    /// Any corruption of a serialized header is caught by parse (the
    /// checksum covers every byte).
    #[test]
    fn parse_rejects_any_single_bit_flip(
        src in any::<u32>(),
        dst in any::<u32>(),
        bit in 0usize..160,
    ) {
        let h = Ipv4Header::new(src, dst, 100, 64, 6);
        let mut b = h.to_bytes();
        b[bit / 8] ^= 1 << (bit % 8);
        // Either the checksum/format catches it, or (for checksum-field
        // flips) the checksum no longer matches the fields.
        match Ipv4Header::parse(&b) {
            Err(_) => {}
            Ok(parsed) => prop_assert!(
                parsed != h,
                "a bit flip must never parse back to the original"
            ),
        }
    }

    /// fragment + reassemble is the identity for any packet and quantum.
    #[test]
    fn fragment_reassemble_identity(
        words in proptest::collection::vec(any::<u32>(), 1..600),
        quantum in 1usize..128,
        src in 0u8..4,
        dst in 0u8..4,
        seq in 0u16..1024,
    ) {
        let frags = fragment(&words, src, 1 << dst, seq, quantum, ComputeOp::None);
        prop_assert_eq!(frags.len(), words.len().div_ceil(quantum));
        let mut r = Reassembler::new();
        let mut out = None;
        for f in &frags {
            prop_assert!(f.words.len() <= quantum);
            prop_assert_eq!(f.tag.src_port, src);
            out = r.push(f).unwrap();
        }
        prop_assert_eq!(out.unwrap(), words);
    }

    /// Fragment tags survive pack/unpack for every field combination.
    #[test]
    fn tag_roundtrip(
        dst_mask in 0u8..16,
        src in 0u8..8,
        words in 0u16..1024,
        seq in 0u16..1024,
        first in any::<bool>(),
        last in any::<bool>(),
    ) {
        let t = FragTag {
            dst_mask,
            src_port: src,
            words,
            seq,
            first,
            last,
            op: ComputeOp::XorStream,
        };
        prop_assert_eq!(FragTag::unpack(t.pack()), t);
        prop_assert_eq!(t.pack() >> 31, 0, "bit 31 reserved clear");
    }
}

// === Adversarial reassembly campaign ===
//
// The fabric preserves per-flow fragment order, but the reassembler must
// survive anything an adversarial (or faulty) stream throws at it:
// duplicated, missing, displaced, and cross-packet fragments. The
// guarantees checked here: `push` never panics, a completed packet with
// an IPv4-headed first fragment always has exactly the length its header
// claims, and every detectable mutation class surfaces as a `ReasmError`
// instead of a corrupt packet.

/// Outcome of feeding a whole fragment stream.
struct Fed {
    completions: Vec<Vec<u32>>,
    errors: Vec<ReasmError>,
}

fn feed(r: &mut Reassembler, stream: &[Fragment]) -> Fed {
    let mut fed = Fed {
        completions: Vec::new(),
        errors: Vec::new(),
    };
    for f in stream {
        match r.push(f) {
            Ok(Some(w)) => fed.completions.push(w),
            Ok(None) => {}
            Err(e) => fed.errors.push(e),
        }
    }
    fed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary garbage fragment streams never panic, and any packet
    /// completed from an IPv4-headed first fragment has exactly the
    /// word count the header claims — duplication and loss can only
    /// surface as errors, never as a mis-sized packet.
    #[test]
    fn reassembler_survives_arbitrary_fragment_streams(
        seed in any::<u64>(),
        n in 1usize..48,
    ) {
        let mut rng = CorruptRng::new(seed);
        let mut r = Reassembler::new();
        for _ in 0..n {
            let claim = rng.below(12) as u16;
            let actual = if rng.chance_ppm(800_000) {
                claim as usize
            } else {
                rng.below(12) as usize
            };
            let frag = Fragment {
                tag: FragTag {
                    dst_mask: (rng.below(15) + 1) as u8,
                    src_port: rng.below(4) as u8,
                    words: claim,
                    seq: rng.below(1024) as u16,
                    first: rng.chance_ppm(400_000),
                    last: rng.chance_ppm(400_000),
                    op: ComputeOp::None,
                },
                words: (0..actual).map(|_| rng.next_u32()).collect(),
            };
            if let Ok(Some(w)) = r.push(&frag) {
                if let Some(first) = w.first() {
                    if first >> 24 == 0x45 && (first & 0xffff) >= 20 {
                        let expect = 5 + ((first & 0xffff) as usize - 20).div_ceil(4);
                        prop_assert_eq!(
                            w.len(), expect,
                            "completed a mis-sized IPv4 packet"
                        );
                    }
                }
            }
        }
    }

    /// Structured mutations of a real packet's fragment stream: each
    /// detectable class must produce an error and never a corrupt
    /// completion. The one undetectable class — an interior swap of
    /// equal-size fragments — still yields the exact claimed length
    /// (in-fabric order itself is the router's invariant, enforced by
    /// the egress protocol checker and the chaos battery).
    #[test]
    fn mutated_fragment_streams_are_detected_or_exact(
        bytes in 400usize..1500,
        quantum in 6usize..33,
        seed in any::<u32>(),
        mutation in 0usize..6,
        pick in any::<u64>(),
    ) {
        let p = Packet::synthetic(0x0a0a_0001, 0x0a01_0001, bytes, 64, seed);
        let words = p.to_words();
        let frags = fragment(&words, 0, 1, (seed % 1024) as u16, quantum, ComputeOp::None);
        let n = frags.len();
        prop_assert!(n >= 4, "need interior fragments for every mutation class");
        let mut stream = frags.clone();
        match mutation {
            0 => {
                // Duplicate an interior fragment: overshoot.
                let k = 1 + (pick as usize) % (n - 2);
                stream.insert(k, frags[k].clone());
            }
            1 => {
                // Drop an interior fragment: undershoot at `last`.
                let k = 1 + (pick as usize) % (n - 2);
                stream.remove(k);
            }
            2 => {
                // Drop the first fragment entirely.
                stream.remove(0);
            }
            3 => {
                // Displace `first` mid-stream (out-of-order delivery).
                let k = 1 + (pick as usize) % (n - 1);
                stream.rotate_left(k);
            }
            4 => {
                // Interior adjacent swap: equal sizes, undetectable by
                // the tag protocol — length must still be exact.
                let k = 1 + (pick as usize) % (n - 3);
                stream.swap(k, k + 1);
            }
            _ => {
                // Splice in one fragment of a *different* packet.
                let other = fragment(
                    &words,
                    0,
                    1,
                    ((seed % 1024) ^ 1) as u16,
                    quantum,
                    ComputeOp::None,
                );
                let k = 1 + (pick as usize) % (n - 2);
                stream.insert(k, other[k].clone());
            }
        }
        let mut r = Reassembler::new();
        let fed = feed(&mut r, &stream);
        match mutation {
            0..=3 => {
                prop_assert!(!fed.errors.is_empty(), "mutation {mutation} went undetected");
                prop_assert!(
                    fed.completions.is_empty(),
                    "mutation {mutation} completed a packet from a broken stream"
                );
            }
            4 => {
                prop_assert_eq!(fed.completions.len(), 1);
                prop_assert_eq!(fed.completions[0].len(), words.len());
            }
            _ => {
                // The foreign fragment is rejected (SeqMismatch) without
                // poisoning the packet in progress: the original still
                // reassembles exactly.
                prop_assert!(fed
                    .errors
                    .iter()
                    .any(|e| matches!(e, ReasmError::SeqMismatch { .. })));
                prop_assert_eq!(fed.completions.len(), 1);
                prop_assert_eq!(&fed.completions[0], &words);
            }
        }
    }
}
