//! A cell-based input-queued crossbar with FIFO or virtual-output
//! queueing and the iSLIP scheduler — the conventional fabric of §2.2.2
//! (the Cisco 12000 GSR backplane).
//!
//! Reproduces the background claims the Rotating Crossbar is measured
//! against:
//!
//! * FIFO input queues suffer head-of-line blocking, capping saturation
//!   throughput near 58.6 % (2 − √2) for large N;
//! * virtual output queueing plus iSLIP restores ~100 %;
//! * iSLIP's request/grant/accept iterations converge in O(log N).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Input queueing discipline.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Queueing {
    /// One FIFO per input; only the head cell can bid (HOL blocking).
    Fifo,
    /// One queue per (input, output) pair (VOQ).
    Voq,
}

/// Fabric configuration.
#[derive(Clone, Debug)]
pub struct FabricConfig {
    pub ports: usize,
    pub queueing: Queueing,
    /// iSLIP iterations per time slot.
    pub islip_iters: u32,
    /// Per-input queue capacity in cells (shared across VOQs).
    pub queue_capacity: usize,
    pub seed: u64,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            ports: 16,
            queueing: Queueing::Voq,
            islip_iters: 4,
            queue_capacity: 10_000,
            seed: 1,
        }
    }
}

/// Results of a run.
#[derive(Clone, Debug, Default)]
pub struct FabricReport {
    pub slots: u64,
    pub offered_cells: u64,
    pub delivered_cells: u64,
    pub dropped_cells: u64,
    /// Sum of (departure - arrival) over delivered cells.
    pub total_delay_slots: u64,
    /// Total iSLIP iterations actually used (for convergence studies).
    pub iterations_used: u64,
    /// Slots in which the matching was maximal for the pending traffic.
    pub matches_made: u64,
}

impl FabricReport {
    /// Delivered cells per port per slot — 1.0 is full line rate.
    pub fn throughput(&self, ports: usize) -> f64 {
        self.delivered_cells as f64 / (self.slots as f64 * ports as f64)
    }

    pub fn mean_delay(&self) -> f64 {
        if self.delivered_cells == 0 {
            0.0
        } else {
            self.total_delay_slots as f64 / self.delivered_cells as f64
        }
    }
}

struct Cell {
    dst: usize,
    arrived: u64,
}

/// The simulator.
pub struct CrossbarSim {
    cfg: FabricConfig,
    /// `queues[input][q]`: FIFO mode uses q=0 only; VOQ uses q=dst.
    queues: Vec<Vec<VecDeque<Cell>>>,
    grant_ptr: Vec<usize>,
    accept_ptr: Vec<usize>,
    rng: StdRng,
    pub report: FabricReport,
    slot: u64,
}

impl CrossbarSim {
    pub fn new(cfg: FabricConfig) -> CrossbarSim {
        let n = cfg.ports;
        let qs = match cfg.queueing {
            Queueing::Fifo => 1,
            Queueing::Voq => n,
        };
        CrossbarSim {
            rng: StdRng::seed_from_u64(cfg.seed),
            queues: (0..n)
                .map(|_| (0..qs).map(|_| VecDeque::new()).collect())
                .collect(),
            grant_ptr: vec![0; n],
            accept_ptr: vec![0; n],
            cfg,
            report: FabricReport::default(),
            slot: 0,
        }
    }

    fn occupancy(&self, input: usize) -> usize {
        self.queues[input].iter().map(|q| q.len()).sum()
    }

    /// Enqueue an arrival at `input` destined to `dst`.
    pub fn arrive(&mut self, input: usize, dst: usize) {
        self.report.offered_cells += 1;
        if self.occupancy(input) >= self.cfg.queue_capacity {
            self.report.dropped_cells += 1;
            return;
        }
        let q = match self.cfg.queueing {
            Queueing::Fifo => 0,
            Queueing::Voq => dst,
        };
        self.queues[input][q].push_back(Cell {
            dst,
            arrived: self.slot,
        });
    }

    /// Which outputs input `i` can bid for this slot.
    fn requests(&self, i: usize) -> Vec<usize> {
        match self.cfg.queueing {
            Queueing::Fifo => self.queues[i][0]
                .front()
                .map(|c| c.dst)
                .into_iter()
                .collect(),
            Queueing::Voq => (0..self.cfg.ports)
                .filter(|&d| !self.queues[i][d].is_empty())
                .collect(),
        }
    }

    /// One slot: Bernoulli arrivals at `load` (cells/port/slot) with
    /// uniform destinations, then iSLIP matching and departures.
    pub fn step_uniform(&mut self, load: f64) {
        let n = self.cfg.ports;
        for i in 0..n {
            if self.rng.gen_bool(load.clamp(0.0, 1.0)) {
                let d = self.rng.gen_range(0..n);
                self.arrive(i, d);
            }
        }
        self.schedule_and_depart();
    }

    /// The iSLIP match for the current queue state (§2.2.2's three-step
    /// request/grant/accept iterations with round-robin pointers updated
    /// after the first iteration only).
    fn schedule_and_depart(&mut self) {
        let n = self.cfg.ports;
        let mut in_matched = vec![false; n];
        let mut out_matched: Vec<Option<usize>> = vec![None; n];
        for iter in 0..self.cfg.islip_iters {
            // 1. Request.
            let mut requests: Vec<Vec<usize>> = vec![Vec::new(); n]; // per output: requesting inputs
            let mut any = false;
            #[allow(clippy::needless_range_loop)]
            for i in 0..n {
                if in_matched[i] {
                    continue;
                }
                for d in self.requests(i) {
                    if out_matched[d].is_none() {
                        requests[d].push(i);
                        any = true;
                    }
                }
            }
            if !any {
                break;
            }
            self.report.iterations_used += 1;
            // 2. Grant: each output picks the requesting input at or
            // after its pointer.
            let mut grants: Vec<Vec<usize>> = vec![Vec::new(); n]; // per input: granting outputs
            #[allow(clippy::needless_range_loop)]
            for d in 0..n {
                if requests[d].is_empty() {
                    continue;
                }
                let g = (0..n)
                    .map(|k| (self.grant_ptr[d] + k) % n)
                    .find(|i| requests[d].contains(i))
                    .expect("some request exists");
                grants[g].push(d);
            }
            // 3. Accept: each input picks the granting output at or
            // after its pointer.
            for i in 0..n {
                if grants[i].is_empty() {
                    continue;
                }
                let a = (0..n)
                    .map(|k| (self.accept_ptr[i] + k) % n)
                    .find(|d| grants[i].contains(d))
                    .expect("some grant exists");
                in_matched[i] = true;
                out_matched[a] = Some(i);
                if iter == 0 {
                    // Pointers advance only for first-iteration matches.
                    self.grant_ptr[a] = (i + 1) % n;
                    self.accept_ptr[i] = (a + 1) % n;
                }
            }
        }
        // Departures.
        #[allow(clippy::needless_range_loop)]
        for d in 0..n {
            if let Some(i) = out_matched[d] {
                let q = match self.cfg.queueing {
                    Queueing::Fifo => 0,
                    Queueing::Voq => d,
                };
                let cell = self.queues[i][q].pop_front().expect("matched a real cell");
                debug_assert_eq!(cell.dst, d);
                self.report.delivered_cells += 1;
                self.report.total_delay_slots += self.slot - cell.arrived;
                self.report.matches_made += 1;
            }
        }
        self.slot += 1;
        self.report.slots = self.slot;
    }

    /// Run `slots` of uniform Bernoulli traffic at `load`.
    pub fn run_uniform(&mut self, load: f64, slots: u64) -> &FabricReport {
        for _ in 0..slots {
            self.step_uniform(load);
        }
        &self.report
    }

    /// Total queued cells (diagnostics).
    pub fn backlog(&self) -> usize {
        (0..self.cfg.ports).map(|i| self.occupancy(i)).sum()
    }
}

/// Saturation throughput: run at load 1.0 and report delivered/slot/port.
pub fn saturation_throughput(
    queueing: Queueing,
    ports: usize,
    iters: u32,
    slots: u64,
    seed: u64,
) -> f64 {
    let mut sim = CrossbarSim::new(FabricConfig {
        ports,
        queueing,
        islip_iters: iters,
        seed,
        ..FabricConfig::default()
    });
    sim.run_uniform(1.0, slots);
    sim.report.throughput(ports)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_suffers_hol_blocking() {
        let t = saturation_throughput(Queueing::Fifo, 16, 1, 20_000, 3);
        // The classic 2-sqrt(2) ≈ 0.586 limit (±simulation noise).
        assert!(
            (0.52..=0.66).contains(&t),
            "FIFO saturation throughput {t:.3}, expected ≈0.586"
        );
    }

    #[test]
    fn voq_islip_reaches_full_throughput() {
        let t = saturation_throughput(Queueing::Voq, 16, 4, 20_000, 3);
        assert!(t > 0.95, "VOQ+iSLIP saturation throughput {t:.3}");
    }

    #[test]
    fn voq_beats_fifo_by_the_papers_margin() {
        let f = saturation_throughput(Queueing::Fifo, 16, 1, 20_000, 5);
        let v = saturation_throughput(Queueing::Voq, 16, 4, 20_000, 5);
        // "This raises the system throughput from 60% to 100%" (§2.2.2).
        assert!(v / f > 1.5, "VOQ {v:.3} vs FIFO {f:.3}");
    }

    #[test]
    fn light_load_is_lossless_and_low_delay() {
        let mut sim = CrossbarSim::new(FabricConfig {
            ports: 8,
            queueing: Queueing::Voq,
            seed: 9,
            ..FabricConfig::default()
        });
        sim.run_uniform(0.3, 20_000);
        let r = &sim.report;
        assert_eq!(r.dropped_cells, 0);
        let t = r.throughput(8);
        assert!((0.28..=0.32).contains(&t), "delivered {t:.3} at load 0.3");
        assert!(r.mean_delay() < 5.0, "mean delay {:.2}", r.mean_delay());
    }

    #[test]
    fn more_islip_iterations_help_at_high_load() {
        let t1 = saturation_throughput(Queueing::Voq, 16, 1, 20_000, 7);
        let t4 = saturation_throughput(Queueing::Voq, 16, 4, 20_000, 7);
        assert!(t4 >= t1 - 0.02, "iters must not hurt: {t1:.3} vs {t4:.3}");
        assert!(t4 > 0.95);
    }

    #[test]
    fn islip_iterations_converge_quickly() {
        // O(log N) iterations suffice: 4 iterations on 16 ports should
        // already use fewer than the worst case allows.
        let mut sim = CrossbarSim::new(FabricConfig {
            ports: 16,
            queueing: Queueing::Voq,
            islip_iters: 16,
            seed: 11,
            ..FabricConfig::default()
        });
        sim.run_uniform(1.0, 5_000);
        let used = sim.report.iterations_used as f64 / sim.report.slots as f64;
        assert!(
            used <= 6.0,
            "average iterations per slot {used:.2}, expected O(log N)"
        );
    }

    #[test]
    fn determinism_with_fixed_seed() {
        let a = saturation_throughput(Queueing::Voq, 8, 2, 5_000, 42);
        let b = saturation_throughput(Queueing::Voq, 8, 2, 5_000, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn conservation_of_cells() {
        let mut sim = CrossbarSim::new(FabricConfig {
            ports: 8,
            queueing: Queueing::Voq,
            seed: 13,
            ..FabricConfig::default()
        });
        sim.run_uniform(0.7, 10_000);
        let r = sim.report.clone();
        let backlog = sim.backlog() as u64;
        assert_eq!(
            r.offered_cells,
            r.delivered_cells + r.dropped_cells + backlog
        );
    }
}
