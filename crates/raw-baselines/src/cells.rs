//! Fixed-size cells versus variable-length packets across a switched
//! backplane (§2.2.2).
//!
//! "It is shown that using fixed length packets ('cells') allows up to
//! 100% of the switch bandwidth to be used … If variable length packets
//! are used, the system throughput is limited to approximately 60%."
//! The mechanism: with cells, "the timing of the switch fabric is just a
//! sequence of fixed size time slots" and the scheduler re-matches every
//! slot. With variable-length packets the scheduler "must do a lot of
//! bookkeeping to keep track of available and unavailable outputs"; the
//! hardware-simple alternative the text describes re-arbitrates only
//! when the current transfers complete, so every arbitration round lasts
//! as long as its **longest** packet and shorter transfers strand
//! bandwidth on their ports.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Transfer granularity across the backplane.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Granularity {
    /// Segment packets into cells, reassemble at output (re-match every
    /// slot).
    Cells,
    /// Transfer whole variable-length packets non-preemptively.
    Packets,
}

/// Packet-length distribution in cells.
#[derive(Clone, Copy, Debug)]
pub enum LengthDist {
    /// The classic bimodal Internet mix: mostly minimum-size with a tail
    /// of full-size packets. `(p_small_mille, small, large)`.
    Bimodal {
        p_small_mille: u32,
        small: u32,
        large: u32,
    },
    /// Uniform in `[min, max]` cells.
    UniformLen { min: u32, max: u32 },
}

impl LengthDist {
    fn sample(&self, rng: &mut StdRng) -> u32 {
        match *self {
            LengthDist::Bimodal {
                p_small_mille,
                small,
                large,
            } => {
                if rng.gen_range(0..1000) < p_small_mille {
                    small
                } else {
                    large
                }
            }
            LengthDist::UniformLen { min, max } => rng.gen_range(min..=max),
        }
    }

    fn mean(&self) -> f64 {
        match *self {
            LengthDist::Bimodal {
                p_small_mille,
                small,
                large,
            } => {
                let p = p_small_mille as f64 / 1000.0;
                p * small as f64 + (1.0 - p) * large as f64
            }
            LengthDist::UniformLen { min, max } => (min + max) as f64 / 2.0,
        }
    }
}

struct Pkt {
    cells: u32,
}

enum Mode {
    /// Cells: re-match every slot.
    PerSlot,
    /// Variable packets: a matched round runs until its longest transfer
    /// completes, then the scheduler re-arbitrates.
    Batch { remaining: Vec<Option<u32>> },
}

/// The backplane simulator: VOQ inputs, greedy round-robin matching, and
/// either per-slot (cells) or per-packet (variable) connection holding.
pub struct BackplaneSim {
    n: usize,
    dist: LengthDist,
    rng: StdRng,
    /// Per (input, output) packet queues.
    voq: Vec<Vec<VecDeque<Pkt>>>,
    mode: Mode,
    rr: usize,
    pub slots: u64,
    pub cells_moved: u64,
    pub packets_moved: u64,
    pub offered_cells: u64,
}

impl BackplaneSim {
    pub fn new(n: usize, gran: Granularity, dist: LengthDist, seed: u64) -> BackplaneSim {
        BackplaneSim {
            n,
            dist,
            rng: StdRng::seed_from_u64(seed),
            voq: (0..n)
                .map(|_| (0..n).map(|_| VecDeque::new()).collect())
                .collect(),
            mode: match gran {
                Granularity::Cells => Mode::PerSlot,
                Granularity::Packets => Mode::Batch {
                    remaining: vec![None; n],
                },
            },
            rr: 0,
            slots: 0,
            cells_moved: 0,
            packets_moved: 0,
            offered_cells: 0,
        }
    }

    /// Keep every VOQ backlogged (saturation study).
    fn saturate(&mut self) {
        for i in 0..self.n {
            for d in 0..self.n {
                while self.voq[i][d].len() < 2 {
                    let cells = self.dist.sample(&mut self.rng);
                    self.offered_cells += cells as u64;
                    self.voq[i][d].push_back(Pkt { cells });
                }
            }
        }
    }

    /// A greedy round-robin matching of inputs to outputs over nonempty
    /// VOQs. Returns `matched[input] = Some(output)`.
    fn greedy_match(&mut self) -> Vec<Option<usize>> {
        let n = self.n;
        let start = self.rr;
        self.rr = (self.rr + 1) % n;
        let mut out_taken = vec![false; n];
        let mut m = vec![None; n];
        for k in 0..n {
            let i = (start + k) % n;
            let off = (start + k) % n;
            if let Some(d) = (0..n)
                .map(|j| (off + j) % n)
                .find(|&d| !out_taken[d] && !self.voq[i][d].is_empty())
            {
                out_taken[d] = true;
                m[i] = Some(d);
            }
        }
        m
    }

    fn step(&mut self) {
        self.saturate();
        let n = self.n;
        match &mut self.mode {
            Mode::PerSlot => {
                // Cells: fresh maximal matching each slot, one cell per
                // matched pair.
                let m = self.greedy_match();
                #[allow(clippy::needless_range_loop)]
                for i in 0..n {
                    if let Some(d) = m[i] {
                        let pkt = self.voq[i][d].front_mut().expect("nonempty");
                        pkt.cells -= 1;
                        self.cells_moved += 1;
                        if pkt.cells == 0 {
                            self.voq[i][d].pop_front();
                            self.packets_moved += 1;
                        }
                    }
                }
            }
            Mode::Batch { remaining } => {
                // Re-arbitrate only when every transfer of the previous
                // round has completed (the bookkeeping-free hardware of
                // §2.2.2); the round then lasts as long as its longest
                // packet.
                if remaining.iter().all(Option::is_none) {
                    let m = self.greedy_match();
                    let Mode::Batch { remaining } = &mut self.mode else {
                        unreachable!()
                    };
                    for i in 0..n {
                        if let Some(d) = m[i] {
                            let p = self.voq[i][d].pop_front().expect("nonempty");
                            remaining[i] = Some(p.cells);
                            self.packets_moved += 1;
                        }
                    }
                }
                let Mode::Batch { remaining } = &mut self.mode else {
                    unreachable!()
                };
                for r in remaining.iter_mut() {
                    if let Some(left) = r {
                        *left -= 1;
                        self.cells_moved += 1;
                        if *left == 0 {
                            *r = None;
                        }
                    }
                }
            }
        }
        self.slots += 1;
    }

    /// Saturation throughput: cells delivered per output per slot.
    pub fn run(&mut self, slots: u64) -> f64 {
        for _ in 0..slots {
            self.step();
        }
        self.cells_moved as f64 / (self.slots as f64 * self.n as f64)
    }

    pub fn mean_packet_cells(&self) -> f64 {
        self.dist.mean()
    }
}

/// The Internet-like bimodal mix used in the §2.2.2 study: 40 % one-cell
/// (64 B) packets, 60 % 24-cell (1,500 B) packets by count (roughly the
/// byte-weighted mix of a trunk link). Under batch arbitration this mix
/// yields the paper's "approximately 60 %" usable bandwidth:
/// `E[len] / E[max len among N] = 14.8 / ~24`.
pub fn internet_mix() -> LengthDist {
    LengthDist::Bimodal {
        p_small_mille: 400,
        small: 1,
        large: 24,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_reach_near_full_bandwidth() {
        let mut sim = BackplaneSim::new(8, Granularity::Cells, internet_mix(), 1);
        let t = sim.run(30_000);
        assert!(t > 0.95, "cell-mode saturation {t:.3}");
    }

    #[test]
    fn variable_packets_strand_bandwidth() {
        let mut sim = BackplaneSim::new(8, Granularity::Packets, internet_mix(), 1);
        let t = sim.run(30_000);
        assert!(
            (0.50..=0.72).contains(&t),
            "packet-mode saturation {t:.3}, expected ≈0.6"
        );
    }

    #[test]
    fn the_papers_claim_holds() {
        // "up to 100% … limited to approximately 60%": the ratio must be
        // substantial.
        let c = BackplaneSim::new(8, Granularity::Cells, internet_mix(), 2).run(30_000);
        let p = BackplaneSim::new(8, Granularity::Packets, internet_mix(), 2).run(30_000);
        assert!(c - p > 0.2, "cells {c:.3} vs packets {p:.3}");
    }

    #[test]
    fn uniform_lengths_also_lose_with_holding() {
        let d = LengthDist::UniformLen { min: 1, max: 16 };
        let c = BackplaneSim::new(8, Granularity::Cells, d, 3).run(20_000);
        let p = BackplaneSim::new(8, Granularity::Packets, d, 3).run(20_000);
        assert!(c > p, "cells {c:.3} must beat packets {p:.3}");
    }

    #[test]
    fn single_port_degenerate_case() {
        // With one port there is no mismatch to strand bandwidth.
        let d = LengthDist::UniformLen { min: 1, max: 8 };
        let p = BackplaneSim::new(1, Granularity::Packets, d, 4).run(5_000);
        assert!(p > 0.99, "single port must be work-conserving: {p:.3}");
    }

    #[test]
    fn length_distribution_sampling_and_mean() {
        let d = internet_mix();
        assert!((d.mean() - (0.4 + 0.6 * 24.0)).abs() < 1e-9);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let l = d.sample(&mut rng);
            assert!(l == 1 || l == 24);
        }
    }
}
