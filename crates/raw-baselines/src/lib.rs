//! # raw-baselines — the systems the paper compares against
//!
//! * [`click`] — the Click modular software router on a conventional
//!   general-purpose processor: the ≈0.23 Gbps baseline bar of
//!   Figure 7-1 (§2.4).
//! * [`fabric`] — a cell-based input-queued crossbar with FIFO or
//!   virtual-output queueing and the iSLIP scheduler: the conventional
//!   switched backplane of §2.2.2, reproducing the head-of-line-blocking
//!   (≈58.6 %) and VOQ (≈100 %) saturation results.
//! * [`cells`] — the fixed-cells-versus-variable-packets bandwidth study
//!   (≈100 % vs ≈60 %, §2.2.2).

pub mod cells;
pub mod click;
pub mod fabric;

pub use cells::{internet_mix, BackplaneSim, Granularity, LengthDist};
pub use click::{standard_ip_elements, ClickConfig, ClickReport, ClickRouter, Element};
pub use fabric::{saturation_throughput, CrossbarSim, FabricConfig, FabricReport, Queueing};
