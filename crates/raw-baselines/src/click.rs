//! A Click-style modular software router on a conventional
//! general-purpose processor — the baseline of Figure 7-1.
//!
//! "Another approach was explored in the Click Router … Unfortunately,
//! conventional general-purpose processors do not provide enough of
//! input/output bandwidth to carry out multigigabit routing" (§2.4). We
//! model Click the way its own papers characterize it: a single CPU walks
//! an element graph per packet, so forwarding is per-packet-cost bound,
//! plus a per-byte cost for bus/memory movement. Element costs are
//! calibrated so the standard IP configuration forwards minimum-size
//! packets at ≈0.45 Mpps on a year-2000 700 MHz PC — the ≈0.23 Gbps bar
//! the paper plots.

/// One element of the Click graph with its per-packet cost.
#[derive(Clone, Debug)]
pub struct Element {
    pub name: &'static str,
    pub cycles: u64,
}

/// The modeled machine and element graph.
#[derive(Clone, Debug)]
pub struct ClickConfig {
    pub clock_mhz: u64,
    /// Per-byte cost (milli-cycles) for bus + memory movement.
    pub per_byte_millicycles: u64,
    /// Input queue capacity in packets (drops when full).
    pub queue_packets: usize,
}

impl Default for ClickConfig {
    fn default() -> Self {
        ClickConfig {
            clock_mhz: 700,
            per_byte_millicycles: 1200, // 1.2 cycles/byte
            queue_packets: 128,
        }
    }
}

/// The standard Click IP-forwarding path (Morris et al., SOSP '99), with
/// per-element costs summing to the calibrated per-packet budget.
pub fn standard_ip_elements() -> Vec<Element> {
    vec![
        Element {
            name: "FromDevice(poll)",
            cycles: 220,
        },
        Element {
            name: "Classifier",
            cycles: 70,
        },
        Element {
            name: "Strip(14)",
            cycles: 30,
        },
        Element {
            name: "CheckIPHeader",
            cycles: 150,
        },
        Element {
            name: "LookupIPRoute",
            cycles: 340,
        },
        Element {
            name: "DecIPTTL",
            cycles: 60,
        },
        Element {
            name: "FixIPSrc/Annotate",
            cycles: 80,
        },
        Element {
            name: "ARPQuerier",
            cycles: 120,
        },
        Element {
            name: "Queue",
            cycles: 110,
        },
        Element {
            name: "ToDevice",
            cycles: 220,
        },
    ]
}

/// The modeled router.
pub struct ClickRouter {
    pub cfg: ClickConfig,
    pub elements: Vec<Element>,
}

/// Outcome of a simulated run.
#[derive(Clone, Debug, Default)]
pub struct ClickReport {
    pub offered: u64,
    pub forwarded: u64,
    pub dropped: u64,
    pub cycles: u64,
    pub bytes_forwarded: u64,
}

impl ClickReport {
    pub fn throughput_gbps(&self, clock_mhz: u64) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        let secs = self.cycles as f64 / (clock_mhz as f64 * 1e6);
        self.bytes_forwarded as f64 * 8.0 / secs / 1e9
    }

    pub fn pps(&self, clock_mhz: u64) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        let secs = self.cycles as f64 / (clock_mhz as f64 * 1e6);
        self.forwarded as f64 / secs
    }
}

impl ClickRouter {
    pub fn standard() -> ClickRouter {
        ClickRouter {
            cfg: ClickConfig::default(),
            elements: standard_ip_elements(),
        }
    }

    /// CPU cycles to forward one packet of `bytes`.
    pub fn packet_cost(&self, bytes: usize) -> u64 {
        let fixed: u64 = self.elements.iter().map(|e| e.cycles).sum();
        fixed + (bytes as u64 * self.cfg.per_byte_millicycles) / 1000
    }

    /// The maximum loss-free forwarding rate for a packet size, in pps.
    pub fn max_lossfree_pps(&self, bytes: usize) -> f64 {
        self.cfg.clock_mhz as f64 * 1e6 / self.packet_cost(bytes) as f64
    }

    /// Saturation throughput for a packet size, in Gbps.
    pub fn saturation_gbps(&self, bytes: usize) -> f64 {
        self.max_lossfree_pps(bytes) * bytes as f64 * 8.0 / 1e9
    }

    /// Event simulation: arrivals `(cycle, bytes)` per packet feed a
    /// bounded queue drained by the single CPU.
    pub fn simulate(&self, arrivals: &[(u64, usize)]) -> ClickReport {
        let mut rep = ClickReport {
            offered: arrivals.len() as u64,
            ..Default::default()
        };
        let mut queue: std::collections::VecDeque<usize> = Default::default();
        let mut cpu_free_at = 0u64;
        let mut i = 0usize;
        let mut now = 0u64;
        while i < arrivals.len() || !queue.is_empty() {
            // Admit arrivals up to `now`.
            while i < arrivals.len() && arrivals[i].0 <= now {
                if queue.len() < self.cfg.queue_packets {
                    queue.push_back(arrivals[i].1);
                } else {
                    rep.dropped += 1;
                }
                i += 1;
            }
            if let Some(bytes) = queue.pop_front() {
                let start = now.max(cpu_free_at);
                cpu_free_at = start + self.packet_cost(bytes);
                now = cpu_free_at;
                rep.forwarded += 1;
                rep.bytes_forwarded += bytes as u64;
            } else if i < arrivals.len() {
                now = arrivals[i].0;
            }
        }
        rep.cycles = cpu_free_at;
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_to_the_paper_bar() {
        let c = ClickRouter::standard();
        // ~0.45 Mpps at minimum-size packets on the 700 MHz reference
        // machine ≈ 0.23 Gbps — the Figure 7-1 baseline.
        let gbps = c.saturation_gbps(64);
        assert!(
            (0.18..=0.28).contains(&gbps),
            "Click 64 B saturation {gbps:.3} Gbps out of the calibration band"
        );
        let pps = c.max_lossfree_pps(64);
        assert!((350_000.0..=550_000.0).contains(&pps), "{pps}");
    }

    #[test]
    fn per_packet_bound_grows_with_size_but_stays_low() {
        let c = ClickRouter::standard();
        let g64 = c.saturation_gbps(64);
        let g1024 = c.saturation_gbps(1024);
        assert!(g1024 > g64, "larger packets amortize the per-packet cost");
        // Still far below multigigabit at 1,024 B (the §2.4 point).
        assert!(g1024 < 3.0, "Click at 1024 B: {g1024:.2} Gbps");
    }

    #[test]
    fn simulation_matches_analytic_rate_at_saturation() {
        let c = ClickRouter::standard();
        let arrivals: Vec<(u64, usize)> = (0..2000).map(|_| (0u64, 64usize)).collect();
        let rep = c.simulate(&arrivals);
        // The bounded queue drops most of an instantaneous burst.
        assert_eq!(rep.forwarded + rep.dropped, 2000);
        assert_eq!(rep.forwarded, 128, "queue capacity bounds the burst");
        // Forwarding rate equals the analytic cost.
        let per = rep.cycles / rep.forwarded;
        assert_eq!(per, c.packet_cost(64));
    }

    #[test]
    fn no_drops_below_capacity() {
        let c = ClickRouter::standard();
        let cost = c.packet_cost(256);
        let arrivals: Vec<(u64, usize)> = (0..500).map(|k| (k * (cost + 10), 256usize)).collect();
        let rep = c.simulate(&arrivals);
        assert_eq!(rep.dropped, 0);
        assert_eq!(rep.forwarded, 500);
    }

    #[test]
    fn element_costs_are_itemized() {
        let els = standard_ip_elements();
        assert!(els.len() >= 8);
        let total: u64 = els.iter().map(|e| e.cycles).sum();
        assert_eq!(total, 1400, "fixed per-packet budget");
    }
}
