//! Schedule-specialized execution: pre-resolved switch programs and the
//! machine loop that runs them.
//!
//! The interpreter in [`machine`][crate::machine] re-derives, every cycle
//! and for every switch, facts that are fixed at construction time: which
//! routes share a source (and so fire together), which FIFO each
//! `SwPort` names, whether a mesh direction crosses to a neighbor tile or
//! leaves the chip, and which edge device (if any) sits on an off-grid
//! link. A [`CompiledPlan`] hoists all of that out of the inner loop: each
//! switch instruction becomes a list of [`CompiledRoute`]s whose source
//! and destination are direct FIFO/device coordinates, and the per-cycle
//! work reduces to visibility checks, space checks, and word moves.
//!
//! ## Why bit-identity holds
//!
//! The compiled step functions perform the *same state transitions in the
//! same order* as the interpreter — they only skip re-deriving constants:
//!
//! * Route endpoints are resolved once, against the same `GridDim` /
//!   device-table lookups the interpreter performs per cycle, and
//!   `RawMachine::install_compiled_plan` re-lowers every program
//!   independently and refuses any plan that disagrees.
//! * Route *grouping* is not precomputed, because it cannot be: the
//!   interpreter forms a group from the not-yet-fired routes at and after
//!   the scan point, so a multicast group refused on one cycle may fire a
//!   strict subset on the next scan position. Instructions whose sources
//!   are pairwise distinct (every group a singleton — the common case for
//!   generated schedules) take a straight scan; the rest replay the
//!   interpreter's exact dynamic-subgroup scan over pre-resolved routes.
//! * Stall accounting (`switch_stall_cycles`, first-refused-group cause
//!   attribution), control transitions, PC wraparound halts, and pending
//!   PC application copy the interpreter's logic line for line.
//! * The idle-tile fast path only replaces ticks that are statically
//!   no-ops (`TileProgram::is_idle_stub`), recording the same
//!   `Activity::Idle`; the injector fast path only skips devices whose
//!   `pull_in` is statically `None` (`EdgeDevice::is_injector`).
//!
//! Any structural mutation (new program, switch program, or device
//! binding) drops the plan, and [`EngineMode::Compiled`][crate::machine::EngineMode::Compiled] degrades to the
//! event-skip interpreter until a plan is reinstalled — the transparent
//! fallback boundary. The determinism suite and a differential proptest
//! hold all engines to bit-identical fingerprints.

use crate::geom::TileId;
use crate::machine::RawMachine;
use crate::program::TileIo;
use crate::switch::{SwPort, SwitchCtrl, SwitchProgram, NUM_STATIC_NETS};
use crate::trace::Activity;
use raw_telemetry::SwitchStallCause;

/// A pre-resolved route source: the exact FIFO the word is popped from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CompiledSrc {
    /// The processor's shared `$csto` FIFO at `tile`.
    Csto { tile: u16 },
    /// `link_in[tile][net][dir]`.
    Link { tile: u16, net: u8, dir: u8 },
}

/// A pre-resolved route destination: the exact FIFO or device the word is
/// pushed into.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CompiledDst {
    /// The processor-facing `$csti` FIFO for `net` at `tile`.
    Csti { tile: u16, net: u8 },
    /// The neighbor tile's link input FIFO `link_in[tile][net][dir]`.
    Link { tile: u16, net: u8, dir: u8 },
    /// A bound edge device (index into the machine's device list).
    Device { index: u16 },
    /// An unbound edge: the word leaves the chip and is counted in
    /// `edge_drops`.
    Drop,
}

/// One switch route with both endpoints resolved. Routes sharing a
/// `CompiledSrc` within one instruction form a multicast group, exactly
/// as interpreter routes sharing `(net, src)` do.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CompiledRoute {
    pub src: CompiledSrc,
    pub dst: CompiledDst,
}

/// One specialized switch instruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompiledInstr {
    /// Routes in the interpreter's route-list order (the `fired` bitmask
    /// indexes this list, bit *i* ↔ `routes[i]`).
    pub routes: Vec<CompiledRoute>,
    /// True when every route's source is distinct — every multicast group
    /// is a singleton, so the executor can scan routes independently
    /// without forming groups.
    pub distinct_sources: bool,
    /// `fired == all_mask` completes the instruction
    /// (`(1 << routes.len()) - 1`; 0 for a route-less instruction).
    pub all_mask: u32,
    pub ctrl: SwitchCtrl,
}

/// A whole switch program specialized for one `(tile, net)`.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct CompiledSwitch {
    pub instrs: Vec<CompiledInstr>,
}

/// An edge device that may inject, with its input FIFO coordinates
/// pre-resolved.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct InjectorSlot {
    /// Index into the machine's device list (bind order).
    pub device: u16,
    pub tile: u16,
    pub net: u8,
    pub dir: u8,
}

/// A schedule-specialized execution plan for one machine, installed via
/// `RawMachine::install_compiled_plan` and consumed by
/// [`EngineMode::Compiled`][crate::machine::EngineMode::Compiled].
#[derive(Clone, Debug, Default)]
pub struct CompiledPlan {
    /// Indexed by `tile * NUM_STATIC_NETS + net`. `None` runs that switch
    /// on the interpreter (per-switch fallback).
    pub switches: Vec<Option<CompiledSwitch>>,
    /// Devices polled for injection each cycle, in device-index order
    /// (the interpreter's poll order). Pure sinks are omitted.
    pub injectors: Vec<InjectorSlot>,
    /// Tiles whose processor tick is a statically known no-op.
    pub idle_tiles: Vec<bool>,
}

/// Lower one switch program to its specialized form. This is the
/// reference lowering raw-sim trusts: `install_compiled_plan` compares
/// externally compiled programs against it, so an external compiler and
/// this function must agree route by route for a plan to install.
pub(crate) fn lower_switch_program(
    m: &RawMachine,
    tile: TileId,
    net: usize,
    prog: &SwitchProgram,
) -> CompiledSwitch {
    let t = tile.index();
    let instrs = prog
        .instrs
        .iter()
        .map(|i| {
            let routes: Vec<CompiledRoute> = i
                .routes
                .iter()
                .map(|r| {
                    debug_assert_eq!(r.net, net);
                    let src = match r.src {
                        SwPort::Proc => CompiledSrc::Csto { tile: t as u16 },
                        p => CompiledSrc::Link {
                            tile: t as u16,
                            net: r.net as u8,
                            dir: p.dir().unwrap().index() as u8,
                        },
                    };
                    let dst = match r.dst {
                        SwPort::Proc => CompiledDst::Csti {
                            tile: t as u16,
                            net: r.net as u8,
                        },
                        p => {
                            let d = p.dir().unwrap();
                            match m.dim().neighbor(tile, d) {
                                Some(nb) => CompiledDst::Link {
                                    tile: nb.index() as u16,
                                    net: r.net as u8,
                                    dir: d.opposite().index() as u8,
                                },
                                None => match m.device_at(t, r.net, d.index()) {
                                    Some(i) => CompiledDst::Device { index: i as u16 },
                                    None => CompiledDst::Drop,
                                },
                            }
                        }
                    };
                    CompiledRoute { src, dst }
                })
                .collect();
            let distinct_sources = routes
                .iter()
                .enumerate()
                .all(|(j, a)| routes[j + 1..].iter().all(|b| b.src != a.src));
            CompiledInstr {
                all_mask: ((1u64 << routes.len()) - 1) as u32,
                distinct_sources,
                routes,
                ctrl: i.ctrl,
            }
        })
        .collect();
    CompiledSwitch { instrs }
}

impl CompiledPlan {
    /// Check this plan against the machine it claims to specialize:
    /// every compiled switch must equal raw-sim's own lowering of the
    /// installed program, the idle set must only name idle-stub tiles,
    /// and the injector list must be exactly the machine's injecting
    /// devices in poll order. A plan that passes cannot change any
    /// machine-observable behavior.
    pub fn validate(&self, m: &RawMachine) -> Result<(), String> {
        let n = m.dim().tiles();
        if self.switches.len() != n * NUM_STATIC_NETS {
            return Err(format!(
                "plan covers {} switch slots, machine has {}",
                self.switches.len(),
                n * NUM_STATIC_NETS
            ));
        }
        if self.idle_tiles.len() != n {
            return Err(format!(
                "plan covers {} tiles, machine has {n}",
                self.idle_tiles.len()
            ));
        }
        for t in 0..n {
            let tile = TileId(t as u16);
            if self.idle_tiles[t] && !m.program_is_idle(tile) {
                return Err(format!("tile {t} marked idle but runs a program"));
            }
            for net in 0..NUM_STATIC_NETS {
                if let Some(cs) = &self.switches[t * NUM_STATIC_NETS + net] {
                    let reference = lower_switch_program(m, tile, net, m.switch_program(tile, net));
                    if *cs != reference {
                        return Err(format!(
                            "compiled switch (tile {t}, net {net}) disagrees with the \
                             reference lowering"
                        ));
                    }
                }
            }
        }
        let expected: Vec<InjectorSlot> = m
            .bound_device_ports()
            .iter()
            .enumerate()
            .filter(|&(i, _)| m.device_is_injector(i))
            .map(|(i, p)| InjectorSlot {
                device: i as u16,
                tile: p.tile.index() as u16,
                net: p.net as u8,
                dir: p.dir.index() as u8,
            })
            .collect();
        if self.injectors != expected {
            return Err("plan injector list disagrees with the machine's bound devices".into());
        }
        Ok(())
    }
}

impl RawMachine {
    /// Install a schedule-specialized plan, after validating it against
    /// the machine's current programs and devices (see
    /// [`CompiledPlan::validate`]). The plan takes effect when the engine
    /// is [`EngineMode::Compiled`][crate::machine::EngineMode::Compiled]; it is dropped automatically by any
    /// structural mutation.
    pub fn install_compiled_plan(&mut self, plan: CompiledPlan) -> Result<(), String> {
        plan.validate(self)?;
        self.plan = Some(Box::new(plan));
        Ok(())
    }

    /// Drop any installed plan; [`EngineMode::Compiled`][crate::machine::EngineMode::Compiled] then falls back
    /// to the event-skip interpreter.
    pub fn clear_compiled_plan(&mut self) {
        self.plan = None;
    }

    /// Is a compiled plan currently installed?
    pub fn has_compiled_plan(&self) -> bool {
        self.plan.is_some()
    }

    /// Lower every installed switch program with raw-sim's reference
    /// lowering and install the resulting full-coverage plan. External
    /// compilers ([`install_compiled_plan`][Self::install_compiled_plan])
    /// can do better reporting; the result of executing either is
    /// identical.
    pub fn compile_reference_plan(&mut self) {
        let n = self.dim().tiles();
        let mut switches = Vec::with_capacity(n * NUM_STATIC_NETS);
        let mut idle_tiles = Vec::with_capacity(n);
        for t in 0..n {
            let tile = TileId(t as u16);
            for net in 0..NUM_STATIC_NETS {
                switches.push(Some(lower_switch_program(
                    self,
                    tile,
                    net,
                    self.switch_program(tile, net),
                )));
            }
            idle_tiles.push(self.program_is_idle(tile));
        }
        let injectors = self
            .bound_device_ports()
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.device_is_injector(i))
            .map(|(i, p)| InjectorSlot {
                device: i as u16,
                tile: p.tile.index() as u16,
                net: p.net as u8,
                dir: p.dir.index() as u8,
            })
            .collect();
        self.plan = Some(Box::new(CompiledPlan {
            switches,
            injectors,
            idle_tiles,
        }));
    }

    /// One full machine cycle through the compiled plan. Mirrors
    /// `step_cycle` phase for phase; returns the same quietness verdict.
    pub(crate) fn step_cycle_compiled(&mut self, plan: &CompiledPlan) -> bool {
        let cycle = self.cycle;
        let mut progress = false;

        // 1. Device injection — injecting devices only; skipped sinks
        // statically return `None` from `pull_in`.
        for inj in &plan.injectors {
            let fifo = &mut self.link_in[inj.tile as usize][inj.net as usize][inj.dir as usize];
            if fifo.has_space() {
                if let Some(w) = self.devices[inj.device as usize].pull_in(cycle) {
                    let ok = fifo.push(w, cycle);
                    debug_assert!(ok);
                    progress = true;
                }
            }
        }

        // 2. Tile processors, with the idle-stub fast path.
        progress |= self.step_processors_compiled(cycle, plan);

        // 3. Switch processors: specialized where compiled, interpreted
        // where not (per-switch fallback).
        let mut sw_ctrl = false;
        let n = self.tiles.len();
        for t in 0..n {
            for net in 0..NUM_STATIC_NETS {
                let (p, c) = match &plan.switches[t * NUM_STATIC_NETS + net] {
                    Some(cs) => self.step_switch_compiled(t, net, cs, cycle),
                    None => self.step_switch(t, net, cycle),
                };
                progress |= p;
                sw_ctrl |= c;
            }
        }

        // 4. Dynamic networks.
        for d in &mut self.dyn_nets {
            d.step(cycle);
        }
        let dyn_moved: u64 = self.dyn_nets.iter().map(|d| d.words_moved).sum();
        if dyn_moved != self.dyn_moved_before {
            progress = true;
            self.dyn_moved_before = dyn_moved;
        }

        if progress {
            self.last_progress = cycle;
        }
        self.cycle += 1;
        !progress && !sw_ctrl
    }

    /// The processor phase with the idle-stub fast path. Identical
    /// recording (stats, trace, telemetry, hints) to `step_processors`.
    fn step_processors_compiled(&mut self, cycle: u64, plan: &CompiledPlan) -> bool {
        let mut progress = false;
        let n = self.tiles.len();
        let cols = self.cfg.dim.cols as u32;
        for t in 0..n {
            while let Some(&(s, e)) = self.stall_windows[t].first() {
                if cycle < s {
                    break;
                }
                self.stall_windows[t].remove(0);
                let su = &mut self.tiles[t].stall_until;
                *su = (*su).max(e);
            }
            let (activity, hint) = if cycle < self.tiles[t].stall_until {
                (Activity::CacheStall, (false, false))
            } else if plan.idle_tiles[t] {
                // An idle stub's tick is a no-op: it records Idle and no
                // token-wait hint, exactly what this shortcut records.
                (Activity::Idle, (false, false))
            } else {
                let mut program = self.tiles[t].program.take();
                let outcome = if let Some(prog) = program.as_mut() {
                    let tile = &mut self.tiles[t];
                    let col = (t as u32) % cols;
                    let col_hops = col.min(cols - 1 - col);
                    let mut io = TileIo::new(
                        cycle,
                        TileId(t as u16),
                        &mut tile.csti,
                        &mut tile.csto,
                        &mut tile.switch_state,
                        &mut tile.cache,
                        &mut tile.mem,
                        self.cfg.local_mem_words,
                        &mut self.dyn_nets,
                        col_hops,
                        self.cfg.proc_recv_delay,
                        &mut tile.stall_until,
                    );
                    prog.tick(&mut io);
                    let hint = (io.token_wait_hint, io.arb_wait_hint);
                    (io.take_activity(), hint)
                } else {
                    (Activity::Idle, (false, false))
                };
                self.tiles[t].program = program;
                outcome
            };
            self.tiles[t].stats.record(activity);
            self.last_activity[t] = activity;
            self.token_hint[t] = hint.0;
            self.arb_hint[t] = hint.1;
            if let Some(tr) = &mut self.trace {
                tr.record(t, cycle, activity);
            }
            progress |= activity == Activity::Busy;
        }
        if let Some(sink) = self.active_sink() {
            let mut g = sink.lock().unwrap();
            for t in 0..n {
                g.tile_cycles(
                    t as u16,
                    super::machine::refine_state(
                        self.last_activity[t],
                        self.token_hint[t],
                        self.arb_hint[t],
                    ),
                    1,
                );
            }
        }
        progress
    }

    /// One specialized switch tick. Mirrors `step_switch` exactly:
    /// pending-PC application, halt handling, PC-overflow halt as a
    /// control transition, firing, completion, control flow, stall
    /// accounting, and first-refused-group cause attribution.
    fn step_switch_compiled(
        &mut self,
        t: usize,
        net: usize,
        cs: &CompiledSwitch,
        cycle: u64,
    ) -> (bool, bool) {
        self.tiles[t].switch_state[net].apply_pending_pc(cycle);
        if self.tiles[t].switch_state[net].halted {
            return (false, false);
        }
        let pc = self.tiles[t].switch_state[net].pc;
        if pc >= cs.instrs.len() {
            self.tiles[t].switch_state[net].halted = true;
            return (false, true);
        }
        let instr = &cs.instrs[pc];
        let mut fired = self.tiles[t].switch_state[net].fired;
        let mut any_fired = false;
        let attribute = self.telemetry_active;
        let mut block_cause: Option<SwitchStallCause> = None;
        if instr.distinct_sources {
            // Every group is a singleton: scan each not-yet-fired route
            // once, in list order (the interpreter's scan order).
            for (j, r) in instr.routes.iter().enumerate() {
                if fired & (1 << j) != 0 {
                    continue;
                }
                match self.try_fire_single(r, cycle) {
                    Ok(()) => {
                        fired |= 1 << j;
                        any_fired = true;
                    }
                    Err(cause) => {
                        if attribute && block_cause.is_none() {
                            block_cause = Some(cause);
                        }
                    }
                }
            }
        } else {
            // Dynamic-subgroup scan, replayed exactly as the interpreter
            // forms groups: at each unfired position, the group is every
            // not-yet-fired route *at or after* it with the same source.
            let routes = instr.routes.as_slice();
            let nroutes = routes.len();
            let mut gi = 0;
            while gi < nroutes {
                if fired & (1 << gi) != 0 {
                    gi += 1;
                    continue;
                }
                let lead_src = routes[gi].src;
                let mut group: u32 = 0;
                for (j, r) in routes.iter().enumerate().skip(gi) {
                    if fired & (1 << j) == 0 && r.src == lead_src {
                        group |= 1 << j;
                    }
                }
                match self.try_fire_group_compiled(routes, group, cycle) {
                    Ok(()) => {
                        fired |= group;
                        any_fired = true;
                    }
                    Err(cause) => {
                        if attribute && block_cause.is_none() {
                            block_cause = Some(cause);
                        }
                    }
                }
                gi += 1;
            }
        }
        self.tiles[t].switch_state[net].fired = fired;
        let complete = fired == instr.all_mask;
        let mut ctrl_transition = false;
        if complete {
            let prog_len = cs.instrs.len();
            let st = &mut self.tiles[t].switch_state[net];
            st.fired = 0;
            match instr.ctrl {
                SwitchCtrl::Next => {
                    st.pc += 1;
                    if st.pc >= prog_len {
                        st.halted = true;
                    }
                }
                SwitchCtrl::Jump(pc) => st.pc = pc,
                SwitchCtrl::WaitPc => st.halted = true,
            }
            ctrl_transition = !any_fired;
        } else if !any_fired {
            self.tiles[t].switch_stall_cycles += 1;
            if let Some(cause) = block_cause {
                self.last_switch_cause[t][net] = cause;
                if let Some(sink) = self.active_sink() {
                    sink.lock()
                        .unwrap()
                        .switch_stalls(t as u16, net as u8, cause, 1);
                }
            }
        }
        (any_fired, ctrl_transition)
    }

    /// Is the word at `src` visible to the switch this cycle?
    #[inline]
    fn src_visible(&self, src: CompiledSrc, cycle: u64) -> bool {
        match src {
            CompiledSrc::Csto { tile } => self.tiles[tile as usize].csto.has_visible(cycle, 0),
            CompiledSrc::Link { tile, net, dir } => {
                self.link_in[tile as usize][net as usize][dir as usize].has_visible(cycle, 0)
            }
        }
    }

    /// Would `dst` accept a word this cycle? On refusal, the stall cause
    /// in the interpreter's attribution order.
    #[inline]
    fn dst_accepts(&self, dst: CompiledDst, cycle: u64) -> Result<(), SwitchStallCause> {
        match dst {
            CompiledDst::Csti { tile, net } => {
                if self.tiles[tile as usize].csti[net as usize].has_space() {
                    Ok(())
                } else {
                    Err(SwitchStallCause::FifoFull)
                }
            }
            CompiledDst::Link { tile, net, dir } => {
                if self.link_in[tile as usize][net as usize][dir as usize].has_space() {
                    Ok(())
                } else {
                    Err(SwitchStallCause::FifoFull)
                }
            }
            CompiledDst::Device { index } => {
                if self.devices[index as usize].can_push(cycle) {
                    Ok(())
                } else {
                    Err(SwitchStallCause::DeviceBackpressure)
                }
            }
            CompiledDst::Drop => Ok(()),
        }
    }

    #[inline]
    fn pop_src(&mut self, src: CompiledSrc, cycle: u64) -> u32 {
        match src {
            CompiledSrc::Csto { tile } => self.tiles[tile as usize]
                .csto
                .pop_visible(cycle, 0)
                .unwrap(),
            CompiledSrc::Link { tile, net, dir } => self.link_in[tile as usize][net as usize]
                [dir as usize]
                .pop_visible(cycle, 0)
                .unwrap(),
        }
    }

    #[inline]
    fn push_dst(&mut self, dst: CompiledDst, word: u32, cycle: u64) {
        match dst {
            CompiledDst::Csti { tile, net } => {
                let ok = self.tiles[tile as usize].csti[net as usize].push(word, cycle);
                debug_assert!(ok);
            }
            CompiledDst::Link { tile, net, dir } => {
                let ok = self.link_in[tile as usize][net as usize][dir as usize].push(word, cycle);
                debug_assert!(ok);
            }
            CompiledDst::Device { index } => self.devices[index as usize].push_out(word, cycle),
            CompiledDst::Drop => self.edge_drops += 1,
        }
        self.routes_fired += 1;
    }

    /// Check-and-fire for a singleton group: source visible and the one
    /// destination willing, or the refusal cause.
    #[inline]
    fn try_fire_single(&mut self, r: &CompiledRoute, cycle: u64) -> Result<(), SwitchStallCause> {
        if !self.src_visible(r.src, cycle) {
            return Err(SwitchStallCause::FifoEmpty);
        }
        self.dst_accepts(r.dst, cycle)?;
        let word = self.pop_src(r.src, cycle);
        self.push_dst(r.dst, word, cycle);
        Ok(())
    }

    /// Check-and-fire for a multicast group (`group` is a bitmask over
    /// `routes`, all sharing a source): the shared source must be visible
    /// and every member destination willing; the popped word is
    /// duplicated across members in list order.
    fn try_fire_group_compiled(
        &mut self,
        routes: &[CompiledRoute],
        group: u32,
        cycle: u64,
    ) -> Result<(), SwitchStallCause> {
        let lead = routes[group.trailing_zeros() as usize];
        if !self.src_visible(lead.src, cycle) {
            return Err(SwitchStallCause::FifoEmpty);
        }
        let mut bits = group;
        while bits != 0 {
            let j = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            self.dst_accepts(routes[j].dst, cycle)?;
        }
        let word = self.pop_src(lead.src, cycle);
        let mut bits = group;
        while bits != 0 {
            let j = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            self.push_dst(routes[j].dst, word, cycle);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{EdgePort, WordSink, WordSource};
    use crate::geom::{Dir, GridDim};
    use crate::machine::EngineMode;
    use crate::machine::RawConfig;
    use crate::switch::{Route, SwitchInstr, NET0};

    fn fingerprint(m: &RawMachine) -> Vec<u64> {
        let mut v = vec![m.cycle(), m.edge_drops, m.routes_fired];
        for t in 0..m.dim().tiles() {
            let tile = TileId(t as u16);
            v.extend(m.stats(tile).counts.iter().copied());
            v.push(m.switch_stall_cycles(tile));
            let (pc, halted) = m.switch_status(tile, NET0);
            v.push(pc as u64);
            v.push(halted as u64);
        }
        v
    }

    /// West-to-east pass-through on the top row, fed by a source and
    /// drained by a throttled sink (exercises device backpressure).
    fn build(engine: EngineMode) -> RawMachine {
        let mut cfg = RawConfig {
            dim: GridDim { rows: 2, cols: 2 },
            engine,
            ..RawConfig::default()
        };
        cfg.local_mem_words = 1 << 12;
        let mut m = RawMachine::new(cfg);
        for t in [0usize, 1] {
            m.set_switch_program(
                TileId(t as u16),
                NET0,
                SwitchProgram::new(vec![SwitchInstr::new(
                    vec![Route::new(NET0, SwPort::W, SwPort::E)],
                    SwitchCtrl::Jump(0),
                )]),
            );
        }
        let words: Vec<u32> = (0..64).collect();
        m.bind_device(
            EdgePort {
                tile: TileId(0),
                dir: Dir::West,
                net: NET0,
            },
            Box::new(WordSource::new(words)),
        );
        m.bind_device(
            EdgePort {
                tile: TileId(1),
                dir: Dir::East,
                net: NET0,
            },
            Box::new(WordSink::rate_limited(2).0),
        );
        m
    }

    #[test]
    fn compiled_matches_interpreter_on_passthrough() {
        let mut reference = build(EngineMode::PerCycle);
        reference.run(400);
        for engine in [EngineMode::EventSkip, EngineMode::Compiled] {
            let mut m = build(engine);
            if engine == EngineMode::Compiled {
                m.compile_reference_plan();
                assert!(m.has_compiled_plan());
            }
            m.run(400);
            assert_eq!(fingerprint(&m), fingerprint(&reference), "{engine:?}");
        }
    }

    #[test]
    fn compiled_mode_without_plan_falls_back() {
        let mut reference = build(EngineMode::PerCycle);
        reference.run(300);
        // Engine says Compiled but no plan was installed: transparently
        // the event-skip interpreter.
        let mut m = build(EngineMode::Compiled);
        assert!(!m.has_compiled_plan());
        m.run(300);
        assert_eq!(fingerprint(&m), fingerprint(&reference));
    }

    #[test]
    fn partial_fallback_plan_matches() {
        let mut reference = build(EngineMode::PerCycle);
        reference.run(400);
        let mut m = build(EngineMode::Compiled);
        m.compile_reference_plan();
        // Knock one switch back to the interpreter: mixed execution must
        // still be bit-identical.
        let mut plan = (*m.plan.take().unwrap()).clone();
        plan.switches[0] = None;
        m.install_compiled_plan(plan).unwrap();
        m.run(400);
        assert_eq!(fingerprint(&m), fingerprint(&reference));
    }

    #[test]
    fn structural_mutation_invalidates_plan() {
        let mut m = build(EngineMode::Compiled);
        m.compile_reference_plan();
        assert!(m.has_compiled_plan());
        m.set_switch_program(TileId(3), NET0, SwitchProgram::idle());
        assert!(!m.has_compiled_plan());
    }

    #[test]
    fn stale_plan_rejected() {
        let mut m = build(EngineMode::Compiled);
        m.compile_reference_plan();
        let plan = (*m.plan.take().unwrap()).clone();
        m.set_switch_program(
            TileId(0),
            NET0,
            SwitchProgram::new(vec![SwitchInstr::new(
                vec![Route::new(NET0, SwPort::W, SwPort::Proc)],
                SwitchCtrl::Jump(0),
            )]),
        );
        let err = m.install_compiled_plan(plan).unwrap_err();
        assert!(err.contains("disagrees"), "{err}");
    }

    /// Multicast with one destination backpressured: the interpreter
    /// fires the unblocked subset from a later scan position, and the
    /// compiled grouped scan must reproduce that exactly.
    #[test]
    fn multicast_partial_block_matches_interpreter() {
        let build = |engine: EngineMode| {
            let cfg = RawConfig {
                dim: GridDim { rows: 1, cols: 2 },
                engine,
                ..RawConfig::default()
            };
            let mut m = RawMachine::new(cfg);
            // Tile 0 duplicates each westbound word to east (tile 1) and
            // to its own processor csti. Nothing drains csti, so it fills
            // and blocks that branch while the east branch keeps going.
            m.set_switch_program(
                TileId(0),
                NET0,
                SwitchProgram::new(vec![SwitchInstr::new(
                    vec![
                        Route::new(NET0, SwPort::W, SwPort::Proc),
                        Route::new(NET0, SwPort::W, SwPort::E),
                    ],
                    SwitchCtrl::Jump(0),
                )]),
            );
            // Tile 1 forwards east off-grid (unbound: drops).
            m.set_switch_program(
                TileId(1),
                NET0,
                SwitchProgram::new(vec![SwitchInstr::new(
                    vec![Route::new(NET0, SwPort::W, SwPort::E)],
                    SwitchCtrl::Jump(0),
                )]),
            );
            m.bind_device(
                EdgePort {
                    tile: TileId(0),
                    dir: Dir::West,
                    net: NET0,
                },
                Box::new(WordSource::new(0u32..32)),
            );
            m
        };
        let mut reference = build(EngineMode::PerCycle);
        reference.run(200);
        let mut compiled = build(EngineMode::Compiled);
        compiled.compile_reference_plan();
        compiled.run(200);
        assert_eq!(fingerprint(&compiled), fingerprint(&reference));
        // The blocked csti branch must have left residue: proves the
        // partial-block path actually ran.
        let (_, csti0, _) = reference.proc_queue_occupancy(TileId(0));
        assert!(csti0 > 0);
    }
}
