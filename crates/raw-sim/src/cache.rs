//! The per-tile data memory system.
//!
//! Each Raw tile has an 8,192-word, 2-way set-associative, 3-cycle-latency
//! data cache with 32-byte lines, backed by off-chip DRAM reached over the
//! memory dynamic network. The cache has a single port: every access costs
//! tile-processor cycles, which is the constraint (§4.4) that makes
//! buffering a word from the network into local memory cost two cycles
//! while a load-and-forward (`lw $csto, off($r)`) costs one.
//!
//! The simulator models tag state exactly (sets, ways, LRU, dirty bits) and
//! charges misses either a fixed latency or a latency derived from the
//! distance to the nearest east/west DRAM port, per
//! [`MissModel`]. Data contents live in a flat per-tile local memory since
//! the cache is timing-only.

/// Geometry of the data cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in 32-bit words (Raw: 8,192).
    pub words: usize,
    /// Line size in words (Raw: 32-byte lines = 8 words).
    pub line_words: usize,
    /// Associativity (Raw: 2-way).
    pub ways: usize,
}

impl CacheConfig {
    /// The Raw prototype cache: 8,192 words, 8-word lines, 2-way.
    pub const RAW_PROTOTYPE: CacheConfig = CacheConfig {
        words: 8192,
        line_words: 8,
        ways: 2,
    };

    pub fn sets(&self) -> usize {
        self.words / self.line_words / self.ways
    }
}

/// How a cache miss's latency is determined.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MissModel {
    /// A fixed round-trip to the DRAM controller. The default (30 cycles)
    /// approximates a short dynamic-network round trip plus DRAM access on
    /// the 250 MHz prototype.
    Fixed(u32),
    /// Base DRAM latency plus `per_hop` cycles for each dynamic-network hop
    /// to the nearest east/west edge port and back (dimension-ordered, so
    /// hop count is the column distance). `col_distance` is supplied by the
    /// machine at access time.
    DistanceToEdge { base: u32, per_hop: u32 },
}

impl Default for MissModel {
    fn default() -> Self {
        MissModel::Fixed(30)
    }
}

/// Outcome of a cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Access {
    Hit,
    /// Missed: the processor stalls for `latency` cycles while the line is
    /// fetched (and a dirty victim written back).
    Miss {
        latency: u32,
    },
}

#[derive(Clone, Copy, Debug, Default)]
struct Line {
    tag: u32,
    valid: bool,
    dirty: bool,
}

/// Tag-and-timing model of one tile's data cache.
#[derive(Clone, Debug)]
pub struct DCache {
    cfg: CacheConfig,
    miss_model: MissModel,
    /// Extra miss latency when the victim line is dirty (write-back).
    pub dirty_evict_penalty: u32,
    lines: Vec<Line>,
    /// Per-set LRU: index of the least-recently-used way (2-way only needs
    /// one bit; kept as u8 for arbitrary associativity).
    lru: Vec<u8>,
    pub hits: u64,
    pub misses: u64,
    pub writebacks: u64,
}

impl DCache {
    pub fn new(cfg: CacheConfig, miss_model: MissModel, dirty_evict_penalty: u32) -> DCache {
        assert!(cfg.line_words.is_power_of_two());
        assert!(cfg.sets().is_power_of_two());
        assert!(cfg.ways >= 1);
        DCache {
            cfg,
            miss_model,
            dirty_evict_penalty,
            lines: vec![Line::default(); cfg.sets() * cfg.ways],
            lru: vec![0; cfg.sets()],
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    fn set_and_tag(&self, word_addr: u32) -> (usize, u32) {
        let line = word_addr as usize / self.cfg.line_words;
        let set = line % self.cfg.sets();
        let tag = (line / self.cfg.sets()) as u32;
        (set, tag)
    }

    /// Access `word_addr`; `col_hops` is the column distance to the nearest
    /// DRAM edge port (used only by [`MissModel::DistanceToEdge`]).
    pub fn access(&mut self, word_addr: u32, is_write: bool, col_hops: u32) -> Access {
        let (set, tag) = self.set_and_tag(word_addr);
        let base = set * self.cfg.ways;
        // Hit path.
        for way in 0..self.cfg.ways {
            let l = &mut self.lines[base + way];
            if l.valid && l.tag == tag {
                l.dirty |= is_write;
                self.hits += 1;
                self.lru[set] = ((way + 1) % self.cfg.ways) as u8;
                return Access::Hit;
            }
        }
        // Miss: fill into an invalid way if possible, else evict LRU.
        self.misses += 1;
        let victim = (0..self.cfg.ways)
            .find(|&w| !self.lines[base + w].valid)
            .unwrap_or(self.lru[set] as usize);
        let mut latency = match self.miss_model {
            MissModel::Fixed(l) => l,
            MissModel::DistanceToEdge { base, per_hop } => base + 2 * per_hop * col_hops,
        };
        if self.lines[base + victim].valid && self.lines[base + victim].dirty {
            latency += self.dirty_evict_penalty;
            self.writebacks += 1;
        }
        self.lines[base + victim] = Line {
            tag,
            valid: true,
            dirty: is_write,
        };
        self.lru[set] = ((victim + 1) % self.cfg.ways) as u8;
        Access::Miss { latency }
    }

    /// Invalidate everything (machine reset).
    pub fn clear(&mut self) {
        self.lines.fill(Line::default());
        self.lru.fill(0);
    }

    /// Fraction of accesses that hit (1.0 when no accesses yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> DCache {
        DCache::new(CacheConfig::RAW_PROTOTYPE, MissModel::Fixed(30), 12)
    }

    #[test]
    fn prototype_geometry() {
        let cfg = CacheConfig::RAW_PROTOTYPE;
        assert_eq!(cfg.sets(), 512);
        assert_eq!(cfg.words * 4, 32 * 1024, "8K words = 32 KB");
    }

    #[test]
    fn first_touch_misses_then_hits() {
        let mut c = cache();
        assert_eq!(c.access(0, false, 0), Access::Miss { latency: 30 });
        assert_eq!(c.access(0, false, 0), Access::Hit);
        // Same line, different word.
        assert_eq!(c.access(7, false, 0), Access::Hit);
        // Next line misses.
        assert_eq!(c.access(8, false, 0), Access::Miss { latency: 30 });
    }

    #[test]
    fn two_way_associativity_holds_two_conflicting_lines() {
        let mut c = cache();
        let sets = c.config().sets() as u32;
        let line = c.config().line_words as u32;
        let stride = sets * line; // same set, different tag
        assert!(matches!(c.access(0, false, 0), Access::Miss { .. }));
        assert!(matches!(c.access(stride, false, 0), Access::Miss { .. }));
        assert_eq!(c.access(0, false, 0), Access::Hit);
        assert_eq!(c.access(stride, false, 0), Access::Hit);
        // A third conflicting line evicts one of them.
        assert!(matches!(
            c.access(2 * stride, false, 0),
            Access::Miss { .. }
        ));
    }

    #[test]
    fn dirty_eviction_costs_writeback() {
        let mut c = cache();
        let sets = c.config().sets() as u32;
        let line = c.config().line_words as u32;
        let stride = sets * line;
        // Dirty both ways of set 0.
        assert!(matches!(c.access(0, true, 0), Access::Miss { .. }));
        assert!(matches!(c.access(stride, true, 0), Access::Miss { .. }));
        // Evicting a dirty line adds the write-back penalty.
        match c.access(2 * stride, false, 0) {
            Access::Miss { latency } => assert_eq!(latency, 30 + 12),
            Access::Hit => panic!("expected a miss"),
        }
        assert_eq!(c.writebacks, 1);
    }

    #[test]
    fn distance_model_scales_with_hops() {
        let mut c = DCache::new(
            CacheConfig::RAW_PROTOTYPE,
            MissModel::DistanceToEdge {
                base: 20,
                per_hop: 2,
            },
            0,
        );
        match c.access(0, false, 3) {
            Access::Miss { latency } => assert_eq!(latency, 20 + 2 * 2 * 3),
            Access::Hit => panic!(),
        }
    }

    #[test]
    fn hit_rate_tracks() {
        let mut c = cache();
        let _ = c.access(0, false, 0);
        let _ = c.access(1, false, 0);
        let _ = c.access(2, false, 0);
        let _ = c.access(3, false, 0);
        assert_eq!(c.misses, 1);
        assert_eq!(c.hits, 3);
        assert!((c.hit_rate() - 0.75).abs() < 1e-12);
    }
}
