//! The dynamic networks: wormhole-routed, dimension-ordered, two-stage
//! pipelined mesh networks (§3.3).
//!
//! Raw has two identical dynamic networks, used for communication patterns
//! that cannot be determined at compile time — cache misses travel over the
//! memory dynamic network, and external asynchronous events over the
//! general one. Messages are a header word plus up to 31 payload words; the
//! header carries the destination tile and the payload length, and routing
//! is X-then-Y (dimension-ordered), which is deadlock-free on a mesh.
//!
//! The Rotating Crossbar deliberately does *not* use these networks
//! (§6.5); they are modeled for completeness, for the cache-miss path, and
//! for the non-blocking-memory future-work experiments (§8.2).

use crate::fifo::TsFifo;
use crate::geom::{Dir, GridDim, TileId};

/// Payload length limit: "messages on this network can vary in length from
/// only the header up to 32 words including the header".
pub const MAX_PAYLOAD_WORDS: u32 = 31;

/// Pack a dynamic-network header word.
///
/// Layout: `[4:0]` payload length, `[12:5]` destination column, `[20:13]`
/// destination row, `[31:21]` user tag.
pub fn pack_header(dest_row: u16, dest_col: u16, len: u32, user: u32) -> u32 {
    assert!(len <= MAX_PAYLOAD_WORDS, "payload too long for one message");
    assert!(dest_row < 256 && dest_col < 256);
    assert!(user < (1 << 11));
    len | ((dest_col as u32) << 5) | ((dest_row as u32) << 13) | (user << 21)
}

/// Unpack a header produced by [`pack_header`]: `(row, col, len, user)`.
pub fn unpack_header(h: u32) -> (u16, u16, u32, u32) {
    (
        ((h >> 13) & 0xff) as u16,
        ((h >> 5) & 0xff) as u16,
        h & 0x1f,
        h >> 21,
    )
}

/// Input channels of a tile's dynamic router: four mesh directions plus the
/// processor-inject queue (`$cdno`).
const IN_PORTS: usize = 5;
const IN_INJECT: usize = 4;

/// Output selection at a hop.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Out {
    Dir(Dir),
    Deliver,
}

#[derive(Clone, Copy, Debug)]
struct InputAlloc {
    out: Out,
    remaining: u32,
}

struct TileRouter {
    /// Input FIFOs: N, E, S, W, inject.
    inputs: [TsFifo; IN_PORTS],
    /// Wormhole allocation per input channel.
    alloc: [Option<InputAlloc>; IN_PORTS],
    /// Which input currently owns each output (N, E, S, W, deliver).
    out_owner: [Option<usize>; 5],
    /// Delivery queue to the tile processor (`$cdni`).
    cdni: TsFifo,
    /// Round-robin arbitration pointer over inputs.
    rr: usize,
}

/// One dynamic network spanning the whole grid.
pub struct DynNet {
    dim: GridDim,
    routers: Vec<TileRouter>,
    /// Words that exited the chip at an edge with no consumer attached.
    pub dropped_at_edge: u64,
    /// Total words moved (for progress detection).
    pub words_moved: u64,
    /// Words currently buffered in router *input* FIFOs (not `$cdni`).
    /// While zero, [`DynNet::step`] has nothing to do and returns
    /// immediately — the common case whenever a workload leaves the
    /// dynamic networks idle.
    in_network: u64,
}

impl DynNet {
    pub fn new(dim: GridDim, fifo_capacity: usize, cdni_capacity: usize) -> DynNet {
        let routers = (0..dim.tiles())
            .map(|_| TileRouter {
                inputs: std::array::from_fn(|_| TsFifo::new(fifo_capacity)),
                alloc: [None; IN_PORTS],
                out_owner: [None; 5],
                cdni: TsFifo::new(cdni_capacity),
                rr: 0,
            })
            .collect();
        DynNet {
            dim,
            routers,
            dropped_at_edge: 0,
            words_moved: 0,
            in_network: 0,
        }
    }

    /// Dimension-ordered (X then Y) next hop for a message at `here` headed
    /// to `(dr, dc)`.
    fn route(&self, here: TileId, dr: u16, dc: u16) -> Out {
        let (r, c) = self.dim.coords(here);
        if c < dc {
            Out::Dir(Dir::East)
        } else if c > dc {
            Out::Dir(Dir::West)
        } else if r < dr {
            Out::Dir(Dir::South)
        } else if r > dr {
            Out::Dir(Dir::North)
        } else {
            Out::Deliver
        }
    }

    /// Inject a word from the tile processor (`$cdno`). Returns `false`
    /// when the inject FIFO is full.
    #[must_use]
    pub fn inject(&mut self, tile: TileId, word: u32, cycle: u64) -> bool {
        let ok = self.routers[tile.index()].inputs[IN_INJECT].push(word, cycle);
        if ok {
            self.in_network += 1;
        }
        ok
    }

    /// True if the inject FIFO can take another word.
    pub fn can_inject(&self, tile: TileId) -> bool {
        self.routers[tile.index()].inputs[IN_INJECT].has_space()
    }

    /// Read a delivered word at the tile processor (`$cdni`), honoring the
    /// processor's extra pipeline delay.
    pub fn recv(&mut self, tile: TileId, cycle: u64, proc_delay: u64) -> Option<u32> {
        self.routers[tile.index()]
            .cdni
            .pop_visible(cycle, proc_delay)
    }

    /// True if a delivered word is readable this cycle.
    pub fn can_recv(&self, tile: TileId, cycle: u64, proc_delay: u64) -> bool {
        self.routers[tile.index()]
            .cdni
            .has_visible(cycle, proc_delay)
    }

    /// Advance every router one cycle. Each input channel moves at most one
    /// word; each output accepts at most one word.
    pub fn step(&mut self, cycle: u64) {
        if self.in_network == 0 {
            // No words in any router input: nothing can move ($cdni words
            // only wait for their consumer). Skip the full-grid scan.
            return;
        }
        // One output may be claimed per cycle; destination space is checked
        // against live occupancy, and moved words are timestamped with the
        // current cycle so they travel one hop per cycle.
        for t in 0..self.dim.tiles() {
            let tile = TileId(t as u16);
            // Deterministic round-robin over input channels for fairness.
            let start = self.routers[t].rr;
            let mut moved_any = false;
            for k in 0..IN_PORTS {
                let i = (start + k) % IN_PORTS;
                let (word, is_header) = {
                    let r = &self.routers[t];
                    match r.inputs[i].peek_visible(cycle, 0) {
                        Some(w) => (w, r.alloc[i].is_none()),
                        None => continue,
                    }
                };
                let out = if is_header {
                    let (dr, dc, _len, _user) = unpack_header(word);
                    let o = self.route(tile, dr, dc);
                    // An output serves one worm at a time.
                    if self.routers[t].out_owner[Self::out_idx(o)].is_some() {
                        continue;
                    }
                    o
                } else {
                    self.routers[t].alloc[i].unwrap().out
                };
                if !self.try_move(t, i, out, word, cycle) {
                    continue;
                }
                moved_any = true;
                // Update wormhole state.
                let r = &mut self.routers[t];
                if is_header {
                    let (_, _, len, _) = unpack_header(word);
                    if len > 0 {
                        r.alloc[i] = Some(InputAlloc {
                            out,
                            remaining: len,
                        });
                        r.out_owner[Self::out_idx(out)] = Some(i);
                    }
                } else {
                    let a = r.alloc[i].as_mut().unwrap();
                    a.remaining -= 1;
                    if a.remaining == 0 {
                        let o = a.out;
                        r.alloc[i] = None;
                        r.out_owner[Self::out_idx(o)] = None;
                    }
                }
            }
            if moved_any {
                self.routers[t].rr = (self.routers[t].rr + 1) % IN_PORTS;
            }
        }
    }

    fn out_idx(o: Out) -> usize {
        match o {
            Out::Dir(d) => d.index(),
            Out::Deliver => 4,
        }
    }

    /// Attempt to move `word` from input `i` of tile `t` to output `out`.
    fn try_move(&mut self, t: usize, i: usize, out: Out, word: u32, cycle: u64) -> bool {
        let tile = TileId(t as u16);
        // Whether the word lands in another router *input* FIFO (stays in
        // the network) or leaves it ($cdni delivery / edge drop).
        let mut stays_in_network = false;
        let ok = match out {
            Out::Deliver => self.routers[t].cdni.push(word, cycle),
            Out::Dir(d) => match self.dim.neighbor(tile, d) {
                Some(n) => {
                    let in_port = d.opposite().index();
                    stays_in_network = true;
                    self.routers[n.index()].inputs[in_port].push(word, cycle)
                }
                None => {
                    // Fell off the chip with no consumer: count and drop.
                    self.dropped_at_edge += 1;
                    true
                }
            },
        };
        if ok {
            let popped = self.routers[t].inputs[i].pop_visible(cycle, 0);
            debug_assert_eq!(popped, Some(word));
            self.words_moved += 1;
            if !stays_in_network {
                self.in_network -= 1;
            }
        }
        ok
    }

    /// Earliest cycle `>= now` at which a currently queued word first
    /// becomes visible to its consumer (router inputs at delay 0, `$cdni`
    /// at the processor's `proc_delay`), or `None` when every queued word
    /// is already visible — a stable configuration that only an external
    /// action can change. Used by the machine's event-skip fast-forward.
    pub fn next_visibility_event(&self, now: u64, proc_delay: u64) -> Option<u64> {
        let mut best: Option<u64> = None;
        let mut consider = |v: u64| {
            if v >= now && best.is_none_or(|b| v < b) {
                best = Some(v);
            }
        };
        for r in &self.routers {
            if self.in_network > 0 {
                for f in &r.inputs {
                    if let Some(ts) = f.front_ts() {
                        consider(ts + 1);
                    }
                }
            }
            if let Some(ts) = r.cdni.front_ts() {
                consider(ts + proc_delay + 1);
            }
        }
        best
    }

    /// Total words currently buffered anywhere in the network.
    pub fn words_in_flight(&self) -> usize {
        self.routers
            .iter()
            .map(|r| r.inputs.iter().map(|f| f.len()).sum::<usize>() + r.cdni.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> DynNet {
        DynNet::new(GridDim::RAW_PROTOTYPE, 4, 8)
    }

    fn drain(net: &mut DynNet, tile: TileId, cycle: &mut u64, n: usize) -> Vec<u32> {
        let mut out = Vec::new();
        let deadline = *cycle + 1000;
        while out.len() < n && *cycle < deadline {
            net.step(*cycle);
            *cycle += 1;
            while let Some(w) = net.recv(tile, *cycle, 0) {
                out.push(w);
            }
        }
        out
    }

    #[test]
    fn header_roundtrip() {
        let h = pack_header(3, 2, 17, 0x5a5);
        assert_eq!(unpack_header(h), (3, 2, 17, 0x5a5));
    }

    #[test]
    #[should_panic(expected = "payload too long")]
    fn oversize_payload_rejected() {
        pack_header(0, 0, 32, 0);
    }

    #[test]
    fn delivers_single_header_message() {
        let mut net = net();
        let mut cycle = 0u64;
        let h = pack_header(1, 1, 0, 7);
        assert!(net.inject(TileId(0), h, cycle));
        cycle += 1;
        let got = drain(&mut net, TileId(5), &mut cycle, 1);
        assert_eq!(got, vec![h]);
    }

    #[test]
    fn delivers_payload_in_order() {
        let mut net = net();
        let mut cycle = 0u64;
        let h = pack_header(3, 3, 3, 0);
        for w in [h, 100, 101, 102] {
            assert!(net.inject(TileId(0), w, cycle));
        }
        cycle += 1;
        let got = drain(&mut net, TileId(15), &mut cycle, 4);
        assert_eq!(got, vec![h, 100, 101, 102]);
    }

    #[test]
    fn latency_is_hops_plus_pipeline() {
        // One hop per cycle: tile 0 -> tile 15 is 6 hops; injection and
        // delivery add their own cycles.
        let mut net = net();
        let h = pack_header(3, 3, 0, 0);
        assert!(net.inject(TileId(0), h, 0));
        let mut arrived_at = None;
        for cycle in 1..40u64 {
            net.step(cycle);
            if net.can_recv(TileId(15), cycle + 1, 0) {
                arrived_at = Some(cycle);
                break;
            }
        }
        let cyc = arrived_at.expect("message never arrived");
        assert!(
            (6..=9).contains(&cyc),
            "6-hop message took {cyc} cycles to arrive"
        );
    }

    #[test]
    fn two_messages_do_not_interleave_on_shared_path() {
        // Two worms from different sources to the same destination must be
        // delivered without interleaving their payloads (wormhole property).
        let mut net = net();
        let mut cycle = 0u64;
        let h_a = pack_header(0, 3, 2, 1);
        let h_b = pack_header(0, 3, 2, 2);
        assert!(net.inject(TileId(0), h_a, cycle));
        assert!(net.inject(TileId(0), 0xa1, cycle));
        assert!(net.inject(TileId(0), 0xa2, cycle));
        assert!(net.inject(TileId(1), h_b, cycle));
        assert!(net.inject(TileId(1), 0xb1, cycle));
        assert!(net.inject(TileId(1), 0xb2, cycle));
        cycle += 1;
        let got = drain(&mut net, TileId(3), &mut cycle, 6);
        assert_eq!(got.len(), 6);
        // Find each worm and check contiguity.
        let pos_a = got.iter().position(|&w| w == h_a).unwrap();
        assert_eq!(&got[pos_a..pos_a + 3], &[h_a, 0xa1, 0xa2]);
        let pos_b = got.iter().position(|&w| w == h_b).unwrap();
        assert_eq!(&got[pos_b..pos_b + 3], &[h_b, 0xb1, 0xb2]);
    }

    #[test]
    fn dimension_order_goes_x_first() {
        // A message from tile 0 (0,0) to tile 13 (3,1) must traverse east
        // to column 1 before going south; we verify it never appears in
        // column-0 routers below row 0 by checking in-flight placement.
        let mut net = net();
        let h = pack_header(3, 1, 0, 0);
        assert!(net.inject(TileId(0), h, 0));
        let mut delivered = false;
        for cycle in 1..30u64 {
            net.step(cycle);
            // Tile 4 and 8 and 12 are column 0, rows 1..3: the message
            // must never be buffered there.
            for t in [4u16, 8, 12] {
                assert_eq!(
                    net.routers[t as usize]
                        .inputs
                        .iter()
                        .map(|f| f.len())
                        .sum::<usize>(),
                    0,
                    "dimension-ordered message strayed into column 0"
                );
            }
            if net.can_recv(TileId(13), cycle + 1, 0) {
                delivered = true;
                break;
            }
        }
        assert!(delivered);
    }

    #[test]
    fn backpressure_fills_inject_queue() {
        let mut net = DynNet::new(GridDim::RAW_PROTOTYPE, 1, 1);
        // cdni capacity 1 and no consumer: flood tile 1 from tile 0.
        let mut accepted = 0u32;
        for cycle in 0..50u64 {
            let h = pack_header(0, 1, 0, 0);
            if net.inject(TileId(0), h, cycle) {
                accepted += 1;
            }
            net.step(cycle);
        }
        // Only a couple of words fit in the stalled path.
        assert!(accepted < 10, "backpressure failed: accepted {accepted}");
        assert!(net.words_in_flight() > 0);
    }

    #[test]
    fn edge_drop_counted() {
        let mut net = net();
        // Destination column 200 routes east off the chip.
        // (Use an in-range header; col 200 > 3 so it exits east.)
        let h = pack_header(0, 200, 0, 0);
        assert!(net.inject(TileId(3), h, 0));
        for cycle in 1..10u64 {
            net.step(cycle);
        }
        assert_eq!(net.dropped_at_edge, 1);
    }
}
