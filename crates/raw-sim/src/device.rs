//! Off-chip devices attached to edge ports of the static networks.
//!
//! "First data streams in on the static network from an off-chip input
//! line card" (§4.3): the simulator exposes every static-network link that
//! leaves the grid as an *edge port* to which a device can be bound. A
//! device can source words (a line card's receive side), sink words (its
//! transmit side, with backpressure), or both.

use std::any::Any;
use std::sync::{Arc, Mutex};

use crate::geom::{Dir, TileId};
use crate::switch::NetId;

/// Address of an edge port: the tile, the off-chip direction, and which
/// static network.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EdgePort {
    pub tile: TileId,
    pub dir: Dir,
    pub net: NetId,
}

impl EdgePort {
    pub fn new(tile: TileId, dir: Dir, net: NetId) -> EdgePort {
        EdgePort { tile, dir, net }
    }
}

/// A device bound to an edge port.
pub trait EdgeDevice: Send {
    /// Offer at most one word into the chip this cycle, called only when
    /// the edge input FIFO has space.
    fn pull_in(&mut self, _cycle: u64) -> Option<u32> {
        None
    }

    /// Whether a word leaving the chip would be accepted this cycle
    /// (checked before the switch commits a route; exerts backpressure).
    fn can_push(&self, _cycle: u64) -> bool {
        true
    }

    /// Accept a word leaving the chip. Called only after `can_push`.
    fn push_out(&mut self, _word: u32, _cycle: u64) {}

    /// The earliest cycle `>= now` on which [`EdgeDevice::pull_in`] might
    /// return a word, or `None` if it cannot until some other state in the
    /// machine changes. The machine's event-skip fast-forward consults this
    /// on quiet cycles; the default is conservatively "this cycle", which
    /// keeps custom devices correct (they are simply never skipped past) at
    /// the cost of disabling the skip while one is injectable.
    fn next_inject_event(&self, now: u64) -> Option<u64> {
        Some(now)
    }

    /// The earliest cycle `>= now` on which [`EdgeDevice::can_push`] might
    /// newly become true, or `None` if its answer cannot change on its own.
    /// Same conservative contract as [`EdgeDevice::next_inject_event`].
    fn next_accept_event(&self, now: u64) -> Option<u64> {
        Some(now)
    }

    /// May [`EdgeDevice::pull_in`] ever return a word or have a side
    /// effect? Pure output-side devices (sinks) return false, letting a
    /// compiled execution plan drop them from the per-cycle injection
    /// poll entirely. The conservative default keeps custom devices
    /// correct.
    fn is_injector(&self) -> bool {
        true
    }

    /// Downcasting support so callers can retrieve concrete devices from a
    /// machine after a run.
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// A source that feeds a fixed sequence of words into the chip.
pub struct WordSource {
    words: std::collections::VecDeque<u32>,
    pub injected: u64,
}

impl WordSource {
    pub fn new(words: impl IntoIterator<Item = u32>) -> WordSource {
        WordSource {
            words: words.into_iter().collect(),
            injected: 0,
        }
    }

    pub fn remaining(&self) -> usize {
        self.words.len()
    }
}

impl EdgeDevice for WordSource {
    fn pull_in(&mut self, _cycle: u64) -> Option<u32> {
        let w = self.words.pop_front();
        if w.is_some() {
            self.injected += 1;
        }
        w
    }

    fn next_inject_event(&self, now: u64) -> Option<u64> {
        if self.words.is_empty() {
            None
        } else {
            Some(now)
        }
    }

    fn next_accept_event(&self, _now: u64) -> Option<u64> {
        None // can_push is constantly true
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Shared handle to the words collected by a [`WordSink`].
pub type SinkHandle = Arc<Mutex<Vec<(u64, u32)>>>;

/// A sink that records every word leaving the chip, with its cycle.
/// Optionally rate-limited to model a line card that accepts at most one
/// word every `interval` cycles.
pub struct WordSink {
    collected: SinkHandle,
    interval: u64,
    last_accept: Option<u64>,
}

impl WordSink {
    /// An always-ready sink. Returns the device and a shared handle to its
    /// collected `(cycle, word)` pairs.
    pub fn new() -> (WordSink, SinkHandle) {
        Self::rate_limited(1)
    }

    /// A sink accepting at most one word per `interval` cycles.
    pub fn rate_limited(interval: u64) -> (WordSink, SinkHandle) {
        assert!(interval >= 1);
        let collected: SinkHandle = Arc::new(Mutex::new(Vec::new()));
        (
            WordSink {
                collected: Arc::clone(&collected),
                interval,
                last_accept: None,
            },
            collected,
        )
    }
}

impl EdgeDevice for WordSink {
    fn is_injector(&self) -> bool {
        false
    }

    fn can_push(&self, cycle: u64) -> bool {
        match self.last_accept {
            Some(last) => cycle >= last + self.interval,
            None => true,
        }
    }

    fn push_out(&mut self, word: u32, cycle: u64) {
        debug_assert!(self.can_push(cycle));
        self.last_accept = Some(cycle);
        self.collected.lock().unwrap().push((cycle, word));
    }

    fn next_inject_event(&self, _now: u64) -> Option<u64> {
        None // never sources words
    }

    fn next_accept_event(&self, now: u64) -> Option<u64> {
        match self.last_accept {
            // `can_push` flips back to true at `last + interval`; before
            // the first accept (and once the flip is in the past) the
            // answer cannot change on its own.
            Some(last) if last + self.interval >= now => Some(last + self.interval),
            _ => None,
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A sink that drops everything (a disconnected port that still accepts).
pub struct NullSink {
    pub dropped: u64,
}

impl NullSink {
    pub fn new() -> NullSink {
        NullSink { dropped: 0 }
    }
}

impl Default for NullSink {
    fn default() -> Self {
        Self::new()
    }
}

impl EdgeDevice for NullSink {
    fn is_injector(&self) -> bool {
        false
    }

    fn push_out(&mut self, _word: u32, _cycle: u64) {
        self.dropped += 1;
    }

    fn next_inject_event(&self, _now: u64) -> Option<u64> {
        None
    }

    fn next_accept_event(&self, _now: u64) -> Option<u64> {
        None
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_source_drains_in_order() {
        let mut s = WordSource::new([1, 2, 3]);
        assert_eq!(s.pull_in(0), Some(1));
        assert_eq!(s.pull_in(1), Some(2));
        assert_eq!(s.pull_in(2), Some(3));
        assert_eq!(s.pull_in(3), None);
        assert_eq!(s.injected, 3);
    }

    #[test]
    fn sink_collects_with_cycles() {
        let (mut sink, handle) = WordSink::new();
        assert!(sink.can_push(0));
        sink.push_out(42, 5);
        sink.push_out(43, 6);
        let got = handle.lock().unwrap().clone();
        assert_eq!(got, vec![(5, 42), (6, 43)]);
    }

    #[test]
    fn rate_limited_sink_backpressures() {
        let (mut sink, _h) = WordSink::rate_limited(4);
        assert!(sink.can_push(10));
        sink.push_out(1, 10);
        assert!(!sink.can_push(11));
        assert!(!sink.can_push(13));
        assert!(sink.can_push(14));
    }

    #[test]
    fn null_sink_counts_drops() {
        let mut n = NullSink::new();
        n.push_out(1, 0);
        n.push_out(2, 1);
        assert_eq!(n.dropped, 2);
    }
}
