//! Per-tile utilization tracing — the data behind Figure 7-3.
//!
//! Every cycle each tile processor is in exactly one [`Activity`] state.
//! The paper's utilization plots color a tile gray when it is "blocked on
//! transmit, receive, or cache miss"; we keep the four blocked/busy states
//! separate and can render either the paper's two-tone view or a richer
//! one.

/// What a tile processor spent a cycle on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Activity {
    /// No work issued.
    Idle,
    /// Retired useful work (compute, send, receive, memory hit).
    Busy,
    /// Stalled writing a full network register (blocked on transmit).
    BlockedSend,
    /// Stalled reading an empty network register (blocked on receive).
    BlockedRecv,
    /// Stalled on a data-cache miss.
    CacheStall,
}

impl Activity {
    pub const ALL: [Activity; 5] = [
        Activity::Idle,
        Activity::Busy,
        Activity::BlockedSend,
        Activity::BlockedRecv,
        Activity::CacheStall,
    ];

    #[inline]
    pub fn index(self) -> usize {
        match self {
            Activity::Idle => 0,
            Activity::Busy => 1,
            Activity::BlockedSend => 2,
            Activity::BlockedRecv => 3,
            Activity::CacheStall => 4,
        }
    }

    /// True for the states the paper plots as gray ("blocked on transmit,
    /// receive, or cache miss").
    #[inline]
    pub fn is_blocked(self) -> bool {
        matches!(
            self,
            Activity::BlockedSend | Activity::BlockedRecv | Activity::CacheStall
        )
    }
}

/// Cumulative per-tile activity counters.
#[derive(Clone, Debug, Default)]
pub struct TileStats {
    pub counts: [u64; 5],
}

impl TileStats {
    pub fn record(&mut self, a: Activity) {
        self.counts[a.index()] += 1;
    }

    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    pub fn busy(&self) -> u64 {
        self.counts[Activity::Busy.index()]
    }

    pub fn blocked(&self) -> u64 {
        Activity::ALL
            .iter()
            .filter(|a| a.is_blocked())
            .map(|a| self.counts[a.index()])
            .sum()
    }

    /// Busy fraction of all recorded cycles.
    pub fn utilization(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.busy() as f64 / t as f64
        }
    }
}

/// A bounded window of per-tile activity samples, recorded on demand.
#[derive(Clone, Debug)]
pub struct TraceWindow {
    pub start_cycle: u64,
    pub len: usize,
    tiles: usize,
    /// `samples[tile][cycle - start_cycle]`
    samples: Vec<Vec<Activity>>,
}

impl TraceWindow {
    pub fn new(tiles: usize, start_cycle: u64, len: usize) -> TraceWindow {
        TraceWindow {
            start_cycle,
            len,
            tiles,
            samples: vec![Vec::with_capacity(len); tiles],
        }
    }

    /// Number of tile rows in the window.
    pub fn tiles(&self) -> usize {
        self.tiles
    }

    /// True while the window still wants samples at `cycle`.
    pub fn wants(&self, cycle: u64) -> bool {
        cycle >= self.start_cycle && (cycle - self.start_cycle) < self.len as u64
    }

    pub fn record(&mut self, tile: usize, cycle: u64, a: Activity) {
        if self.wants(cycle) {
            debug_assert_eq!(
                self.samples[tile].len() as u64,
                cycle - self.start_cycle,
                "trace samples must be recorded densely"
            );
            self.samples[tile].push(a);
        }
    }

    /// Record `len` consecutive cycles of the same activity for `tile`,
    /// starting at `from_cycle` — the bulk equivalent of calling
    /// [`TraceWindow::record`] once per cycle. The machine's event-skip
    /// fast-forward uses this to credit skipped cycles without visiting
    /// each one; the dense-recording invariant is preserved.
    pub fn record_span(&mut self, tile: usize, from_cycle: u64, len: u64, a: Activity) {
        let lo = from_cycle.max(self.start_cycle);
        let hi = (from_cycle + len).min(self.start_cycle + self.len as u64);
        if lo >= hi {
            return;
        }
        debug_assert_eq!(
            self.samples[tile].len() as u64,
            lo - self.start_cycle,
            "trace samples must be recorded densely"
        );
        let cur = self.samples[tile].len();
        self.samples[tile].resize(cur + (hi - lo) as usize, a);
    }

    pub fn is_complete(&self) -> bool {
        self.samples.iter().all(|s| s.len() == self.len)
    }

    pub fn tile_samples(&self, tile: usize) -> &[Activity] {
        &self.samples[tile]
    }

    /// Convert to the neutral telemetry export representation: state
    /// indices follow [`Activity::index`], CSV names and blocked/busy
    /// classes match the historical `fig7_3_*.csv` / ASCII output
    /// byte-for-byte.
    pub fn to_activity_trace(&self) -> raw_telemetry::ActivityTrace {
        use raw_telemetry::ActivityClass;
        let states = Activity::ALL
            .iter()
            .map(|a| {
                let name = match a {
                    Activity::Idle => "idle",
                    Activity::Busy => "busy",
                    Activity::BlockedSend => "blocked_send",
                    Activity::BlockedRecv => "blocked_recv",
                    Activity::CacheStall => "cache_stall",
                };
                let class = if *a == Activity::Busy {
                    ActivityClass::Busy
                } else if a.is_blocked() {
                    ActivityClass::Blocked
                } else {
                    ActivityClass::Idle
                };
                (name.to_string(), class)
            })
            .collect();
        raw_telemetry::ActivityTrace {
            start_cycle: self.start_cycle,
            states,
            samples: self
                .samples
                .iter()
                .map(|row| row.iter().map(|a| a.index() as u8).collect())
                .collect(),
        }
    }

    /// Render the window in the style of Figure 7-3: one row per tile,
    /// buckets of `bucket` cycles; `#` mostly-busy, `.` mostly-blocked
    /// (gray in the paper), ` ` mostly idle.
    #[deprecated(note = "use to_activity_trace().render_ascii(bucket) — the telemetry exporter")]
    pub fn render_ascii(&self, bucket: usize) -> String {
        self.to_activity_trace().render_ascii(bucket)
    }

    /// Per-tile `(busy, blocked, idle)` fractions over the window.
    pub fn tile_fractions(&self, tile: usize) -> (f64, f64, f64) {
        let row = &self.samples[tile];
        if row.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        let n = row.len() as f64;
        let busy = row.iter().filter(|a| **a == Activity::Busy).count() as f64;
        let blocked = row.iter().filter(|a| a.is_blocked()).count() as f64;
        (busy / n, blocked / n, (n - busy - blocked) / n)
    }

    /// CSV rows `tile,cycle,state` for external plotting.
    #[deprecated(note = "use to_activity_trace().to_csv() — the telemetry exporter")]
    pub fn to_csv(&self) -> String {
        self.to_activity_trace().to_csv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocked_classification_matches_paper() {
        assert!(Activity::BlockedSend.is_blocked());
        assert!(Activity::BlockedRecv.is_blocked());
        assert!(Activity::CacheStall.is_blocked());
        assert!(!Activity::Busy.is_blocked());
        assert!(!Activity::Idle.is_blocked());
    }

    #[test]
    fn stats_accumulate() {
        let mut s = TileStats::default();
        s.record(Activity::Busy);
        s.record(Activity::Busy);
        s.record(Activity::BlockedRecv);
        s.record(Activity::Idle);
        assert_eq!(s.total(), 4);
        assert_eq!(s.busy(), 2);
        assert_eq!(s.blocked(), 1);
        assert!((s.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn window_records_densely_and_completes() {
        let mut w = TraceWindow::new(2, 10, 3);
        assert!(!w.wants(9));
        assert!(w.wants(10));
        assert!(!w.wants(13));
        for cycle in 10..13 {
            w.record(0, cycle, Activity::Busy);
            w.record(1, cycle, Activity::BlockedRecv);
        }
        assert!(w.is_complete());
        let (busy, blocked, idle) = w.tile_fractions(1);
        assert_eq!((busy, blocked, idle), (0.0, 1.0, 0.0));
        let _ = w.tile_fractions(0);
    }

    #[test]
    fn ascii_render_shapes() {
        let mut w = TraceWindow::new(1, 0, 4);
        for (c, a) in [
            Activity::Busy,
            Activity::Busy,
            Activity::BlockedSend,
            Activity::Idle,
        ]
        .iter()
        .enumerate()
        {
            w.record(0, c as u64, *a);
        }
        let s = w.to_activity_trace().render_ascii(2);
        assert!(s.contains('#'));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 1);
    }

    #[test]
    fn csv_export() {
        let mut w = TraceWindow::new(1, 0, 2);
        w.record(0, 0, Activity::Busy);
        w.record(0, 1, Activity::CacheStall);
        let csv = w.to_activity_trace().to_csv();
        assert!(csv.contains("0,0,busy"));
        assert!(csv.contains("0,1,cache_stall"));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_adapters_match_exporter() {
        let mut w = TraceWindow::new(2, 5, 4);
        for cycle in 5..9 {
            w.record(0, cycle, Activity::Busy);
            w.record(
                1,
                cycle,
                if cycle % 2 == 0 {
                    Activity::BlockedRecv
                } else {
                    Activity::Idle
                },
            );
        }
        assert_eq!(w.to_csv(), w.to_activity_trace().to_csv());
        assert_eq!(w.render_ascii(2), w.to_activity_trace().render_ascii(2));
    }
}
