//! Tile-processor programs and their per-cycle execution contract.
//!
//! The router's tile code (ingress, lookup, crossbar, egress controllers)
//! runs as *cycle-stepped state machines*: the machine calls
//! [`TileProgram::tick`] once per simulated cycle, and the program performs
//! **at most one retiring action** through the [`TileIo`] handle. Every
//! action has the cost structure the paper's hand-written Raw assembly has:
//!
//! * a static-network receive consumes one cycle and blocks (the network
//!   registers stall the pipeline when empty);
//! * a send into `$csto` consumes one cycle and blocks when the FIFO is
//!   full;
//! * a cache access consumes one cycle on a hit and stalls the processor
//!   for the miss latency otherwise — so buffering a word from the network
//!   into local memory is a receive plus a store, "two processor cycles per
//!   word" (§4.4), while [`TileIo::load_send`] models the one-cycle
//!   `lw $csto, off($r)` load-and-forward idiom;
//! * pure computation is accounted with [`TileIo::compute`] (one cycle per
//!   call, callers loop for multi-cycle work).
//!
//! Actions either complete (the program advances its state) or report a
//! stall (the program retries on the next tick). The [`crate::trace`]
//! module records which of the two happened each cycle, which is exactly
//! the data behind the per-tile utilization plots of Figure 7-3.

use crate::cache::{Access, DCache};
use crate::dynamic::DynNet;
use crate::fifo::TsFifo;
use crate::geom::TileId;
use crate::switch::{NetId, SwitchState, NUM_STATIC_NETS};
use crate::trace::Activity;

/// Tile local memory is materialized on demand in chunks of this many
/// words (64 KB), so the default 4 MB per-tile address space costs nothing
/// until a program actually touches it.
pub(crate) const MEM_CHUNK_WORDS: usize = 1 << 14;

/// Backing-store length to allocate so that word `needed - 1` exists:
/// `needed` rounded up to a chunk boundary, capped at the configured
/// per-tile memory size.
pub(crate) fn mem_grow_target(needed: usize, limit: usize) -> usize {
    debug_assert!(needed <= limit);
    (needed.div_ceil(MEM_CHUNK_WORDS) * MEM_CHUNK_WORDS).min(limit)
}

/// A program running on one tile processor.
pub trait TileProgram: Send {
    /// Execute one cycle. Perform at most one retiring action on `io`.
    fn tick(&mut self, io: &mut TileIo<'_>);

    /// Optional human-readable label for traces and utilization plots.
    fn label(&self) -> &str {
        "tile"
    }

    /// True when `tick` is a guaranteed no-op forever (the idle stub).
    /// A compiled execution plan (see [`crate::compiled`]) skips the
    /// whole `TileIo` construction for such tiles; the recorded activity
    /// ([`Activity::Idle`][crate::trace::Activity::Idle], no token-wait
    /// hint) must match what the skipped `tick` would have produced.
    fn is_idle_stub(&self) -> bool {
        false
    }
}

/// A tile with no program: permanently idle.
pub struct IdleProgram;

impl TileProgram for IdleProgram {
    fn tick(&mut self, _io: &mut TileIo<'_>) {}

    fn label(&self) -> &str {
        "idle"
    }

    fn is_idle_stub(&self) -> bool {
        true
    }
}

/// Per-cycle access to a tile's architectural resources. Constructed by the
/// machine for each tick; the activity recorded on drop feeds utilization
/// statistics.
pub struct TileIo<'a> {
    pub cycle: u64,
    pub tile: TileId,
    pub(crate) csti: &'a mut [TsFifo; NUM_STATIC_NETS],
    pub(crate) csto: &'a mut TsFifo,
    pub(crate) switch: &'a mut [SwitchState; NUM_STATIC_NETS],
    pub(crate) cache: &'a mut DCache,
    pub(crate) mem: &'a mut Vec<u32>,
    /// Architectural size of local memory in words; `mem` lazily grows in
    /// chunks up to this bound as addresses are touched.
    pub(crate) mem_limit: usize,
    pub(crate) dyn_nets: &'a mut [DynNet],
    /// Column hops to the nearest east/west DRAM port, for the
    /// distance-based miss model.
    pub(crate) col_hops: u32,
    pub(crate) proc_recv_delay: u64,
    pub(crate) stall_until: &'a mut u64,
    pub(crate) activity: Activity,
    /// Set by [`TileIo::hint_token_wait`]; read by the machine to refine
    /// this cycle's activity for telemetry.
    pub(crate) token_wait_hint: bool,
    /// Set by [`TileIo::hint_arb_wait`]: like the token hint, but the
    /// wait is on a per-slot scheduler decision (iSLIP / crosspoint).
    pub(crate) arb_wait_hint: bool,
    acted: bool,
}

impl<'a> TileIo<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        cycle: u64,
        tile: TileId,
        csti: &'a mut [TsFifo; NUM_STATIC_NETS],
        csto: &'a mut TsFifo,
        switch: &'a mut [SwitchState; NUM_STATIC_NETS],
        cache: &'a mut DCache,
        mem: &'a mut Vec<u32>,
        mem_limit: usize,
        dyn_nets: &'a mut [DynNet],
        col_hops: u32,
        proc_recv_delay: u64,
        stall_until: &'a mut u64,
    ) -> TileIo<'a> {
        TileIo {
            cycle,
            tile,
            csti,
            csto,
            switch,
            cache,
            mem,
            mem_limit,
            dyn_nets,
            col_hops,
            proc_recv_delay,
            stall_until,
            activity: Activity::Idle,
            token_wait_hint: false,
            arb_wait_hint: false,
            acted: false,
        }
    }

    pub(crate) fn take_activity(self) -> Activity {
        self.activity
    }

    #[inline]
    fn begin_action(&mut self) {
        debug_assert!(
            !self.acted,
            "tile {} performed two retiring actions in one cycle",
            self.tile
        );
        self.acted = true;
    }

    // ---- queries (free, do not retire) ----

    /// True if a static-network word is readable this cycle on `net`.
    pub fn can_recv_static(&self, net: NetId) -> bool {
        self.csti[net].has_visible(self.cycle, self.proc_recv_delay)
    }

    /// True if `$csto` can take another word.
    pub fn can_send_static(&self) -> bool {
        self.csto.has_space()
    }

    /// True if the switch processor for static network `net` is halted at
    /// a `WaitPc` (the "confirmation from the switch processor stating
    /// that the routing is finished" of §6.5).
    pub fn switch_halted(&self, net: NetId) -> bool {
        self.switch[net].halted && self.switch[net].pending_pc.is_none()
    }

    /// True if a dynamic-network word is deliverable this cycle.
    pub fn can_recv_dyn(&self, net: usize) -> bool {
        self.dyn_nets[net].can_recv(self.tile, self.cycle, self.proc_recv_delay)
    }

    /// True if the dynamic-network inject FIFO has space.
    pub fn can_send_dyn(&self, net: usize) -> bool {
        self.dyn_nets[net].can_inject(self.tile)
    }

    // ---- retiring actions ----

    /// Spend one cycle computing.
    pub fn compute(&mut self) {
        self.begin_action();
        self.activity = Activity::Busy;
    }

    /// Explicitly spend the cycle idle (same as doing nothing).
    pub fn idle(&mut self) {
        self.begin_action();
        self.activity = Activity::Idle;
    }

    /// Read a word from static network `net` (`$csti` / `$csti2`).
    /// `None` means the pipeline stalled on an empty network register.
    pub fn recv_static(&mut self, net: NetId) -> Option<u32> {
        self.begin_action();
        match self.csti[net].pop_visible(self.cycle, self.proc_recv_delay) {
            Some(w) => {
                self.activity = Activity::Busy;
                Some(w)
            }
            None => {
                self.activity = Activity::BlockedRecv;
                None
            }
        }
    }

    /// Write a word to `$csto` for the switch to route. `false` means the
    /// pipeline stalled on a full output FIFO.
    #[must_use]
    pub fn send_static(&mut self, word: u32) -> bool {
        self.begin_action();
        if self.csto.push(word, self.cycle) {
            self.activity = Activity::Busy;
            true
        } else {
            self.activity = Activity::BlockedSend;
            false
        }
    }

    fn mem_slot(&mut self, word_addr: u32) -> &mut u32 {
        let i = word_addr as usize;
        assert!(
            i < self.mem_limit,
            "tile {} accessed word address {:#x} beyond local memory ({} words)",
            self.tile,
            word_addr,
            self.mem_limit
        );
        if i >= self.mem.len() {
            let target = mem_grow_target(i + 1, self.mem_limit);
            self.mem.resize(target, 0);
        }
        &mut self.mem[i]
    }

    /// Load a word from local data memory through the cache. `None` means
    /// the access missed and the processor is stalled for the miss latency;
    /// retry after the stall to complete the load.
    pub fn load(&mut self, word_addr: u32) -> Option<u32> {
        self.begin_action();
        match self.cache.access(word_addr, false, self.col_hops) {
            Access::Hit => {
                self.activity = Activity::Busy;
                Some(*self.mem_slot(word_addr))
            }
            Access::Miss { latency } => {
                self.activity = Activity::CacheStall;
                *self.stall_until = self.cycle + latency as u64;
                None
            }
        }
    }

    /// Store a word to local data memory through the cache. `false` means
    /// a miss stall; retry to complete.
    #[must_use]
    pub fn store(&mut self, word_addr: u32, word: u32) -> bool {
        self.begin_action();
        match self.cache.access(word_addr, true, self.col_hops) {
            Access::Hit => {
                self.activity = Activity::Busy;
                *self.mem_slot(word_addr) = word;
                true
            }
            Access::Miss { latency } => {
                self.activity = Activity::CacheStall;
                *self.stall_until = self.cycle + latency as u64;
                false
            }
        }
    }

    /// The one-cycle `lw $csto, off($r)` idiom: load a word and forward it
    /// straight into the static network. Returns `false` on a full `$csto`
    /// (blocked-send) or a cache miss (stall); retry to complete.
    #[must_use]
    pub fn load_send(&mut self, word_addr: u32) -> bool {
        self.begin_action();
        if !self.csto.has_space() {
            self.activity = Activity::BlockedSend;
            return false;
        }
        match self.cache.access(word_addr, false, self.col_hops) {
            Access::Hit => {
                let w = *self.mem_slot(word_addr);
                let pushed = self.csto.push(w, self.cycle);
                debug_assert!(pushed);
                self.activity = Activity::Busy;
                true
            }
            Access::Miss { latency } => {
                self.activity = Activity::CacheStall;
                *self.stall_until = self.cycle + latency as u64;
                false
            }
        }
    }

    /// The `op $csto, $csti, $r` idiom: receive a word from static
    /// network `net`, transform it in the ALU, and forward it through
    /// `$csto`, all in one instruction cycle — the mechanism behind the
    /// paper's computation-in-the-switch-fabric proposal (§8.3).
    pub fn recv_op_send(&mut self, net: NetId, f: impl FnOnce(u32) -> u32) -> Option<u32> {
        self.begin_action();
        if !self.csto.has_space() {
            self.activity = Activity::BlockedSend;
            return None;
        }
        match self.csti[net].pop_visible(self.cycle, self.proc_recv_delay) {
            Some(w) => {
                let out = f(w);
                let pushed = self.csto.push(out, self.cycle);
                debug_assert!(pushed);
                self.activity = Activity::Busy;
                Some(w)
            }
            None => {
                self.activity = Activity::BlockedRecv;
                None
            }
        }
    }

    /// The `move $csto, $csti` idiom: forward a word from static network
    /// `net` straight back out through `$csto` in one cycle.
    pub fn recv_send(&mut self, net: NetId) -> Option<u32> {
        self.begin_action();
        if !self.csto.has_space() {
            self.activity = Activity::BlockedSend;
            return None;
        }
        match self.csti[net].pop_visible(self.cycle, self.proc_recv_delay) {
            Some(w) => {
                let pushed = self.csto.push(w, self.cycle);
                debug_assert!(pushed);
                self.activity = Activity::Busy;
                Some(w)
            }
            None => {
                self.activity = Activity::BlockedRecv;
                None
            }
        }
    }

    /// Load a new program counter into the switch processor for static
    /// network `net` (one cycle; takes effect on the switch's next cycle).
    pub fn set_switch_pc(&mut self, net: NetId, pc: usize) {
        self.begin_action();
        self.activity = Activity::Busy;
        self.switch[net].load_pc(pc, self.cycle);
    }

    /// Inject a word into dynamic network `net` (`$cdno`).
    #[must_use]
    pub fn send_dyn(&mut self, net: usize, word: u32) -> bool {
        self.begin_action();
        if self.dyn_nets[net].inject(self.tile, word, self.cycle) {
            self.activity = Activity::Busy;
            true
        } else {
            self.activity = Activity::BlockedSend;
            false
        }
    }

    /// Read a word from dynamic network `net` (`$cdni`).
    pub fn recv_dyn(&mut self, net: usize) -> Option<u32> {
        self.begin_action();
        match self.dyn_nets[net].recv(self.tile, self.cycle, self.proc_recv_delay) {
            Some(w) => {
                self.activity = Activity::Busy;
                Some(w)
            }
            None => {
                self.activity = Activity::BlockedRecv;
                None
            }
        }
    }

    /// Direct, un-timed access to local memory for test setup and result
    /// inspection (does not retire and does not touch the cache model).
    /// Materializes the tile's full backing store.
    pub fn mem_raw(&mut self) -> &mut Vec<u32> {
        if self.mem.len() < self.mem_limit {
            self.mem.resize(self.mem_limit, 0);
        }
        self.mem
    }

    /// Mark this cycle as spent waiting on a token/grant protocol rather
    /// than ordinary idleness or an empty FIFO. Does not retire and does
    /// not change simulation behavior — it only refines how an attached
    /// telemetry sink classifies the cycle (token-wait instead of idle /
    /// fifo-empty stall attribution).
    pub fn hint_token_wait(&mut self) {
        self.token_wait_hint = true;
    }

    /// Like [`TileIo::hint_token_wait`], but the wait is on a per-slot
    /// *scheduler* decision (iSLIP or crosspoint arbitration rather than
    /// the rotating token). Telemetry credits the cycle to the
    /// `arb_wait` bucket so scheduler head-to-heads can attribute
    /// arbitration stalls separately.
    pub fn hint_arb_wait(&mut self) {
        self.arb_wait_hint = true;
    }

    /// Permit one more retiring call within this cycle.
    ///
    /// Hand-written tile programs perform one action per tick, but a single
    /// *machine instruction* may legitimately touch several architectural
    /// queues in one cycle — `add $1, $csti, $csti2` pops both static
    /// networks, `lw $csto, off($r)` combines a cache access with a network
    /// push. The ISA interpreter calls this between the component
    /// operations of one instruction; the whole instruction still costs
    /// exactly one cycle (plus stalls).
    pub fn allow_compound(&mut self) {
        self.acted = false;
    }
}
