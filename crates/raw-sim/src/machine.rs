//! The whole-chip cycle-driven machine: tiles, switches, networks, devices.
//!
//! Execution order within a cycle is fixed and deterministic:
//!
//! 1. edge devices inject words into edge input FIFOs;
//! 2. tile processors tick (at most one retiring action each);
//! 3. switch processors evaluate their current instruction's routes;
//! 4. the dynamic networks advance one hop.
//!
//! Every FIFO entry is timestamped and only consumable on a *later* cycle,
//! so no word moves more than one network hop per cycle regardless of the
//! iteration order, and the tile-processor receive path carries one extra
//! cycle of decode delay — together these reproduce the 5-cycle
//! tile-to-tile send of Figure 3-2.

use crate::cache::{CacheConfig, DCache, MissModel};
use crate::device::{EdgeDevice, EdgePort};
use crate::dynamic::DynNet;
use crate::fifo::TsFifo;
use crate::geom::{GridDim, TileId};
use crate::program::{mem_grow_target, IdleProgram, TileIo, TileProgram};
use crate::switch::{Route, SwPort, SwitchCtrl, SwitchProgram, SwitchState, NUM_STATIC_NETS};
use crate::trace::{Activity, TileStats, TraceWindow};
use raw_telemetry::{SharedSink, SwitchStallCause, TileState};

/// Refine a coarse [`Activity`] into the telemetry [`TileState`]. The
/// token-wait and arb-wait hints (set by a program through
/// [`TileIo::hint_token_wait`][crate::program::TileIo::hint_token_wait] /
/// [`TileIo::hint_arb_wait`][crate::program::TileIo::hint_arb_wait])
/// reclassify cycles that would otherwise read as idle or
/// blocked-receive while waiting on the crossbar grant protocol (the
/// arb hint wins when a program sets both).
#[inline]
pub(crate) fn refine_state(a: Activity, token_hint: bool, arb_hint: bool) -> TileState {
    let wait = if arb_hint {
        Some(TileState::ArbWait)
    } else if token_hint {
        Some(TileState::TokenWait)
    } else {
        None
    };
    match (a, wait) {
        (Activity::Busy, _) => TileState::Busy,
        (Activity::Idle, Some(w)) => w,
        (Activity::Idle, None) => TileState::Idle,
        (Activity::BlockedSend, _) => TileState::FifoFull,
        (Activity::BlockedRecv, Some(w)) => w,
        (Activity::BlockedRecv, None) => TileState::FifoEmpty,
        (Activity::CacheStall, _) => TileState::CacheStall,
    }
}

/// How the machine advances simulated time. All three engines produce
/// bit-identical results — statistics, traces, telemetry, word timing —
/// on every workload; they differ only in how much host work each
/// simulated cycle costs. The determinism test suite compares all modes
/// pairwise.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EngineMode {
    /// Step every cycle through the interpreter. The reference engine.
    PerCycle,
    /// Interpret busy cycles, but jump over provably quiet stretches in
    /// bulk (event-skip fast-forward). The default.
    EventSkip,
    /// Run schedule-specialized switch programs (see [`crate::compiled`])
    /// with decode, endpoint resolution, and device lookups resolved at
    /// compile time, plus event-skip over quiet stretches. Falls back to
    /// the interpreter transparently — per switch for uncompiled
    /// programs, and machine-wide whenever no compiled plan is installed
    /// (e.g. after a structural mutation invalidates it).
    Compiled,
}

impl EngineMode {
    /// May `run` jump over provably quiet stretches of cycles?
    #[inline]
    pub fn skips(self) -> bool {
        !matches!(self, EngineMode::PerCycle)
    }
}

/// Machine-wide configuration. Defaults model the 250 MHz Raw prototype.
#[derive(Clone, Debug)]
pub struct RawConfig {
    pub dim: GridDim,
    /// Capacity of each static-network link input FIFO (Raw: 4).
    pub link_fifo_capacity: usize,
    /// Capacity of each `$csti` FIFO.
    pub csti_capacity: usize,
    /// Capacity of the shared `$csto` FIFO.
    pub csto_capacity: usize,
    /// Extra pipeline delay on processor network reads (decode stage).
    pub proc_recv_delay: u64,
    pub cache: CacheConfig,
    pub miss_model: MissModel,
    pub dirty_evict_penalty: u32,
    /// Per-tile local memory size in words (backing store behind the cache).
    pub local_mem_words: usize,
    pub dyn_fifo_capacity: usize,
    pub cdni_capacity: usize,
    /// Clock frequency used to convert cycles to seconds (Raw: 250 MHz).
    pub clock_mhz: u64,
    /// Which engine advances simulated time (see [`EngineMode`]). Every
    /// mode is bit-identical to [`EngineMode::PerCycle`]; they trade host
    /// work per simulated cycle.
    pub engine: EngineMode,
}

impl RawConfig {
    /// Compatibility shim for the old `fast_forward: bool` field: `true`
    /// maps to [`EngineMode::EventSkip`], `false` to
    /// [`EngineMode::PerCycle`].
    #[deprecated(note = "set `engine: EngineMode` directly")]
    pub fn with_fast_forward(fast_forward: bool) -> RawConfig {
        RawConfig {
            engine: if fast_forward {
                EngineMode::EventSkip
            } else {
                EngineMode::PerCycle
            },
            ..RawConfig::default()
        }
    }
}

impl Default for RawConfig {
    fn default() -> Self {
        RawConfig {
            dim: GridDim::RAW_PROTOTYPE,
            link_fifo_capacity: 4,
            csti_capacity: 4,
            csto_capacity: 4,
            proc_recv_delay: 1,
            cache: CacheConfig::RAW_PROTOTYPE,
            miss_model: MissModel::default(),
            dirty_evict_penalty: 12,
            local_mem_words: 1 << 20,
            dyn_fifo_capacity: 4,
            cdni_capacity: 8,
            clock_mhz: 250,
            engine: EngineMode::EventSkip,
        }
    }
}

pub(crate) struct Tile {
    pub(crate) program: Option<Box<dyn TileProgram>>,
    pub(crate) switch_prog: [SwitchProgram; NUM_STATIC_NETS],
    pub(crate) switch_state: [SwitchState; NUM_STATIC_NETS],
    pub(crate) cache: DCache,
    /// Local memory backing store, materialized lazily in chunks up to
    /// `RawConfig::local_mem_words` as addresses are touched (a 4 MB
    /// address space per tile would otherwise be zeroed eagerly on every
    /// machine construction).
    pub(crate) mem: Vec<u32>,
    pub(crate) stall_until: u64,
    pub(crate) csti: [TsFifo; NUM_STATIC_NETS],
    pub(crate) csto: TsFifo,
    pub(crate) stats: TileStats,
    /// Cycles the switch spent with an instruction unable to complete.
    pub(crate) switch_stall_cycles: u64,
}

/// The simulated Raw chip.
pub struct RawMachine {
    pub(crate) cfg: RawConfig,
    pub(crate) cycle: u64,
    pub(crate) tiles: Vec<Tile>,
    /// Static-network link input FIFOs: `link_in[tile][net][dir]` holds
    /// words that arrived *at* `tile` from direction `dir` and await
    /// routing by `tile`'s switch.
    pub(crate) link_in: Vec<[[TsFifo; 4]; NUM_STATIC_NETS]>,
    pub(crate) dyn_nets: Vec<DynNet>,
    pub(crate) devices: Vec<Box<dyn EdgeDevice>>,
    /// Direct-indexed device lookup: `device_table[(tile * nets + net) * 4
    /// + dir]` is the index into `devices`, or `NO_DEVICE`. Replaces a
    /// `BTreeMap<EdgePort, usize>` that sat on the per-route hot path.
    device_table: Vec<u16>,
    device_ports: Vec<EdgePort>,
    pub(crate) trace: Option<TraceWindow>,
    /// Attached telemetry sink. `None` (the default) costs one branch per
    /// cycle phase and nothing else — the event-skip fast path and the
    /// zero-allocation hot path are preserved.
    telemetry: Option<SharedSink>,
    /// False when the attached sink is a [`raw_telemetry::NullSink`]:
    /// every NullSink callback is a no-op, so the machine elides the
    /// per-cycle lock-and-publish entirely (observationally identical,
    /// and it keeps NullSink at the same cost as no sink at all).
    pub(crate) telemetry_active: bool,
    /// Per-tile token-wait hint from the most recent tick (see
    /// [`refine_state`]).
    pub(crate) token_hint: Vec<bool>,
    /// Per-tile arbitration-wait hint from the most recent tick (see
    /// [`refine_state`]; scheduler mode's analogue of `token_hint`).
    pub(crate) arb_hint: Vec<bool>,
    /// Last switch stall cause per `(tile, net)`, maintained only while a
    /// telemetry sink is attached; fast-forward credits skipped stall
    /// cycles to it, mirroring `switch_stall_cycles` bulk crediting.
    pub(crate) last_switch_cause: Vec<[SwitchStallCause; NUM_STATIC_NETS]>,
    /// The activity each tile recorded on the most recent cycle (the state
    /// a skipped quiet cycle would repeat).
    pub(crate) last_activity: Vec<Activity>,
    /// Scheduled per-tile stall windows `(start, end)`, sorted by start;
    /// `step_processors` folds the front window into `stall_until` once
    /// the cycle reaches it (fault injection: cache-miss storms).
    pub(crate) stall_windows: Vec<Vec<(u64, u64)>>,
    /// Cycle at which something last made forward progress.
    pub(crate) last_progress: u64,
    /// Words dropped at unbound edge output ports.
    pub edge_drops: u64,
    /// Total static-network route firings.
    pub routes_fired: u64,
    pub(crate) dyn_moved_before: u64,
    /// Schedule-specialized execution plan (see [`crate::compiled`]).
    /// Installed by a compiler pass; any structural mutation — new
    /// program, new switch program, new device binding — invalidates it,
    /// after which [`EngineMode::Compiled`] transparently degrades to the
    /// event-skip interpreter until a fresh plan is installed.
    pub(crate) plan: Option<Box<crate::compiled::CompiledPlan>>,
}

/// Sentinel for an unbound slot in `RawMachine::device_table`.
const NO_DEVICE: u16 = u16::MAX;

impl RawMachine {
    pub fn new(cfg: RawConfig) -> RawMachine {
        let n = cfg.dim.tiles();
        let tiles = (0..n)
            .map(|_| Tile {
                program: Some(Box::new(IdleProgram)),
                switch_prog: std::array::from_fn(|_| SwitchProgram::idle()),
                switch_state: std::array::from_fn(|_| SwitchState::new()),
                cache: DCache::new(cfg.cache, cfg.miss_model, cfg.dirty_evict_penalty),
                mem: Vec::new(),
                stall_until: 0,
                csti: std::array::from_fn(|_| TsFifo::new(cfg.csti_capacity)),
                csto: TsFifo::new(cfg.csto_capacity),
                stats: TileStats::default(),
                switch_stall_cycles: 0,
            })
            .collect();
        let link_in = (0..n)
            .map(|_| {
                std::array::from_fn(|_| {
                    std::array::from_fn(|_| TsFifo::new(cfg.link_fifo_capacity))
                })
            })
            .collect();
        let dyn_nets = (0..2)
            .map(|_| DynNet::new(cfg.dim, cfg.dyn_fifo_capacity, cfg.cdni_capacity))
            .collect();
        RawMachine {
            cfg,
            cycle: 0,
            tiles,
            link_in,
            dyn_nets,
            devices: Vec::new(),
            device_table: vec![NO_DEVICE; n * NUM_STATIC_NETS * 4],
            device_ports: Vec::new(),
            trace: None,
            telemetry: None,
            telemetry_active: false,
            token_hint: vec![false; n],
            arb_hint: vec![false; n],
            last_switch_cause: vec![[SwitchStallCause::FifoEmpty; NUM_STATIC_NETS]; n],
            last_activity: vec![Activity::Idle; n],
            stall_windows: vec![Vec::new(); n],
            last_progress: 0,
            edge_drops: 0,
            routes_fired: 0,
            dyn_moved_before: 0,
            plan: None,
        }
    }

    pub fn config(&self) -> &RawConfig {
        &self.cfg
    }

    pub fn dim(&self) -> GridDim {
        self.cfg.dim
    }

    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Install a tile-processor program. Invalidates any installed
    /// compiled plan (the plan caches which tiles are idle stubs).
    pub fn set_program(&mut self, tile: TileId, program: Box<dyn TileProgram>) {
        self.plan = None;
        self.tiles[tile.index()].program = Some(program);
    }

    /// Install the switch program driving static network `net` at `tile`
    /// (PC reset to 0). Every route in the program must target `net`.
    ///
    /// Modeling note: real Raw has a single switch processor per tile
    /// whose instruction controls both static crossbars; this simulator
    /// gives each network an independent instruction stream so that a
    /// free-running ingest path on one network cannot couple to (and
    /// deadlock) a processor-steered schedule on the other. The paper's
    /// Rotating Crossbar algorithm uses a single network (§5.3), so its
    /// fidelity is unaffected.
    pub fn set_switch_program(&mut self, tile: TileId, net: usize, prog: SwitchProgram) {
        for i in &prog.instrs {
            for r in &i.routes {
                assert_eq!(
                    r.net, net,
                    "route on net {} in program for net {}",
                    r.net, net
                );
            }
        }
        self.plan = None;
        let t = &mut self.tiles[tile.index()];
        t.switch_prog[net] = prog;
        t.switch_state[net] = SwitchState::new();
    }

    /// Index into `device_table` for an edge port's coordinates.
    #[inline]
    fn port_slot(&self, tile: usize, net: usize, dir: usize) -> usize {
        (tile * NUM_STATIC_NETS + net) * 4 + dir
    }

    /// The device bound at `(tile, net, dir)`, if any.
    #[inline]
    pub(crate) fn device_at(&self, tile: usize, net: usize, dir: usize) -> Option<usize> {
        match self.device_table[self.port_slot(tile, net, dir)] {
            NO_DEVICE => None,
            i => Some(i as usize),
        }
    }

    /// Bind a device to an edge port. Panics if the port is interior or
    /// already bound. Invalidates any installed compiled plan (the plan
    /// caches device endpoints and the injector set).
    pub fn bind_device(&mut self, port: EdgePort, dev: Box<dyn EdgeDevice>) {
        self.plan = None;
        assert!(
            self.cfg.dim.is_edge(port.tile, port.dir),
            "{:?} is not an edge port",
            port
        );
        let slot = self.port_slot(port.tile.index(), port.net, port.dir.index());
        assert!(
            self.device_table[slot] == NO_DEVICE,
            "{:?} already has a device",
            port
        );
        assert!(self.devices.len() < NO_DEVICE as usize);
        self.device_table[slot] = self.devices.len() as u16;
        self.device_ports.push(port);
        self.devices.push(dev);
    }

    /// Retrieve a bound device by concrete type.
    pub fn device_mut<T: 'static>(&mut self, port: EdgePort) -> Option<&mut T> {
        let i = self.device_at(port.tile.index(), port.net, port.dir.index())?;
        self.devices[i].as_any_mut().downcast_mut::<T>()
    }

    pub fn device_ref<T: 'static>(&self, port: EdgePort) -> Option<&T> {
        let i = self.device_at(port.tile.index(), port.net, port.dir.index())?;
        self.devices[i].as_any().downcast_ref::<T>()
    }

    pub fn stats(&self, tile: TileId) -> &TileStats {
        &self.tiles[tile.index()].stats
    }

    pub fn cache_stats(&self, tile: TileId) -> (u64, u64) {
        let c = &self.tiles[tile.index()].cache;
        (c.hits, c.misses)
    }

    pub fn switch_stall_cycles(&self, tile: TileId) -> u64 {
        self.tiles[tile.index()].switch_stall_cycles
    }

    /// The activity each tile recorded on the most recent cycle.
    pub fn last_activities(&self) -> &[Activity] {
        &self.last_activity
    }

    /// Direct access to a tile's local memory for setup/inspection.
    /// Materializes the tile's full backing store; for large setup writes
    /// prefer [`RawMachine::write_tile_mem`], which only materializes the
    /// chunks it touches.
    pub fn tile_mem_mut(&mut self, tile: TileId) -> &mut Vec<u32> {
        let t = &mut self.tiles[tile.index()];
        if t.mem.len() < self.cfg.local_mem_words {
            t.mem.resize(self.cfg.local_mem_words, 0);
        }
        &mut t.mem
    }

    /// Write `words` into a tile's local memory starting at word address
    /// `base`, growing the lazily-allocated backing store only as far as
    /// the write reaches.
    pub fn write_tile_mem(&mut self, tile: TileId, base: usize, words: &[u32]) {
        let end = base + words.len();
        assert!(
            end <= self.cfg.local_mem_words,
            "write [{base}, {end}) exceeds local memory ({} words)",
            self.cfg.local_mem_words
        );
        let t = &mut self.tiles[tile.index()];
        if t.mem.len() < end {
            t.mem
                .resize(mem_grow_target(end, self.cfg.local_mem_words), 0);
        }
        t.mem[base..end].copy_from_slice(words);
    }

    /// Read-only introspection: the switch program installed for `net` at
    /// `tile`. Lets static analyses (the `raw-verify` crate) audit exactly
    /// what a constructed machine will execute, without re-deriving it
    /// from the codegen inputs.
    pub fn switch_program(&self, tile: TileId, net: usize) -> &SwitchProgram {
        &self.tiles[tile.index()].switch_prog[net]
    }

    /// Read-only introspection: every edge port with a bound device — the
    /// set of off-grid links a schedule may legitimately route through.
    /// A port's position in this slice is its device index (bind order),
    /// stable for the lifetime of the machine.
    pub fn bound_device_ports(&self) -> &[EdgePort] {
        &self.device_ports
    }

    /// Read-only introspection: may the device at index `i` (position in
    /// [`RawMachine::bound_device_ports`]) ever inject a word? Pure sinks
    /// return false, letting a compiled plan skip their `pull_in` poll.
    pub fn device_is_injector(&self, i: usize) -> bool {
        self.devices[i].is_injector()
    }

    /// Read-only introspection: is the processor at `tile` the idle stub
    /// (no installed program, or one whose tick is a guaranteed no-op)?
    /// A compiled plan gives such tiles a zero-cost idle path.
    pub fn program_is_idle(&self, tile: TileId) -> bool {
        match &self.tiles[tile.index()].program {
            Some(p) => p.is_idle_stub(),
            None => true,
        }
    }

    /// Diagnostic: occupancy of a static-network link input FIFO.
    pub fn link_occupancy(&self, tile: TileId, net: usize, dir: crate::geom::Dir) -> usize {
        self.link_in[tile.index()][net][dir.index()].len()
    }

    /// Diagnostic: `(csto_len, csti0_len, csti1_len)` at a tile.
    pub fn proc_queue_occupancy(&self, tile: TileId) -> (usize, usize, usize) {
        let t = &self.tiles[tile.index()];
        (t.csto.len(), t.csti[0].len(), t.csti[1].len())
    }

    /// Diagnostic: the switch PC and halted flag for `net` at a tile.
    pub fn switch_status(&self, tile: TileId, net: usize) -> (usize, bool) {
        let st = &self.tiles[tile.index()].switch_state[net];
        (st.pc, st.halted)
    }

    /// Attach a telemetry sink. The machine publishes refined per-tile
    /// cycle states and per-`(tile, net)` switch stall causes into it;
    /// tile programs holding a clone of the same handle publish packet
    /// lifecycle events. Observation only — attaching a sink never
    /// changes simulation results.
    pub fn set_telemetry(&mut self, sink: SharedSink) {
        self.telemetry_active = !raw_telemetry::is_null(&sink);
        self.telemetry = Some(sink);
    }

    /// Detach the telemetry sink, returning the handle.
    pub fn take_telemetry(&mut self) -> Option<SharedSink> {
        self.telemetry_active = false;
        self.telemetry.take()
    }

    /// The sink to publish into, or `None` when publishing would be a
    /// no-op (detached, or a NullSink is attached).
    #[inline]
    pub(crate) fn active_sink(&self) -> Option<&SharedSink> {
        if self.telemetry_active {
            self.telemetry.as_ref()
        } else {
            None
        }
    }

    /// Schedule a forced processor stall on `tile` for the half-open
    /// cycle window `[start, start + len)` — fault injection modeling a
    /// cache-miss storm or an external memory hog. The stalled cycles are
    /// recorded as [`Activity::CacheStall`], so traces, statistics, and
    /// telemetry conservation all account for them; overlapping windows
    /// merge through the same `stall_until` mechanism real cache misses
    /// use, and the event-skip engine treats window starts and ends as
    /// time events, keeping fast-forward results bit-identical.
    pub fn schedule_stall(&mut self, tile: TileId, start: u64, len: u64) {
        if len == 0 {
            return;
        }
        let v = &mut self.stall_windows[tile.index()];
        let pos = v.partition_point(|&(s, _)| s <= start);
        v.insert(pos, (start, start + len));
    }

    /// Stall windows not yet folded into `stall_until` for `tile`.
    pub fn pending_stall_windows(&self, tile: TileId) -> usize {
        self.stall_windows[tile.index()].len()
    }

    /// Begin recording a per-tile activity trace window.
    pub fn start_trace(&mut self, start_cycle: u64, len: usize) {
        assert!(
            start_cycle >= self.cycle,
            "trace window must start in the future"
        );
        self.trace = Some(TraceWindow::new(self.cfg.dim.tiles(), start_cycle, len));
    }

    /// Take the recorded trace window, if any.
    pub fn take_trace(&mut self) -> Option<TraceWindow> {
        self.trace.take()
    }

    /// Cycles since anything in the machine made forward progress.
    pub fn idle_cycles(&self) -> u64 {
        self.cycle.saturating_sub(self.last_progress)
    }

    /// Advance one cycle (through whichever engine is configured).
    pub fn step(&mut self) {
        self.step_cycle_engine();
    }

    /// One cycle through the configured engine: the compiled plan when
    /// `EngineMode::Compiled` has one installed, the interpreter
    /// otherwise. Bit-identical either way.
    pub(crate) fn step_cycle_engine(&mut self) -> bool {
        if self.cfg.engine == EngineMode::Compiled {
            if let Some(plan) = self.plan.take() {
                let quiet = self.step_cycle_compiled(&plan);
                self.plan = Some(plan);
                return quiet;
            }
        }
        self.step_cycle()
    }

    /// Advance one cycle. Returns true when the cycle was *quiet*: nothing
    /// made forward progress and no switch performed a control-only
    /// transition (nop/`WaitPc` advance). After a quiet cycle the machine
    /// is in a fixed point that only the passage of time can disturb —
    /// FIFO entries aging into visibility, a cache stall expiring, a
    /// device becoming ready — which is exactly the condition under which
    /// `next_event_cycle` / `fast_forward_to` may skip ahead.
    fn step_cycle(&mut self) -> bool {
        let cycle = self.cycle;
        let mut progress = false;

        // 1. Device injection at edge input FIFOs.
        for i in 0..self.devices.len() {
            let port = self.device_ports[i];
            let fifo = &mut self.link_in[port.tile.index()][port.net][port.dir.index()];
            if fifo.has_space() {
                if let Some(w) = self.devices[i].pull_in(cycle) {
                    let ok = fifo.push(w, cycle);
                    debug_assert!(ok);
                    progress = true;
                }
            }
        }

        // 2. Tile processors.
        progress |= self.step_processors(cycle);

        // 3. Switch processors.
        let (sw_progress, sw_ctrl) = self.step_switches(cycle);
        progress |= sw_progress;

        // 4. Dynamic networks.
        for d in &mut self.dyn_nets {
            d.step(cycle);
        }
        let dyn_moved: u64 = self.dyn_nets.iter().map(|d| d.words_moved).sum();
        if dyn_moved != self.dyn_moved_before {
            progress = true;
            self.dyn_moved_before = dyn_moved;
        }

        if progress {
            self.last_progress = cycle;
        }
        self.cycle += 1;
        !progress && !sw_ctrl
    }

    pub(crate) fn step_processors(&mut self, cycle: u64) -> bool {
        let mut progress = false;
        let n = self.tiles.len();
        let cols = self.cfg.dim.cols as u32;
        for t in 0..n {
            while let Some(&(s, e)) = self.stall_windows[t].first() {
                if cycle < s {
                    break;
                }
                self.stall_windows[t].remove(0);
                let su = &mut self.tiles[t].stall_until;
                *su = (*su).max(e);
            }
            let (activity, hint) = if cycle < self.tiles[t].stall_until {
                (Activity::CacheStall, (false, false))
            } else {
                let mut program = self.tiles[t].program.take();
                let outcome = if let Some(prog) = program.as_mut() {
                    let tile = &mut self.tiles[t];
                    let col = (t as u32) % cols;
                    let col_hops = col.min(cols - 1 - col);
                    let mut io = TileIo::new(
                        cycle,
                        TileId(t as u16),
                        &mut tile.csti,
                        &mut tile.csto,
                        &mut tile.switch_state,
                        &mut tile.cache,
                        &mut tile.mem,
                        self.cfg.local_mem_words,
                        &mut self.dyn_nets,
                        col_hops,
                        self.cfg.proc_recv_delay,
                        &mut tile.stall_until,
                    );
                    prog.tick(&mut io);
                    let hint = (io.token_wait_hint, io.arb_wait_hint);
                    (io.take_activity(), hint)
                } else {
                    (Activity::Idle, (false, false))
                };
                self.tiles[t].program = program;
                outcome
            };
            self.tiles[t].stats.record(activity);
            self.last_activity[t] = activity;
            self.token_hint[t] = hint.0;
            self.arb_hint[t] = hint.1;
            if let Some(tr) = &mut self.trace {
                tr.record(t, cycle, activity);
            }
            progress |= activity == Activity::Busy;
        }
        if let Some(sink) = self.active_sink() {
            // One lock per cycle for all tiles; programs stamp their own
            // packet events inside `tick`, outside this critical section.
            let mut g = sink.lock().unwrap();
            for t in 0..n {
                g.tile_cycles(
                    t as u16,
                    refine_state(self.last_activity[t], self.token_hint[t], self.arb_hint[t]),
                    1,
                );
            }
        }
        progress
    }

    /// Returns `(progress, control_transition)`: whether any route fired,
    /// and whether any switch advanced through a route-less instruction
    /// (which changes switch state without counting as progress — a cycle
    /// containing one must not be skipped over).
    fn step_switches(&mut self, cycle: u64) -> (bool, bool) {
        let mut progress = false;
        let mut ctrl = false;
        let n = self.tiles.len();
        for t in 0..n {
            for net in 0..NUM_STATIC_NETS {
                let (p, c) = self.step_switch(t, net, cycle);
                progress |= p;
                ctrl |= c;
            }
        }
        (progress, ctrl)
    }

    /// Returns `(progress, control_transition)` for one switch.
    pub(crate) fn step_switch(&mut self, t: usize, net: usize, cycle: u64) -> (bool, bool) {
        self.tiles[t].switch_state[net].apply_pending_pc(cycle);
        if self.tiles[t].switch_state[net].halted {
            return (false, false);
        }
        let pc = self.tiles[t].switch_state[net].pc;
        if pc >= self.tiles[t].switch_prog[net].instrs.len() {
            self.tiles[t].switch_state[net].halted = true;
            return (false, true);
        }
        // Borrow the program out of the tile for the duration of the tick
        // so routes can be read in place — the old per-cycle
        // `instrs.get(pc).cloned()` allocated a fresh route Vec for every
        // switch every cycle.
        let prog = std::mem::take(&mut self.tiles[t].switch_prog[net]);
        let instr = &prog.instrs[pc];
        let routes = instr.routes.as_slice();
        let nroutes = routes.len();
        debug_assert!(nroutes <= 32, "route set exceeds the fired bitmask");
        let ctrl_op = instr.ctrl;
        // Fire route groups (routes sharing a (net, src) fire together,
        // duplicating the word across destinations). Groups are bitmasks
        // over the instruction's route list, like `fired` itself.
        let mut fired = self.tiles[t].switch_state[net].fired;
        let mut any_fired = false;
        // First refused group's block cause, for stall attribution —
        // computed only while a telemetry sink is attached.
        let attribute = self.telemetry_active;
        let mut block_cause: Option<SwitchStallCause> = None;
        let mut gi = 0;
        while gi < nroutes {
            if fired & (1 << gi) != 0 {
                gi += 1;
                continue;
            }
            let lead = routes[gi];
            let mut group: u32 = 0;
            for (j, r) in routes.iter().enumerate().skip(gi) {
                if fired & (1 << j) == 0 && r.net == lead.net && r.src == lead.src {
                    group |= 1 << j;
                }
            }
            if self.group_ready(t, routes, group, cycle) {
                self.fire_group(t, routes, group, cycle);
                fired |= group;
                any_fired = true;
            } else if attribute && block_cause.is_none() {
                block_cause = self.group_block_cause(t, routes, group, cycle);
            }
            gi += 1;
        }
        self.tiles[t].switch_prog[net] = prog;
        self.tiles[t].switch_state[net].fired = fired;
        let complete = fired == ((1u64 << nroutes) - 1) as u32;
        let mut ctrl_transition = false;
        if complete {
            let prog_len = self.tiles[t].switch_prog[net].len();
            let st = &mut self.tiles[t].switch_state[net];
            st.fired = 0;
            match ctrl_op {
                SwitchCtrl::Next => {
                    st.pc += 1;
                    if st.pc >= prog_len {
                        st.halted = true;
                    }
                }
                SwitchCtrl::Jump(pc) => st.pc = pc,
                SwitchCtrl::WaitPc => st.halted = true,
            }
            // A route-less instruction (nop / WaitPc) completing is a pure
            // control transition: switch state changed with no progress.
            ctrl_transition = !any_fired;
        } else if !any_fired {
            self.tiles[t].switch_stall_cycles += 1;
            if let Some(cause) = block_cause {
                self.last_switch_cause[t][net] = cause;
                if let Some(sink) = self.active_sink() {
                    sink.lock()
                        .unwrap()
                        .switch_stalls(t as u16, net as u8, cause, 1);
                }
            }
        }
        (any_fired, ctrl_transition)
    }

    /// Can the route group (a bitmask over `routes`, all sharing
    /// `(net, src)`) fire this cycle?
    fn group_ready(&self, t: usize, routes: &[Route], group: u32, cycle: u64) -> bool {
        let lead = routes[group.trailing_zeros() as usize];
        let src_ok = match lead.src {
            SwPort::Proc => self.tiles[t].csto.has_visible(cycle, 0),
            p => {
                let d = p.dir().unwrap();
                self.link_in[t][lead.net][d.index()].has_visible(cycle, 0)
            }
        };
        if !src_ok {
            return false;
        }
        let mut bits = group;
        while bits != 0 {
            let j = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let r = routes[j];
            let dst_ok = match r.dst {
                SwPort::Proc => self.tiles[t].csti[r.net].has_space(),
                p => {
                    let d = p.dir().unwrap();
                    match self.cfg.dim.neighbor(TileId(t as u16), d) {
                        Some(nb) => {
                            self.link_in[nb.index()][r.net][d.opposite().index()].has_space()
                        }
                        None => match self.device_at(t, r.net, d.index()) {
                            Some(i) => self.devices[i].can_push(cycle),
                            None => true, // unbound edge: words drop
                        },
                    }
                }
            };
            if !dst_ok {
                return false;
            }
        }
        true
    }

    /// Why the route group cannot fire this cycle, mirroring
    /// [`RawMachine::group_ready`]'s refusal order exactly: source word
    /// not visible, then a full destination FIFO, then a bound edge
    /// device refusing the word. `None` means the group is actually
    /// ready (the caller only asks about refused groups).
    fn group_block_cause(
        &self,
        t: usize,
        routes: &[Route],
        group: u32,
        cycle: u64,
    ) -> Option<SwitchStallCause> {
        let lead = routes[group.trailing_zeros() as usize];
        let src_ok = match lead.src {
            SwPort::Proc => self.tiles[t].csto.has_visible(cycle, 0),
            p => {
                let d = p.dir().unwrap();
                self.link_in[t][lead.net][d.index()].has_visible(cycle, 0)
            }
        };
        if !src_ok {
            return Some(SwitchStallCause::FifoEmpty);
        }
        let mut bits = group;
        while bits != 0 {
            let j = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let r = routes[j];
            match r.dst {
                SwPort::Proc => {
                    if !self.tiles[t].csti[r.net].has_space() {
                        return Some(SwitchStallCause::FifoFull);
                    }
                }
                p => {
                    let d = p.dir().unwrap();
                    match self.cfg.dim.neighbor(TileId(t as u16), d) {
                        Some(nb) => {
                            if !self.link_in[nb.index()][r.net][d.opposite().index()].has_space() {
                                return Some(SwitchStallCause::FifoFull);
                            }
                        }
                        None => {
                            if let Some(i) = self.device_at(t, r.net, d.index()) {
                                if !self.devices[i].can_push(cycle) {
                                    return Some(SwitchStallCause::DeviceBackpressure);
                                }
                            }
                        }
                    }
                }
            }
        }
        None
    }

    fn fire_group(&mut self, t: usize, routes: &[Route], group: u32, cycle: u64) {
        let lead = routes[group.trailing_zeros() as usize];
        let word = match lead.src {
            SwPort::Proc => self.tiles[t].csto.pop_visible(cycle, 0).unwrap(),
            p => {
                let d = p.dir().unwrap();
                self.link_in[t][lead.net][d.index()]
                    .pop_visible(cycle, 0)
                    .unwrap()
            }
        };
        let mut bits = group;
        while bits != 0 {
            let j = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let r = routes[j];
            match r.dst {
                SwPort::Proc => {
                    let ok = self.tiles[t].csti[r.net].push(word, cycle);
                    debug_assert!(ok);
                }
                p => {
                    let d = p.dir().unwrap();
                    match self.cfg.dim.neighbor(TileId(t as u16), d) {
                        Some(nb) => {
                            let ok = self.link_in[nb.index()][r.net][d.opposite().index()]
                                .push(word, cycle);
                            debug_assert!(ok);
                        }
                        None => match self.device_at(t, r.net, d.index()) {
                            Some(i) => self.devices[i].push_out(word, cycle),
                            None => self.edge_drops += 1,
                        },
                    }
                }
            }
            self.routes_fired += 1;
        }
    }

    /// The earliest cycle `>= self.cycle` on which any component might do
    /// something it could not do on the cycle just stepped, or `None` if
    /// no such cycle exists (a true deadlock / fully drained machine).
    ///
    /// Only meaningful immediately after a *quiet* cycle (see
    /// `step_cycle`): in that state every enabled transition has already
    /// been tried and refused, every refusal depends only on FIFO
    /// visibility ages, cache-stall deadlines, and device readiness — all
    /// pure functions of time — and FIFO *space* cannot change without
    /// some transition firing first. The minimum over every such time
    /// threshold is therefore a sound skip target: every cycle strictly
    /// before it would replay the quiet cycle exactly.
    pub(crate) fn next_event_cycle(&self) -> Option<u64> {
        let now = self.cycle;
        let mut best = u64::MAX;
        // Returns true when the event is this very cycle: `now` cannot be
        // beaten, so the caller stops scanning immediately (the common
        // case on a busy machine, where a just-enqueued word becomes
        // visible next cycle). Candidates in the past are stale — an
        // unconsumed word whose visibility came and went — and waiting on
        // them changes nothing, so they are ignored.
        let mut consider = |v: u64| -> bool {
            if v == now {
                return true;
            }
            if v > now && v < best {
                best = v;
            }
            false
        };
        let prd = self.cfg.proc_recv_delay;
        for (t, tile) in self.tiles.iter().enumerate() {
            for net in 0..NUM_STATIC_NETS {
                let st = &tile.switch_state[net];
                // A pending PC load applies (to a halted switch) on a later
                // cycle without any progress marker; never skip past one.
                if st.pending_pc.is_some() {
                    return Some(now);
                }
                // Defense in depth: a non-halted switch sitting at a
                // route-less instruction advances every cycle. After a
                // quiet cycle this cannot happen (the advance is a control
                // transition, which vetoes quietness), but refuse to skip
                // if it somehow does.
                if !st.halted {
                    if let Some(instr) = tile.switch_prog[net].instrs.get(st.pc) {
                        if instr.routes.is_empty() {
                            return Some(now);
                        }
                    }
                }
                if let Some(ts) = tile.csti[net].front_ts() {
                    if consider(ts + prd + 1) {
                        return Some(now);
                    }
                }
                for d in 0..4 {
                    if let Some(ts) = self.link_in[t][net][d].front_ts() {
                        if consider(ts + 1) {
                            return Some(now);
                        }
                    }
                }
            }
            if tile.stall_until >= now && consider(tile.stall_until) {
                return Some(now);
            }
            // A scheduled stall window beginning is a state change (idle
            // or blocked cycles become CacheStall); never skip past it.
            if let Some(&(s, _)) = self.stall_windows[t].first() {
                if consider(s.max(now)) {
                    return Some(now);
                }
            }
            if let Some(ts) = tile.csto.front_ts() {
                if consider(ts + 1) {
                    return Some(now);
                }
            }
        }
        for d in &self.dyn_nets {
            if let Some(v) = d.next_visibility_event(now, prd) {
                if consider(v) {
                    return Some(now);
                }
            }
        }
        for (i, dev) in self.devices.iter().enumerate() {
            let port = self.device_ports[i];
            // Injection only matters while the edge FIFO has space; space
            // cannot appear without routing progress, which is itself an
            // event.
            if self.link_in[port.tile.index()][port.net][port.dir.index()].has_space() {
                if let Some(v) = dev.next_inject_event(now) {
                    if consider(v.max(now)) {
                        return Some(now);
                    }
                }
            }
            if let Some(v) = dev.next_accept_event(now) {
                if consider(v.max(now)) {
                    return Some(now);
                }
            }
        }
        if best == u64::MAX {
            None
        } else {
            Some(best)
        }
    }

    /// Jump straight from `self.cycle` to `target`, crediting the skipped
    /// cycles in bulk: each tile repeats its last recorded activity (into
    /// stats and the trace window), and every non-halted switch accrues
    /// stall cycles — exactly what per-cycle stepping would have recorded,
    /// since a skipped cycle by construction repeats the previous one.
    /// `last_progress` is untouched: skipped cycles made no progress.
    pub(crate) fn fast_forward_to(&mut self, target: u64) {
        let span = target.saturating_sub(self.cycle);
        if span == 0 {
            return;
        }
        let from = self.cycle;
        for (t, tile) in self.tiles.iter_mut().enumerate() {
            let a = self.last_activity[t];
            tile.stats.counts[a.index()] += span;
            for st in &tile.switch_state {
                if !st.halted {
                    tile.switch_stall_cycles += span;
                }
            }
            if let Some(tr) = &mut self.trace {
                tr.record_span(t, from, span, a);
            }
        }
        if let Some(sink) = self.active_sink() {
            // Bulk-credit the skipped cycles exactly as per-cycle stepping
            // would have: each tile repeats its refined state, and every
            // non-halted switch repeats its last attributed stall cause (a
            // skipped quiet cycle replays the previous cycle's refusals).
            let mut g = sink.lock().unwrap();
            for (t, tile) in self.tiles.iter().enumerate() {
                g.tile_cycles(
                    t as u16,
                    refine_state(self.last_activity[t], self.token_hint[t], self.arb_hint[t]),
                    span,
                );
                for (net, st) in tile.switch_state.iter().enumerate() {
                    if !st.halted {
                        g.switch_stalls(t as u16, net as u8, self.last_switch_cause[t][net], span);
                    }
                }
            }
        }
        self.cycle = target;
    }

    /// Run exactly `n` cycles through the configured engine. With an
    /// engine that skips (the default), quiet stretches are jumped in
    /// bulk; the observable end state is identical to stepping each
    /// cycle.
    pub fn run(&mut self, n: u64) {
        let deadline = self.cycle + n;
        while self.cycle < deadline {
            let quiet = self.step_cycle_engine();
            if quiet && self.cfg.engine.skips() {
                let target = self.next_event_cycle().unwrap_or(deadline).min(deadline);
                self.fast_forward_to(target);
            }
        }
    }

    /// Run until `pred` holds (checked after each cycle) or `max_cycles`
    /// elapse. Returns true if the predicate held.
    pub fn run_until(
        &mut self,
        max_cycles: u64,
        mut pred: impl FnMut(&RawMachine) -> bool,
    ) -> bool {
        let deadline = self.cycle + max_cycles;
        while self.cycle < deadline {
            self.step();
            if pred(self) {
                return true;
            }
        }
        false
    }

    /// Run until nothing makes progress for `window` consecutive cycles
    /// (or `max_cycles` pass). Returns a report distinguishing a clean
    /// finish (everything idle) from a blocked state (a potential
    /// deadlock, §5.5).
    pub fn run_until_quiescent(&mut self, window: u64, max_cycles: u64) -> QuiescenceReport {
        let deadline = self.cycle + max_cycles;
        while self.cycle < deadline && self.idle_cycles() < window {
            let quiet = self.step_cycle_engine();
            if quiet && self.cfg.engine.skips() {
                // Stop exactly where per-cycle stepping would declare
                // quiescence, so the reported cycle matches.
                let cap = (self.last_progress + window).min(deadline);
                let target = self.next_event_cycle().unwrap_or(cap).min(cap);
                self.fast_forward_to(target);
            }
        }
        let blocked_tiles: Vec<TileId> = self
            .last_activity
            .iter()
            .enumerate()
            .filter(|(_, a)| a.is_blocked())
            .map(|(i, _)| TileId(i as u16))
            .collect();
        QuiescenceReport {
            cycle: self.cycle,
            quiescent: self.idle_cycles() >= window,
            blocked_tiles,
        }
    }

    /// Seconds of wall-clock time `cycles` represent at the configured
    /// clock frequency.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.cfg.clock_mhz as f64 * 1e6)
    }
}

/// Result of [`RawMachine::run_until_quiescent`].
#[derive(Clone, Debug)]
pub struct QuiescenceReport {
    pub cycle: u64,
    /// True if the machine went quiet (nothing moved for the window).
    pub quiescent: bool,
    /// Tiles whose processors were blocked when the run stopped. A
    /// quiescent machine with blocked tiles is deadlocked or starved.
    pub blocked_tiles: Vec<TileId>,
}

impl QuiescenceReport {
    /// Quiescent with at least one blocked processor: the textbook
    /// static-network deadlock signature of §5.5.
    pub fn is_deadlock(&self) -> bool {
        self.quiescent && !self.blocked_tiles.is_empty()
    }
}
