//! The whole-chip cycle-driven machine: tiles, switches, networks, devices.
//!
//! Execution order within a cycle is fixed and deterministic:
//!
//! 1. edge devices inject words into edge input FIFOs;
//! 2. tile processors tick (at most one retiring action each);
//! 3. switch processors evaluate their current instruction's routes;
//! 4. the dynamic networks advance one hop.
//!
//! Every FIFO entry is timestamped and only consumable on a *later* cycle,
//! so no word moves more than one network hop per cycle regardless of the
//! iteration order, and the tile-processor receive path carries one extra
//! cycle of decode delay — together these reproduce the 5-cycle
//! tile-to-tile send of Figure 3-2.

use std::collections::BTreeMap;

use crate::cache::{CacheConfig, DCache, MissModel};
use crate::device::{EdgeDevice, EdgePort};
use crate::dynamic::DynNet;
use crate::fifo::TsFifo;
use crate::geom::{GridDim, TileId};
use crate::program::{IdleProgram, TileIo, TileProgram};
use crate::switch::{Route, SwPort, SwitchCtrl, SwitchProgram, SwitchState, NUM_STATIC_NETS};
use crate::trace::{Activity, TileStats, TraceWindow};

/// Machine-wide configuration. Defaults model the 250 MHz Raw prototype.
#[derive(Clone, Debug)]
pub struct RawConfig {
    pub dim: GridDim,
    /// Capacity of each static-network link input FIFO (Raw: 4).
    pub link_fifo_capacity: usize,
    /// Capacity of each `$csti` FIFO.
    pub csti_capacity: usize,
    /// Capacity of the shared `$csto` FIFO.
    pub csto_capacity: usize,
    /// Extra pipeline delay on processor network reads (decode stage).
    pub proc_recv_delay: u64,
    pub cache: CacheConfig,
    pub miss_model: MissModel,
    pub dirty_evict_penalty: u32,
    /// Per-tile local memory size in words (backing store behind the cache).
    pub local_mem_words: usize,
    pub dyn_fifo_capacity: usize,
    pub cdni_capacity: usize,
    /// Clock frequency used to convert cycles to seconds (Raw: 250 MHz).
    pub clock_mhz: u64,
}

impl Default for RawConfig {
    fn default() -> Self {
        RawConfig {
            dim: GridDim::RAW_PROTOTYPE,
            link_fifo_capacity: 4,
            csti_capacity: 4,
            csto_capacity: 4,
            proc_recv_delay: 1,
            cache: CacheConfig::RAW_PROTOTYPE,
            miss_model: MissModel::default(),
            dirty_evict_penalty: 12,
            local_mem_words: 1 << 20,
            dyn_fifo_capacity: 4,
            cdni_capacity: 8,
            clock_mhz: 250,
        }
    }
}

struct Tile {
    program: Option<Box<dyn TileProgram>>,
    switch_prog: [SwitchProgram; NUM_STATIC_NETS],
    switch_state: [SwitchState; NUM_STATIC_NETS],
    cache: DCache,
    mem: Vec<u32>,
    stall_until: u64,
    csti: [TsFifo; NUM_STATIC_NETS],
    csto: TsFifo,
    stats: TileStats,
    /// Cycles the switch spent with an instruction unable to complete.
    switch_stall_cycles: u64,
    last_activity: Activity,
}

/// The simulated Raw chip.
pub struct RawMachine {
    cfg: RawConfig,
    cycle: u64,
    tiles: Vec<Tile>,
    /// Static-network link input FIFOs: `link_in[tile][net][dir]` holds
    /// words that arrived *at* `tile` from direction `dir` and await
    /// routing by `tile`'s switch.
    link_in: Vec<[[TsFifo; 4]; NUM_STATIC_NETS]>,
    dyn_nets: Vec<DynNet>,
    devices: Vec<Box<dyn EdgeDevice>>,
    device_index: BTreeMap<EdgePort, usize>,
    device_ports: Vec<EdgePort>,
    trace: Option<TraceWindow>,
    /// Cycle at which something last made forward progress.
    last_progress: u64,
    /// Words dropped at unbound edge output ports.
    pub edge_drops: u64,
    /// Total static-network route firings.
    pub routes_fired: u64,
    dyn_moved_before: u64,
}

impl RawMachine {
    pub fn new(cfg: RawConfig) -> RawMachine {
        let n = cfg.dim.tiles();
        let tiles = (0..n)
            .map(|_| Tile {
                program: Some(Box::new(IdleProgram)),
                switch_prog: std::array::from_fn(|_| SwitchProgram::idle()),
                switch_state: std::array::from_fn(|_| SwitchState::new()),
                cache: DCache::new(cfg.cache, cfg.miss_model, cfg.dirty_evict_penalty),
                mem: vec![0u32; cfg.local_mem_words],
                stall_until: 0,
                csti: std::array::from_fn(|_| TsFifo::new(cfg.csti_capacity)),
                csto: TsFifo::new(cfg.csto_capacity),
                stats: TileStats::default(),
                switch_stall_cycles: 0,
                last_activity: Activity::Idle,
            })
            .collect();
        let link_in = (0..n)
            .map(|_| {
                std::array::from_fn(|_| {
                    std::array::from_fn(|_| TsFifo::new(cfg.link_fifo_capacity))
                })
            })
            .collect();
        let dyn_nets = (0..2)
            .map(|_| DynNet::new(cfg.dim, cfg.dyn_fifo_capacity, cfg.cdni_capacity))
            .collect();
        RawMachine {
            cfg,
            cycle: 0,
            tiles,
            link_in,
            dyn_nets,
            devices: Vec::new(),
            device_index: BTreeMap::new(),
            device_ports: Vec::new(),
            trace: None,
            last_progress: 0,
            edge_drops: 0,
            routes_fired: 0,
            dyn_moved_before: 0,
        }
    }

    pub fn config(&self) -> &RawConfig {
        &self.cfg
    }

    pub fn dim(&self) -> GridDim {
        self.cfg.dim
    }

    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Install a tile-processor program.
    pub fn set_program(&mut self, tile: TileId, program: Box<dyn TileProgram>) {
        self.tiles[tile.index()].program = Some(program);
    }

    /// Install the switch program driving static network `net` at `tile`
    /// (PC reset to 0). Every route in the program must target `net`.
    ///
    /// Modeling note: real Raw has a single switch processor per tile
    /// whose instruction controls both static crossbars; this simulator
    /// gives each network an independent instruction stream so that a
    /// free-running ingest path on one network cannot couple to (and
    /// deadlock) a processor-steered schedule on the other. The paper's
    /// Rotating Crossbar algorithm uses a single network (§5.3), so its
    /// fidelity is unaffected.
    pub fn set_switch_program(&mut self, tile: TileId, net: usize, prog: SwitchProgram) {
        for i in &prog.instrs {
            for r in &i.routes {
                assert_eq!(
                    r.net, net,
                    "route on net {} in program for net {}",
                    r.net, net
                );
            }
        }
        let t = &mut self.tiles[tile.index()];
        t.switch_prog[net] = prog;
        t.switch_state[net] = SwitchState::new();
    }

    /// Bind a device to an edge port. Panics if the port is interior or
    /// already bound.
    pub fn bind_device(&mut self, port: EdgePort, dev: Box<dyn EdgeDevice>) {
        assert!(
            self.cfg.dim.is_edge(port.tile, port.dir),
            "{:?} is not an edge port",
            port
        );
        assert!(
            !self.device_index.contains_key(&port),
            "{:?} already has a device",
            port
        );
        self.device_index.insert(port, self.devices.len());
        self.device_ports.push(port);
        self.devices.push(dev);
    }

    /// Retrieve a bound device by concrete type.
    pub fn device_mut<T: 'static>(&mut self, port: EdgePort) -> Option<&mut T> {
        let i = *self.device_index.get(&port)?;
        self.devices[i].as_any_mut().downcast_mut::<T>()
    }

    pub fn device_ref<T: 'static>(&self, port: EdgePort) -> Option<&T> {
        let i = *self.device_index.get(&port)?;
        self.devices[i].as_any().downcast_ref::<T>()
    }

    pub fn stats(&self, tile: TileId) -> &TileStats {
        &self.tiles[tile.index()].stats
    }

    pub fn cache_stats(&self, tile: TileId) -> (u64, u64) {
        let c = &self.tiles[tile.index()].cache;
        (c.hits, c.misses)
    }

    pub fn switch_stall_cycles(&self, tile: TileId) -> u64 {
        self.tiles[tile.index()].switch_stall_cycles
    }

    /// The activity each tile recorded on the most recent cycle.
    pub fn last_activities(&self) -> Vec<Activity> {
        self.tiles.iter().map(|t| t.last_activity).collect()
    }

    /// Direct access to a tile's local memory for setup/inspection.
    pub fn tile_mem_mut(&mut self, tile: TileId) -> &mut Vec<u32> {
        &mut self.tiles[tile.index()].mem
    }

    /// Diagnostic: occupancy of a static-network link input FIFO.
    pub fn link_occupancy(&self, tile: TileId, net: usize, dir: crate::geom::Dir) -> usize {
        self.link_in[tile.index()][net][dir.index()].len()
    }

    /// Diagnostic: `(csto_len, csti0_len, csti1_len)` at a tile.
    pub fn proc_queue_occupancy(&self, tile: TileId) -> (usize, usize, usize) {
        let t = &self.tiles[tile.index()];
        (t.csto.len(), t.csti[0].len(), t.csti[1].len())
    }

    /// Diagnostic: the switch PC and halted flag for `net` at a tile.
    pub fn switch_status(&self, tile: TileId, net: usize) -> (usize, bool) {
        let st = &self.tiles[tile.index()].switch_state[net];
        (st.pc, st.halted)
    }

    /// Begin recording a per-tile activity trace window.
    pub fn start_trace(&mut self, start_cycle: u64, len: usize) {
        assert!(
            start_cycle >= self.cycle,
            "trace window must start in the future"
        );
        self.trace = Some(TraceWindow::new(self.cfg.dim.tiles(), start_cycle, len));
    }

    /// Take the recorded trace window, if any.
    pub fn take_trace(&mut self) -> Option<TraceWindow> {
        self.trace.take()
    }

    /// Cycles since anything in the machine made forward progress.
    pub fn idle_cycles(&self) -> u64 {
        self.cycle.saturating_sub(self.last_progress)
    }

    /// Advance one cycle.
    pub fn step(&mut self) {
        let cycle = self.cycle;
        let mut progress = false;

        // 1. Device injection at edge input FIFOs.
        for i in 0..self.devices.len() {
            let port = self.device_ports[i];
            let fifo = &mut self.link_in[port.tile.index()][port.net][port.dir.index()];
            if fifo.has_space() {
                if let Some(w) = self.devices[i].pull_in(cycle) {
                    let ok = fifo.push(w, cycle);
                    debug_assert!(ok);
                    progress = true;
                }
            }
        }

        // 2. Tile processors.
        progress |= self.step_processors(cycle);

        // 3. Switch processors.
        progress |= self.step_switches(cycle);

        // 4. Dynamic networks.
        for d in &mut self.dyn_nets {
            d.step(cycle);
        }
        let dyn_moved: u64 = self.dyn_nets.iter().map(|d| d.words_moved).sum();
        if dyn_moved != self.dyn_moved_before {
            progress = true;
            self.dyn_moved_before = dyn_moved;
        }

        if progress {
            self.last_progress = cycle;
        }
        self.cycle += 1;
    }

    fn step_processors(&mut self, cycle: u64) -> bool {
        let mut progress = false;
        let n = self.tiles.len();
        let cols = self.cfg.dim.cols as u32;
        for t in 0..n {
            let activity = if cycle < self.tiles[t].stall_until {
                Activity::CacheStall
            } else {
                let mut program = self.tiles[t].program.take();
                let activity = if let Some(prog) = program.as_mut() {
                    let tile = &mut self.tiles[t];
                    let col = (t as u32) % cols;
                    let col_hops = col.min(cols - 1 - col);
                    let mut io = TileIo::new(
                        cycle,
                        TileId(t as u16),
                        &mut tile.csti,
                        &mut tile.csto,
                        &mut tile.switch_state,
                        &mut tile.cache,
                        &mut tile.mem,
                        &mut self.dyn_nets,
                        col_hops,
                        self.cfg.proc_recv_delay,
                        &mut tile.stall_until,
                    );
                    prog.tick(&mut io);
                    io.take_activity()
                } else {
                    Activity::Idle
                };
                self.tiles[t].program = program;
                activity
            };
            self.tiles[t].stats.record(activity);
            self.tiles[t].last_activity = activity;
            if let Some(tr) = &mut self.trace {
                tr.record(t, cycle, activity);
            }
            progress |= activity == Activity::Busy;
        }
        progress
    }

    fn step_switches(&mut self, cycle: u64) -> bool {
        let mut progress = false;
        let n = self.tiles.len();
        for t in 0..n {
            for net in 0..NUM_STATIC_NETS {
                progress |= self.step_switch(t, net, cycle);
            }
        }
        progress
    }

    fn step_switch(&mut self, t: usize, net: usize, cycle: u64) -> bool {
        let mut progress = false;
        {
            self.tiles[t].switch_state[net].apply_pending_pc(cycle);
            if self.tiles[t].switch_state[net].halted {
                return false;
            }
            let pc = self.tiles[t].switch_state[net].pc;
            let Some(instr) = self.tiles[t].switch_prog[net].instrs.get(pc).cloned() else {
                self.tiles[t].switch_state[net].halted = true;
                return false;
            };
            // Fire route groups (routes sharing a (net, src) fire together,
            // duplicating the word across destinations).
            let mut fired = self.tiles[t].switch_state[net].fired;
            let mut any_fired = false;
            let mut gi = 0;
            while gi < instr.routes.len() {
                if fired & (1 << gi) != 0 {
                    gi += 1;
                    continue;
                }
                let lead = instr.routes[gi];
                let group: Vec<usize> = (gi..instr.routes.len())
                    .filter(|&j| {
                        fired & (1 << j) == 0
                            && instr.routes[j].net == lead.net
                            && instr.routes[j].src == lead.src
                    })
                    .collect();
                if self.group_ready(t, &instr.routes, &group, cycle) {
                    self.fire_group(t, &instr.routes, &group, cycle);
                    for &j in &group {
                        fired |= 1 << j;
                    }
                    any_fired = true;
                    progress = true;
                }
                gi += 1;
            }
            self.tiles[t].switch_state[net].fired = fired;
            let complete = (0..instr.routes.len()).all(|j| fired & (1 << j) != 0);
            if complete {
                let prog_len = self.tiles[t].switch_prog[net].len();
                let st = &mut self.tiles[t].switch_state[net];
                st.fired = 0;
                match instr.ctrl {
                    SwitchCtrl::Next => {
                        st.pc += 1;
                        if st.pc >= prog_len {
                            st.halted = true;
                        }
                    }
                    SwitchCtrl::Jump(pc) => st.pc = pc,
                    SwitchCtrl::WaitPc => st.halted = true,
                }
            } else if !any_fired {
                self.tiles[t].switch_stall_cycles += 1;
            }
        }
        progress
    }

    /// Can the route group (all sharing `(net, src)`) fire this cycle?
    fn group_ready(&self, t: usize, routes: &[Route], group: &[usize], cycle: u64) -> bool {
        let lead = routes[group[0]];
        let src_ok = match lead.src {
            SwPort::Proc => self.tiles[t].csto.has_visible(cycle, 0),
            p => {
                let d = p.dir().unwrap();
                self.link_in[t][lead.net][d.index()].has_visible(cycle, 0)
            }
        };
        if !src_ok {
            return false;
        }
        group.iter().all(|&j| {
            let r = routes[j];
            match r.dst {
                SwPort::Proc => self.tiles[t].csti[r.net].has_space(),
                p => {
                    let d = p.dir().unwrap();
                    match self.cfg.dim.neighbor(TileId(t as u16), d) {
                        Some(nb) => {
                            self.link_in[nb.index()][r.net][d.opposite().index()].has_space()
                        }
                        None => {
                            let port = EdgePort::new(TileId(t as u16), d, r.net);
                            match self.device_index.get(&port) {
                                Some(&i) => self.devices[i].can_push(cycle),
                                None => true, // unbound edge: words drop
                            }
                        }
                    }
                }
            }
        })
    }

    fn fire_group(&mut self, t: usize, routes: &[Route], group: &[usize], cycle: u64) {
        let lead = routes[group[0]];
        let word = match lead.src {
            SwPort::Proc => self.tiles[t].csto.pop_visible(cycle, 0).unwrap(),
            p => {
                let d = p.dir().unwrap();
                self.link_in[t][lead.net][d.index()]
                    .pop_visible(cycle, 0)
                    .unwrap()
            }
        };
        for &j in group {
            let r = routes[j];
            match r.dst {
                SwPort::Proc => {
                    let ok = self.tiles[t].csti[r.net].push(word, cycle);
                    debug_assert!(ok);
                }
                p => {
                    let d = p.dir().unwrap();
                    match self.cfg.dim.neighbor(TileId(t as u16), d) {
                        Some(nb) => {
                            let ok = self.link_in[nb.index()][r.net][d.opposite().index()]
                                .push(word, cycle);
                            debug_assert!(ok);
                        }
                        None => {
                            let port = EdgePort::new(TileId(t as u16), d, r.net);
                            match self.device_index.get(&port) {
                                Some(&i) => self.devices[i].push_out(word, cycle),
                                None => self.edge_drops += 1,
                            }
                        }
                    }
                }
            }
            self.routes_fired += 1;
        }
    }

    /// Run exactly `n` cycles.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Run until `pred` holds (checked after each cycle) or `max_cycles`
    /// elapse. Returns true if the predicate held.
    pub fn run_until(
        &mut self,
        max_cycles: u64,
        mut pred: impl FnMut(&RawMachine) -> bool,
    ) -> bool {
        let deadline = self.cycle + max_cycles;
        while self.cycle < deadline {
            self.step();
            if pred(self) {
                return true;
            }
        }
        false
    }

    /// Run until nothing makes progress for `window` consecutive cycles
    /// (or `max_cycles` pass). Returns a report distinguishing a clean
    /// finish (everything idle) from a blocked state (a potential
    /// deadlock, §5.5).
    pub fn run_until_quiescent(&mut self, window: u64, max_cycles: u64) -> QuiescenceReport {
        let deadline = self.cycle + max_cycles;
        while self.cycle < deadline && self.idle_cycles() < window {
            self.step();
        }
        let blocked_tiles: Vec<TileId> = self
            .tiles
            .iter()
            .enumerate()
            .filter(|(_, t)| t.last_activity.is_blocked())
            .map(|(i, _)| TileId(i as u16))
            .collect();
        QuiescenceReport {
            cycle: self.cycle,
            quiescent: self.idle_cycles() >= window,
            blocked_tiles,
        }
    }

    /// Seconds of wall-clock time `cycles` represent at the configured
    /// clock frequency.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.cfg.clock_mhz as f64 * 1e6)
    }
}

/// Result of [`RawMachine::run_until_quiescent`].
#[derive(Clone, Debug)]
pub struct QuiescenceReport {
    pub cycle: u64,
    /// True if the machine went quiet (nothing moved for the window).
    pub quiescent: bool,
    /// Tiles whose processors were blocked when the run stopped. A
    /// quiescent machine with blocked tiles is deadlocked or starved.
    pub blocked_tiles: Vec<TileId>,
}

impl QuiescenceReport {
    /// Quiescent with at least one blocked processor: the textbook
    /// static-network deadlock signature of §5.5.
    pub fn is_deadlock(&self) -> bool {
        self.quiescent && !self.blocked_tiles.is_empty()
    }
}
