//! # raw-sim — a cycle-accurate simulator of the MIT Raw tiled processor
//!
//! The Raw processor (Waingold et al., IEEE Computer 1997; Taylor, MIT
//! 1999) is a chip multiprocessor of simple MIPS-like tiles connected by
//! *software-exposed* on-chip networks: two compile-time-scheduled static
//! networks whose per-cycle crossbar configuration is driven by a
//! per-tile switch processor, and two wormhole-routed dynamic networks.
//! The paper reproduced by this workspace — *High-Bandwidth Packet
//! Switching on the Raw General-Purpose Architecture* (ICPP 2003) —
//! evaluates a 4-port IP router on the (then unfabricated) Raw prototype
//! using the Raw cycle simulator. This crate is that substrate, rebuilt.
//!
//! ## Model summary
//!
//! * [`machine::RawMachine`] — an `R x C` grid of tiles stepped one cycle
//!   at a time, deterministically.
//! * [`switch`] — the static switch processor: per-cycle routes with
//!   flow control, multicast duplication, all-routes-complete instruction
//!   semantics, jumps, and processor-loaded program counters.
//! * [`dynamic`] — wormhole, dimension-ordered dynamic networks.
//! * [`cache`] — the 8K-word 2-way data cache with write-back timing.
//! * [`program`] — cycle-stepped tile programs with the paper's cost
//!   model (2 cycles to buffer a network word to memory, 1 cycle for
//!   load-and-forward, blocking network registers).
//! * [`trace`] — per-tile utilization accounting (Figure 7-3's data).
//! * [`device`] — off-chip line cards / sources / sinks on edge ports.
//!
//! ## Timing fidelity
//!
//! The model reproduces the latencies the paper states: a tile-to-tile
//! send over the static network costs 5 cycles end-to-end with a 3-cycle
//! send-to-use latency (Figure 3-2; validated in this crate's tests and
//! in `raw-isa`), each link moves one 32-bit word per cycle, and network
//! registers block the pipeline. Dynamic-network hops are one cycle; the
//! 15–30 cycle ALU-to-ALU figure quoted in §3.3 of the paper includes the
//! software overhead of composing and demultiplexing messages, which
//! belongs to the programs, not the fabric.

pub mod cache;
pub mod compiled;
pub mod device;
pub mod dynamic;
pub mod fifo;
pub mod geom;
pub mod machine;
pub mod program;
pub mod switch;
pub mod trace;

pub use cache::{Access, CacheConfig, DCache, MissModel};
pub use compiled::{
    CompiledDst, CompiledInstr, CompiledPlan, CompiledRoute, CompiledSrc, CompiledSwitch,
    InjectorSlot,
};
pub use device::{EdgeDevice, EdgePort, NullSink, SinkHandle, WordSink, WordSource};
pub use dynamic::{pack_header, unpack_header, DynNet};
pub use fifo::TsFifo;
pub use geom::{Dir, GridDim, TileId};
pub use machine::{EngineMode, QuiescenceReport, RawConfig, RawMachine};
pub use program::{IdleProgram, TileIo, TileProgram};
pub use switch::{
    NetId, Route, SwPort, SwitchCtrl, SwitchInstr, SwitchProgram, SwitchState,
    MAX_ROUTES_PER_INSTR, NET0, NET1, NUM_STATIC_NETS, SWITCH_IMEM_INSTRS,
};
pub use trace::{Activity, TileStats, TraceWindow};
