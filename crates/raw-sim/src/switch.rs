//! The static switch processor.
//!
//! Each Raw tile contains one six-stage switch processor that configures the
//! tile's *two* static-network crossbars on a per-cycle basis. A switch
//! instruction names a set of routes (`$cWi -> $cEo, $cWi -> $cPo, ...`) plus
//! a control operation (fall through, jump, or wait for the tile processor
//! to load a new program counter — the mechanism the Rotating Crossbar uses
//! to select the next fabric configuration from its jump table).
//!
//! Routing semantics follow the Raw specification as described in the paper:
//!
//! * the static network is **flow controlled** — a route only fires when its
//!   source word is available and every destination has buffer space;
//! * all routes in one instruction that share a source fire **together**
//!   (the hardware crossbar duplicates the word, which is what makes the
//!   multicast extension of §8.6 cheap);
//! * an instruction **completes** only when all of its routes have fired;
//!   the switch stalls in place until then. This is the property that makes
//!   careless schedules deadlock the static network (§5.5) and that the
//!   compile-time scheduler must respect.

use crate::geom::Dir;

/// A port of the static-network crossbar at one tile: the four mesh
/// directions plus the tile processor itself.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum SwPort {
    N,
    E,
    S,
    W,
    /// The tile processor: as a source this is the `$csto` FIFO (shared by
    /// both networks, as on real Raw); as a destination it is the network's
    /// `$csti` FIFO.
    Proc,
}

impl SwPort {
    pub const ALL: [SwPort; 5] = [SwPort::N, SwPort::E, SwPort::S, SwPort::W, SwPort::Proc];

    #[inline]
    pub fn index(self) -> usize {
        match self {
            SwPort::N => 0,
            SwPort::E => 1,
            SwPort::S => 2,
            SwPort::W => 3,
            SwPort::Proc => 4,
        }
    }

    /// The mesh direction of this port, or `None` for `Proc`.
    #[inline]
    pub fn dir(self) -> Option<Dir> {
        match self {
            SwPort::N => Some(Dir::North),
            SwPort::E => Some(Dir::East),
            SwPort::S => Some(Dir::South),
            SwPort::W => Some(Dir::West),
            SwPort::Proc => None,
        }
    }

    #[inline]
    pub fn from_dir(d: Dir) -> SwPort {
        match d {
            Dir::North => SwPort::N,
            Dir::East => SwPort::E,
            Dir::South => SwPort::S,
            Dir::West => SwPort::W,
        }
    }
}

/// Which of the two static networks a route uses.
pub type NetId = usize;
pub const NET0: NetId = 0;
pub const NET1: NetId = 1;
pub const NUM_STATIC_NETS: usize = 2;

/// One crossbar connection for one cycle: move a word from `src` to `dst`
/// on static network `net`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Route {
    pub net: NetId,
    pub src: SwPort,
    pub dst: SwPort,
}

impl Route {
    pub fn new(net: NetId, src: SwPort, dst: SwPort) -> Route {
        assert!(net < NUM_STATIC_NETS);
        Route { net, src, dst }
    }
}

/// Control operation attached to a switch instruction, executed once all of
/// the instruction's routes have fired.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SwitchCtrl {
    /// Fall through to the next instruction.
    Next,
    /// Unconditional jump to an instruction index.
    Jump(usize),
    /// Halt until the tile processor loads a new program counter (the
    /// "load the address of the configuration into the program counter of
    /// the switch processor" step of §6.5). An instruction with `WaitPc`
    /// must carry no routes.
    WaitPc,
}

/// A single switch instruction: up to a crossbar-full of routes plus a
/// control operation.
#[derive(Clone, Debug)]
pub struct SwitchInstr {
    pub routes: Vec<Route>,
    pub ctrl: SwitchCtrl,
}

impl SwitchInstr {
    pub fn new(routes: Vec<Route>, ctrl: SwitchCtrl) -> SwitchInstr {
        match SwitchInstr::try_new(routes, ctrl) {
            Ok(i) => i,
            Err(e) => panic!("{e}"),
        }
    }

    /// Validating constructor: the same checks as [`SwitchInstr::new`],
    /// reported as an error instead of a panic so codegen paths can
    /// surface malformed schedules at construction time.
    pub fn try_new(routes: Vec<Route>, ctrl: SwitchCtrl) -> Result<SwitchInstr, String> {
        if ctrl == SwitchCtrl::WaitPc && !routes.is_empty() {
            return Err("WaitPc instructions carry no routes".into());
        }
        if routes.len() > MAX_ROUTES_PER_INSTR {
            return Err(format!(
                "{} routes exceed the crossbar's {MAX_ROUTES_PER_INSTR}-route instruction limit",
                routes.len()
            ));
        }
        // A destination may be driven by only one source per network in a
        // single instruction (a crossbar output has one input selected).
        for (i, a) in routes.iter().enumerate() {
            for b in &routes[i + 1..] {
                if a.net == b.net && a.dst == b.dst {
                    return Err(format!(
                        "two routes drive {:?} on net {} in one instruction",
                        a.dst, a.net
                    ));
                }
            }
        }
        Ok(SwitchInstr { routes, ctrl })
    }

    /// Convenience: an instruction that only waits for a new PC.
    pub fn wait_pc() -> SwitchInstr {
        SwitchInstr::new(Vec::new(), SwitchCtrl::WaitPc)
    }

    /// Convenience: route-less cycle (a switch `nop`).
    pub fn nop() -> SwitchInstr {
        SwitchInstr::new(Vec::new(), SwitchCtrl::Next)
    }
}

/// A switch processor's instruction memory. The Raw prototype gives each
/// tile 8,192 words of switch memory; the constructor enforces a
/// configurable bound so the configuration-space arguments of Chapter 6 are
/// checkable in code.
#[derive(Clone, Debug, Default)]
pub struct SwitchProgram {
    pub instrs: Vec<SwitchInstr>,
}

/// Switch memory limit of the Raw prototype, in instructions. Raw stores
/// one 64-bit switch instruction per word-pair of its 8,192-word (64-bit
/// word) switch memory.
pub const SWITCH_IMEM_INSTRS: usize = 8192;

/// Most routes one switch instruction can name (the machine tracks route
/// completion in a 32-bit `fired` mask).
pub const MAX_ROUTES_PER_INSTR: usize = 32;

impl SwitchProgram {
    pub fn new(instrs: Vec<SwitchInstr>) -> SwitchProgram {
        SwitchProgram { instrs }
    }

    /// An empty program: the switch halts immediately in `WaitPc`.
    pub fn idle() -> SwitchProgram {
        SwitchProgram::new(vec![SwitchInstr::wait_pc()])
    }

    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// True if the program fits the prototype's switch instruction memory.
    pub fn fits_switch_imem(&self) -> bool {
        self.instrs.len() <= SWITCH_IMEM_INSTRS
    }

    /// Re-check every construction invariant of the whole program (the
    /// fields are public, so code that assembles instructions directly can
    /// bypass [`SwitchInstr::new`]): per-instruction route conflicts and
    /// `WaitPc` purity, control-flow targets in bounds, and the
    /// instruction-memory limit. Used by codegen boundaries and the
    /// `raw-verify` static analyses.
    pub fn validate(&self) -> Result<(), String> {
        if !self.fits_switch_imem() {
            return Err(format!(
                "program of {} instructions exceeds the {SWITCH_IMEM_INSTRS}-instruction \
                 switch memory",
                self.instrs.len()
            ));
        }
        for (pc, i) in self.instrs.iter().enumerate() {
            SwitchInstr::try_new(i.routes.clone(), i.ctrl).map_err(|e| format!("pc {pc}: {e}"))?;
            if let SwitchCtrl::Jump(target) = i.ctrl {
                if target >= self.instrs.len() {
                    return Err(format!(
                        "pc {pc}: jump target {target} outside the {}-instruction program",
                        self.instrs.len()
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Run-time state of one switch processor.
#[derive(Clone, Debug)]
pub struct SwitchState {
    pub pc: usize,
    /// Bitmask of routes of the current instruction that have already
    /// fired (the instruction completes when all have).
    pub fired: u32,
    /// PC write from the tile processor, applied at the start of the next
    /// switch cycle (one cycle of latency, like every proc->switch path).
    pub pending_pc: Option<(usize, u64)>,
    /// True while the switch sits at a `WaitPc` with no pending PC.
    pub halted: bool,
}

impl SwitchState {
    pub fn new() -> SwitchState {
        SwitchState {
            pc: 0,
            fired: 0,
            pending_pc: None,
            halted: false,
        }
    }

    /// Record a PC load from the tile processor during `cycle`.
    pub fn load_pc(&mut self, pc: usize, cycle: u64) {
        self.pending_pc = Some((pc, cycle));
    }

    /// Apply a pending PC if it was loaded on an earlier cycle and the
    /// switch has reached a `WaitPc` sync point. A PC loaded while a
    /// routine is still running takes effect when the routine finishes —
    /// it never hijacks an instruction mid-flight.
    pub fn apply_pending_pc(&mut self, cycle: u64) {
        if let Some((pc, set_at)) = self.pending_pc {
            if set_at < cycle && self.halted {
                self.pc = pc;
                self.fired = 0;
                self.halted = false;
                self.pending_pc = None;
            }
        }
    }
}

impl Default for SwitchState {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swport_roundtrip() {
        for p in SwPort::ALL {
            if let Some(d) = p.dir() {
                assert_eq!(SwPort::from_dir(d), p);
            }
        }
        assert_eq!(SwPort::Proc.dir(), None);
    }

    #[test]
    #[should_panic(expected = "two routes drive")]
    fn conflicting_destinations_rejected() {
        SwitchInstr::new(
            vec![
                Route::new(NET0, SwPort::N, SwPort::Proc),
                Route::new(NET0, SwPort::W, SwPort::Proc),
            ],
            SwitchCtrl::Next,
        );
    }

    #[test]
    fn same_dst_on_other_net_allowed() {
        // Each network has its own crossbar, so the "same" output on the
        // other network is a distinct resource.
        let i = SwitchInstr::new(
            vec![
                Route::new(NET0, SwPort::N, SwPort::Proc),
                Route::new(NET1, SwPort::W, SwPort::Proc),
            ],
            SwitchCtrl::Next,
        );
        assert_eq!(i.routes.len(), 2);
    }

    #[test]
    fn multicast_same_source_allowed() {
        let i = SwitchInstr::new(
            vec![
                Route::new(NET0, SwPort::W, SwPort::E),
                Route::new(NET0, SwPort::W, SwPort::Proc),
            ],
            SwitchCtrl::Next,
        );
        assert_eq!(i.routes.len(), 2);
    }

    #[test]
    fn pending_pc_applies_next_cycle() {
        let mut s = SwitchState::new();
        s.halted = true;
        s.load_pc(7, 10);
        s.apply_pending_pc(10);
        assert!(s.halted, "PC load must not take effect in the same cycle");
        s.apply_pending_pc(11);
        assert!(!s.halted);
        assert_eq!(s.pc, 7);
    }

    #[test]
    fn imem_bound() {
        let p = SwitchProgram::new(vec![SwitchInstr::nop(); SWITCH_IMEM_INSTRS]);
        assert!(p.fits_switch_imem());
        let p = SwitchProgram::new(vec![SwitchInstr::nop(); SWITCH_IMEM_INSTRS + 1]);
        assert!(!p.fits_switch_imem());
    }

    #[test]
    fn try_new_reports_instead_of_panicking() {
        let e = SwitchInstr::try_new(
            vec![
                Route::new(NET0, SwPort::N, SwPort::Proc),
                Route::new(NET0, SwPort::W, SwPort::Proc),
            ],
            SwitchCtrl::Next,
        )
        .unwrap_err();
        assert!(e.contains("two routes drive"), "{e}");
        let e = SwitchInstr::try_new(
            vec![Route::new(NET0, SwPort::N, SwPort::Proc)],
            SwitchCtrl::WaitPc,
        )
        .unwrap_err();
        assert!(e.contains("WaitPc"), "{e}");
        assert!(SwitchInstr::try_new(
            vec![Route::new(NET0, SwPort::W, SwPort::E)],
            SwitchCtrl::Next
        )
        .is_ok());
    }

    #[test]
    fn program_validate_catches_bypassed_invariants() {
        // A well-formed program passes.
        let good = SwitchProgram::new(vec![
            SwitchInstr::new(
                vec![Route::new(NET0, SwPort::W, SwPort::E)],
                SwitchCtrl::Next,
            ),
            SwitchInstr::wait_pc(),
        ]);
        assert!(good.validate().is_ok());

        // Constructor-bypassing mutants (public fields) are caught.
        let mut bad = good.clone();
        bad.instrs[1]
            .routes
            .push(Route::new(NET0, SwPort::W, SwPort::E));
        assert!(bad.validate().unwrap_err().contains("WaitPc"));

        let mut bad = good.clone();
        bad.instrs[0]
            .routes
            .push(Route::new(NET0, SwPort::N, SwPort::E));
        assert!(bad.validate().unwrap_err().contains("two routes drive"));

        let mut bad = good.clone();
        bad.instrs[0].ctrl = SwitchCtrl::Jump(99);
        assert!(bad.validate().unwrap_err().contains("jump target"));

        let bad = SwitchProgram::new(vec![SwitchInstr::nop(); SWITCH_IMEM_INSTRS + 1]);
        assert!(bad.validate().unwrap_err().contains("switch memory"));
    }
}
