//! Grid geometry: tile identifiers, mesh directions, and neighbor math.
//!
//! The Raw prototype is a 4x4 mesh of tiles, but the architecture scales to
//! larger fabrics ("Raw Processors can be seamlessly connected to build
//! fabrics of up to 1,024 tiles"), so all geometry here is parameterized by
//! a [`GridDim`].

use std::fmt;

/// Identifier of a tile within the grid, numbered row-major: tile
/// `r * cols + c` sits at row `r`, column `c`. On the 4x4 prototype this
/// matches the numbering of Figure 7-2 of the paper (tiles 0..=15).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TileId(pub u16);

impl TileId {
    /// Index usable for array addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for TileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One of the four mesh directions. `North` is towards row 0, `West` towards
/// column 0, matching the layout drawings in the paper.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Dir {
    North,
    East,
    South,
    West,
}

impl Dir {
    /// All four directions, in a fixed deterministic order.
    pub const ALL: [Dir; 4] = [Dir::North, Dir::East, Dir::South, Dir::West];

    /// The direction a neighbor sees this link from, e.g. a word leaving a
    /// tile heading `South` arrives at the neighbor's `North` input.
    #[inline]
    pub fn opposite(self) -> Dir {
        match self {
            Dir::North => Dir::South,
            Dir::East => Dir::West,
            Dir::South => Dir::North,
            Dir::West => Dir::East,
        }
    }

    /// Small stable index for array addressing.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Dir::North => 0,
            Dir::East => 1,
            Dir::South => 2,
            Dir::West => 3,
        }
    }

    /// Inverse of [`Dir::index`].
    #[inline]
    pub fn from_index(i: usize) -> Dir {
        Dir::ALL[i]
    }
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Dir::North => "N",
            Dir::East => "E",
            Dir::South => "S",
            Dir::West => "W",
        };
        f.write_str(s)
    }
}

/// Dimensions of the tile grid.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GridDim {
    pub rows: u16,
    pub cols: u16,
}

impl GridDim {
    /// The 4x4 grid of the Raw prototype evaluated in the paper.
    pub const RAW_PROTOTYPE: GridDim = GridDim { rows: 4, cols: 4 };

    pub fn new(rows: u16, cols: u16) -> GridDim {
        assert!(rows >= 1 && cols >= 1, "grid must be at least 1x1");
        GridDim { rows, cols }
    }

    /// Total number of tiles.
    #[inline]
    pub fn tiles(self) -> usize {
        self.rows as usize * self.cols as usize
    }

    /// Tile at `(row, col)`.
    #[inline]
    pub fn tile(self, row: u16, col: u16) -> TileId {
        debug_assert!(row < self.rows && col < self.cols);
        TileId(row * self.cols + col)
    }

    /// `(row, col)` of a tile.
    #[inline]
    pub fn coords(self, t: TileId) -> (u16, u16) {
        (t.0 / self.cols, t.0 % self.cols)
    }

    /// The neighbor of `t` in direction `d`, or `None` if the link leaves
    /// the chip (an edge port, where line cards and DRAM attach).
    pub fn neighbor(self, t: TileId, d: Dir) -> Option<TileId> {
        let (r, c) = self.coords(t);
        match d {
            Dir::North if r > 0 => Some(self.tile(r - 1, c)),
            Dir::South if r + 1 < self.rows => Some(self.tile(r + 1, c)),
            Dir::West if c > 0 => Some(self.tile(r, c - 1)),
            Dir::East if c + 1 < self.cols => Some(self.tile(r, c + 1)),
            _ => None,
        }
    }

    /// True if the link `(t, d)` exits the chip.
    #[inline]
    pub fn is_edge(self, t: TileId, d: Dir) -> bool {
        self.neighbor(t, d).is_none()
    }

    /// Iterator over all tiles in numeric order.
    pub fn iter(self) -> impl Iterator<Item = TileId> {
        (0..self.tiles() as u16).map(TileId)
    }

    /// Manhattan distance between two tiles (lower bound on static-network
    /// hop count, exact for dimension-ordered routes).
    pub fn manhattan(self, a: TileId, b: TileId) -> u16 {
        let (ar, ac) = self.coords(a);
        let (br, bc) = self.coords(b);
        ar.abs_diff(br) + ac.abs_diff(bc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_prototype_is_4x4() {
        let g = GridDim::RAW_PROTOTYPE;
        assert_eq!(g.tiles(), 16);
        assert_eq!(g.tile(1, 1), TileId(5));
        assert_eq!(g.coords(TileId(10)), (2, 2));
    }

    #[test]
    fn neighbors_match_figure_layout() {
        let g = GridDim::RAW_PROTOTYPE;
        // Tile 0 sends south to tile 4 (the Figure 3-2 example pair).
        assert_eq!(g.neighbor(TileId(0), Dir::South), Some(TileId(4)));
        assert_eq!(g.neighbor(TileId(4), Dir::North), Some(TileId(0)));
        // Crossbar ring of the router: 5 -E-> 6 -S-> 10 -W-> 9 -N-> 5.
        assert_eq!(g.neighbor(TileId(5), Dir::East), Some(TileId(6)));
        assert_eq!(g.neighbor(TileId(6), Dir::South), Some(TileId(10)));
        assert_eq!(g.neighbor(TileId(10), Dir::West), Some(TileId(9)));
        assert_eq!(g.neighbor(TileId(9), Dir::North), Some(TileId(5)));
    }

    #[test]
    fn edges_detected() {
        let g = GridDim::RAW_PROTOTYPE;
        assert!(g.is_edge(TileId(0), Dir::North));
        assert!(g.is_edge(TileId(0), Dir::West));
        assert!(!g.is_edge(TileId(0), Dir::South));
        assert!(g.is_edge(TileId(15), Dir::East));
        assert!(g.is_edge(TileId(15), Dir::South));
        // Ingress tiles of the router layout sit on west/east edges.
        for (t, d) in [
            (TileId(4), Dir::West),
            (TileId(7), Dir::East),
            (TileId(11), Dir::East),
            (TileId(8), Dir::West),
        ] {
            assert!(g.is_edge(t, d), "ingress port {t:?} must face an edge");
        }
    }

    #[test]
    fn opposite_is_involution() {
        for d in Dir::ALL {
            assert_eq!(d.opposite().opposite(), d);
            assert_eq!(Dir::from_index(d.index()), d);
        }
    }

    #[test]
    fn manhattan_distance() {
        let g = GridDim::RAW_PROTOTYPE;
        assert_eq!(g.manhattan(TileId(0), TileId(15)), 6);
        assert_eq!(g.manhattan(TileId(5), TileId(6)), 1);
        assert_eq!(g.manhattan(TileId(5), TileId(10)), 2);
    }

    #[test]
    fn non_square_grids() {
        let g = GridDim::new(2, 8);
        assert_eq!(g.tiles(), 16);
        assert_eq!(g.neighbor(g.tile(0, 7), Dir::South), Some(g.tile(1, 7)));
        assert!(g.is_edge(g.tile(1, 0), Dir::South));
    }
}
