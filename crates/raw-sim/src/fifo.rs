//! Timestamped flow-controlled FIFOs, the basic transport element of every
//! on-chip network queue in the simulator.
//!
//! Each entry carries the cycle at which it was enqueued. A consumer may
//! only observe entries that are at least one cycle old (`visible_delay`
//! hops of pipeline), which is what limits words to one network hop per
//! cycle and gives the static network the 3-cycle send-to-use latency of
//! Figure 3-2 without any global ordering of component updates inside a
//! cycle.

use std::collections::VecDeque;

/// A bounded FIFO of 32-bit words tagged with their enqueue cycle.
#[derive(Clone, Debug)]
pub struct TsFifo {
    entries: VecDeque<(u32, u64)>,
    capacity: usize,
}

impl TsFifo {
    /// A FIFO holding at most `capacity` words. Raw's network input blocks
    /// hold four elements; the simulator default follows that.
    pub fn new(capacity: usize) -> TsFifo {
        assert!(capacity >= 1, "a FIFO must hold at least one word");
        TsFifo {
            entries: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Space for another word right now.
    #[inline]
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Enqueue `word` during `cycle`. Returns `false` (and drops nothing)
    /// if the FIFO is full — callers model backpressure by retrying on a
    /// later cycle.
    #[inline]
    #[must_use]
    pub fn push(&mut self, word: u32, cycle: u64) -> bool {
        if self.has_space() {
            self.entries.push_back((word, cycle));
            true
        } else {
            false
        }
    }

    /// The front word, if one was enqueued at least `delay + 1` cycles
    /// before `cycle` (i.e. is visible to a consumer with `delay` extra
    /// pipeline stages; network switches use `delay == 0`, the tile
    /// processor's decode stage adds `delay == 1`).
    #[inline]
    pub fn peek_visible(&self, cycle: u64, delay: u64) -> Option<u32> {
        match self.entries.front() {
            Some(&(w, ts)) if ts + delay < cycle => Some(w),
            _ => None,
        }
    }

    /// True if [`TsFifo::peek_visible`] would return a word.
    #[inline]
    pub fn has_visible(&self, cycle: u64, delay: u64) -> bool {
        self.peek_visible(cycle, delay).is_some()
    }

    /// Enqueue cycle of the front word, if any. The front word first
    /// becomes visible to a consumer with `delay` extra pipeline stages on
    /// cycle `front_ts() + delay + 1`; the machine's event-skip fast-forward
    /// uses this to find the next cycle on which anything can change.
    #[inline]
    pub fn front_ts(&self) -> Option<u64> {
        self.entries.front().map(|&(_, ts)| ts)
    }

    /// Dequeue the front word if visible.
    #[inline]
    pub fn pop_visible(&mut self, cycle: u64, delay: u64) -> Option<u32> {
        if self.has_visible(cycle, delay) {
            self.entries.pop_front().map(|(w, _)| w)
        } else {
            None
        }
    }

    /// Remove every queued word (used when resetting a machine).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Iterate over queued words front-to-back (diagnostics only).
    pub fn iter_words(&self) -> impl Iterator<Item = u32> + '_ {
        self.entries.iter().map(|&(w, _)| w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_capacity() {
        let mut f = TsFifo::new(2);
        assert!(f.push(1, 0));
        assert!(f.push(2, 0));
        assert!(!f.push(3, 0));
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn same_cycle_entries_are_invisible() {
        let mut f = TsFifo::new(4);
        assert!(f.push(42, 5));
        // A switch (delay 0) cannot consume a word the same cycle it arrived.
        assert_eq!(f.peek_visible(5, 0), None);
        assert_eq!(f.peek_visible(6, 0), Some(42));
        // The processor decode stage (delay 1) sees it one cycle later still.
        assert_eq!(f.peek_visible(6, 1), None);
        assert_eq!(f.peek_visible(7, 1), Some(42));
    }

    #[test]
    fn pop_preserves_order() {
        let mut f = TsFifo::new(4);
        for (i, w) in [10u32, 11, 12].iter().enumerate() {
            assert!(f.push(*w, i as u64));
        }
        assert_eq!(f.pop_visible(100, 0), Some(10));
        assert_eq!(f.pop_visible(100, 0), Some(11));
        assert_eq!(f.pop_visible(100, 0), Some(12));
        assert_eq!(f.pop_visible(100, 0), None);
    }

    #[test]
    fn pop_respects_visibility() {
        let mut f = TsFifo::new(4);
        assert!(f.push(7, 10));
        assert_eq!(f.pop_visible(10, 0), None);
        assert_eq!(f.len(), 1, "an invisible word must not be consumed");
        assert_eq!(f.pop_visible(11, 0), Some(7));
    }

    #[test]
    fn clear_empties() {
        let mut f = TsFifo::new(4);
        assert!(f.push(1, 0));
        f.clear();
        assert!(f.is_empty());
        assert!(f.has_space());
    }
}
