use raw_sim::*;

fn main() {
    let mut m = RawMachine::new(RawConfig::default());
    // Tile 5: one instruction with two routes: W->E and S->N, looped.
    m.set_switch_program(
        TileId(5),
        NET0,
        SwitchProgram::new(vec![SwitchInstr::new(
            vec![
                Route::new(NET0, SwPort::W, SwPort::E),
                Route::new(NET0, SwPort::S, SwPort::N),
            ],
            SwitchCtrl::Jump(0),
        )]),
    );
    // Feed both inputs from neighbors: tile 4 routes W-edge->E, tile 9 routes S-edge... tile 9 is south of 5; feed from tile 9's own west edge? Use tile 4 (west) and tile 9->north.
    m.set_switch_program(
        TileId(4),
        NET0,
        SwitchProgram::new(vec![SwitchInstr::new(
            vec![Route::new(NET0, SwPort::W, SwPort::E)],
            SwitchCtrl::Jump(0),
        )]),
    );
    m.set_switch_program(
        TileId(9),
        NET0,
        SwitchProgram::new(vec![SwitchInstr::new(
            vec![Route::new(NET0, SwPort::W, SwPort::N)],
            SwitchCtrl::Jump(0),
        )]),
    );
    m.bind_device(
        EdgePort::new(TileId(4), Dir::West, NET0),
        Box::new(WordSource::new(0..200u32)),
    );
    m.bind_device(
        EdgePort::new(TileId(8), Dir::West, NET0),
        Box::new(WordSource::new(1000..1200u32)),
    );
    m.set_switch_program(
        TileId(8),
        NET0,
        SwitchProgram::new(vec![SwitchInstr::new(
            vec![Route::new(NET0, SwPort::W, SwPort::E)],
            SwitchCtrl::Jump(0),
        )]),
    );
    // tile 8 routes west-edge east to tile 9; tile 9 routes W->N into tile 5 south port.
    // Sinks: tile 6 W->E to edge 7; tile 1 S->N to edge.
    m.set_switch_program(
        TileId(6),
        NET0,
        SwitchProgram::new(vec![SwitchInstr::new(
            vec![Route::new(NET0, SwPort::W, SwPort::E)],
            SwitchCtrl::Jump(0),
        )]),
    );
    m.set_switch_program(
        TileId(7),
        NET0,
        SwitchProgram::new(vec![SwitchInstr::new(
            vec![Route::new(NET0, SwPort::W, SwPort::E)],
            SwitchCtrl::Jump(0),
        )]),
    );
    let (s1, h1) = WordSink::new();
    m.bind_device(EdgePort::new(TileId(7), Dir::East, NET0), Box::new(s1));
    m.set_switch_program(
        TileId(1),
        NET0,
        SwitchProgram::new(vec![SwitchInstr::new(
            vec![Route::new(NET0, SwPort::S, SwPort::N)],
            SwitchCtrl::Jump(0),
        )]),
    );
    let (s2, h2) = WordSink::new();
    m.bind_device(EdgePort::new(TileId(1), Dir::North, NET0), Box::new(s2));
    m.run(400);
    let a = h1.lock().unwrap();
    let b = h2.lock().unwrap();
    println!("sink1 got {} words, sink2 got {}", a.len(), b.len());
    let rate = |v: &Vec<(u64, u32)>| {
        if v.len() > 10 {
            (v[v.len() - 1].0 - v[10].0) as f64 / (v.len() - 11) as f64
        } else {
            0.0
        }
    };
    println!(
        "steady rates: {:.2} and {:.2} cycles/word",
        rate(&a),
        rate(&b)
    );
}
