//! Machine-level telemetry tests: refined stall attribution, the
//! conservation invariant, token-wait hinting, and bit-identical
//! crediting between the event-skip and per-cycle engines.

use raw_sim::*;
use raw_telemetry::{shared, with_sink, Recorder, SwitchStallCause, TileState};

/// Sends `n` words into `$csto`, then idles.
struct Sender {
    left: usize,
}

impl TileProgram for Sender {
    fn tick(&mut self, io: &mut TileIo<'_>) {
        if self.left > 0 && io.send_static(7) {
            self.left -= 1;
        }
    }
}

/// Blocks on a static receive forever.
struct Starved;

impl TileProgram for Starved {
    fn tick(&mut self, io: &mut TileIo<'_>) {
        let _ = io.recv_static(NET0);
    }
}

/// Spins on the token-wait hint: the telemetry-refined version of idle.
struct TokenWaiter;

impl TileProgram for TokenWaiter {
    fn tick(&mut self, io: &mut TileIo<'_>) {
        io.hint_token_wait();
        io.idle();
    }
}

fn attach_recorder(m: &mut RawMachine) -> raw_telemetry::SharedSink {
    let sink = shared(Recorder::new(m.dim().tiles(), NUM_STATIC_NETS));
    m.set_telemetry(sink.clone());
    sink
}

#[test]
fn conservation_holds_on_every_tile() {
    let mut m = RawMachine::new(RawConfig::default());
    m.set_program(TileId(0), Box::new(Sender { left: 10 }));
    m.set_program(TileId(5), Box::new(Starved));
    m.set_program(TileId(9), Box::new(TokenWaiter));
    let sink = attach_recorder(&mut m);
    m.run(500);
    with_sink::<Recorder, _>(&sink, |r| {
        for t in 0..16 {
            assert_eq!(r.tile_total(t), 500, "tile {t} leaked cycles");
        }
        assert!(r.conservation_violations(500).is_empty());
    });
}

#[test]
fn stall_states_are_refined() {
    let mut m = RawMachine::new(RawConfig::default());
    // No switch program consumes tile 0's csto (capacity 4): 4 busy
    // sends, then blocked on the full FIFO.
    m.set_program(TileId(0), Box::new(Sender { left: 100 }));
    m.set_program(TileId(5), Box::new(Starved));
    m.set_program(TileId(9), Box::new(TokenWaiter));
    let sink = attach_recorder(&mut m);
    m.run(200);
    with_sink::<Recorder, _>(&sink, |r| {
        let c0 = r.tile_state_counts(0);
        assert_eq!(c0[TileState::Busy.index()], 4);
        assert_eq!(c0[TileState::FifoFull.index()], 196);
        let c5 = r.tile_state_counts(5);
        assert_eq!(c5[TileState::FifoEmpty.index()], 200);
        let c9 = r.tile_state_counts(9);
        assert_eq!(c9[TileState::TokenWait.index()], 200);
        assert_eq!(c9[TileState::Idle.index()], 0);
        // An unprogrammed tile is pure idle.
        let c3 = r.tile_state_counts(3);
        assert_eq!(c3[TileState::Idle.index()], 200);
    });
}

fn switch_stall_machine(engine: EngineMode) -> (RawMachine, raw_telemetry::SharedSink) {
    let cfg = RawConfig {
        engine,
        ..RawConfig::default()
    };
    let mut m = RawMachine::new(cfg);
    // Tile 0's switch forwards Proc -> S forever; the sender feeds it 3
    // words then stops, so the switch starves (fifo-empty) for the rest
    // of the run. Tile 4 (south neighbor) never routes the words onward,
    // so its link FIFO eventually backs tile 0 up too — but with only 3
    // words (capacity 4) the dominant cause stays fifo-empty.
    m.set_program(TileId(0), Box::new(Sender { left: 3 }));
    m.set_switch_program(
        TileId(0),
        0,
        SwitchProgram::new(vec![SwitchInstr::new(
            vec![Route::new(NET0, SwPort::Proc, SwPort::S)],
            SwitchCtrl::Jump(0),
        )]),
    );
    let sink = attach_recorder(&mut m);
    (m, sink)
}

#[test]
fn switch_stalls_attributed_to_fifo_empty() {
    let (mut m, sink) = switch_stall_machine(EngineMode::PerCycle);
    m.run(300);
    let stalls = m.switch_stall_cycles(TileId(0));
    with_sink::<Recorder, _>(&sink, |r| {
        let c = r.switch_stall_counts(0, 0);
        assert!(c[SwitchStallCause::FifoEmpty.index()] > 0);
        // Every stalled switch cycle the machine counted is attributed.
        assert_eq!(c.iter().sum::<u64>(), stalls);
    });
}

#[test]
fn every_engine_credits_telemetry_identically() {
    let collect = |engine: EngineMode| -> (Vec<[u64; TileState::COUNT]>, Vec<[u64; 3]>, u64) {
        let (mut m, sink) = switch_stall_machine(engine);
        if engine == EngineMode::Compiled {
            m.compile_reference_plan();
        }
        m.run(400);
        let cycle = m.cycle();
        with_sink::<Recorder, _>(&sink, |r| {
            (
                (0..16).map(|t| r.tile_state_counts(t)).collect(),
                (0..16).map(|t| r.switch_stall_counts(t, 0)).collect(),
                cycle,
            )
        })
    };
    let reference = collect(EngineMode::PerCycle);
    assert_eq!(collect(EngineMode::EventSkip), reference);
    assert_eq!(collect(EngineMode::Compiled), reference);
}

#[test]
fn attaching_a_sink_never_changes_results() {
    let run = |with_telemetry: bool| -> (u64, Vec<[u64; 5]>) {
        let (mut m, sink) = switch_stall_machine(EngineMode::EventSkip);
        if !with_telemetry {
            m.take_telemetry();
            drop(sink);
        }
        m.run(400);
        (
            m.switch_stall_cycles(TileId(0)),
            (0..16).map(|t| m.stats(TileId(t)).counts).collect(),
        )
    };
    assert_eq!(run(true), run(false));
}
