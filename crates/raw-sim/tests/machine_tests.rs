//! End-to-end machine tests: network timing (Figure 3-2), streaming
//! bandwidth, flow control, multicast, switch PC loading, and deadlock
//! detection.

use raw_sim::*;

/// A program that sends a fixed list of words, one per cycle, then idles,
/// recording the cycle each send retired.
struct Sender {
    words: Vec<u32>,
    next: usize,
    pub sent_at: Vec<u64>,
}

impl Sender {
    fn new(words: Vec<u32>) -> Sender {
        Sender {
            words,
            next: 0,
            sent_at: Vec::new(),
        }
    }
}

impl TileProgram for Sender {
    fn tick(&mut self, io: &mut TileIo<'_>) {
        if self.next < self.words.len() && io.send_static(self.words[self.next]) {
            self.sent_at.push(io.cycle);
            self.next += 1;
        }
    }
    fn label(&self) -> &str {
        "sender"
    }
}

/// A program that receives `n` words from static net 0, recording cycles.
struct Receiver {
    want: usize,
    pub got: Vec<(u64, u32)>,
}

impl Receiver {
    fn new(want: usize) -> Receiver {
        Receiver {
            want,
            got: Vec::new(),
        }
    }
}

impl TileProgram for Receiver {
    fn tick(&mut self, io: &mut TileIo<'_>) {
        if self.got.len() < self.want {
            if let Some(w) = io.recv_static(NET0) {
                self.got.push((io.cycle, w));
            }
        }
    }
    fn label(&self) -> &str {
        "receiver"
    }
}

/// Shared handles so tests can read results back out of boxed programs.
use std::sync::{Arc, Mutex};

struct SharedRecv {
    want: usize,
    got: Arc<Mutex<Vec<(u64, u32)>>>,
}

impl TileProgram for SharedRecv {
    fn tick(&mut self, io: &mut TileIo<'_>) {
        let mut g = self.got.lock().unwrap();
        if g.len() < self.want {
            if let Some(w) = io.recv_static(NET0) {
                g.push((io.cycle, w));
            }
        }
    }
}

struct SharedSender {
    words: Vec<u32>,
    next: usize,
    sent_at: Arc<Mutex<Vec<u64>>>,
}

impl TileProgram for SharedSender {
    fn tick(&mut self, io: &mut TileIo<'_>) {
        if self.next < self.words.len() && io.send_static(self.words[self.next]) {
            self.sent_at.lock().unwrap().push(io.cycle);
            self.next += 1;
        }
    }
}

fn route(net: NetId, src: SwPort, dst: SwPort) -> SwitchInstr {
    SwitchInstr::new(vec![Route::new(net, src, dst)], SwitchCtrl::Jump(0))
}

/// Figure 3-2: tile 0 sends to tile 4 (south). The send executes on cycle
/// k, the receive-and-use on cycle k+4 — five cycles total, three of them
/// network (send-to-use) latency.
#[test]
fn figure_3_2_five_cycle_send() {
    let mut m = RawMachine::new(RawConfig::default());
    let sent_at = Arc::new(Mutex::new(Vec::new()));
    let got = Arc::new(Mutex::new(Vec::new()));
    m.set_program(
        TileId(0),
        Box::new(SharedSender {
            words: vec![0xBEEF],
            next: 0,
            sent_at: Arc::clone(&sent_at),
        }),
    );
    m.set_program(
        TileId(4),
        Box::new(SharedRecv {
            want: 1,
            got: Arc::clone(&got),
        }),
    );
    m.set_switch_program(
        TileId(0),
        NET0,
        SwitchProgram::new(vec![route(NET0, SwPort::Proc, SwPort::S)]),
    );
    m.set_switch_program(
        TileId(4),
        NET0,
        SwitchProgram::new(vec![route(NET0, SwPort::N, SwPort::Proc)]),
    );
    m.run(20);
    let sent = sent_at.lock().unwrap()[0];
    let (recv, word) = got.lock().unwrap()[0];
    assert_eq!(word, 0xBEEF);
    assert_eq!(
        recv - sent,
        4,
        "or at cycle k, and at cycle k+4: 5 cycles inclusive (Figure 3-2)"
    );
}

/// Steady-state streaming moves one word per cycle per link.
#[test]
fn streaming_is_one_word_per_cycle() {
    let mut m = RawMachine::new(RawConfig::default());
    let n = 64usize;
    let sent_at = Arc::new(Mutex::new(Vec::new()));
    let got = Arc::new(Mutex::new(Vec::new()));
    m.set_program(
        TileId(0),
        Box::new(SharedSender {
            words: (0..n as u32).collect(),
            next: 0,
            sent_at: Arc::clone(&sent_at),
        }),
    );
    m.set_program(
        TileId(4),
        Box::new(SharedRecv {
            want: n,
            got: Arc::clone(&got),
        }),
    );
    m.set_switch_program(
        TileId(0),
        NET0,
        SwitchProgram::new(vec![route(NET0, SwPort::Proc, SwPort::S)]),
    );
    m.set_switch_program(
        TileId(4),
        NET0,
        SwitchProgram::new(vec![route(NET0, SwPort::N, SwPort::Proc)]),
    );
    m.run(200);
    let got = got.lock().unwrap();
    assert_eq!(got.len(), n);
    // In-order delivery.
    for (i, (_, w)) in got.iter().enumerate() {
        assert_eq!(*w, i as u32);
    }
    // Steady state: consecutive receives one cycle apart.
    let cycles: Vec<u64> = got.iter().map(|(c, _)| *c).collect();
    for pair in cycles.windows(2) {
        assert_eq!(pair[1] - pair[0], 1, "streaming must sustain 1 word/cycle");
    }
}

/// Multi-hop path across the crossbar ring tiles: 4 -> 5 -> 6 -> 2.
#[test]
fn multi_hop_route_delivers_in_order() {
    let mut m = RawMachine::new(RawConfig::default());
    let sent_at = Arc::new(Mutex::new(Vec::new()));
    let got = Arc::new(Mutex::new(Vec::new()));
    m.set_program(
        TileId(4),
        Box::new(SharedSender {
            words: vec![10, 11, 12],
            next: 0,
            sent_at: Arc::clone(&sent_at),
        }),
    );
    m.set_program(
        TileId(2),
        Box::new(SharedRecv {
            want: 3,
            got: Arc::clone(&got),
        }),
    );
    m.set_switch_program(
        TileId(4),
        NET0,
        SwitchProgram::new(vec![route(NET0, SwPort::Proc, SwPort::E)]),
    );
    m.set_switch_program(
        TileId(5),
        NET0,
        SwitchProgram::new(vec![route(NET0, SwPort::W, SwPort::E)]),
    );
    m.set_switch_program(
        TileId(6),
        NET0,
        SwitchProgram::new(vec![route(NET0, SwPort::W, SwPort::N)]),
    );
    m.set_switch_program(
        TileId(2),
        NET0,
        SwitchProgram::new(vec![route(NET0, SwPort::S, SwPort::Proc)]),
    );
    m.run(50);
    let got = got.lock().unwrap();
    assert_eq!(
        got.iter().map(|&(_, w)| w).collect::<Vec<_>>(),
        vec![10, 11, 12]
    );
}

/// Edge-to-edge streaming through devices: line card in (west of tile 4),
/// through the tile-4 switch, line card out. The tile processor is not
/// involved: the switch routes W->E autonomously.
#[test]
fn device_to_device_through_switches() {
    let mut m = RawMachine::new(RawConfig::default());
    let in_port = EdgePort::new(TileId(4), Dir::West, NET0);
    let out_port = EdgePort::new(TileId(7), Dir::East, NET0);
    m.bind_device(in_port, Box::new(WordSource::new(0..32u32)));
    let (sink, handle) = WordSink::new();
    m.bind_device(out_port, Box::new(sink));
    for t in [4u16, 5, 6, 7] {
        m.set_switch_program(
            TileId(t),
            NET0,
            SwitchProgram::new(vec![route(NET0, SwPort::W, SwPort::E)]),
        );
    }
    m.run(100);
    let got = handle.lock().unwrap();
    assert_eq!(got.len(), 32);
    assert_eq!(
        got.iter().map(|&(_, w)| w).collect::<Vec<_>>(),
        (0..32u32).collect::<Vec<_>>()
    );
    // Steady-state rate is one word per cycle.
    let mid = &got[8..24];
    for pair in mid.windows(2) {
        assert_eq!(pair[1].0 - pair[0].0, 1);
    }
}

/// A rate-limited sink backpressures the whole path without losing words.
#[test]
fn backpressure_propagates_without_loss() {
    let mut m = RawMachine::new(RawConfig::default());
    // Words enter tile 4 from the west on net0, bounce through the tile-4
    // processor, and leave west again on net1 (both west links of tile 4
    // are chip edges) into a rate-limited sink.
    let in_port = EdgePort::new(TileId(4), Dir::West, NET0);
    let out_port = EdgePort::new(TileId(4), Dir::West, NET1);
    m.bind_device(in_port, Box::new(WordSource::new(0..24u32)));
    let (sink, handle) = WordSink::rate_limited(5);
    m.bind_device(out_port, Box::new(sink));
    struct Forward;
    impl TileProgram for Forward {
        fn tick(&mut self, io: &mut TileIo<'_>) {
            let _ = io.recv_send(NET0);
        }
    }
    m.set_program(TileId(4), Box::new(Forward));
    m.set_switch_program(
        TileId(4),
        NET0,
        SwitchProgram::new(vec![route(NET0, SwPort::W, SwPort::Proc)]),
    );
    m.set_switch_program(
        TileId(4),
        NET1,
        SwitchProgram::new(vec![route(NET1, SwPort::Proc, SwPort::W)]),
    );
    m.run(400);
    let got = handle.lock().unwrap();
    assert_eq!(got.len(), 24, "no words may be lost under backpressure");
    // Delivery honors the 1-in-5-cycles limit.
    for pair in got.windows(2) {
        assert!(pair[1].0 - pair[0].0 >= 5);
    }
    // In order.
    for (i, &(_, w)) in got.iter().enumerate() {
        assert_eq!(w, i as u32);
    }
}

/// Multicast: one source word duplicated to two destinations by a single
/// switch instruction (the §8.6 mechanism).
#[test]
fn switch_multicast_duplicates_words() {
    let mut m = RawMachine::new(RawConfig::default());
    let sent_at = Arc::new(Mutex::new(Vec::new()));
    m.set_program(
        TileId(5),
        Box::new(SharedSender {
            words: vec![71, 72],
            next: 0,
            sent_at,
        }),
    );
    let got_a = Arc::new(Mutex::new(Vec::new()));
    let got_b = Arc::new(Mutex::new(Vec::new()));
    m.set_program(
        TileId(1),
        Box::new(SharedRecv {
            want: 2,
            got: Arc::clone(&got_a),
        }),
    );
    m.set_program(
        TileId(6),
        Box::new(SharedRecv {
            want: 2,
            got: Arc::clone(&got_b),
        }),
    );
    m.set_switch_program(
        TileId(5),
        NET0,
        SwitchProgram::new(vec![SwitchInstr::new(
            vec![
                Route::new(NET0, SwPort::Proc, SwPort::N),
                Route::new(NET0, SwPort::Proc, SwPort::E),
            ],
            SwitchCtrl::Jump(0),
        )]),
    );
    m.set_switch_program(
        TileId(1),
        NET0,
        SwitchProgram::new(vec![route(NET0, SwPort::S, SwPort::Proc)]),
    );
    m.set_switch_program(
        TileId(6),
        NET0,
        SwitchProgram::new(vec![route(NET0, SwPort::W, SwPort::Proc)]),
    );
    m.run(30);
    assert_eq!(
        got_a
            .lock()
            .unwrap()
            .iter()
            .map(|&(_, w)| w)
            .collect::<Vec<_>>(),
        vec![71, 72]
    );
    assert_eq!(
        got_b
            .lock()
            .unwrap()
            .iter()
            .map(|&(_, w)| w)
            .collect::<Vec<_>>(),
        vec![71, 72]
    );
}

/// The tile processor can steer its switch through `WaitPc`, the jump-table
/// mechanism of §6.5.
#[test]
fn processor_loads_switch_pc() {
    let mut m = RawMachine::new(RawConfig::default());
    // Switch program: [0] wait, [1] route one word W->Proc then wait again,
    // [3] route one word N->Proc then wait.
    let prog = SwitchProgram::new(vec![
        SwitchInstr::wait_pc(),
        SwitchInstr::new(
            vec![Route::new(NET0, SwPort::W, SwPort::Proc)],
            SwitchCtrl::Next,
        ),
        SwitchInstr::wait_pc(),
        SwitchInstr::new(
            vec![Route::new(NET0, SwPort::N, SwPort::Proc)],
            SwitchCtrl::Next,
        ),
        SwitchInstr::wait_pc(),
    ]);
    m.set_switch_program(TileId(5), NET0, prog);
    // Feed words toward tile 5 from west (tile 4) and north (tile 1).
    m.set_switch_program(
        TileId(4),
        NET0,
        SwitchProgram::new(vec![route(NET0, SwPort::W, SwPort::E)]),
    );
    m.set_switch_program(
        TileId(1),
        NET0,
        SwitchProgram::new(vec![route(NET0, SwPort::N, SwPort::S)]),
    );
    m.bind_device(
        EdgePort::new(TileId(4), Dir::West, NET0),
        Box::new(WordSource::new([111u32])),
    );
    m.bind_device(
        EdgePort::new(TileId(1), Dir::North, NET0),
        Box::new(WordSource::new([222u32])),
    );

    // The program: pick west first, then north, by steering the switch.
    struct Steer {
        state: u8,
        got: Arc<Mutex<Vec<u32>>>,
    }
    impl TileProgram for Steer {
        fn tick(&mut self, io: &mut TileIo<'_>) {
            match self.state {
                0 => {
                    io.set_switch_pc(NET0, 1);
                    self.state = 1;
                }
                1 => {
                    if let Some(w) = io.recv_static(NET0) {
                        self.got.lock().unwrap().push(w);
                        self.state = 2;
                    }
                }
                2 => {
                    if io.switch_halted(NET0) {
                        io.set_switch_pc(NET0, 3);
                        self.state = 3;
                    } else {
                        io.idle();
                    }
                }
                3 => {
                    if let Some(w) = io.recv_static(NET0) {
                        self.got.lock().unwrap().push(w);
                        self.state = 4;
                    }
                }
                _ => {}
            }
        }
    }
    let got = Arc::new(Mutex::new(Vec::new()));
    m.set_program(
        TileId(5),
        Box::new(Steer {
            state: 0,
            got: Arc::clone(&got),
        }),
    );
    m.run(60);
    assert_eq!(*got.lock().unwrap(), vec![111, 222]);
}

/// A switch instruction's routes all complete before it advances: with a
/// never-ready sink, the instruction stalls and upstream fills up.
#[test]
fn blocked_path_is_detected_as_deadlock_like() {
    struct NeverReady;
    impl EdgeDevice for NeverReady {
        fn can_push(&self, _c: u64) -> bool {
            false
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    struct Flood;
    impl TileProgram for Flood {
        fn tick(&mut self, io: &mut TileIo<'_>) {
            let _ = io.send_static(1);
        }
    }

    let mut m = RawMachine::new(RawConfig::default());
    m.set_program(TileId(0), Box::new(Flood));
    m.set_switch_program(
        TileId(0),
        NET0,
        SwitchProgram::new(vec![route(NET0, SwPort::Proc, SwPort::N)]),
    );
    m.bind_device(
        EdgePort::new(TileId(0), Dir::North, NET0),
        Box::new(NeverReady),
    );
    let report = m.run_until_quiescent(16, 10_000);
    assert!(
        report.quiescent,
        "the machine must go quiet once FIFOs fill"
    );
    assert!(report.is_deadlock(), "a blocked sender must be reported");
    assert!(report.blocked_tiles.contains(&TileId(0)));
}

/// Unbound edge ports drop (and count) words rather than wedging the chip.
#[test]
fn unbound_edge_drops_words() {
    struct Flood;
    impl TileProgram for Flood {
        fn tick(&mut self, io: &mut TileIo<'_>) {
            let _ = io.send_static(9);
        }
    }
    let mut m = RawMachine::new(RawConfig::default());
    m.set_program(TileId(0), Box::new(Flood));
    m.set_switch_program(
        TileId(0),
        NET0,
        SwitchProgram::new(vec![route(NET0, SwPort::Proc, SwPort::N)]),
    );
    m.run(50);
    assert!(m.edge_drops > 30);
}

/// Utilization statistics classify cycles the way Figure 7-3 does.
#[test]
fn stats_classify_blocked_and_busy() {
    let mut m = RawMachine::new(RawConfig::default());
    struct RecvForever;
    impl TileProgram for RecvForever {
        fn tick(&mut self, io: &mut TileIo<'_>) {
            let _ = io.recv_static(NET0);
        }
    }
    m.set_program(TileId(3), Box::new(RecvForever));
    m.run(40);
    let s = m.stats(TileId(3));
    assert_eq!(s.blocked(), 40, "a receiver with no data is always blocked");
    assert_eq!(m.stats(TileId(2)).counts[Activity::Idle.index()], 40);
}

/// The trace window captures a dense per-tile record.
#[test]
fn trace_window_records() {
    let mut m = RawMachine::new(RawConfig::default());
    m.start_trace(5, 10);
    m.run(20);
    let tr = m.take_trace().unwrap();
    assert!(tr.is_complete());
    assert_eq!(tr.tile_samples(0).len(), 10);
}

/// Cache misses stall the processor for the configured latency and show up
/// as CacheStall cycles.
#[test]
fn cache_miss_stalls_processor() {
    let mut m = RawMachine::new(RawConfig {
        miss_model: MissModel::Fixed(10),
        ..RawConfig::default()
    });
    struct Loader {
        done: Arc<Mutex<Vec<u64>>>,
    }
    impl TileProgram for Loader {
        fn tick(&mut self, io: &mut TileIo<'_>) {
            let mut d = self.done.lock().unwrap();
            if d.len() < 2 && io.load(0).is_some() {
                d.push(io.cycle);
            }
        }
    }
    let done = Arc::new(Mutex::new(Vec::new()));
    m.set_program(
        TileId(0),
        Box::new(Loader {
            done: Arc::clone(&done),
        }),
    );
    m.run(40);
    let d = done.lock().unwrap();
    assert_eq!(d.len(), 2);
    // First load misses: issued at cycle 0, stalls 10, completes at 10.
    assert_eq!(d[0], 10);
    // Second load hits immediately on the next cycle.
    assert_eq!(d[1], 11);
    let s = m.stats(TileId(0));
    // Miss issued at cycle 0 (CacheStall), stalled through cycle 9, so 10
    // CacheStall cycles; the retry at cycle 10 hits and retires.
    assert_eq!(s.counts[Activity::CacheStall.index()], 10);
}

// Keep the unused non-shared Sender/Receiver types exercised so the file
// stays warning-free if tests above migrate to the shared variants.
#[test]
fn plain_sender_receiver_compile_and_run() {
    let mut m = RawMachine::new(RawConfig::default());
    m.set_program(TileId(0), Box::new(Sender::new(vec![1])));
    m.set_program(TileId(4), Box::new(Receiver::new(1)));
    m.set_switch_program(
        TileId(0),
        NET0,
        SwitchProgram::new(vec![route(NET0, SwPort::Proc, SwPort::S)]),
    );
    m.set_switch_program(
        TileId(4),
        NET0,
        SwitchProgram::new(vec![route(NET0, SwPort::N, SwPort::Proc)]),
    );
    m.run(10);
    assert!(m.stats(TileId(0)).busy() >= 1);
}

/// The distance-based miss model charges longer stalls to tiles farther
/// from the chip's east/west DRAM ports.
#[test]
fn distance_miss_model_penalizes_central_tiles() {
    let measure = |tile: TileId| -> u64 {
        let mut m = RawMachine::new(RawConfig {
            miss_model: MissModel::DistanceToEdge {
                base: 20,
                per_hop: 4,
            },
            ..RawConfig::default()
        });
        struct OneLoad {
            done: Arc<Mutex<Option<u64>>>,
        }
        impl TileProgram for OneLoad {
            fn tick(&mut self, io: &mut TileIo<'_>) {
                let mut d = self.done.lock().unwrap();
                if d.is_none() && io.load(0).is_some() {
                    *d = Some(io.cycle);
                }
            }
        }
        let done = Arc::new(Mutex::new(None));
        m.set_program(
            tile,
            Box::new(OneLoad {
                done: Arc::clone(&done),
            }),
        );
        m.run(200);
        let result = *done.lock().unwrap();
        result.expect("load completed")
    };
    // Column 0 touches the west DRAM port directly; column 1 is one hop in.
    let edge = measure(TileId(4)); // column 0
    let inner = measure(TileId(5)); // column 1
    assert_eq!(edge, 20, "edge column: base latency only");
    assert_eq!(inner, 20 + 2 * 4, "one hop each way adds 2*per_hop");
}

/// `run_until` predicates observe the machine after each cycle.
#[test]
fn run_until_stops_at_predicate() {
    let mut m = RawMachine::new(RawConfig::default());
    struct Count;
    impl TileProgram for Count {
        fn tick(&mut self, io: &mut TileIo<'_>) {
            io.compute();
        }
    }
    m.set_program(TileId(0), Box::new(Count));
    let hit = m.run_until(1000, |m| m.stats(TileId(0)).busy() >= 10);
    assert!(hit);
    assert_eq!(m.cycle(), 10);
}

/// The simulator scales beyond the 4x4 prototype ("fabrics of up to
/// 1,024 tiles", §3.1): stream across an 8x8 grid at one word per cycle.
#[test]
fn larger_grids_stream_at_line_rate() {
    let dim = GridDim::new(8, 8);
    let mut m = RawMachine::new(RawConfig {
        dim,
        local_mem_words: 1 << 12, // keep 64 tiles cheap
        ..RawConfig::default()
    });
    // A straight west-east path along row 3.
    for c in 0..8 {
        m.set_switch_program(
            dim.tile(3, c),
            NET0,
            SwitchProgram::new(vec![route(NET0, SwPort::W, SwPort::E)]),
        );
    }
    m.bind_device(
        EdgePort::new(dim.tile(3, 0), Dir::West, NET0),
        Box::new(WordSource::new(0..64u32)),
    );
    let (sink, handle) = WordSink::new();
    m.bind_device(
        EdgePort::new(dim.tile(3, 7), Dir::East, NET0),
        Box::new(sink),
    );
    m.run(200);
    let got = handle.lock().unwrap();
    assert_eq!(got.len(), 64);
    let mid = &got[16..48];
    for pair in mid.windows(2) {
        assert_eq!(pair[1].0 - pair[0].0, 1, "line rate across 8 hops");
    }
}

/// Fault injection: a scheduled stall window freezes the tile processor
/// for exactly its span, the frozen cycles are accounted as cache stalls,
/// and both engine modes agree bit-for-bit on the outcome.
#[test]
fn scheduled_stall_windows_delay_without_divergence() {
    let run = |engine: EngineMode| -> (Vec<u64>, [u64; 5], u64) {
        let mut m = RawMachine::new(RawConfig {
            engine,
            ..RawConfig::default()
        });
        let sent_at = Arc::new(Mutex::new(Vec::new()));
        m.set_program(
            TileId(0),
            Box::new(SharedSender {
                words: (0..8).collect(),
                next: 0,
                sent_at: Arc::clone(&sent_at),
            }),
        );
        m.set_switch_program(
            TileId(0),
            NET0,
            SwitchProgram::new(vec![route(NET0, SwPort::Proc, SwPort::E)]),
        );
        // Words just drain into tile 1's east-less link via tile 1 switch.
        m.set_switch_program(
            TileId(1),
            NET0,
            SwitchProgram::new(vec![route(NET0, SwPort::W, SwPort::Proc)]),
        );
        m.schedule_stall(TileId(0), 3, 40);
        m.schedule_stall(TileId(0), 20, 10); // overlapping: merges
        assert_eq!(m.pending_stall_windows(TileId(0)), 2);
        if engine == EngineMode::Compiled {
            m.compile_reference_plan();
        }
        m.run(200);
        assert_eq!(m.pending_stall_windows(TileId(0)), 0);
        let sends = sent_at.lock().unwrap().clone();
        (sends, m.stats(TileId(0)).counts, m.cycle())
    };
    let (sends, counts, cycle) = run(EngineMode::PerCycle);
    // Sends resume only after the window [3, 43) expires.
    assert!(sends.iter().skip(3).all(|&c| c >= 43), "sends {sends:?}");
    assert_eq!(counts[Activity::CacheStall.index()], 40);
    assert_eq!(run(EngineMode::EventSkip), (sends.clone(), counts, cycle));
    assert_eq!(run(EngineMode::Compiled), (sends, counts, cycle));
}
