//! Property-based tests on the simulator's transport invariants: the
//! static network delivers every word exactly once, in order, regardless
//! of traffic pattern, FIFO sizing, or sink backpressure, and the dynamic
//! network never loses or reorders a message's payload.

use proptest::prelude::*;
use raw_sim::*;

/// Build a straight west-to-east pass-through path along row 1 and push a
/// random word list through it with a randomly rate-limited sink.
fn run_passthrough(words: &[u32], sink_interval: u64, fifo_cap: usize) -> Vec<u32> {
    let cfg = RawConfig {
        link_fifo_capacity: fifo_cap,
        ..RawConfig::default()
    };
    let mut m = RawMachine::new(cfg);
    for t in [4u16, 5, 6, 7] {
        m.set_switch_program(
            TileId(t),
            NET0,
            SwitchProgram::new(vec![SwitchInstr::new(
                vec![Route::new(NET0, SwPort::W, SwPort::E)],
                SwitchCtrl::Jump(0),
            )]),
        );
    }
    m.bind_device(
        EdgePort::new(TileId(4), Dir::West, NET0),
        Box::new(WordSource::new(words.to_vec())),
    );
    let (sink, handle) = WordSink::rate_limited(sink_interval);
    m.bind_device(EdgePort::new(TileId(7), Dir::East, NET0), Box::new(sink));
    let budget = 64 + words.len() as u64 * (sink_interval + 2);
    m.run(budget);
    let got = handle.lock().unwrap();
    got.iter().map(|&(_, w)| w).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Exactly-once, in-order delivery through a 4-switch path under any
    /// backpressure and buffer sizing.
    #[test]
    fn static_path_delivers_exactly_once_in_order(
        words in proptest::collection::vec(any::<u32>(), 0..80),
        sink_interval in 1u64..6,
        fifo_cap in 1usize..6,
    ) {
        let got = run_passthrough(&words, sink_interval, fifo_cap);
        prop_assert_eq!(got, words);
    }

    /// Dynamic-network messages arrive complete and contiguous for random
    /// source/destination pairs.
    #[test]
    fn dynamic_messages_arrive_contiguously(
        src in 0u16..16,
        dst in 0u16..16,
        payload in proptest::collection::vec(any::<u32>(), 0..8),
    ) {
        let dim = GridDim::RAW_PROTOTYPE;
        let mut net = DynNet::new(dim, 4, 32);
        let (dr, dc) = dim.coords(TileId(dst));
        let h = pack_header(dr, dc, payload.len() as u32, 3);
        let mut to_send: std::collections::VecDeque<u32> =
            std::iter::once(h).chain(payload.iter().copied()).collect();
        let mut cycle = 0u64;
        let mut got = Vec::new();
        let deadline = 400u64;
        while got.len() < payload.len() + 1 && cycle < deadline {
            // Inject as fast as the inject FIFO accepts (like a tile
            // processor writing $cdno one word per cycle).
            if let Some(&w) = to_send.front() {
                if net.inject(TileId(src), w, cycle) {
                    to_send.pop_front();
                }
            }
            net.step(cycle);
            cycle += 1;
            while let Some(w) = net.recv(TileId(dst), cycle, 0) {
                got.push(w);
            }
        }
        let mut want = vec![h];
        want.extend_from_slice(&payload);
        prop_assert_eq!(got, want);
    }

    /// FIFO occupancy never exceeds capacity and visibility is monotone.
    #[test]
    fn fifo_never_overflows(
        cap in 1usize..8,
        ops in proptest::collection::vec(any::<bool>(), 0..200),
    ) {
        let mut f = TsFifo::new(cap);
        let mut cycle = 0u64;
        let mut pushed = 0u64;
        let mut popped = 0u64;
        for push in ops {
            cycle += 1;
            if push {
                if f.push(pushed as u32, cycle) {
                    pushed += 1;
                }
            } else if let Some(w) = f.pop_visible(cycle, 0) {
                prop_assert_eq!(w as u64, popped, "FIFO order violated");
                popped += 1;
            }
            prop_assert!(f.len() <= cap);
            prop_assert_eq!(pushed - popped, f.len() as u64);
        }
    }
}
