//! # raw-fabric — a Clos fabric of Rotating Crossbar routers
//!
//! The paper's §8.5 answer to "how does this scale past 4 ports" is not
//! a bigger ring — a ring's bisection is constant while uniform traffic
//! crossing it grows with the port count — but composition: "build a
//! larger router out of multiple of these small 4-port routers". This
//! crate is that composition, in the lineage of Tiny Tera and every
//! multi-stage switch since:
//!
//! * **Topologies** ([`topology`]): a 3-stage 16-port Clos from 12
//!   four-port routers, a folded 8-port leaf-spine from 6, and the
//!   single router as the baseline degenerate case — all built from
//!   *unmodified* [`raw_xbar::RawRouter`] instances, with fabric
//!   forwarding expressed purely through per-router LPM tables over a
//!   `10.<dst>.<middle>.x` address scheme;
//! * **Links** ([`link`]): bounded inter-router FIFOs with per-epoch
//!   drain rates and credit-based backpressure onto the sender's egress
//!   port — links never drop, so fabric-wide
//!   `offered == delivered + dropped` stays exact;
//! * **Spray** ([`SprayMode`]): the middle-stage choice per flow, either
//!   a deterministic hash or least-occupancy at first sight; both are
//!   flow-pinned, preserving intra-flow order across the fabric;
//! * **Deterministic parallelism** ([`RawFabric`]): each router advances
//!   in barrier-synchronized epochs of K cycles on its own worker
//!   thread, with every cross-router transfer applied at the epoch
//!   boundary by a sequential coordinator — so the threaded executor is
//!   bit-identical to the single-threaded reference, asserted by
//!   [`RawFabric::fingerprint`].

pub mod fabric;
pub mod link;
pub mod topology;
pub mod verify;

pub use fabric::{
    FabricConfig, FabricConfigError, FabricError, FabricSummary, RawFabric, SprayMode,
};
pub use link::FabricLink;
pub use topology::{
    dst_ext_port, fabric_addr, plan, stamp_middle, LinkSpec, RouterSpec, Topology, TopologyPlan,
};
pub use verify::{verify_fabric, verify_spec, verify_topology};
