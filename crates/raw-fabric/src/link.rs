//! Inter-router links: bounded FIFOs with per-epoch drain rates and
//! credit-based backpressure.
//!
//! A link models the chip-to-chip channel between two 4-port routers.
//! Packets leave the sender's egress line card into the link queue at
//! the epoch boundary after they complete; each boundary the link drains
//! up to `rate` packets into the receiver's input line card. *Credits*
//! are the free queue slots: when they fall below the sender's worst-case
//! per-epoch emission, the fabric schedules a backpressure stall on the
//! sender's egress port for the next epoch — the same mechanism a
//! congested downstream line card uses ([`raw_xbar::LineCardOut`]
//! `stall_window`) — so the queue bound can never be exceeded and no
//! link ever drops a packet. Loss happens only inside routers, where it
//! is classified; that is what keeps fabric-wide conservation exact.

use std::collections::VecDeque;

use raw_net::Packet;
use raw_telemetry::LinkStats;

use crate::topology::LinkSpec;

#[derive(Debug)]
pub struct FabricLink {
    pub spec: LinkSpec,
    queue: VecDeque<Packet>,
    capacity: usize,
    rate: usize,
    /// Epoch windows `[start, start+len)` in which the drain is frozen
    /// (fault injection).
    stall_windows: Vec<(u64, u64)>,
    /// Packets sprayed toward this link but not yet in its queue (still
    /// inside the sending router) — the least-occupancy signal.
    pub inflight_sprayed: usize,
    pub stats: LinkStats,
}

impl FabricLink {
    pub fn new(index: usize, spec: LinkSpec, capacity: usize, rate: usize) -> FabricLink {
        assert!(rate >= 1, "link must drain at least one packet per epoch");
        assert!(capacity >= rate, "capacity below the drain rate is dead");
        FabricLink {
            spec,
            queue: VecDeque::new(),
            capacity,
            rate,
            stall_windows: Vec::new(),
            inflight_sprayed: 0,
            stats: LinkStats {
                link: index,
                from_router: spec.from.0,
                from_port: spec.from.1,
                to_router: spec.to.0,
                to_port: spec.to.1,
                min_credits: capacity,
                ..LinkStats::default()
            },
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn occupancy(&self) -> usize {
        self.queue.len()
    }

    /// Free slots — the sender's credit count.
    pub fn credits(&self) -> usize {
        self.capacity - self.queue.len()
    }

    /// Freeze the drain for `len` epochs starting at `start_epoch`.
    pub fn stall(&mut self, start_epoch: u64, len: u64) {
        self.stall_windows.push((start_epoch, len));
    }

    pub fn stalled_at(&self, epoch: u64) -> bool {
        self.stall_windows
            .iter()
            .any(|&(s, l)| epoch >= s && epoch < s + l)
    }

    /// Accept a packet that finished crossing the sender (called at the
    /// epoch boundary, in deterministic link order).
    pub fn push(&mut self, p: Packet) {
        self.queue.push_back(p);
        assert!(
            self.queue.len() <= self.capacity,
            "link {} overflowed: backpressure failed to hold the queue bound",
            self.stats.link
        );
        self.stats.packets += 1;
        self.stats.max_occupancy = self.stats.max_occupancy.max(self.queue.len());
    }

    /// Drain up to `min(rate, allowed)` packets for this epoch (zero
    /// while a stall window covers it), front first. `allowed` is the
    /// receiver's remaining input window: a congested receiver shrinks
    /// it, the queue backs up, credits fall, and the sender stalls —
    /// congestion propagates hop by hop instead of hiding in unbounded
    /// receiver-side buffers.
    pub fn drain(&mut self, epoch: u64, allowed: usize) -> Vec<Packet> {
        if self.stalled_at(epoch) {
            self.stats.stalled_epochs += 1;
            return Vec::new();
        }
        let n = self.rate.min(allowed).min(self.queue.len());
        self.queue.drain(..n).collect()
    }

    /// Record the credit low-water mark; returns the credits so the
    /// fabric can decide whether to backpressure the sender.
    pub fn sample_credits(&mut self) -> usize {
        let c = self.credits();
        self.stats.min_credits = self.stats.min_credits.min(c);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(seed: u32) -> Packet {
        Packet::synthetic(0x0a0a_0001, 0x0a01_0001, 64, 64, seed)
    }

    fn link(capacity: usize, rate: usize) -> FabricLink {
        FabricLink::new(
            0,
            LinkSpec {
                from: (0, 1),
                to: (4, 2),
            },
            capacity,
            rate,
        )
    }

    #[test]
    fn drains_at_rate_in_fifo_order() {
        let mut l = link(8, 3);
        for s in 0..5 {
            l.push(pkt(s));
        }
        let first = l.drain(0, usize::MAX);
        assert_eq!(first.len(), 3);
        assert_eq!(first[0], pkt(0));
        assert_eq!(l.occupancy(), 2);
        assert_eq!(l.drain(1, usize::MAX).len(), 2);
        assert!(l.drain(2, usize::MAX).is_empty());
        assert_eq!(l.stats.packets, 5);
        assert_eq!(l.stats.max_occupancy, 5);
    }

    #[test]
    fn stall_windows_freeze_the_drain() {
        let mut l = link(8, 4);
        l.stall(2, 2);
        l.push(pkt(0));
        assert_eq!(l.drain(2, usize::MAX).len(), 0);
        assert_eq!(l.drain(3, usize::MAX).len(), 0);
        assert_eq!(l.stats.stalled_epochs, 2);
        assert_eq!(l.drain(4, usize::MAX).len(), 1);
    }

    #[test]
    fn credits_track_free_slots() {
        let mut l = link(4, 1);
        assert_eq!(l.sample_credits(), 4);
        l.push(pkt(0));
        l.push(pkt(1));
        assert_eq!(l.sample_credits(), 2);
        assert_eq!(l.stats.min_credits, 2);
        l.drain(0, usize::MAX);
        assert_eq!(l.credits(), 3);
        // min_credits keeps the low-water mark.
        l.sample_credits();
        assert_eq!(l.stats.min_credits, 2);
    }

    #[test]
    #[should_panic(expected = "overflowed")]
    fn overflow_panics_instead_of_dropping() {
        let mut l = link(2, 1);
        for s in 0..3 {
            l.push(pkt(s));
        }
    }
}
