//! Bridge from this crate's concrete `TopologyPlan` + [`FabricConfig`]
//! to `raw-verify`'s abstract [`FabricSpec`], plus the entry points the
//! rest of the repo uses to run the whole-fabric static analyses
//! (`RV5xx` deadlock, `RV6xx` routing, `RV7xx` credit sizing).
//!
//! [`RawFabric::try_new`](crate::RawFabric::try_new) calls
//! [`verify_spec`] before instantiating any router, so every fabric that
//! exists has a standing static proof behind it; `repro -- verify` calls
//! [`verify_topology`] over the shipped topologies to publish the same
//! verdicts into `results/verify.json`.

use raw_verify::fabric::{CreditModel, FabricSpec, FabricVerdict, LinkEdge, RouterNode};

use crate::fabric::FabricConfig;
use crate::topology::{self, fabric_addr, Topology, TopologyPlan};

/// Spray straddle margin baked into [`FabricConfig::emission_bound`]:
/// the `+2` packets allowed for emissions crossing an epoch boundary.
pub const STRADDLE_MARGIN: usize = 2;

/// Lower a concrete plan + config into the abstract spec the static
/// verifier analyzes. Pure translation — no judgment calls live here,
/// so a mutant plan (a truncated table, a rewired link) flows through
/// unlaundered and the verifier sees exactly what the executor would.
pub fn build_spec(plan: &TopologyPlan, cfg: &FabricConfig) -> FabricSpec {
    let ext = plan.ext_out.len();
    let spray = plan.topology.spray_width();
    FabricSpec {
        name: plan.topology.name().to_string(),
        ext_ports: ext,
        spray_width: spray,
        routers: plan
            .routers
            .iter()
            .map(|r| RouterNode {
                stage: r.stage,
                routes: r.routes.clone(),
            })
            .collect(),
        links: plan
            .links
            .iter()
            .map(|l| LinkEdge {
                from: l.from,
                to: l.to,
                capacity: cfg.resolved_capacity(),
                rate: cfg.resolved_rate(),
            })
            .collect(),
        ext_in: plan.ext_in.clone(),
        ext_out: plan.ext_out.clone(),
        uplinks: plan.uplinks.clone(),
        dest_addrs: (0..ext)
            .map(|d| (0..spray).map(|m| fabric_addr(d as u8, m as u8)).collect())
            .collect(),
        credit: CreditModel {
            epoch_cycles: cfg.epoch_cycles,
            quantum_words: cfg.router.quantum_words,
            cut_through: cfg.router.cut_through,
            emission_bound: cfg.emission_bound(),
            straddle_margin: STRADDLE_MARGIN,
        },
        voq_ingress: cfg.router.queueing.is_voq(),
        min_receive_window: cfg.min_receive_window,
    }
}

/// Statically verify a concrete plan under a config.
pub fn verify_spec(plan: &TopologyPlan, cfg: &FabricConfig) -> FabricVerdict {
    raw_verify::fabric::verify_fabric(&build_spec(plan, cfg))
}

/// Statically verify one shipped topology under a config (the config's
/// own `topology` field is ignored in favor of `t`).
pub fn verify_topology(t: Topology, cfg: &FabricConfig) -> FabricVerdict {
    verify_spec(&topology::plan(t), cfg)
}

/// Statically verify the fabric a config describes — the same gate
/// [`RawFabric::try_new`](crate::RawFabric::try_new) applies.
pub fn verify_fabric(cfg: &FabricConfig) -> FabricVerdict {
    verify_topology(cfg.topology, cfg)
}
