//! The fabric executor: M routers + links, advanced in barrier-
//! synchronized epochs.
//!
//! One epoch = `epoch_cycles` router cycles. Within an epoch every
//! router runs completely independently (no shared state, no message
//! passing); all cross-router transfers — collecting completed packets
//! from egress collectors into link queues, draining link queues into
//! the next stage's input line cards, injecting external arrivals, and
//! scheduling credit-backpressure stalls — happen at the epoch boundary,
//! in a single-threaded coordinator, in fixed link order. Because the
//! boundary is sequential and deterministic and the intra-epoch work is
//! independent per router, running the routers on worker threads (one
//! per router, two [`std::sync::Barrier`] waits per epoch) produces
//! *bit-identical* results to running them one after another on the
//! coordinator thread. [`RawFabric::fingerprint`] digests everything
//! observable so the equivalence is asserted, not assumed.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex};

use serde::{Deserialize, Serialize};

use raw_net::Packet;
use raw_telemetry::{Histogram, LinkStats, StageLatency};
use raw_xbar::{IngressQueueing, OutCollector, RawRouter, RouterConfig, NPORTS};

use crate::link::FabricLink;
use crate::topology::{self, dst_ext_port, stamp_middle, Topology, TopologyPlan};

// The threaded executor hands each router to a worker thread; everything
// a router owns must therefore be Send. Checked here so a non-Send
// device or sink added later fails at compile time, not at runtime.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<RawRouter>();
};

/// How injection picks the middle-stage route for each new flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SprayMode {
    /// FNV-1a of `(source address, destination external port)` modulo
    /// the spray width: stateless, perfectly reproducible, and
    /// flow-pinned by construction.
    Hash,
    /// Pin each new flow to the uplink with the fewest queued +
    /// in-flight packets at first sight (deterministic tie-break toward
    /// lower indices). Adapts to skew; still flow-pinned, so intra-flow
    /// order survives.
    LeastOccupancy,
}

impl SprayMode {
    pub fn name(&self) -> &'static str {
        match self {
            SprayMode::Hash => "hash",
            SprayMode::LeastOccupancy => "least-occupancy",
        }
    }
}

/// Why a [`FabricConfig`] is rejected before any fabric is built. Each
/// class maps onto the `RV7xx` diagnostic the `raw-verify` fabric
/// analysis reports for the same defect ([`FabricConfigError::code`]),
/// so the dynamic gate and the static proof speak one vocabulary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FabricConfigError {
    /// `epoch_cycles == 0`: the credit protocol samples once per epoch.
    ZeroEpoch,
    /// Store-and-forward egress has no per-epoch emission bound to size
    /// link credits against.
    StoreAndForwardEgress,
    /// A link that drains zero packets per epoch never empties.
    ZeroLinkRate,
    /// Link capacity cannot hold the stall threshold plus one slot of
    /// progress room.
    CapacityBelowBurst { capacity: usize, bound: usize },
}

impl FabricConfigError {
    /// The `RV7xx` code the static verifier assigns this failure class.
    pub fn code(&self) -> &'static str {
        match self {
            FabricConfigError::ZeroEpoch => "RV705",
            FabricConfigError::StoreAndForwardEgress => "RV704",
            FabricConfigError::ZeroLinkRate => "RV702",
            FabricConfigError::CapacityBelowBurst { .. } => "RV701",
        }
    }
}

impl std::fmt::Display for FabricConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FabricConfigError::ZeroEpoch => write!(f, "epoch_cycles must be positive"),
            FabricConfigError::StoreAndForwardEgress => write!(
                f,
                "the fabric composes cut-through routers: store-and-forward egress has no \
                 per-epoch emission bound to size link credits against"
            ),
            FabricConfigError::ZeroLinkRate => {
                write!(f, "link rate must be at least 1 packet/epoch")
            }
            FabricConfigError::CapacityBelowBurst { capacity, bound } => write!(
                f,
                "link capacity {capacity} cannot hold the stall threshold plus one epoch \
                 burst ({bound} packets)"
            ),
        }
    }
}

impl std::error::Error for FabricConfigError {}

/// Why [`RawFabric::try_new`] refused to build a fabric.
#[derive(Clone, Debug)]
pub enum FabricError {
    /// The scalar config check ([`FabricConfig::validate`]) failed.
    Config(FabricConfigError),
    /// The whole-fabric static verifier found `RV5xx`–`RV7xx`
    /// violations: the topology + config combination could deadlock,
    /// misroute, or overflow a link even though each scalar is sane.
    Verify(Vec<raw_verify::Diag>),
    /// A member router rejected the per-router configuration.
    Router(String),
}

impl std::fmt::Display for FabricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FabricError::Config(e) => write!(f, "{} ({})", e, e.code()),
            FabricError::Verify(diags) => {
                write!(
                    f,
                    "fabric verification failed with {} finding(s):",
                    diags.len()
                )?;
                for d in diags {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
            FabricError::Router(e) => write!(f, "router configuration rejected: {e}"),
        }
    }
}

impl std::error::Error for FabricError {}

impl From<FabricConfigError> for FabricError {
    fn from(e: FabricConfigError) -> FabricError {
        FabricError::Config(e)
    }
}

/// Fabric-wide configuration. `link_capacity` / `link_rate` of 0 mean
/// "derive from the epoch size" (wire-speed drain, 3 epochs of buffer).
#[derive(Clone, Debug)]
pub struct FabricConfig {
    pub topology: Topology,
    pub epoch_cycles: u64,
    pub spray: SprayMode,
    pub link_capacity: usize,
    pub link_rate: usize,
    /// Guaranteed link-drain slots per epoch even when the receiver's
    /// backlog exceeds its input window. The default of 1 is the escape
    /// valve that turns a spray-skew freeze on the folded topology's
    /// leaf<->spine cycle into a trickle (see [`RawFabric`]'s boundary
    /// step 2); 0 reconstructs the historical pre-fix behavior, which
    /// the static verifier rejects on cyclic topologies (`RV503`).
    pub min_receive_window: usize,
    /// Configuration applied to every member router.
    pub router: RouterConfig,
}

impl Default for FabricConfig {
    fn default() -> FabricConfig {
        FabricConfig {
            topology: Topology::Clos16,
            epoch_cycles: 512,
            spray: SprayMode::Hash,
            link_capacity: 0,
            link_rate: 0,
            min_receive_window: 1,
            // VOQ ingress is load-bearing, not a preference: the folded
            // topology's leaf<->spine links form a cyclic channel
            // dependency, and FIFO head-of-line blocking couples that
            // cycle into the link-credit loop — a stalled uplink head
            // packet blocks locally-deliverable packets behind it,
            // input backlogs pin every drain window at zero, and the
            // fabric deadlocks under sustained load. Per-output virtual
            // queues keep the external sinks draining, which breaks the
            // cycle (the 3-stage Clos is feed-forward and never cycles,
            // but gets VOQ's HOL win for free).
            router: RouterConfig {
                quantum_words: 16,
                cut_through: true,
                queueing: IngressQueueing::Voq,
                ..RouterConfig::default()
            },
        }
    }
}

impl FabricConfig {
    /// Worst-case packets one egress port can complete in one epoch
    /// (quantum + tag word per packet, plus margin for a packet that
    /// straddles the boundary). This is the stall threshold the credit
    /// check compares link credits against, and the declared emission
    /// bound the static verifier's symbolic occupancy proof re-derives.
    pub fn emission_bound(&self) -> usize {
        (self.epoch_cycles as usize / (self.router.quantum_words + 1)) + 2
    }

    /// Per-epoch link drain rate after applying the derive-from-epoch
    /// default.
    pub fn resolved_rate(&self) -> usize {
        if self.link_rate > 0 {
            self.link_rate
        } else {
            self.emission_bound()
        }
    }

    /// Link queue capacity after applying the derive-from-epoch default.
    pub fn resolved_capacity(&self) -> usize {
        if self.link_capacity > 0 {
            self.link_capacity
        } else {
            3 * self.emission_bound()
        }
    }

    pub fn validate(&self) -> Result<(), FabricConfigError> {
        if self.epoch_cycles == 0 {
            return Err(FabricConfigError::ZeroEpoch);
        }
        if !self.router.cut_through {
            return Err(FabricConfigError::StoreAndForwardEgress);
        }
        let (rate, cap, bound) = (
            self.resolved_rate(),
            self.resolved_capacity(),
            self.emission_bound(),
        );
        if rate < 1 {
            return Err(FabricConfigError::ZeroLinkRate);
        }
        // The no-overflow invariant: if credits >= bound the sender may
        // emit freely (at most `bound` arrivals next boundary); if
        // credits < bound the sender is stalled for the whole next
        // epoch and nothing arrives. Capacity must leave room for one
        // full burst above the stall threshold.
        if cap < bound + 1 {
            return Err(FabricConfigError::CapacityBelowBurst {
                capacity: cap,
                bound,
            });
        }
        Ok(())
    }
}

enum PendingPayload {
    Pkt(Packet),
    Raw(Vec<u32>),
}

struct PendingOffer {
    release: u64,
    seq: u64,
    ext: usize,
    payload: PendingPayload,
}

#[derive(Clone, Copy)]
struct Life {
    inject: u64,
    stage_entry: u64,
}

/// The serializable outcome summary of a fabric run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FabricSummary {
    pub topology: String,
    pub spray: String,
    pub routers: usize,
    pub ext_ports: usize,
    pub epoch_cycles: u64,
    pub epochs: u64,
    pub cycles: u64,
    pub offered: u64,
    pub delivered: u64,
    pub dropped: u64,
    pub backpressure_epochs: u64,
    pub links: Vec<LinkStats>,
    /// Per-stage traversal latency (ingress/leaf, middle/spine, egress).
    pub stages: Vec<StageLatency>,
    pub total_latency: StageLatency,
    pub flow_order_violations: u64,
}

/// A multi-router fabric: the composition the paper's §8.5 calls for.
pub struct RawFabric {
    pub cfg: FabricConfig,
    pub plan: TopologyPlan,
    routers: Vec<Mutex<RawRouter>>,
    links: Vec<FabricLink>,
    /// Per link: the sending router's collector for the link's port.
    link_cols: Vec<Arc<Mutex<OutCollector>>>,
    /// Per external output: the egress router's collector (never
    /// drained — this is the fabric's delivered stream).
    ext_cols: Vec<Arc<Mutex<OutCollector>>>,
    /// Scan cursor into each external collector (latency recording).
    ext_seen: Vec<usize>,
    pending: Vec<PendingOffer>,
    next_pending: usize,
    offered: u64,
    delivered: u64,
    epochs_run: u64,
    /// Flow -> pinned middle (LeastOccupancy mode only). Lookup-only:
    /// never iterated, so the map's order cannot leak into results.
    flow_pins: HashMap<(u32, u8), u8>,
    /// (src, ip id) -> injection/stage timestamps. Lookup-only.
    life: HashMap<(u32, u16), Life>,
    stage_hist: [Histogram; 3],
    total_hist: Histogram,
    backpressure_epochs: u64,
}

fn fnv_flow(src: u32, dst_ext: u8) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in src.to_be_bytes().into_iter().chain([dst_ext]) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl RawFabric {
    pub fn try_new(cfg: FabricConfig) -> Result<RawFabric, FabricError> {
        cfg.validate()?;
        let plan = topology::plan(cfg.topology);
        // The whole-fabric static gate: deadlock freedom, routing
        // soundness, and the symbolic credit-sizing proof must all hold
        // before a single router is instantiated.
        let verdict = crate::verify::verify_spec(&plan, &cfg);
        if !verdict.diags.is_empty() {
            return Err(FabricError::Verify(verdict.diags));
        }
        let mut routers = Vec::with_capacity(plan.routers.len());
        for spec in &plan.routers {
            // Compact 16-bit DIR split: a dozen canonical 2^24-slot
            // level-1 arrays per fabric would dwarf the simulation
            // itself, and the fabric routers run the Patricia engine.
            let table = Arc::new(raw_lookup::ForwardingTable::build_with_l1_bits(
                &spec.routes,
                16,
            ));
            routers.push(Mutex::new(
                RawRouter::try_new_with_telemetry(cfg.router.clone(), table, None)
                    .map_err(FabricError::Router)?,
            ));
        }
        let (rate, capacity) = (cfg.resolved_rate(), cfg.resolved_capacity());
        let links: Vec<FabricLink> = plan
            .links
            .iter()
            .enumerate()
            .map(|(i, &spec)| FabricLink::new(i, spec, capacity, rate))
            .collect();
        let link_cols = plan
            .links
            .iter()
            .map(|l| routers[l.from.0].lock().unwrap().collector(l.from.1))
            .collect();
        let ext_cols: Vec<_> = plan
            .ext_out
            .iter()
            .map(|&(r, p)| routers[r].lock().unwrap().collector(p))
            .collect();
        let n_ext = plan.ext_out.len();
        Ok(RawFabric {
            cfg,
            plan,
            routers,
            links,
            link_cols,
            ext_cols,
            ext_seen: vec![0; n_ext],
            pending: Vec::new(),
            next_pending: 0,
            offered: 0,
            delivered: 0,
            epochs_run: 0,
            flow_pins: HashMap::new(),
            life: HashMap::new(),
            stage_hist: std::array::from_fn(|_| Histogram::for_cycles()),
            total_hist: Histogram::for_cycles(),
            backpressure_epochs: 0,
        })
    }

    pub fn ext_ports(&self) -> usize {
        self.plan.ext_out.len()
    }

    pub fn epochs_run(&self) -> u64 {
        self.epochs_run
    }

    pub fn cycle(&self) -> u64 {
        self.epochs_run * self.cfg.epoch_cycles
    }

    /// Queue one packet for external input `ext` at `release`. The
    /// destination external port comes from the address second octet
    /// (the [`topology::fabric_addr`] scheme); the middle octet is
    /// stamped at injection, so callers build addresses with any `m`.
    pub fn offer(&mut self, ext: usize, release: u64, pkt: &Packet) {
        assert!(ext < self.ext_ports(), "external input {ext} out of range");
        assert!(
            dst_ext_port(pkt) < self.ext_ports(),
            "destination external port {} out of range",
            dst_ext_port(pkt)
        );
        let seq = self.pending.len() as u64;
        self.pending.push(PendingOffer {
            release,
            seq,
            ext,
            payload: PendingPayload::Pkt(pkt.clone()),
        });
        self.offered += 1;
    }

    /// Queue a raw (possibly corrupt) word stream — the fault-injection
    /// path. No spray stamp: a mangled header is rejected at the
    /// stage-1 ingress parse, and the experiment address scheme makes
    /// even an unstamped survivor route correctly via middle 0.
    pub fn offer_raw(&mut self, ext: usize, release: u64, words: Vec<u32>) {
        assert!(ext < self.ext_ports(), "external input {ext} out of range");
        let seq = self.pending.len() as u64;
        self.pending.push(PendingOffer {
            release,
            seq,
            ext,
            payload: PendingPayload::Raw(words),
        });
        self.offered += 1;
    }

    /// Freeze one inter-router link's drain for `len` epochs (fault
    /// injection; the credit machinery turns the standing queue into
    /// sender backpressure automatically).
    pub fn stall_link(&mut self, link: usize, start_epoch: u64, len: u64) {
        self.links[link].stall(start_epoch, len);
    }

    /// Pause the line card behind external input `ext` (idle frames
    /// during the window).
    pub fn pause_ext_input(&mut self, ext: usize, start: u64, len: u64) {
        let (r, p) = self.plan.ext_in[ext];
        self.routers[r].lock().unwrap().pause_input(p, start, len);
    }

    /// Backpressure external output `ext` for a cycle window.
    pub fn stall_ext_output(&mut self, ext: usize, start: u64, len: u64) {
        let (r, p) = self.plan.ext_out[ext];
        self.routers[r].lock().unwrap().stall_output(p, start, len);
    }

    fn is_local(&self, ingress_router: usize, dst_ext: usize) -> bool {
        match self.plan.topology {
            Topology::Folded8 => dst_ext / 2 == ingress_router,
            _ => false,
        }
    }

    fn choose_middle(&mut self, ingress_router: usize, pkt: &Packet) -> u8 {
        let w = self.plan.topology.spray_width();
        let d = dst_ext_port(pkt);
        if w <= 1 || self.is_local(ingress_router, d) {
            return 0;
        }
        let key = (pkt.header.src, d as u8);
        match self.cfg.spray {
            SprayMode::Hash => (fnv_flow(key.0, key.1) % w as u64) as u8,
            SprayMode::LeastOccupancy => {
                if let Some(&m) = self.flow_pins.get(&key) {
                    return m;
                }
                let mut best = 0u8;
                let mut best_occ = usize::MAX;
                for (m, &li) in self.plan.uplinks[ingress_router].iter().enumerate() {
                    let occ = self.links[li].occupancy() + self.links[li].inflight_sprayed;
                    if occ < best_occ {
                        best_occ = occ;
                        best = m as u8;
                    }
                }
                self.flow_pins.insert(key, best);
                best
            }
        }
    }

    /// The boundary step at the start of epoch `epochs_run`: transfers,
    /// deliveries, injection, and flow control, all in fixed order.
    fn boundary(&mut self, routers: &[Mutex<RawRouter>]) {
        let t = self.epochs_run * self.cfg.epoch_cycles;
        let t_end = t + self.cfg.epoch_cycles;
        let epoch = self.epochs_run;

        // 1. Collect packets that finished crossing a sender during the
        //    previous epoch into their link queues (link order).
        for (li, col) in self.link_cols.iter().enumerate() {
            let done: Vec<(u64, Packet)> = std::mem::take(&mut col.lock().unwrap().packets);
            for (_, p) in done {
                let link = &mut self.links[li];
                link.inflight_sprayed = link.inflight_sprayed.saturating_sub(1);
                link.push(p);
            }
        }

        // 2. Drain each link at its rate into the receiver's line card,
        //    bounded by the receiver's input window: a congested router
        //    keeps a backlog, the link refuses to hand over more, the
        //    queue fills, and step 5 turns that into sender stalls —
        //    hop-by-hop backpressure with nothing hidden in unbounded
        //    buffers. The window never closes completely
        //    (`min_receive_window`, default one packet per epoch): the
        //    folded topology's leaf<->spine cycle can otherwise
        //    deadlock when a skewed spray fills one VOQ, VOQ admission
        //    blocks the ingress line card, and every drain window along
        //    the cycle pins at zero — the escape slot turns that
        //    permanent freeze into a trickle that drains once the skew
        //    passes. Setting it to 0 reconstructs that historical
        //    deadlock, which `try_new`'s static gate rejects (RV503) on
        //    cyclic topologies. Only injected link faults (stall
        //    windows) may freeze a drain outright.
        let window = 2 * self.cfg.emission_bound();
        for li in 0..self.links.len() {
            let stage = self.plan.routers[self.links[li].spec.from.0].stage;
            let (to_r, to_p) = (self.links[li].spec.to.0, self.links[li].spec.to.1);
            let backlog = routers[to_r].lock().unwrap().input_backlog(to_p);
            let allowed = window
                .saturating_sub(backlog)
                .max(self.cfg.min_receive_window);
            for p in self.links[li].drain(epoch, allowed) {
                if let Some(life) = self.life.get_mut(&(p.header.src, p.header.id)) {
                    self.stage_hist[stage.min(2)].record(t - life.stage_entry);
                    life.stage_entry = t;
                }
                routers[to_r].lock().unwrap().offer(to_p, t, &p);
            }
        }

        // 3. Account external deliveries since the last boundary.
        for (ext, col) in self.ext_cols.iter().enumerate() {
            let col = col.lock().unwrap();
            for (cycle, p) in &col.packets[self.ext_seen[ext]..] {
                self.delivered += 1;
                if let Some(life) = self.life.remove(&(p.header.src, p.header.id)) {
                    self.stage_hist[2].record(cycle - life.stage_entry);
                    self.total_hist.record(cycle - life.inject);
                }
            }
            self.ext_seen[ext] = col.packets.len();
        }

        // 4. Inject external arrivals released inside this epoch.
        while self.next_pending < self.pending.len()
            && self.pending[self.next_pending].release < t_end
        {
            let po = &mut self.pending[self.next_pending];
            let (r, port) = self.plan.ext_in[po.ext];
            let release = po.release.max(t);
            match std::mem::replace(&mut po.payload, PendingPayload::Raw(Vec::new())) {
                PendingPayload::Pkt(mut p) => {
                    let m = self.choose_middle(r, &p);
                    stamp_middle(&mut p, m);
                    let d = dst_ext_port(&p);
                    if self.plan.topology.spray_width() > 1 && !self.is_local(r, d) {
                        let li = self.plan.uplinks[r][m as usize];
                        self.links[li].inflight_sprayed += 1;
                    }
                    self.life.insert(
                        (p.header.src, p.header.id),
                        Life {
                            inject: release,
                            stage_entry: release,
                        },
                    );
                    routers[r].lock().unwrap().offer(port, release, &p);
                }
                PendingPayload::Raw(words) => {
                    routers[r].lock().unwrap().offer_raw(port, release, words);
                }
            }
            self.next_pending += 1;
        }

        // 5. Credit check: stall any sender whose link cannot absorb a
        //    full epoch of emission.
        let bound = self.cfg.emission_bound();
        for li in 0..self.links.len() {
            let credits = self.links[li].sample_credits();
            if credits < bound {
                let (r, p) = self.links[li].spec.from;
                routers[r]
                    .lock()
                    .unwrap()
                    .stall_output(p, t, self.cfg.epoch_cycles);
                self.links[li].stats.backpressure_epochs += 1;
                self.backpressure_epochs += 1;
            }
        }
    }

    /// Everything offered is now delivered or dropped (and injection is
    /// complete).
    fn closed(&self, routers: &[Mutex<RawRouter>]) -> bool {
        self.next_pending == self.pending.len()
            && self.delivered + Self::dropped_of(routers) >= self.offered
    }

    fn dropped_of(routers: &[Mutex<RawRouter>]) -> u64 {
        routers
            .iter()
            .map(|r| r.lock().unwrap().dropped_count())
            .sum()
    }

    fn advance(&mut self, threaded: bool, max_epochs: u64, stop_when_closed: bool) -> bool {
        self.pending[self.next_pending..].sort_by_key(|p| (p.release, p.seq));
        let k = self.cfg.epoch_cycles;
        let routers = std::mem::take(&mut self.routers);
        let limit = max_epochs;
        let done = if !threaded {
            let mut done = false;
            while self.epochs_run < limit {
                self.boundary(&routers);
                if stop_when_closed && self.closed(&routers) {
                    done = true;
                    break;
                }
                for r in &routers {
                    r.lock().unwrap().run(k);
                }
                self.epochs_run += 1;
            }
            done || (stop_when_closed && self.closed(&routers))
        } else {
            let barrier = Barrier::new(routers.len() + 1);
            let stop = AtomicBool::new(false);
            crossbeam::scope(|s| {
                for r in &routers {
                    let barrier = &barrier;
                    let stop = &stop;
                    s.spawn(move |_| loop {
                        barrier.wait();
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        r.lock().unwrap().run(k);
                        barrier.wait();
                    });
                }
                let mut done = false;
                while self.epochs_run < limit {
                    self.boundary(&routers);
                    if stop_when_closed && self.closed(&routers) {
                        done = true;
                        break;
                    }
                    barrier.wait(); // workers start the epoch
                    barrier.wait(); // workers finished the epoch
                    self.epochs_run += 1;
                }
                stop.store(true, Ordering::SeqCst);
                barrier.wait(); // release workers into the stop check
                done || (stop_when_closed && self.closed(&routers))
            })
            .expect("fabric worker panicked")
        };
        self.routers = routers;
        done
    }

    /// Advance exactly `n` more epochs (fixed horizon — for throughput
    /// windows). `threaded` selects the parallel executor; results are
    /// bit-identical either way.
    pub fn run_epochs(&mut self, n: u64, threaded: bool) {
        self.advance(threaded, self.epochs_run + n, false);
    }

    /// Run until every offered packet is delivered or dropped, or
    /// `max_epochs` total epochs pass. Returns true on full accounting.
    pub fn run_until_drained(&mut self, max_epochs: u64, threaded: bool) -> bool {
        self.advance(threaded, max_epochs, true)
    }

    pub fn offered(&self) -> u64 {
        self.offered
    }

    pub fn delivered_count(&self) -> u64 {
        self.delivered
    }

    pub fn dropped_count(&self) -> u64 {
        Self::dropped_of(&self.routers)
    }

    pub fn parse_errors(&self) -> u64 {
        self.routers
            .iter()
            .map(|r| r.lock().unwrap().parse_errors())
            .sum()
    }

    /// Delivered packets at external output `ext`, in arrival order.
    pub fn delivered(&self, ext: usize) -> Vec<(u64, Packet)> {
        self.ext_cols[ext].lock().unwrap().packets.clone()
    }

    /// Fabric-wide packets delivered with completion cycles in
    /// `[from, to)`.
    pub fn delivered_packets_between(&self, from: u64, to: u64) -> u64 {
        self.ext_cols
            .iter()
            .map(|c| {
                c.lock()
                    .unwrap()
                    .packets
                    .iter()
                    .filter(|(cyc, _)| (from..to).contains(cyc))
                    .count() as u64
            })
            .sum()
    }

    /// Aggregate Mpps over a cycle window at the configured clock.
    pub fn mpps(&self, from: u64, to: u64) -> f64 {
        let secs = (to - from) as f64 / (self.cfg.router.raw.clock_mhz as f64 * 1e6);
        self.delivered_packets_between(from, to) as f64 / secs / 1e6
    }

    /// Aggregate Gbps over a cycle window.
    pub fn gbps(&self, from: u64, to: u64) -> f64 {
        let bits: u64 = self
            .ext_cols
            .iter()
            .map(|c| {
                c.lock()
                    .unwrap()
                    .packets
                    .iter()
                    .filter(|(cyc, _)| (from..to).contains(cyc))
                    .map(|(_, p)| p.total_bytes() as u64 * 8)
                    .sum::<u64>()
            })
            .sum();
        let secs = (to - from) as f64 / (self.cfg.router.raw.clock_mhz as f64 * 1e6);
        bits as f64 / secs / 1e9
    }

    /// Per-router classified drops, aggregated fabric-wide.
    pub fn drop_reasons(&self) -> [u64; raw_telemetry::DropReason::COUNT] {
        let mut out = [0u64; raw_telemetry::DropReason::COUNT];
        for r in &self.routers {
            for (o, d) in out.iter_mut().zip(r.lock().unwrap().drop_reasons()) {
                *o += d;
            }
        }
        out
    }

    /// Within-flow order violations summed over external outputs.
    pub fn flow_order_violations(&self) -> u64 {
        self.ext_cols
            .iter()
            .map(|c| {
                let pkts: Vec<Packet> = c
                    .lock()
                    .unwrap()
                    .packets
                    .iter()
                    .map(|(_, p)| p.clone())
                    .collect();
                raw_workloads::flow_order_violations(&pkts) as u64
            })
            .sum()
    }

    /// Every conservation invariant of the fabric, as human-readable
    /// violations (empty == healthy). Meaningful after a drained run.
    pub fn conservation_errors(&self) -> Vec<String> {
        let mut errs = Vec::new();
        let dropped = self.dropped_count();
        if self.delivered + dropped != self.offered {
            errs.push(format!(
                "offered {} != delivered {} + dropped {dropped}",
                self.offered, self.delivered
            ));
        }
        if self.next_pending != self.pending.len() {
            errs.push(format!(
                "{} offers were never injected",
                self.pending.len() - self.next_pending
            ));
        }
        for l in &self.links {
            if l.occupancy() != 0 {
                errs.push(format!(
                    "link {} still holds {} packets",
                    l.stats.link,
                    l.occupancy()
                ));
            }
        }
        if !self.life.is_empty() {
            errs.push(format!(
                "{} tracked packets neither delivered nor dropped",
                self.life.len()
            ));
        }
        if self.parse_errors() != 0 {
            errs.push(format!(
                "{} corrupt packets leaked through to an output",
                self.parse_errors()
            ));
        }
        // Per-router closure: everything a router accepted either sits
        // in a collector, was forwarded over a link, or was dropped.
        for (ri, r) in self.routers.iter().enumerate() {
            let r = r.lock().unwrap();
            let forwarded: u64 = self
                .links
                .iter()
                .filter(|l| l.spec.from.0 == ri)
                .map(|l| l.stats.packets)
                .sum();
            let (off, del, drop) = (r.offered(), r.delivered_count(), r.dropped_count());
            if del + forwarded + drop != off {
                errs.push(format!(
                    "router {ri}: offered {off} != delivered {del} + forwarded \
                     {forwarded} + dropped {drop}"
                ));
            }
            for p in 0..NPORTS {
                let s = r.ig_stats[p].lock().unwrap();
                let classified: u64 = s.drops.iter().sum();
                if s.packets_dropped != classified {
                    errs.push(format!(
                        "router {ri} port {p}: packets_dropped {} != classified {classified}",
                        s.packets_dropped
                    ));
                }
            }
        }
        errs
    }

    /// FNV-1a digest of everything observable: external delivery streams
    /// (cycle + exact words), per-router classified drops, offered
    /// count, and the epoch clock. The threaded and single-threaded
    /// executors must produce equal fingerprints.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x100_0000_01b3);
        };
        for c in &self.ext_cols {
            for (cycle, p) in &c.lock().unwrap().packets {
                mix(*cycle);
                for w in p.to_words() {
                    mix(u64::from(w));
                }
            }
        }
        for r in &self.routers {
            for d in r.lock().unwrap().drop_reasons() {
                mix(d);
            }
        }
        mix(self.offered);
        mix(self.epochs_run);
        h
    }

    /// Reduce the run to its serializable summary.
    pub fn summary(&self) -> FabricSummary {
        let stage_names = ["ingress", "middle", "egress"];
        FabricSummary {
            topology: self.plan.topology.name().to_string(),
            spray: self.cfg.spray.name().to_string(),
            routers: self.plan.routers.len(),
            ext_ports: self.ext_ports(),
            epoch_cycles: self.cfg.epoch_cycles,
            epochs: self.epochs_run,
            cycles: self.cycle(),
            offered: self.offered,
            delivered: self.delivered,
            dropped: self.dropped_count(),
            backpressure_epochs: self.backpressure_epochs,
            links: self.links.iter().map(|l| l.stats.clone()).collect(),
            stages: self
                .stage_hist
                .iter()
                .zip(stage_names)
                .map(|(h, n)| StageLatency::from_histogram(n, h))
                .collect(),
            total_latency: StageLatency::from_histogram("total", &self.total_hist),
            flow_order_violations: self.flow_order_violations(),
        }
    }
}
