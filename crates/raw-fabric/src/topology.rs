//! Fabric topologies: how external ports, routers, inter-router links,
//! and per-stage forwarding tables fit together.
//!
//! Every topology is built from unmodified 4-port routers. Fabric-level
//! forwarding is expressed entirely through each router's longest-prefix
//! tables over the experiment address scheme
//!
//! ```text
//! dst = 10.<d>.<m>.x      d = destination external port
//!                         m = middle-stage (spray) choice
//! ```
//!
//! The spray decision is made once, at injection, by stamping `m` into
//! the third octet (and recomputing the header checksum); after that the
//! packet is self-routing: ingress routers match `/24` prefixes `(d, m)`
//! to pick the uplink, middle and egress routers match `/16` on `d`
//! alone. A lookup miss (forced by raw-chaos) falls back to the default
//! route — uplink 0 at the ingress stage, which still reaches the
//! correct egress router, so misrouting self-heals within the fabric.

use raw_lookup::RouteEntry;
use raw_net::Packet;
use raw_xbar::NPORTS;

/// The fabric shapes the experiments compare.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topology {
    /// One 4-port router, no links: the paper's baseline, run through
    /// the same harness so comparisons share every code path.
    Single4,
    /// 8 external ports from 6 routers: 4 leaves (2 external ports + 2
    /// uplinks each) over 2 spines — the folded-Clos (leaf-spine)
    /// variant. Same-leaf traffic switches locally in one hop.
    Folded8,
    /// 16 external ports from 12 routers: the full 3-stage Clos with 4
    /// ingress, 4 middle, and 4 egress routers (§8.5's "larger router
    /// out of multiple of these small 4-port routers").
    Clos16,
}

impl Topology {
    pub fn name(&self) -> &'static str {
        match self {
            Topology::Single4 => "single4",
            Topology::Folded8 => "folded8",
            Topology::Clos16 => "clos16",
        }
    }

    /// External (fabric-facing) port count.
    pub fn ext_ports(&self) -> usize {
        match self {
            Topology::Single4 => 4,
            Topology::Folded8 => 8,
            Topology::Clos16 => 16,
        }
    }

    pub fn routers(&self) -> usize {
        match self {
            Topology::Single4 => 1,
            Topology::Folded8 => 6,
            Topology::Clos16 => 12,
        }
    }

    /// Number of middle-stage (spray) choices at injection.
    pub fn spray_width(&self) -> usize {
        match self {
            Topology::Single4 => 1,
            Topology::Folded8 => 2,
            Topology::Clos16 => 4,
        }
    }
}

/// One unidirectional inter-router link: sender `(router, output port)`
/// to receiver `(router, input port)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkSpec {
    pub from: (usize, usize),
    pub to: (usize, usize),
}

/// One router's place in the fabric.
#[derive(Clone, Debug)]
pub struct RouterSpec {
    /// 0 = ingress/leaf, 1 = middle/spine, 2 = egress.
    pub stage: usize,
    /// The router's forwarding table (always ends with a default route).
    pub routes: Vec<RouteEntry>,
}

/// The complete wiring of a fabric.
#[derive(Clone, Debug)]
pub struct TopologyPlan {
    pub topology: Topology,
    pub routers: Vec<RouterSpec>,
    pub links: Vec<LinkSpec>,
    /// External input `e` attaches to router input `ext_in[e]`.
    pub ext_in: Vec<(usize, usize)>,
    /// External output `d` drains from router output `ext_out[d]`.
    pub ext_out: Vec<(usize, usize)>,
    /// For stage-0 router `r`, `uplinks[r][m]` is the link index that
    /// carries spray choice `m` (empty for other stages).
    pub uplinks: Vec<Vec<usize>>,
    /// `(router, input port) → link` index, built once at plan time so
    /// the per-boundary lookups are O(1) instead of scans over `links`.
    into_map: Vec<[Option<usize>; NPORTS]>,
    /// `(router, output port) → link` index.
    out_map: Vec<[Option<usize>; NPORTS]>,
}

/// Destination address for external port `d` via middle stage `m`.
pub fn fabric_addr(d: u8, m: u8) -> u32 {
    0x0a00_0001 | ((d as u32) << 16) | ((m as u32) << 8)
}

/// The destination external port encoded in a packet's second octet.
pub fn dst_ext_port(p: &Packet) -> usize {
    ((p.header.dst >> 16) & 0xff) as usize
}

/// Stamp the spray choice into the third destination octet, keeping the
/// header checksum valid (the stamp happens before the first hop, so no
/// router ever sees the pre-stamp checksum).
pub fn stamp_middle(p: &mut Packet, m: u8) {
    p.header.dst = (p.header.dst & 0xffff_00ff) | ((m as u32) << 8);
    p.header.checksum = p.header.compute_checksum();
}

fn route16(d: u8, port: u32) -> RouteEntry {
    RouteEntry::new(0x0a00_0000 | ((d as u32) << 16), 16, port)
}

fn route24(d: u8, m: u8, port: u32) -> RouteEntry {
    RouteEntry::new(
        0x0a00_0000 | ((d as u32) << 16) | ((m as u32) << 8),
        24,
        port,
    )
}

fn default_route(port: u32) -> RouteEntry {
    RouteEntry::new(0, 0, port)
}

/// Build the full wiring and per-router tables for a topology.
pub fn plan(t: Topology) -> TopologyPlan {
    let mut routers = Vec::new();
    let mut links = Vec::new();
    let mut uplinks = vec![Vec::new(); t.routers()];
    let (ext_in, ext_out);
    match t {
        Topology::Single4 => {
            let mut routes: Vec<RouteEntry> =
                (0..NPORTS as u8).map(|d| route16(d, d as u32)).collect();
            routes.push(default_route(0));
            routers.push(RouterSpec { stage: 2, routes });
            ext_in = (0..NPORTS).map(|p| (0, p)).collect();
            ext_out = (0..NPORTS).map(|p| (0, p)).collect();
        }
        Topology::Clos16 => {
            // Routers 0-3 ingress, 4-7 middle, 8-11 egress.
            for (i, up) in uplinks.iter_mut().enumerate().take(4) {
                let mut routes = Vec::new();
                for d in 0..16u8 {
                    for m in 0..4u8 {
                        routes.push(route24(d, m, m as u32));
                    }
                }
                routes.push(default_route(0));
                routers.push(RouterSpec { stage: 0, routes });
                // Ingress i's output m feeds middle m's input i.
                for m in 0..4 {
                    up.push(links.len());
                    links.push(LinkSpec {
                        from: (i, m),
                        to: (4 + m, i),
                    });
                }
            }
            for _m in 0..4 {
                let mut routes: Vec<RouteEntry> =
                    (0..16u8).map(|d| route16(d, (d / 4) as u32)).collect();
                routes.push(default_route(0));
                routers.push(RouterSpec { stage: 1, routes });
            }
            // Middle m's output e feeds egress e's input m.
            for m in 0..4 {
                for e in 0..4 {
                    links.push(LinkSpec {
                        from: (4 + m, e),
                        to: (8 + e, m),
                    });
                }
            }
            for _e in 0..4 {
                let mut routes: Vec<RouteEntry> =
                    (0..16u8).map(|d| route16(d, (d % 4) as u32)).collect();
                routes.push(default_route(0));
                routers.push(RouterSpec { stage: 2, routes });
            }
            ext_in = (0..16).map(|e| (e / 4, e % 4)).collect();
            ext_out = (0..16).map(|d| (8 + d / 4, d % 4)).collect();
        }
        Topology::Folded8 => {
            // Routers 0-3 leaves, 4-5 spines. Leaf l owns external
            // ports {2l, 2l+1} on its ports 0-1; ports 2-3 are uplinks.
            for l in 0..4u8 {
                let mut routes = Vec::new();
                for d in 0..8u8 {
                    if d / 2 == l {
                        routes.push(route16(d, (d % 2) as u32));
                    } else {
                        for m in 0..2u8 {
                            routes.push(route24(d, m, 2 + m as u32));
                        }
                    }
                }
                routes.push(default_route(0));
                routers.push(RouterSpec { stage: 0, routes });
            }
            for _s in 0..2 {
                let mut routes: Vec<RouteEntry> =
                    (0..8u8).map(|d| route16(d, (d / 2) as u32)).collect();
                routes.push(default_route(0));
                routers.push(RouterSpec { stage: 1, routes });
            }
            for (l, up) in uplinks.iter_mut().enumerate().take(4) {
                for s in 0..2usize {
                    up.push(links.len());
                    links.push(LinkSpec {
                        from: (l, 2 + s),
                        to: (4 + s, l),
                    });
                }
            }
            for s in 0..2usize {
                for l in 0..4usize {
                    links.push(LinkSpec {
                        from: (4 + s, l),
                        to: (l, 2 + s),
                    });
                }
            }
            ext_in = (0..8).map(|e| (e / 2, e % 2)).collect();
            ext_out = (0..8).map(|d| (d / 2, d % 2)).collect();
        }
    }
    TopologyPlan::new(t, routers, links, ext_in, ext_out, uplinks)
}

impl TopologyPlan {
    /// Assemble a plan: index the wiring into the `(router, port) → link`
    /// maps and run the structural sanity checks.
    pub fn new(
        topology: Topology,
        routers: Vec<RouterSpec>,
        links: Vec<LinkSpec>,
        ext_in: Vec<(usize, usize)>,
        ext_out: Vec<(usize, usize)>,
        uplinks: Vec<Vec<usize>>,
    ) -> TopologyPlan {
        let mut into_map = vec![[None; NPORTS]; routers.len()];
        let mut out_map = vec![[None; NPORTS]; routers.len()];
        for (li, l) in links.iter().enumerate() {
            // validate() re-checks bounds and uniqueness with real
            // messages; indexing here would just panic earlier.
            if l.to.0 < routers.len() && l.to.1 < NPORTS {
                into_map[l.to.0][l.to.1] = Some(li);
            }
            if l.from.0 < routers.len() && l.from.1 < NPORTS {
                out_map[l.from.0][l.from.1] = Some(li);
            }
        }
        let p = TopologyPlan {
            topology,
            routers,
            links,
            ext_in,
            ext_out,
            uplinks,
            into_map,
            out_map,
        };
        p.validate();
        p
    }
    /// Structural sanity: every router port is used at most once on
    /// each side, external attachments never collide with links, and
    /// stage-0 routers expose exactly `spray_width` uplinks.
    fn validate(&self) {
        let n = self.routers.len();
        assert_eq!(n, self.topology.routers());
        assert_eq!(self.ext_in.len(), self.topology.ext_ports());
        assert_eq!(self.ext_out.len(), self.topology.ext_ports());
        let mut in_used = vec![[false; NPORTS]; n];
        let mut out_used = vec![[false; NPORTS]; n];
        for l in &self.links {
            assert!(l.from.0 < n && l.from.1 < NPORTS, "bad link source {l:?}");
            assert!(l.to.0 < n && l.to.1 < NPORTS, "bad link target {l:?}");
            assert!(
                !out_used[l.from.0][l.from.1],
                "output {:?} feeds two links",
                l.from
            );
            assert!(
                !in_used[l.to.0][l.to.1],
                "input {:?} fed by two links",
                l.to
            );
            out_used[l.from.0][l.from.1] = true;
            in_used[l.to.0][l.to.1] = true;
        }
        for &(r, p) in &self.ext_in {
            assert!(!in_used[r][p], "external input collides with a link");
            in_used[r][p] = true;
        }
        for &(r, p) in &self.ext_out {
            assert!(!out_used[r][p], "external output collides with a link");
            out_used[r][p] = true;
        }
        for (r, spec) in self.routers.iter().enumerate() {
            let expect = if spec.stage == 0 && self.topology.spray_width() > 1 {
                self.topology.spray_width()
            } else {
                0
            };
            assert_eq!(self.uplinks[r].len(), expect, "router {r} uplink count");
            for (m, &li) in self.uplinks[r].iter().enumerate() {
                assert_eq!(self.links[li].from.0, r);
                // Uplink m must land on middle/spine router m.
                assert_eq!(self.routers[self.links[li].to.0].stage, 1);
                assert_eq!(self.links[li].to.0, self.stage1_router(m));
            }
        }
    }

    fn stage1_router(&self, m: usize) -> usize {
        self.routers
            .iter()
            .enumerate()
            .filter(|(_, s)| s.stage == 1)
            .map(|(i, _)| i)
            .nth(m)
            .expect("middle router m exists")
    }

    /// The link arriving at router input `(r, port)`, if any.
    pub fn link_into(&self, r: usize, port: usize) -> Option<usize> {
        *self.into_map.get(r).and_then(|m| m.get(port))?
    }

    /// The link leaving router output `(r, port)`, if any.
    pub fn link_out_of(&self, r: usize, port: usize) -> Option<usize> {
        *self.out_map.get(r).and_then(|m| m.get(port))?
    }

    /// The scan `link_into` replaced — kept as the oracle the index
    /// maps are tested against.
    #[cfg(test)]
    fn link_into_scan(&self, r: usize, port: usize) -> Option<usize> {
        self.links.iter().position(|l| l.to == (r, port))
    }

    #[cfg(test)]
    fn link_out_of_scan(&self, r: usize, port: usize) -> Option<usize> {
        self.links.iter().position(|l| l.from == (r, port))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raw_lookup::{Engine, ForwardingTable};

    /// Build every router's table once, with the compact DIR split —
    /// the canonical 2^24-slot level-1 array is far too heavy to build
    /// per router inside the per-pair loops below.
    fn build_tables(plan: &TopologyPlan) -> Vec<ForwardingTable> {
        plan.routers
            .iter()
            .map(|r| ForwardingTable::build_with_l1_bits(&r.routes, 16))
            .collect()
    }

    /// Walk a stamped packet's address through the per-router tables and
    /// links, router by router, and return the external output it
    /// reaches (purely a model of the tables — no simulation).
    fn model_route(
        plan: &TopologyPlan,
        tables: &[ForwardingTable],
        src_ext: usize,
        d: u8,
        m: u8,
    ) -> (usize, usize) {
        let addr = fabric_addr(d, m);
        let (mut r, _) = plan.ext_in[src_ext];
        let mut hops = 0;
        loop {
            let (hit, _) = tables[r].lookup(Engine::Patricia, addr);
            let out = hit.expect("default route always matches") as usize;
            hops += 1;
            match plan.link_out_of(r, out) {
                Some(li) => r = plan.links[li].to.0,
                None => {
                    let ext = plan
                        .ext_out
                        .iter()
                        .position(|&(er, ep)| (er, ep) == (r, out))
                        .expect("non-link output must be external");
                    return (ext, hops);
                }
            }
            assert!(hops < 4, "routing loop for d={d} m={m}");
        }
    }

    #[test]
    fn every_topology_routes_every_pair_through_every_middle() {
        for t in [Topology::Single4, Topology::Folded8, Topology::Clos16] {
            let p = plan(t);
            let tables = build_tables(&p);
            for src in 0..t.ext_ports() {
                for d in 0..t.ext_ports() as u8 {
                    for m in 0..t.spray_width() as u8 {
                        let (ext, hops) = model_route(&p, &tables, src, d, m);
                        assert_eq!(ext, d as usize, "{t:?}: {src}->{d} via {m} misrouted");
                        let max_hops = match t {
                            Topology::Single4 => 1,
                            _ => 3,
                        };
                        assert!(hops <= max_hops, "{t:?}: {hops} hops");
                    }
                }
            }
        }
    }

    #[test]
    fn folded_clos_switches_local_traffic_in_one_hop() {
        let p = plan(Topology::Folded8);
        let tables = build_tables(&p);
        for leaf in 0..4 {
            let (_, hops) = model_route(&p, &tables, 2 * leaf, (2 * leaf + 1) as u8, 0);
            assert_eq!(hops, 1, "same-leaf traffic must not climb to a spine");
        }
        // Cross-leaf traffic crosses exactly 3 routers (leaf, spine, leaf).
        let (_, hops) = model_route(&p, &tables, 0, 7, 1);
        assert_eq!(hops, 3);
    }

    #[test]
    fn clos16_has_the_paper_shape() {
        let p = plan(Topology::Clos16);
        assert_eq!(p.routers.len(), 12);
        assert_eq!(p.links.len(), 32);
        assert_eq!(p.routers.iter().filter(|r| r.stage == 0).count(), 4);
        assert_eq!(p.routers.iter().filter(|r| r.stage == 1).count(), 4);
        assert_eq!(p.routers.iter().filter(|r| r.stage == 2).count(), 4);
        // Default-route fallback at the ingress stage still reaches the
        // right egress router: middle 0 serves every destination.
        let tables = build_tables(&p);
        for d in 0..16u8 {
            let (ext, _) = model_route(&p, &tables, 5, d, 0);
            assert_eq!(ext, d as usize);
        }
    }

    #[test]
    fn link_index_maps_agree_with_the_scan_on_every_shipped_topology() {
        for t in [Topology::Single4, Topology::Folded8, Topology::Clos16] {
            let p = plan(t);
            // One past NPORTS probes the out-of-range path too.
            for r in 0..p.routers.len() {
                for port in 0..=NPORTS {
                    assert_eq!(
                        p.link_into(r, port),
                        p.link_into_scan(r, port),
                        "{t:?} link_into({r}, {port})"
                    );
                    assert_eq!(
                        p.link_out_of(r, port),
                        p.link_out_of_scan(r, port),
                        "{t:?} link_out_of({r}, {port})"
                    );
                }
            }
            assert_eq!(p.link_into(p.routers.len(), 0), None);
            assert_eq!(p.link_out_of(p.routers.len(), 0), None);
        }
    }

    #[test]
    fn stamp_keeps_checksums_valid_and_addresses_decodable() {
        let mut p = Packet::synthetic(raw_workloads::src_addr(3), fabric_addr(13, 0), 64, 64, 9);
        stamp_middle(&mut p, 2);
        assert!(p.header.checksum_ok());
        assert_eq!(dst_ext_port(&p), 13);
        assert_eq!((p.header.dst >> 8) & 0xff, 2);
        // Stamping is idempotent on the low octets.
        stamp_middle(&mut p, 0);
        assert!(p.header.checksum_ok());
        assert_eq!(dst_ext_port(&p), 13);
    }
}
