//! Property battery: any clean (fault-free) workload on any topology,
//! epoch size, and spray mode must conserve packets exactly and never
//! reorder a flow, and the threaded executor must stay bit-identical to
//! the single-threaded reference on random draws.

use proptest::prelude::*;

use raw_fabric::{FabricConfig, RawFabric, SprayMode, Topology};
use raw_workloads::{generate_n, Arrivals, Pattern, Workload};

fn pick_topology(sel: u8) -> Topology {
    if sel.is_multiple_of(2) {
        Topology::Folded8
    } else {
        Topology::Clos16
    }
}

fn pick_pattern(sel: u8, nports: usize, seed: u64) -> Pattern {
    match sel % 3 {
        0 => Pattern::FabricUniform,
        1 => Pattern::Permutation {
            shift: (seed % nports as u64) as u8,
        },
        _ => {
            let group_size = (nports / 4) as u8;
            Pattern::CrossStageHotspot {
                group: (seed % 4) as u8,
                group_size,
            }
        }
    }
}

fn build(topology: Topology, epoch_sel: u8, spray_sel: u8) -> FabricConfig {
    FabricConfig {
        topology,
        epoch_cycles: [128u64, 256, 512][(epoch_sel % 3) as usize],
        spray: if spray_sel.is_multiple_of(2) {
            SprayMode::Hash
        } else {
            SprayMode::LeastOccupancy
        },
        ..FabricConfig::default()
    }
}

fn run(cfg: FabricConfig, w: &Workload, threaded: bool) -> RawFabric {
    let nports = cfg.topology.ext_ports();
    let mut fab = RawFabric::try_new(cfg).expect("valid config");
    for s in generate_n(w, nports) {
        fab.offer(s.port, s.release, &s.packet);
    }
    assert!(fab.run_until_drained(50_000, threaded), "fabric wedged");
    fab
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Conservation and intra-flow order on a clean fabric: every
    /// accounting plane closes and no flow is ever reordered, whatever
    /// the topology, pattern, epoch size, or spray mode.
    #[test]
    fn clean_runs_conserve_packets_and_flow_order(
        seed in any::<u64>(),
        topo_sel in any::<u8>(),
        pat_sel in any::<u8>(),
        epoch_sel in any::<u8>(),
        spray_sel in any::<u8>(),
    ) {
        let topology = pick_topology(topo_sel);
        let nports = topology.ext_ports();
        let w = Workload {
            pattern: pick_pattern(pat_sel, nports, seed),
            arrivals: Arrivals::Saturation,
            packet_bytes: 64,
            packets_per_port: 6,
            seed,
            ttl: 64,
        };
        let fab = run(build(topology, epoch_sel, spray_sel), &w, false);
        let errs = fab.conservation_errors();
        prop_assert!(errs.is_empty(), "seed {seed:#x}: {errs:?}");
        prop_assert_eq!(fab.offered(), (nports * w.packets_per_port) as u64);
        prop_assert_eq!(
            fab.flow_order_violations(), 0,
            "seed {:#x} reordered a flow", seed
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The threaded executor is bit-identical to the single-threaded
    /// reference on arbitrary draws, not just the curated seeds of the
    /// battery test.
    #[test]
    fn threaded_matches_reference_on_random_draws(
        seed in any::<u64>(),
        topo_sel in any::<u8>(),
        epoch_sel in any::<u8>(),
        spray_sel in any::<u8>(),
    ) {
        let topology = pick_topology(topo_sel);
        let w = Workload {
            pattern: Pattern::FabricUniform,
            arrivals: Arrivals::Saturation,
            packet_bytes: 64,
            packets_per_port: 5,
            seed,
            ttl: 64,
        };
        let cfg = build(topology, epoch_sel, spray_sel);
        let single = run(cfg.clone(), &w, false);
        let threaded = run(cfg, &w, true);
        prop_assert_eq!(single.epochs_run(), threaded.epochs_run());
        prop_assert_eq!(
            single.fingerprint(), threaded.fingerprint(),
            "seed {:#x} diverged between executors", seed
        );
    }
}
