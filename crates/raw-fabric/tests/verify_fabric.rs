//! The whole-fabric static verifier against the real topologies: every
//! shipped configuration proves clean, and every seeded mutant — most
//! importantly the two *historical* deadlock configurations this repo
//! actually hit and fixed — is rejected statically with its specific
//! diagnostic, before a single router would be built.

use proptest::prelude::*;

use raw_chaos::{ChaosFabric, FabricFaultPlan, FaultPlan, LinkStallSpec};
use raw_fabric::{
    plan, verify_fabric, verify_spec, FabricConfig, FabricConfigError, FabricError, RawFabric,
    SprayMode, Topology,
};
use raw_workloads::{generate_n, Arrivals, Pattern, Workload};
use raw_xbar::IngressQueueing;

const SHIPPED: [Topology; 3] = [Topology::Single4, Topology::Folded8, Topology::Clos16];

fn cfg_for(t: Topology) -> FabricConfig {
    FabricConfig {
        topology: t,
        ..FabricConfig::default()
    }
}

fn codes(cfg: &FabricConfig) -> Vec<&'static str> {
    verify_fabric(cfg).diags.iter().map(|d| d.code).collect()
}

// ---------------------------------------------------------------------
// Positive: everything the repo ships proves clean.
// ---------------------------------------------------------------------

#[test]
fn every_shipped_topology_and_spray_verifies_clean() {
    for t in SHIPPED {
        for spray in [SprayMode::Hash, SprayMode::LeastOccupancy] {
            for epoch in [128u64, 256, 512] {
                let cfg = FabricConfig {
                    spray,
                    epoch_cycles: epoch,
                    ..cfg_for(t)
                };
                let v = verify_fabric(&cfg);
                assert!(
                    v.diags.is_empty(),
                    "{t:?}/{spray:?}/epoch {epoch}: {:?}",
                    v.diags
                );
                // The analyses actually covered something.
                assert!(v.route_walks > 0);
                assert!(v.coverage_points > 0);
                if t != Topology::Single4 {
                    assert!(v.cdg_nodes > 0 && v.links_checked > 0);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Historical deadlock 1: the pre-VOQ default. FIFO ingress head-of-line
// coupling closes the folded topology's leaf<->spine channel-dependency
// cycle — found dynamically back then, caught statically now.
// ---------------------------------------------------------------------

#[test]
fn pre_voq_fifo_ingress_on_folded8_is_rejected_as_rv502() {
    let mut cfg = cfg_for(Topology::Folded8);
    cfg.router.queueing = IngressQueueing::Fifo;
    let got = codes(&cfg);
    assert!(got.contains(&"RV502"), "{got:?}");
    assert!(
        !got.contains(&"RV501"),
        "cycle must be escape-fixable: {got:?}"
    );

    // try_new refuses to build it, with the verifier's diagnostics.
    match RawFabric::try_new(cfg) {
        Err(FabricError::Verify(diags)) => {
            assert!(diags.iter().any(|d| d.code == "RV502"), "{diags:?}")
        }
        Err(other) => panic!("expected Verify rejection, got {other}"),
        Ok(_) => panic!("expected Verify rejection, fabric was built"),
    }
}

/// Sharpness: the 3-stage Clos is feed-forward — FIFO ingress gives up
/// HOL throughput but cannot deadlock it, and the verifier must know
/// the difference rather than blanket-ban FIFO.
#[test]
fn fifo_ingress_on_feed_forward_clos16_stays_clean() {
    let mut cfg = cfg_for(Topology::Clos16);
    cfg.router.queueing = IngressQueueing::Fifo;
    assert_eq!(codes(&cfg), Vec::<&str>::new());
    assert!(RawFabric::try_new(cfg).is_ok());
}

// ---------------------------------------------------------------------
// Historical deadlock 2: the pre-min-1 receive window. A zero floor
// lets spray skew pin every drain window along the leaf<->spine cycle
// at zero permanently.
// ---------------------------------------------------------------------

#[test]
fn zero_receive_window_floor_on_folded8_is_rejected_as_rv503() {
    let mut cfg = cfg_for(Topology::Folded8);
    cfg.min_receive_window = 0;
    let got = codes(&cfg);
    assert!(got.contains(&"RV503"), "{got:?}");
    assert!(!got.contains(&"RV501"), "{got:?}");
    assert!(matches!(
        RawFabric::try_new(cfg),
        Err(FabricError::Verify(_))
    ));
}

#[test]
fn zero_receive_window_floor_on_feed_forward_clos16_stays_clean() {
    let mut cfg = cfg_for(Topology::Clos16);
    cfg.min_receive_window = 0;
    assert_eq!(codes(&cfg), Vec::<&str>::new());
}

/// Both fixes removed at once on the cyclic topology: still caught (the
/// FIFO coupling alone closes the cycle).
#[test]
fn both_escape_fixes_removed_is_still_caught_statically() {
    let mut cfg = cfg_for(Topology::Folded8);
    cfg.router.queueing = IngressQueueing::Fifo;
    cfg.min_receive_window = 0;
    let got = codes(&cfg);
    assert!(got.contains(&"RV502") || got.contains(&"RV503"), "{got:?}");
}

// ---------------------------------------------------------------------
// Routing mutants (RV6xx): truncated tables, misroutes, dangling
// ports, spray disagreements.
// ---------------------------------------------------------------------

#[test]
fn truncating_a_middle_router_table_is_a_coverage_hole() {
    let mut p = plan(Topology::Clos16);
    // Middle router 4 loses its d=15 rule *and* the default route — the
    // /16 space is no longer covered.
    p.routers[4]
        .routes
        .retain(|r| r.len == 16 && (r.prefix >> 16) & 0xff != 15);
    let v = verify_spec(&p, &cfg_for(Topology::Clos16));
    assert!(v.diags.iter().any(|d| d.code == "RV601"), "{:?}", v.diags);
}

#[test]
fn a_misrouting_middle_stage_is_a_misdelivery() {
    let mut p = plan(Topology::Clos16);
    // Middle router 4 sends d=0 to egress port 3 (egress router 11)
    // instead of port 0: delivered, but at the wrong external output.
    for r in &mut p.routers[4].routes {
        if r.len == 16 && (r.prefix >> 16) & 0xff == 0 {
            r.next_hop = 3;
        }
    }
    let v = verify_spec(&p, &cfg_for(Topology::Clos16));
    assert!(v.diags.iter().any(|d| d.code == "RV603"), "{:?}", v.diags);
}

#[test]
fn a_route_out_an_unwired_port_is_a_dangling_egress() {
    let mut p = plan(Topology::Clos16);
    for r in &mut p.routers[4].routes {
        if r.len == 16 && (r.prefix >> 16) & 0xff == 7 {
            r.next_hop = 7; // no such port on a 4-port router
        }
    }
    let v = verify_spec(&p, &cfg_for(Topology::Clos16));
    assert!(v.diags.iter().any(|d| d.code == "RV604"), "{:?}", v.diags);
}

#[test]
fn a_spine_bouncing_traffic_back_down_is_a_routing_loop() {
    let mut p = plan(Topology::Folded8);
    // Spine 4 sends d=0 to leaf 1 instead of leaf 0; leaf 1 sprays it
    // back up — the walk revisits the spine.
    for r in &mut p.routers[4].routes {
        if r.len == 16 && (r.prefix >> 16) & 0xff == 0 {
            r.next_hop = 1;
        }
    }
    let v = verify_spec(&p, &cfg_for(Topology::Folded8));
    assert!(v.diags.iter().any(|d| d.code == "RV602"), "{:?}", v.diags);
}

#[test]
fn swapped_ingress_uplinks_break_spray_agreement() {
    let mut p = plan(Topology::Clos16);
    // The table still routes (d, m) out port m, but the declared uplink
    // map now claims spray 0 rides what is physically uplink 1.
    p.uplinks[0].swap(0, 1);
    let v = verify_spec(&p, &cfg_for(Topology::Clos16));
    assert!(v.diags.iter().any(|d| d.code == "RV605"), "{:?}", v.diags);
}

// ---------------------------------------------------------------------
// Credit mutants (RV7xx), and the typed-config-error agreement: the
// dynamic gate (`FabricConfig::validate`) and the static proof assign
// the same code to the same defect.
// ---------------------------------------------------------------------

#[test]
fn credit_mutants_fail_validate_and_verify_with_the_same_code() {
    let undersized = FabricConfig {
        link_capacity: 10,
        ..cfg_for(Topology::Clos16)
    };
    let mut store_fwd = cfg_for(Topology::Folded8);
    store_fwd.router.cut_through = false;
    let zero_epoch = FabricConfig {
        epoch_cycles: 0,
        ..cfg_for(Topology::Clos16)
    };
    for (cfg, want) in [
        (undersized, "RV701"),
        (store_fwd, "RV704"),
        (zero_epoch, "RV705"),
    ] {
        let err = cfg.validate().expect_err("mutant must fail validate");
        assert_eq!(err.code(), want, "{err:?}");
        let got = codes(&cfg);
        assert!(got.contains(&want), "verifier said {got:?}, wanted {want}");
        // try_new rejects it at the (cheaper) scalar gate, typed.
        match RawFabric::try_new(cfg) {
            Err(FabricError::Config(e)) => assert_eq!(e.code(), want),
            Err(other) => panic!("expected Config rejection, got {other}"),
            Ok(_) => panic!("expected Config rejection, fabric was built"),
        }
    }
}

#[test]
fn capacity_error_carries_the_sizing_numbers() {
    let cfg = FabricConfig {
        link_capacity: 10,
        ..cfg_for(Topology::Clos16)
    };
    match cfg.validate() {
        Err(FabricConfigError::CapacityBelowBurst { capacity, bound }) => {
            assert_eq!(capacity, 10);
            assert_eq!(bound, cfg.emission_bound());
        }
        other => panic!("expected CapacityBelowBurst, got {other:?}"),
    }
}

/// An understated stall threshold breaks the symbolic occupancy proof
/// (RV703) even when every scalar check passes — only expressible at
/// the spec level, since `FabricConfig` derives the threshold from the
/// epoch. This is the check that would catch a future refactor
/// decoupling the executor's threshold from the true emission bound.
#[test]
fn understated_stall_threshold_breaks_the_occupancy_proof() {
    let cfg = cfg_for(Topology::Clos16);
    let mut spec = raw_fabric::verify::build_spec(&plan(Topology::Clos16), &cfg);
    spec.credit.emission_bound = cfg.emission_bound() / 2;
    let v = raw_verify::fabric::verify_fabric(&spec);
    assert!(v.diags.iter().any(|d| d.code == "RV703"), "{:?}", v.diags);
}

// ---------------------------------------------------------------------
// Property sweep + differential: whatever the verifier accepts must
// also survive dynamically, faults included.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every shipped topology × spray × sane credit sizing verifies
    /// clean: zero false positives across the configuration space the
    /// repo actually exposes.
    #[test]
    fn topology_spray_capacity_sweep_has_no_false_positives(
        topo_sel in 0usize..3,
        spray_sel in any::<bool>(),
        epoch_sel in 0usize..3,
        cap_extra in 0usize..64,
        derive_cap in any::<bool>(),
    ) {
        let mut cfg = cfg_for(SHIPPED[topo_sel]);
        cfg.spray = if spray_sel { SprayMode::Hash } else { SprayMode::LeastOccupancy };
        cfg.epoch_cycles = [128u64, 256, 512][epoch_sel];
        cfg.link_capacity = if derive_cap {
            0 // derive: 3 epochs of buffer
        } else {
            cfg.emission_bound() + 1 + cap_extra
        };
        prop_assert!(cfg.validate().is_ok());
        let v = verify_fabric(&cfg);
        prop_assert!(v.diags.is_empty(), "{:?}: {:?}", cfg.topology, v.diags);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Differential gate: a config the static verifier accepts must
    /// close its conservation books under a chaos campaign (corruption
    /// at every input plus an inter-router link stall). The verifier's
    /// "statically safe" and the executor's "dynamically safe" have to
    /// agree on the accept side, not just the reject side.
    #[test]
    fn verifier_accepted_configs_survive_a_chaos_campaign(
        seed in any::<u64>(),
        topo_sel in 1usize..3, // Folded8 / Clos16 — the fabrics with links
        epoch_sel in 0usize..2,
    ) {
        let mut cfg = cfg_for(SHIPPED[topo_sel]);
        cfg.epoch_cycles = [256u64, 512][epoch_sel];
        prop_assert!(verify_fabric(&cfg).diags.is_empty());

        let mut packet = FaultPlan::zero(seed);
        packet.header_flip_ppm = 80_000;
        packet.payload_flip_ppm = 80_000;
        packet.ttl_expire_ppm = 40_000;
        let fault_plan = FabricFaultPlan {
            packet,
            link_stalls: vec![LinkStallSpec {
                link: (seed % 16) as usize,
                start_epoch: 2,
                epochs: 3,
            }],
            ext_input_pauses: Vec::new(),
            ext_output_stalls: Vec::new(),
        };
        let nports = cfg.topology.ext_ports();
        let w = Workload {
            pattern: Pattern::FabricUniform,
            arrivals: Arrivals::Saturation,
            packet_bytes: 64,
            packets_per_port: 6,
            seed,
            ttl: 64,
        };
        let mut cf = ChaosFabric::try_new(cfg, fault_plan).unwrap();
        for sp in generate_n(&w, nports) {
            cf.offer(sp.port, sp.release, &sp.packet);
        }
        prop_assert!(cf.fabric.run_until_drained(50_000, false), "fabric wedged");
        let errs = cf.fabric.conservation_errors();
        prop_assert!(errs.is_empty(), "seed {seed:#x}: {errs:?}");
        prop_assert_eq!(
            cf.fabric.offered(),
            (nports * w.packets_per_port) as u64
        );
    }
}
