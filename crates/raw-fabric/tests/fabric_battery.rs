//! End-to-end fabric battery: the threaded executor must be
//! bit-identical to the single-threaded reference, delivery must match
//! the workload's own accounting, and congestion must engage the
//! credit-based backpressure instead of losing packets.

use raw_fabric::{FabricConfig, RawFabric, SprayMode, Topology};
use raw_workloads::{generate_n, Arrivals, Pattern, Workload};

fn workload(pattern: Pattern, seed: u64, packets_per_port: usize) -> Workload {
    Workload {
        pattern,
        arrivals: Arrivals::Saturation,
        packet_bytes: 64,
        packets_per_port,
        seed,
        ttl: 64,
    }
}

fn cfg(topology: Topology, spray: SprayMode) -> FabricConfig {
    FabricConfig {
        topology,
        epoch_cycles: 256,
        spray,
        ..FabricConfig::default()
    }
}

/// Build a fabric, offer the whole schedule, run it dry, and check the
/// books before handing it back for test-specific assertions.
fn run_fabric(cfg: FabricConfig, w: &Workload, threaded: bool) -> RawFabric {
    let nports = cfg.topology.ext_ports();
    let mut fab = RawFabric::try_new(cfg).expect("valid config");
    for s in generate_n(w, nports) {
        fab.offer(s.port, s.release, &s.packet);
    }
    assert!(
        fab.run_until_drained(50_000, threaded),
        "fabric failed to drain: offered={} delivered={} dropped={}",
        fab.offered(),
        fab.delivered_count(),
        fab.dropped_count()
    );
    let errs = fab.conservation_errors();
    assert!(errs.is_empty(), "conservation violated: {errs:?}");
    fab
}

#[test]
fn threaded_execution_is_bit_identical_to_the_reference() {
    // >= 3 seeds x both spray modes, per the acceptance bar.
    for seed in [11u64, 22, 33] {
        for spray in [SprayMode::Hash, SprayMode::LeastOccupancy] {
            let w = workload(Pattern::FabricUniform, seed, 12);
            let single = run_fabric(cfg(Topology::Clos16, spray), &w, false);
            let threaded = run_fabric(cfg(Topology::Clos16, spray), &w, true);
            assert_eq!(single.delivered_count(), threaded.delivered_count());
            assert_eq!(single.epochs_run(), threaded.epochs_run());
            assert_eq!(
                single.fingerprint(),
                threaded.fingerprint(),
                "seed {seed} spray {} diverged",
                spray.name()
            );
        }
    }
}

#[test]
fn replaying_the_same_schedule_reproduces_the_fingerprint() {
    let w = workload(Pattern::FabricUniform, 7, 10);
    let a = run_fabric(cfg(Topology::Clos16, SprayMode::LeastOccupancy), &w, true);
    let b = run_fabric(cfg(Topology::Clos16, SprayMode::LeastOccupancy), &w, true);
    assert_eq!(a.fingerprint(), b.fingerprint());
}

#[test]
fn uniform_delivery_matches_the_workload_accounting() {
    let w = workload(Pattern::FabricUniform, 5, 12);
    let sched = generate_n(&w, 16);
    let expected = raw_workloads::expected_per_output_n(&sched, 16);
    let fab = run_fabric(cfg(Topology::Clos16, SprayMode::Hash), &w, false);
    assert_eq!(fab.dropped_count(), 0, "clean uniform run must not drop");
    for (ext, &want) in expected.iter().enumerate() {
        assert_eq!(
            fab.delivered(ext).len(),
            want,
            "external port {ext} delivery mismatch"
        );
    }
    assert_eq!(fab.flow_order_violations(), 0);
}

#[test]
fn folded_clos_delivers_in_order_on_both_spray_modes() {
    for spray in [SprayMode::Hash, SprayMode::LeastOccupancy] {
        let w = workload(Pattern::FabricUniform, 9, 16);
        let fab = run_fabric(cfg(Topology::Folded8, spray), &w, true);
        assert_eq!(fab.dropped_count(), 0);
        assert_eq!(fab.delivered_count(), fab.offered());
        assert_eq!(fab.flow_order_violations(), 0, "spray {}", spray.name());
    }
}

#[test]
fn single_router_topology_is_a_working_degenerate_case() {
    let w = workload(Pattern::Uniform, 3, 20);
    let fab = run_fabric(cfg(Topology::Single4, SprayMode::Hash), &w, false);
    assert_eq!(fab.delivered_count(), fab.offered());
    let s = fab.summary();
    assert!(s.links.is_empty(), "a single router has no fabric links");
    assert_eq!(s.backpressure_epochs, 0);
}

#[test]
fn cross_stage_hotspot_engages_backpressure_without_loss_accounting_errors() {
    // All 16 sources target egress group 2 (external ports 8..12), and
    // that group's external outputs are frozen for the first epochs: the
    // egress router backs up, the four middle->egress links into it
    // fill, and credits must stall the middle stage. (The hotspot alone
    // is not enough — a merely *contended* egress router sheds load as
    // classified drops at wire speed; only a *slow* receiver starves
    // link credits.)
    let w = workload(
        Pattern::CrossStageHotspot {
            group: 2,
            group_size: 4,
        },
        17,
        24,
    );
    let fcfg = cfg(Topology::Clos16, SprayMode::Hash);
    let stall_cycles = 12 * fcfg.epoch_cycles;
    let mut fab = RawFabric::try_new(fcfg).expect("valid config");
    for ext in 8..12 {
        fab.stall_ext_output(ext, 0, stall_cycles);
    }
    for s in generate_n(&w, 16) {
        fab.offer(s.port, s.release, &s.packet);
    }
    assert!(fab.run_until_drained(50_000, true));
    let errs = fab.conservation_errors();
    assert!(errs.is_empty(), "conservation violated: {errs:?}");
    let s = fab.summary();
    assert!(
        s.backpressure_epochs > 0,
        "4:1 overload never tripped link credits"
    );
    assert_eq!(s.offered, s.delivered + s.dropped);
    // Only ports in the hotspot group receive anything.
    for ext in 0..16 {
        let got = fab.delivered(ext).len();
        if (8..12).contains(&ext) {
            assert!(got > 0, "hotspot port {ext} starved");
        } else {
            assert_eq!(got, 0, "port {ext} outside the hotspot got traffic");
        }
    }
}

#[test]
fn link_stalls_delay_but_never_lose_packets() {
    let w = workload(Pattern::FabricUniform, 21, 10);
    let mut cfg_stalled = cfg(Topology::Clos16, SprayMode::Hash);
    cfg_stalled.epoch_cycles = 256;
    let mut fab = RawFabric::try_new(cfg_stalled).expect("valid config");
    for s in generate_n(&w, 16) {
        fab.offer(s.port, s.release, &s.packet);
    }
    // Freeze several early links across the first epochs.
    for link in [0, 5, 17] {
        fab.stall_link(link, 1, 4);
    }
    assert!(fab.run_until_drained(50_000, true));
    let errs = fab.conservation_errors();
    assert!(errs.is_empty(), "conservation violated: {errs:?}");
    assert_eq!(fab.delivered_count(), fab.offered());
    let s = fab.summary();
    let stalled: u64 = s.links.iter().map(|l| l.stalled_epochs).sum();
    assert!(stalled >= 12, "stall windows were not honored: {stalled}");
}
