//! # raw-verify — static verification of Rotating Crossbar schedules
//!
//! The paper's fabric is *compile-time scheduled*: whether the static
//! network deadlocks, overflows a 4-deep link FIFO, or misroutes a word
//! is a property of the generated switch programs and jump tables, not of
//! runtime arbitration (§5.5, §6.2). This crate proves those properties
//! without running the simulator, over four analyses:
//!
//! 1. **Route conflict & geometry** ([`conflict`], `RV1xx`) — per switch
//!    instruction, no crossbar output is driven twice on one net, `WaitPc`
//!    carries no routes, every route on an off-grid link uses a declared
//!    external port, programs fit switch instruction memory.
//! 2. **Lockstep channel dataflow** ([`lockstep`], `RV2xx`) — an abstract
//!    interpreter steps every switch program of a fabric together over one
//!    schedule period, tracking symbolic FIFO occupancies, and proves the
//!    schedule needs at most the hardware's 4-deep link FIFOs, that every
//!    inter-tile wire's sends match its receives, and that every switch
//!    re-synchronizes at its `WaitPc` join.
//! 3. **Deadlock freedom** ([`lockstep`], `RV3xx`) — when the abstract
//!    machine stalls, the blocking wait-for graph (switch waiting on the
//!    producer of its empty source wire) is extracted; a cycle is the
//!    static signature of the §5.5 static-network deadlock.
//! 4. **Jump-table model check** ([`jumptable`], `RV4xx`) — every global
//!    `(token, hdrs)` index (2,500 unicast, 16⁴·4 multicast, both
//!    policies) is replayed against the [`raw_xbar::config::schedule`]
//!    oracle: the minimized per-tile entries must route identically, no
//!    output may be double-granted, the token holder's bid must win, and
//!    every minimized body routine must decode back to its local
//!    configuration.
//! 5. **Whole-fabric verification** ([`fabric`], `RV5xx`–`RV7xx`) — one
//!    level up from a single router: channel-dependency-graph deadlock
//!    proofs over a multi-router fabric's links, line cards, and
//!    credit-return loops (with the VOQ-ingress and min-1 receive-window
//!    escape fixes modeled explicitly), routing-soundness walks over the
//!    per-router LPM tables, and a symbolic per-link credit-sizing
//!    proof. `raw-fabric` gates `RawFabric::try_new` on this analysis.
//!
//! ## Abstract domain
//!
//! The lockstep interpreter mirrors the machine's group-fire semantics
//! (routes sharing a source fire together, an instruction completes when
//! all routes fired, words pushed at step *s* become visible at *s*+1)
//! but gives every wire **infinite capacity** and records the high-water
//! mark instead. Soundness: if the high-water mark never exceeds the real
//! capacity, backpressure never engages in the capped machine, so the
//! capped machine's dataflow is identical to the abstract one; if it does
//! exceed the capacity the schedule is reported (`RV204`) as requiring
//! more buffering than the hardware has. Tile processors are modeled as
//! always-ready sources/sinks (the maximal-rate abstraction) unless a
//! slot declares a finite `proc_words` budget; devices on declared
//! external ports are always-ready.

pub mod conflict;
pub mod fabric;
pub mod jumptable;
pub mod lockstep;
pub mod sched;

use serde::Serialize;

use raw_sim::{Dir, GridDim, SwitchProgram, TileId};

/// Which analysis produced a diagnostic.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Analysis {
    RouteConflict,
    Lockstep,
    Deadlock,
    JumpTable,
    /// Fabric-level channel-dependency deadlock analysis (`RV5xx`).
    FabricDeadlock,
    /// Fabric-level routing soundness (`RV6xx`).
    FabricRouting,
    /// Fabric-level symbolic credit sizing (`RV7xx`).
    FabricCredits,
    /// Scheduler matching validity & ring routability (`RV801`).
    SchedMatching,
    /// Scheduler starvation freedom / bounded wait (`RV802`).
    SchedStarvation,
    /// Scheduler crosspoint occupancy bound (`RV803`).
    SchedOccupancy,
}

// The vendored serde shim only derives on structs; serialize the enum as
// its variant name by hand.
impl Serialize for Analysis {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(format!("{self:?}"))
    }
}

/// One structured violation, with a stable error code.
///
/// Codes: `RV101` double-driven output, `RV102` undeclared off-grid port,
/// `RV103` `WaitPc` carrying routes, `RV104` program exceeds switch IMEM,
/// `RV105` route/net slot mismatch, `RV106` route count exceeds the fired
/// mask, `RV107` jump target out of bounds; `RV201` unmatched send/recv
/// (residual words at period end), `RV202` step budget exceeded
/// (livelock), `RV203` switch not re-synchronized at a `WaitPc` at period
/// end, `RV204` schedule requires FIFO depth beyond the hardware's;
/// `RV301` cyclic wait-for (deadlock), `RV302` stalled on a producer that
/// can never fire; `RV401` jump-table entry routes differently from the
/// oracle, `RV402` grant bit differs from the oracle, `RV403` output
/// granted twice, `RV404` token priority violated, `RV405` body routine
/// does not implement its local configuration, `RV406` assembly jump
/// table / generated tile program inconsistent.
///
/// Fabric-level codes ([`fabric`]): `RV501` structural channel-dependency
/// cycle (independent of the escape valves), `RV502` FIFO-ingress
/// head-of-line coupling closes a cycle (VOQ breaks it), `RV503`
/// receive-window pinning closes a cycle (the min-1 escape slot breaks
/// it); `RV601` LPM table does not cover the fabric address space,
/// `RV602` routing loop, `RV603` misdelivery, `RV604` route exits a port
/// that is neither a link nor a declared external output, `RV605`
/// ingress table disagrees with the declared spray uplink map; `RV701`
/// link capacity below the stall threshold plus progress room, `RV702`
/// non-draining link, `RV703` declared stall threshold cannot absorb the
/// derived worst-case epoch burst, `RV704` store-and-forward egress has
/// no emission bound, `RV705` zero-length epoch.
///
/// Scheduler codes ([`sched`]): `RV801` invalid or non-ring-routable
/// matching (port conflict, unrequested grant), `RV802` a persistently
/// requesting input starves past the wait bound, `RV803` a crosspoint
/// buffer exceeds its declared capacity.
#[derive(Clone, Debug, Serialize)]
pub struct Diag {
    pub code: &'static str,
    pub analysis: Analysis,
    /// Program or fabric the violation was found in.
    pub program: String,
    /// Tile, if the violation is localized to one.
    pub tile: Option<u16>,
    /// Static network, if relevant.
    pub net: Option<usize>,
    /// Switch program counter, if relevant.
    pub pc: Option<usize>,
    /// Wire (as `tile:net:dir` or a port name), if relevant.
    pub wire: Option<String>,
    /// Abstract lockstep step, if relevant.
    pub step: Option<usize>,
    pub msg: String,
}

impl Diag {
    pub fn new(code: &'static str, analysis: Analysis, program: &str, msg: String) -> Diag {
        Diag {
            code,
            analysis,
            program: program.to_string(),
            tile: None,
            net: None,
            pc: None,
            wire: None,
            step: None,
            msg,
        }
    }

    pub fn at_tile(mut self, tile: TileId) -> Diag {
        self.tile = Some(tile.0);
        self
    }

    pub fn at_net(mut self, net: usize) -> Diag {
        self.net = Some(net);
        self
    }

    pub fn at_pc(mut self, pc: usize) -> Diag {
        self.pc = Some(pc);
        self
    }

    pub fn at_wire(mut self, wire: String) -> Diag {
        self.wire = Some(wire);
        self
    }

    pub fn at_step(mut self, step: usize) -> Diag {
        self.step = Some(step);
        self
    }
}

impl std::fmt::Display for Diag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} [{}]", self.code, self.program)?;
        if let Some(t) = self.tile {
            write!(f, " tile {t}")?;
        }
        if let Some(n) = self.net {
            write!(f, " net {n}")?;
        }
        if let Some(pc) = self.pc {
            write!(f, " pc {pc}")?;
        }
        if let Some(w) = &self.wire {
            write!(f, " wire {w}")?;
        }
        if let Some(s) = self.step {
            write!(f, " step {s}")?;
        }
        write!(f, ": {}", self.msg)
    }
}

/// One switch processor in a fabric under verification.
#[derive(Clone, Debug)]
pub struct SwitchSlot {
    pub tile: TileId,
    pub net: usize,
    pub program: SwitchProgram,
    /// Routine start PCs the tile processor steers the switch through
    /// during one schedule period (§6.5 `swpc`), in order. Empty means the
    /// switch free-runs from PC 0 until it halts.
    pub script: Vec<usize>,
    /// Words the tile processor will push into `$csto` over the period,
    /// or `None` for the always-ready abstraction.
    pub proc_words: Option<usize>,
    /// Free-running service loops (e.g. the egress network-1
    /// processor-to-line loop) never halt; they get conflict and geometry
    /// checks but are excluded from the lockstep completion criteria.
    pub free_running: bool,
}

impl SwitchSlot {
    pub fn new(tile: TileId, net: usize, program: SwitchProgram, script: Vec<usize>) -> SwitchSlot {
        SwitchSlot {
            tile,
            net,
            program,
            script,
            proc_words: None,
            free_running: false,
        }
    }
}

/// A fabric: switch programs plus the geometry and external-port context
/// the analyses check against.
#[derive(Clone, Debug)]
pub struct FabricModel {
    pub name: String,
    pub dim: GridDim,
    pub slots: Vec<SwitchSlot>,
    /// Declared off-grid ports words may legitimately *enter* through
    /// (line-card receive sides): `(tile, net, dir)`.
    pub ext_in: Vec<(TileId, usize, Dir)>,
    /// Declared off-grid ports words may legitimately *leave* through.
    pub ext_out: Vec<(TileId, usize, Dir)>,
}

impl FabricModel {
    pub fn new(name: &str, dim: GridDim) -> FabricModel {
        FabricModel {
            name: name.to_string(),
            dim,
            slots: Vec::new(),
            ext_in: Vec::new(),
            ext_out: Vec::new(),
        }
    }
}

/// Per-analysis outcome in the machine-readable report.
#[derive(Clone, Debug, Serialize)]
pub struct AnalysisReport {
    pub name: &'static str,
    pub code_prefix: &'static str,
    pub pass: bool,
    /// Units checked, analysis-specific (instructions, scenarios, global
    /// indices, body routines).
    pub checked: u64,
    pub detail: String,
}

/// The full verification report (`results/verify.json`).
#[derive(Clone, Debug, Serialize)]
pub struct VerifyReport {
    pub pass: bool,
    /// Every program/fabric the analyses covered.
    pub programs_checked: Vec<String>,
    pub analyses: Vec<AnalysisReport>,
    /// Config-space coverage counters.
    pub coverage: Coverage,
    pub diagnostics: Vec<Diag>,
}

#[derive(Clone, Debug, Default, Serialize)]
pub struct Coverage {
    /// Unicast global indices model-checked, and the space size (must be
    /// 2500/2500 per policy).
    pub unicast_points: u64,
    pub unicast_space: u64,
    /// Multicast global indices model-checked (16⁴·4 per policy).
    pub multicast_points: u64,
    pub multicast_space: u64,
    /// Minimized body routines decoded back to their configurations, and
    /// the minimized-set size (the paper's "32/32").
    pub body_routines: u64,
    pub body_routine_space: u64,
    /// Distinct lockstep scenarios interpreted (deduplicated by joint
    /// per-tile configuration signature).
    pub lockstep_scenarios: u64,
    /// Highest abstract FIFO occupancy any verified schedule requires.
    pub max_fifo_high_water: u64,
    /// Scheduling policies covered.
    pub policies: u64,
    /// Fabric topologies statically verified (RV5xx–RV7xx).
    pub fabric_topologies: u64,
    /// Channel-dependency-graph nodes across all verified fabrics.
    pub fabric_cdg_nodes: u64,
    /// Channel-dependency-graph edges across all verified fabrics.
    pub fabric_cdg_edges: u64,
    /// `(source, destination, spray)` routing walks executed.
    pub fabric_route_walks: u64,
    /// Router × fabric-address coverage points checked.
    pub fabric_coverage_points: u64,
    /// Inter-router links credit-checked.
    pub fabric_links: u64,
    /// Scheduler matchings checked for validity/routability (RV801).
    pub sched_matchings: u64,
    /// Persistent-demand trace slots driven over the arbiters
    /// (RV802/RV803).
    pub sched_trace_slots: u64,
}

/// Options for [`verify_all`].
#[derive(Clone, Debug)]
pub struct VerifyOptions {
    /// Quanta to verify the generated router fabrics at.
    pub quanta: Vec<usize>,
    /// Also lockstep-verify the multicast configuration space (the model
    /// check always covers it; lockstep scenario extraction over 16⁴·4
    /// points costs a scan).
    pub lockstep_multicast: bool,
    /// Ring sizes beyond 4 to check `scale::ring_walk` invariants on
    /// (sampled; n=4 is always exhaustive).
    pub scale_ns: Vec<usize>,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            quanta: vec![16, 64],
            lockstep_multicast: true,
            scale_ns: vec![6, 8],
        }
    }
}

/// Run every analysis over every program the repo generates: the crossbar
/// / ingress / egress switch code at each requested quantum, one schedule
/// period per reachable joint configuration, the full jump-table spaces
/// under both policies, the generated crossbar tile assembly, and the
/// generalized `scale` ring walk.
pub fn verify_all(opts: &VerifyOptions) -> VerifyReport {
    let mut diags: Vec<Diag> = Vec::new();
    let mut programs: Vec<String> = Vec::new();
    let mut cov = Coverage::default();
    let mut conflict_instrs = 0u64;
    let mut lockstep_steps = 0u64;

    use raw_xbar::config::{ConfigSpace, SchedPolicy};
    use raw_xbar::layout::RouterLayout;

    let layout = RouterLayout::canonical();
    let policies = [SchedPolicy::ShortestFirst, SchedPolicy::CwFirst];

    let sweep = |cs: &ConfigSpace,
                 quantum: usize,
                 name: &str,
                 diags: &mut Vec<Diag>,
                 cov: &mut Coverage,
                 conflict_instrs: &mut u64,
                 lockstep_steps: &mut u64| {
        // Conflict/geometry checks over the full installed programs
        // (scenario scripts reference only routine subsets; this pass
        // walks every instruction of every program once, including the
        // free-running egress network-1 loop).
        let model = lockstep::router_fabric_model(&layout, cs, quantum, name);
        *conflict_instrs += conflict::check_fabric(&model, diags);
        // Lockstep + deadlock over each reachable joint configuration.
        let mut max_hw = 0u64;
        let n = lockstep::for_each_router_scenario(&layout, cs, quantum, name, |scenario| {
            let out = lockstep::run(scenario, diags);
            max_hw = max_hw.max(out.max_high_water);
            *lockstep_steps += out.steps;
        });
        cov.lockstep_scenarios += n;
        cov.max_fifo_high_water = cov.max_fifo_high_water.max(max_hw);
    };

    for policy in policies {
        let cs = ConfigSpace::enumerate(policy);
        for &quantum in &opts.quanta {
            let name = format!("router-fabric-{policy:?}-q{quantum}");
            programs.push(name.clone());
            sweep(
                &cs,
                quantum,
                &name,
                &mut diags,
                &mut cov,
                &mut conflict_instrs,
                &mut lockstep_steps,
            );
        }
        if opts.lockstep_multicast {
            let quantum = *opts.quanta.iter().min().unwrap_or(&16);
            let csm = ConfigSpace::enumerate_multicast(policy);
            let name = format!("router-fabric-mcast-{policy:?}-q{quantum}");
            programs.push(name.clone());
            sweep(
                &csm,
                quantum,
                &name,
                &mut diags,
                &mut cov,
                &mut conflict_instrs,
                &mut lockstep_steps,
            );
        }
    }

    // Analysis 4: exhaustive jump-table model check, both policies, both
    // alphabets, plus body-routine decode and the assembly table image.
    for policy in [SchedPolicy::ShortestFirst, SchedPolicy::CwFirst] {
        cov.policies += 1;
        let cs = ConfigSpace::enumerate(policy);
        programs.push(format!("jump-table-unicast-{policy:?}"));
        let c = jumptable::check_space(&cs, &mut diags);
        cov.unicast_points += c.points;
        cov.unicast_space += c.space;

        let csm = ConfigSpace::enumerate_multicast(policy);
        programs.push(format!("jump-table-multicast-{policy:?}"));
        let c = jumptable::check_space(&csm, &mut diags);
        cov.multicast_points += c.points;
        cov.multicast_space += c.space;

        for &quantum in &opts.quanta {
            let b = jumptable::check_body_routines(&layout, &cs, quantum, &mut diags);
            cov.body_routines = cov.body_routines.max(b);
        }
        cov.body_routine_space = cov.body_routine_space.max(cs.configs.len() as u64);
    }

    // The §6.5 generated tile assembly: table image consistent with the
    // config space, program assembles and every instruction validates.
    programs.push("asm-crossbar".into());
    jumptable::check_asm_crossbar(&layout, &mut diags);

    // The generalized scale.rs ring walk: oracle invariants, n=4
    // exhaustive, larger rings sampled.
    programs.push("scale-ring-walk".into());
    jumptable::check_ring_walk(&opts.scale_ns, &mut diags);

    let fail = |a: Analysis| diags.iter().filter(|d| d.analysis == a).count();
    let analyses = vec![
        AnalysisReport {
            name: "route-conflict",
            code_prefix: "RV1",
            pass: fail(Analysis::RouteConflict) == 0,
            checked: conflict_instrs,
            detail: "switch instructions checked for output conflicts, WaitPc purity, \
                     geometry, and IMEM fit"
                .into(),
        },
        AnalysisReport {
            name: "lockstep-dataflow",
            code_prefix: "RV2",
            pass: fail(Analysis::Lockstep) == 0,
            checked: lockstep_steps,
            detail: format!(
                "abstract steps over {} scenarios; max FIFO high-water {} (hardware depth {})",
                cov.lockstep_scenarios,
                cov.max_fifo_high_water,
                lockstep::LINK_FIFO_DEPTH
            ),
        },
        AnalysisReport {
            name: "deadlock-freedom",
            code_prefix: "RV3",
            pass: fail(Analysis::Deadlock) == 0,
            checked: cov.lockstep_scenarios,
            detail: "wait-for graph acyclic at every stalled abstract step".into(),
        },
        AnalysisReport {
            name: "jump-table-model-check",
            code_prefix: "RV4",
            pass: fail(Analysis::JumpTable) == 0,
            checked: cov.unicast_points + cov.multicast_points,
            detail: format!(
                "global indices vs the schedule() oracle; {}/{} body routines decoded",
                cov.body_routines, cov.body_routine_space
            ),
        },
    ];

    VerifyReport {
        pass: diags.is_empty(),
        programs_checked: programs,
        analyses,
        coverage: cov,
        diagnostics: diags,
    }
}

/// Verified handoff to the schedule-specialization compiler: run the
/// full static suite over the generated schedule space, and only if
/// every analysis passes hand the machine to
/// [`raw_compile::compile_machine`]. A machine whose installed programs
/// fall outside the verified space is still safe — the compiler lowers
/// whatever is installed and raw-sim's install-time revalidation
/// guarantees bit-identity with the interpreter — but callers that want
/// "verified, then specialized" as one gate use this entry point.
///
/// On verification failure the report is returned as the error so the
/// caller can surface the diagnostics; no plan is installed.
pub fn verified_compile(
    machine: &mut raw_sim::RawMachine,
    opts: &VerifyOptions,
) -> Result<(VerifyReport, raw_compile::CompileReport), Box<VerifyReport>> {
    let report = verify_all(opts);
    if !report.pass {
        return Err(Box::new(report));
    }
    let compiled = raw_compile::compile_machine(machine, &raw_compile::CompileOptions::default())
        .map_err(|e| {
        let mut r = report.clone();
        r.pass = false;
        r.diagnostics.push(Diag::new(
            "RC0",
            Analysis::RouteConflict,
            "compile",
            format!("schedule-specialization compile failed after verification: {e}"),
        ));
        Box::new(r)
    })?;
    Ok((report, compiled))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_verification_passes_end_to_end() {
        // Reduced options keep the debug-mode run fast; `repro -- verify`
        // exercises the release defaults (both quanta, multicast
        // lockstep, larger rings).
        let opts = VerifyOptions {
            quanta: vec![16],
            lockstep_multicast: false,
            scale_ns: vec![6],
        };
        let report = verify_all(&opts);
        assert!(report.pass, "{:?}", report.diagnostics);
        assert!(report.diagnostics.is_empty());
        // Exhaustive coverage per policy: 2,500 unicast and 16^4*4
        // multicast global indices, both policies.
        assert_eq!(report.coverage.unicast_points, 5_000);
        assert_eq!(
            report.coverage.unicast_points,
            report.coverage.unicast_space
        );
        assert_eq!(report.coverage.multicast_points, 2 * 4 * 16u64.pow(4));
        assert_eq!(
            report.coverage.multicast_points,
            report.coverage.multicast_space
        );
        assert!(report.coverage.lockstep_scenarios > 100);
        assert!(report.coverage.max_fifo_high_water <= lockstep::LINK_FIFO_DEPTH);
        assert_eq!(report.analyses.len(), 4);
        assert!(report.analyses.iter().all(|a| a.pass && a.checked > 0));
        // The report must serialize (results/verify.json is part of the
        // repro pipeline).
        let v = serde::Serialize::to_value(&report);
        assert!(matches!(v, serde::Value::Object(_)));
    }

    #[test]
    fn verified_compile_gates_and_installs_a_plan() {
        use std::sync::Arc;

        use raw_lookup::{ForwardingTable, RouteEntry};
        use raw_xbar::{RawRouter, RouterConfig};

        let routes: Vec<RouteEntry> = (0..4)
            .map(|p| RouteEntry::new(0x0a00_0000 | (p << 16), 16, p))
            .collect();
        let table = Arc::new(ForwardingTable::build(&routes));
        let mut router = RawRouter::new(RouterConfig::default(), table);
        assert!(!router.machine.has_compiled_plan());

        let opts = VerifyOptions {
            quanta: vec![16],
            lockstep_multicast: false,
            scale_ns: vec![],
        };
        let (verify, compiled) =
            verified_compile(&mut router.machine, &opts).expect("verified handoff");
        assert!(verify.pass);
        assert!(compiled.full_coverage(), "{:?}", compiled.fallbacks);
        assert!(router.machine.has_compiled_plan());
    }
}
