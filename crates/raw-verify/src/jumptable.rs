//! Analysis 4: the jump-table model check (`RV4xx`).
//!
//! The running router never calls [`raw_xbar::config::schedule`] — it
//! indexes the minimized per-tile jump tables that `ConfigSpace`
//! enumeration produced at compile time. This analysis closes the loop
//! by replaying **every** global `(token, headers)` point (2,500 unicast,
//! 16⁴·4 multicast, under both scheduling policies) against the
//! `schedule()` oracle and checking:
//!
//! * `RV401` — the local configuration the jump table selects differs
//!   from what the oracle derives for that tile;
//! * `RV402` — the grant bit differs from the oracle's grant;
//! * `RV403` — the oracle itself grants one output to two flows;
//! * `RV404` — the token holder's non-empty bid is denied (the §5.4
//!   fairness guarantee);
//! * `RV405` — a generated body routine does not implement its local
//!   configuration (decoded instruction-by-instruction against the
//!   expansion-number pipeline model of §6.2);
//! * `RV406` — the §6.5 assembly jump-table image disagrees with the
//!   generated switch code, or the generated crossbar tile assembly
//!   fails to assemble.
//!
//! The same invariants are checked on the generalized `scale::ring_walk`
//! (n = 4 exhaustively, larger rings on systematic and pseudorandom
//! samples), so the §8.5 scaling model stays consistent with the 4-port
//! oracle.

use raw_sim::{Route, SwPort, SwitchCtrl, NET0};
use raw_xbar::asm_xbar::{gen_crossbar_asm_source, table_image_pc};
use raw_xbar::codegen::{gen_crossbar_switch, CrossbarCode};
use raw_xbar::config::{
    schedule, Bid, Client, ConfigSpace, SchedPolicy, GLOBAL_SPACE, GLOBAL_SPACE_MCAST, HDR_VALUES,
    HDR_VALUES_MCAST,
};
use raw_xbar::layout::{PortTiles, RouterLayout, NPORTS};

use crate::{Analysis, Coverage, Diag};

/// Diagnostics reported per space before suppression (a corrupt table
/// would otherwise flood the report with hundreds of thousands of
/// entries).
const DIAG_CAP: usize = 8;

struct Capped<'a> {
    diags: &'a mut Vec<Diag>,
    emitted: usize,
}

impl<'a> Capped<'a> {
    fn new(diags: &'a mut Vec<Diag>) -> Capped<'a> {
        Capped { diags, emitted: 0 }
    }

    fn push(&mut self, d: Diag) {
        if self.emitted < DIAG_CAP {
            self.diags.push(d);
        } else if self.emitted == DIAG_CAP {
            let mut d = d;
            d.msg = format!(
                "further diagnostics in {} suppressed after {DIAG_CAP}",
                d.program
            );
            self.diags.push(d);
        }
        self.emitted += 1;
    }
}

/// Points and space size covered by one [`check_space`] run.
pub struct SpaceCoverage {
    pub points: u64,
    pub space: u64,
}

fn space_name(cs: &ConfigSpace) -> String {
    format!(
        "jump-table-{}-{:?}",
        if cs.multicast { "multicast" } else { "unicast" },
        cs.policy
    )
}

/// Oracle sanity invariants on one scheduling outcome, with the grant
/// vector taken as *data* so seeded-mutant tests can drive the checks:
/// no output granted twice (`RV403`), the token holder's non-empty bid
/// granted (`RV404`).
pub fn grant_invariants(
    bids: &[Bid; NPORTS],
    token: u8,
    granted: &[bool; NPORTS],
) -> Option<(&'static str, String)> {
    let mut outputs = [false; NPORTS];
    for i in 0..NPORTS {
        if !granted[i] {
            continue;
        }
        for p in bids[i].ports() {
            if outputs[p as usize] {
                return Some((
                    "RV403",
                    format!("output {p} granted to two flows (bids {bids:?}, token {token})"),
                ));
            }
            outputs[p as usize] = true;
        }
    }
    if !bids[token as usize].is_empty() && !granted[token as usize] {
        return Some((
            "RV404",
            format!(
                "token holder {token}'s bid {:?} was denied (bids {bids:?})",
                bids[token as usize]
            ),
        ));
    }
    None
}

/// Exhaustively replay every global index of `cs` against the
/// `schedule()` oracle.
pub fn check_space(cs: &ConfigSpace, diags: &mut Vec<Diag>) -> SpaceCoverage {
    let name = space_name(cs);
    let (hdr_values, space) = if cs.multicast {
        (HDR_VALUES_MCAST, GLOBAL_SPACE_MCAST)
    } else {
        (HDR_VALUES, GLOBAL_SPACE)
    };
    let mut capped = Capped::new(diags);
    let mut points = 0u64;

    for token in 0..NPORTS as u8 {
        let mut hdrs = [0u8; NPORTS];
        loop {
            let bids: [Bid; NPORTS] = std::array::from_fn(|i| {
                if cs.multicast {
                    Bid(hdrs[i])
                } else if hdrs[i] as usize == NPORTS {
                    Bid::EMPTY
                } else {
                    Bid::unicast(hdrs[i])
                }
            });
            let sched = schedule(bids, token, cs.policy);
            let gi = if cs.multicast {
                raw_xbar::config::global_index_mcast(token, hdrs)
            } else {
                raw_xbar::config::global_index(token, hdrs)
            };
            for t in 0..NPORTS {
                let id = cs.jump[t][gi] as usize;
                let table_lc = cs.configs[id];
                if table_lc != sched.locals[t] {
                    capped.push(
                        Diag::new(
                            "RV401",
                            Analysis::JumpTable,
                            &name,
                            format!(
                                "global index {gi} (token {token}, hdrs {hdrs:?}): table entry \
                                 {id} = {table_lc:?} but the oracle derives {:?}",
                                sched.locals[t]
                            ),
                        )
                        .at_tile(raw_sim::TileId(t as u16)),
                    );
                }
                if cs.grant[t][gi] != sched.granted[t] {
                    capped.push(
                        Diag::new(
                            "RV402",
                            Analysis::JumpTable,
                            &name,
                            format!(
                                "global index {gi} (token {token}, hdrs {hdrs:?}): table grant \
                                 {} but the oracle grants {}",
                                cs.grant[t][gi], sched.granted[t]
                            ),
                        )
                        .at_tile(raw_sim::TileId(t as u16)),
                    );
                }
            }
            if let Some((code, msg)) = grant_invariants(&bids, token, &sched.granted) {
                capped.push(Diag::new(code, Analysis::JumpTable, &name, msg));
            }
            points += 1;

            // Odometer over the header alphabet.
            let mut c = 0;
            loop {
                hdrs[c] += 1;
                if (hdrs[c] as usize) < hdr_values {
                    break;
                }
                hdrs[c] = 0;
                c += 1;
                if c == NPORTS {
                    break;
                }
            }
            if c == NPORTS {
                break;
            }
        }
    }
    SpaceCoverage {
        points,
        space: space as u64,
    }
}

/// Mesh direction a client's words arrive from at this tile (the inverse
/// of the codegen's wiring: data traveling clockwise arrives from the
/// counterclockwise neighbor's direction).
fn client_src(p: &PortTiles, c: Client) -> Option<SwPort> {
    match c {
        Client::None => None,
        Client::In => Some(SwPort::from_dir(p.x_in)),
        Client::CwPrev => Some(SwPort::from_dir(p.x_ccw)),
        Client::CcwPrev => Some(SwPort::from_dir(p.x_cw)),
    }
}

/// Decode every minimized body routine of `code` back to its
/// `LocalConfig` and compare against the §6.2 pipeline model: server
/// `(client, dist)` must occupy exactly instructions `dist ..
/// dist + quantum + 1` of its routine, and the routine must end at a
/// `WaitPc` sync point. Reports `RV405`. Returns configurations checked.
pub fn check_body_routines_code(
    p: &PortTiles,
    cs: &ConfigSpace,
    code: &CrossbarCode,
    quantum: usize,
    diags: &mut Vec<Diag>,
) -> u64 {
    let name = format!("crossbar-switch-t{}-q{quantum}", p.crossbar);
    let mut capped = Capped::new(diags);
    let frag_len = quantum + 1;
    let rv405 = |pc: usize, id: usize, msg: String| {
        Diag::new(
            "RV405",
            Analysis::JumpTable,
            &name,
            format!("config {id}: {msg}"),
        )
        .at_tile(p.crossbar)
        .at_net(NET0)
        .at_pc(pc)
    };

    for (id, lc) in cs.configs.iter().enumerate() {
        let pc = code.cfg_pc[id];
        if lc.is_idle() {
            if pc != 0 {
                let d = rv405(
                    pc,
                    id,
                    "idle configuration must reuse the PC-0 sync point".into(),
                );
                capped.push(d);
            }
            continue;
        }
        let servers: Vec<(SwPort, SwPort, usize)> = [
            (lc.out, lc.out_dist, SwPort::from_dir(p.x_out)),
            (lc.cw, lc.cw_dist, SwPort::from_dir(p.x_cw)),
            (lc.ccw, lc.ccw_dist, SwPort::from_dir(p.x_ccw)),
        ]
        .into_iter()
        .filter_map(|(client, dist, dst)| {
            client_src(p, client).map(|src| (src, dst, dist as usize))
        })
        .collect();
        let depth = servers.iter().map(|&(_, _, d)| d).max().unwrap_or(0);
        let total = frag_len + depth;
        if pc + total >= code.program.len() {
            let d = rv405(
                pc,
                id,
                format!("routine truncated: needs {total} instructions",),
            );
            capped.push(d);
            continue;
        }
        for i in 0..total {
            let mut expected: Vec<Route> = servers
                .iter()
                .filter(|&&(_, _, d)| i >= d && i < d + frag_len)
                .map(|&(src, dst, _)| Route::new(NET0, src, dst))
                .collect();
            let mut actual = code.program.instrs[pc + i].routes.clone();
            expected.sort_by_key(|r| (r.src, r.dst));
            actual.sort_by_key(|r| (r.src, r.dst));
            if expected != actual || code.program.instrs[pc + i].ctrl != SwitchCtrl::Next {
                let d = rv405(
                    pc + i,
                    id,
                    format!(
                        "instruction {i} routes {actual:?} do not implement the pipeline's \
                         {expected:?}"
                    ),
                );
                capped.push(d);
            }
        }
        if code.program.instrs[pc + total].ctrl != SwitchCtrl::WaitPc {
            let d = rv405(
                pc + total,
                id,
                "routine does not end at a WaitPc sync point".into(),
            );
            capped.push(d);
        }
    }
    cs.configs.len() as u64
}

/// Generate and decode the body routines of every crossbar tile.
pub fn check_body_routines(
    layout: &RouterLayout,
    cs: &ConfigSpace,
    quantum: usize,
    diags: &mut Vec<Diag>,
) -> u64 {
    let mut n = 0;
    for p in &layout.ports {
        let code = gen_crossbar_switch(p, cs, quantum);
        n = check_body_routines_code(p, cs, &code, quantum, diags);
    }
    n
}

/// Compare an assembly jump-table image against the generated switch
/// code: entry `gi` must be `cfg_pc[jump[tile][gi]] | grant << 31`.
/// Reports `RV406`. Returns entries checked.
pub fn check_table_image(
    cs: &ConfigSpace,
    tile: usize,
    code: &CrossbarCode,
    img: &[u32],
    diags: &mut Vec<Diag>,
) -> u64 {
    let name = format!("asm-crossbar-port{tile}");
    let mut capped = Capped::new(diags);
    if img.len() != cs.jump[tile].len() {
        capped.push(Diag::new(
            "RV406",
            Analysis::JumpTable,
            &name,
            format!(
                "table image has {} entries; the global space has {}",
                img.len(),
                cs.jump[tile].len()
            ),
        ));
        return 0;
    }
    for (gi, &entry) in img.iter().enumerate() {
        let id = cs.jump[tile][gi] as usize;
        let expected = code.cfg_pc[id] as u32 | (u32::from(cs.grant[tile][gi]) << 31);
        if entry != expected {
            capped.push(Diag::new(
                "RV406",
                Analysis::JumpTable,
                &name,
                format!("table entry {gi} is {entry:#x}; switch code expects {expected:#x}"),
            ));
        }
    }
    img.len() as u64
}

/// The §6.5 assembly crossbar: the jump-table image must agree with the
/// generated switch code for every tile, and the generated tile assembly
/// must assemble with every instruction passing ISA validation.
pub fn check_asm_crossbar(layout: &RouterLayout, diags: &mut Vec<Diag>) -> u64 {
    let cs = ConfigSpace::enumerate_multicast(SchedPolicy::ShortestFirst);
    let mut n = 0;
    for (port, p) in layout.ports.iter().enumerate() {
        let code = gen_crossbar_switch(p, &cs, 16);
        let img = table_image_pc(&cs, port, &code);
        n += check_table_image(&cs, port, &code, &img, diags);
        let src = gen_crossbar_asm_source(port, code.hdr_pc);
        if let Err(e) = raw_isa::assemble(&src) {
            diags.push(Diag::new(
                "RV406",
                Analysis::JumpTable,
                &format!("asm-crossbar-port{port}"),
                format!("generated crossbar assembly fails to assemble: {e}"),
            ));
        }
    }
    n
}

/// Tiny deterministic PRNG for the large-ring samples (the verifier must
/// be reproducible run to run).
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Ring-walk invariants with the grant vector as data (the generalized
/// form of [`grant_invariants`] for arbitrary ring sizes).
pub fn ring_walk_invariants(
    bids: &[Option<usize>],
    token: usize,
    granted: &[bool],
) -> Option<(&'static str, String)> {
    let n = bids.len();
    let mut outputs = vec![false; n];
    for i in 0..n {
        if !granted[i] {
            continue;
        }
        let Some(dst) = bids[i] else {
            return Some((
                "RV403",
                format!("input {i} granted with no bid (bids {bids:?}, token {token})"),
            ));
        };
        if outputs[dst] {
            return Some((
                "RV403",
                format!("output {dst} granted twice (bids {bids:?}, token {token})"),
            ));
        }
        outputs[dst] = true;
    }
    if bids[token].is_some() && !granted[token] {
        return Some((
            "RV404",
            format!("token holder {token}'s bid denied (bids {bids:?})"),
        ));
    }
    None
}

/// Check `scale::ring_walk`: n = 4 exhaustively (including equivalence
/// with the 4-port `schedule()` oracle), the requested larger ring sizes
/// on shifted-permutation and pseudorandom bid patterns. Returns points
/// checked.
pub fn check_ring_walk(ns: &[usize], diags: &mut Vec<Diag>) -> u64 {
    let name = "scale-ring-walk";
    let mut capped = Capped::new(diags);
    let mut points = 0u64;

    // n = 4: exhaustive over {empty, 0..3}^4 x token, cross-checked
    // against the unicast oracle (shortest-first is what ring_walk
    // implements).
    let mut bids4 = [None::<usize>; 4];
    for enc in 0..5u32.pow(4) {
        let mut e = enc;
        for b in bids4.iter_mut() {
            let v = e % 5;
            *b = if v == 4 { None } else { Some(v as usize) };
            e /= 5;
        }
        for token in 0..4usize {
            let g = raw_xbar::scale::ring_walk(&bids4, token);
            if let Some((code, msg)) = ring_walk_invariants(&bids4, token, &g) {
                capped.push(Diag::new(code, Analysis::JumpTable, name, msg));
            }
            let sched = schedule(
                std::array::from_fn(|i| match bids4[i] {
                    Some(d) => Bid::unicast(d as u8),
                    None => Bid::EMPTY,
                }),
                token as u8,
                SchedPolicy::ShortestFirst,
            );
            if g != sched.granted {
                capped.push(Diag::new(
                    "RV402",
                    Analysis::JumpTable,
                    name,
                    format!(
                        "ring_walk grants {g:?} but the 4-port oracle grants {:?} \
                         (bids {bids4:?}, token {token})",
                        sched.granted
                    ),
                ));
            }
            points += 1;
        }
    }

    // Larger rings: shifted permutations (every input to input+k) and
    // pseudorandom samples.
    let mut rng = XorShift(0x9e37_79b9_7f4a_7c15);
    for &n in ns {
        for token in 0..n {
            for k in 0..n {
                let bids: Vec<Option<usize>> = (0..n).map(|i| Some((i + k) % n)).collect();
                let g = raw_xbar::scale::ring_walk(&bids, token);
                if let Some((code, msg)) = ring_walk_invariants(&bids, token, &g) {
                    capped.push(Diag::new(code, Analysis::JumpTable, name, msg));
                }
                points += 1;
            }
        }
        for _ in 0..256 {
            let bids: Vec<Option<usize>> = (0..n)
                .map(|_| {
                    if rng.below(8) == 0 {
                        None
                    } else {
                        Some(rng.below(n))
                    }
                })
                .collect();
            let token = rng.below(n);
            let g = raw_xbar::scale::ring_walk(&bids, token);
            if let Some((code, msg)) = ring_walk_invariants(&bids, token, &g) {
                capped.push(Diag::new(code, Analysis::JumpTable, name, msg));
            }
            points += 1;
        }
    }
    points
}

/// Convenience used by the report: fill the unicast/multicast coverage
/// for one policy into `cov`.
pub fn accumulate_coverage(cov: &mut Coverage, c: &SpaceCoverage, multicast: bool) {
    if multicast {
        cov.multicast_points += c.points;
        cov.multicast_space += c.space;
    } else {
        cov.unicast_points += c.points;
        cov.unicast_space += c.space;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clone_space(cs: &ConfigSpace) -> ConfigSpace {
        ConfigSpace {
            configs: cs.configs.clone(),
            jump: cs.jump.clone(),
            grant: cs.grant.clone(),
            policy: cs.policy,
            multicast: cs.multicast,
        }
    }

    #[test]
    fn pristine_unicast_space_passes() {
        let cs = ConfigSpace::enumerate(SchedPolicy::ShortestFirst);
        let mut diags = Vec::new();
        let c = check_space(&cs, &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(c.points, GLOBAL_SPACE as u64);
        assert_eq!(c.space, GLOBAL_SPACE as u64);
    }

    #[test]
    fn corrupted_jump_entry_is_rv401() {
        let base = ConfigSpace::enumerate(SchedPolicy::ShortestFirst);
        let mut cs = clone_space(&base);
        // Point one entry at a different (existing) configuration.
        let gi = raw_xbar::config::global_index(0, [2, 3, 0, 1]);
        let cur = cs.jump[1][gi];
        cs.jump[1][gi] = if cur == 0 { 1 } else { 0 };
        let mut diags = Vec::new();
        check_space(&cs, &mut diags);
        assert!(diags.iter().any(|d| d.code == "RV401"), "{diags:?}");
    }

    #[test]
    fn flipped_grant_bit_is_rv402() {
        let base = ConfigSpace::enumerate(SchedPolicy::ShortestFirst);
        let mut cs = clone_space(&base);
        let gi = raw_xbar::config::global_index(2, [0, 1, 2, 3]);
        cs.grant[3][gi] = !cs.grant[3][gi];
        let mut diags = Vec::new();
        check_space(&cs, &mut diags);
        assert!(diags.iter().any(|d| d.code == "RV402"), "{diags:?}");
    }

    #[test]
    fn doctored_grants_trip_the_oracle_invariants() {
        // Two flows granted the same output.
        let bids = [Bid::unicast(1), Bid::unicast(1), Bid::EMPTY, Bid::EMPTY];
        let (code, _) = grant_invariants(&bids, 0, &[true, true, false, false]).expect("caught");
        assert_eq!(code, "RV403");
        // Token holder with a bid denied.
        let (code, _) = grant_invariants(&bids, 0, &[false, true, false, false]).expect("caught");
        assert_eq!(code, "RV404");
        // The real oracle outcome passes.
        let s = schedule(bids, 0, SchedPolicy::ShortestFirst);
        assert!(grant_invariants(&bids, 0, &s.granted).is_none());
    }

    #[test]
    fn generated_body_routines_decode_cleanly() {
        let layout = RouterLayout::canonical();
        for policy in [SchedPolicy::ShortestFirst, SchedPolicy::CwFirst] {
            let cs = ConfigSpace::enumerate(policy);
            let mut diags = Vec::new();
            let n = check_body_routines(&layout, &cs, 16, &mut diags);
            assert!(diags.is_empty(), "{policy:?}: {diags:?}");
            assert_eq!(n, cs.configs.len() as u64);
        }
    }

    #[test]
    fn mutated_body_routine_is_rv405() {
        let layout = RouterLayout::canonical();
        let cs = ConfigSpace::enumerate(SchedPolicy::ShortestFirst);
        let p = &layout.ports[0];
        let mut code = gen_crossbar_switch(p, &cs, 16);
        // Reroute one instruction of the first non-idle routine.
        let id = (0..cs.configs.len())
            .find(|&i| !cs.configs[i].is_idle())
            .unwrap();
        let pc = code.cfg_pc[id];
        let routed = (pc..code.program.len())
            .find(|&i| !code.program.instrs[i].routes.is_empty())
            .unwrap();
        let r = &mut code.program.instrs[routed].routes[0];
        r.src = if r.src == SwPort::Proc {
            SwPort::N
        } else {
            SwPort::Proc
        };
        let mut diags = Vec::new();
        check_body_routines_code(p, &cs, &code, 16, &mut diags);
        assert!(diags.iter().any(|d| d.code == "RV405"), "{diags:?}");
    }

    #[test]
    fn asm_table_checks_pass_and_catch_corruption() {
        let layout = RouterLayout::canonical();
        let mut diags = Vec::new();
        let n = check_asm_crossbar(&layout, &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(n, 4 * GLOBAL_SPACE_MCAST as u64);

        // Corrupt one image entry: RV406.
        let cs = ConfigSpace::enumerate_multicast(SchedPolicy::ShortestFirst);
        let code = gen_crossbar_switch(&layout.ports[0], &cs, 16);
        let mut img = table_image_pc(&cs, 0, &code);
        img[42] ^= 1;
        let mut diags = Vec::new();
        check_table_image(&cs, 0, &code, &img, &mut diags);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "RV406");
    }

    #[test]
    fn ring_walk_invariants_hold_and_mutants_are_caught() {
        let mut diags = Vec::new();
        let points = check_ring_walk(&[6, 8], &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
        assert!(points > 4 * 625, "{points} points");

        // Doctored grant vectors trip the generalized invariants.
        let bids = vec![Some(2), Some(2), None, Some(0)];
        let (code, _) =
            ring_walk_invariants(&bids, 0, &[true, true, false, false]).expect("caught");
        assert_eq!(code, "RV403");
        let (code, _) =
            ring_walk_invariants(&bids, 0, &[false, false, false, true]).expect("caught");
        assert_eq!(code, "RV404");
    }

    #[test]
    fn diagnostics_are_capped_per_space() {
        let base = ConfigSpace::enumerate(SchedPolicy::ShortestFirst);
        let mut cs = clone_space(&base);
        // Corrupt every grant bit of tile 0: tens of thousands of
        // violations must collapse to the cap plus one summary line.
        for g in cs.grant[0].iter_mut() {
            *g = !*g;
        }
        let mut diags = Vec::new();
        check_space(&cs, &mut diags);
        assert_eq!(diags.len(), DIAG_CAP + 1, "{}", diags.len());
    }
}
