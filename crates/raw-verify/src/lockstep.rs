//! Analyses 2 and 3: the abstract lockstep interpreter (`RV2xx`) and
//! deadlock-freedom (`RV3xx`).
//!
//! Steps every switch program of a [`FabricModel`] together, one abstract
//! cycle at a time, mirroring the machine's semantics exactly where they
//! matter for dataflow:
//!
//! * routes of one instruction that share a source fire **together**
//!   (one pop, one push per destination — the crossbar's multicast
//!   duplication);
//! * an instruction **completes** only when all of its routes have
//!   fired; the switch stalls in place until then;
//! * a word pushed into a link FIFO at step *s* becomes visible at
//!   *s*+1;
//! * a processor-loaded PC takes effect the step after the switch halts
//!   at its `WaitPc` (each slot's `script` lists the routine PCs its
//!   processor loads over one schedule period).
//!
//! The abstraction: link FIFOs have **infinite capacity** and record
//! their high-water mark. If the high-water mark stays within the
//! hardware depth ([`LINK_FIFO_DEPTH`]), backpressure never engages in
//! the real machine, so the capped machine's behavior coincides with the
//! abstract run and every property proven here transfers; if it
//! exceeds the depth, the schedule *requires* more buffering than the
//! hardware has (`RV204`). Tile processors are always-ready sources and
//! sinks (the maximal-rate abstraction) unless a slot declares a finite
//! `proc_words` budget. Declared external input ports supply words on
//! demand; declared external outputs always accept.
//!
//! At the end of a period (every scripted switch halted with its script
//! exhausted) the interpreter checks that no wire holds residual words
//! (`RV201` — every send matched by a receive) and that the FIFO bound
//! held (`RV204`). A step in which no switch makes progress is a stall:
//! the wait-for graph (blocked switch → producer of its empty source
//! wire) is extracted, and a cycle in it is the §5.5 static-network
//! deadlock (`RV301`); a stall with no cycle means a switch waits on a
//! producer that can never fire again (`RV302`). A run that exceeds the
//! step budget without completing reports `RV202`.

use std::collections::BTreeMap;

use raw_sim::{Dir, SwPort, SwitchCtrl, TileId, NET0, NET1};
use raw_xbar::codegen::{
    gen_crossbar_switch, gen_egress_net1, gen_egress_switch, gen_ingress_switch,
};
use raw_xbar::config::{Client, ConfigSpace};
use raw_xbar::layout::RouterLayout;

use crate::{Analysis, Diag, FabricModel, SwitchSlot};

/// Link FIFO depth of the Raw prototype (words per static-network input
/// buffer).
pub const LINK_FIFO_DEPTH: u64 = 4;

/// Abstract steps before a run is declared livelocked (`RV202`).
pub const STEP_BUDGET: u64 = 10_000;

/// Result of one abstract run.
pub struct RunOutcome {
    pub steps: u64,
    pub max_high_water: u64,
}

#[derive(Default)]
struct WireState {
    /// Words visible to the consumer this step.
    avail: u64,
    /// Words pushed this step, visible next step.
    fresh: u64,
    /// Maximum end-of-step occupancy seen.
    hw: u64,
    pushed: u64,
    popped: u64,
}

struct SlotState {
    pc: usize,
    halted: bool,
    script_pos: usize,
    fired: Vec<bool>,
    proc_left: Option<usize>,
}

/// Input-FIFO key: words entering `tile` on `net` from direction `dir`.
type WireKey = (TileId, usize, Dir);

fn wire_label(w: &WireKey) -> String {
    format!("{}:{}:{}", w.0, w.1, w.2)
}

/// Run the abstract interpreter over one schedule period of `model`.
pub fn run(model: &FabricModel, diags: &mut Vec<Diag>) -> RunOutcome {
    let slots: Vec<&SwitchSlot> = model.slots.iter().filter(|s| !s.free_running).collect();
    let by_loc: BTreeMap<(TileId, usize), usize> = slots
        .iter()
        .enumerate()
        .map(|(i, s)| ((s.tile, s.net), i))
        .collect();
    let mut st: Vec<SlotState> = slots
        .iter()
        .map(|s| SlotState {
            pc: 0,
            halted: false,
            script_pos: 0,
            fired: Vec::new(),
            proc_left: s.proc_words,
        })
        .collect();
    let mut wires: BTreeMap<WireKey, WireState> = BTreeMap::new();
    let mut max_hw = 0u64;
    let mut overran = vec![false; slots.len()];

    let diag = |code, analysis, msg: String| Diag::new(code, analysis, &model.name, msg);

    let mut step = 0u64;
    loop {
        if step >= STEP_BUDGET {
            diags.push(
                diag(
                    "RV202",
                    Analysis::Lockstep,
                    format!("schedule period did not complete within {STEP_BUDGET} abstract steps"),
                )
                .at_step(step as usize),
            );
            break;
        }

        // Phase 1: processor PC loads (one step after the halt).
        for (i, s) in slots.iter().enumerate() {
            let t = &mut st[i];
            if t.halted && !overran[i] && t.script_pos < s.script.len() {
                t.pc = s.script[t.script_pos];
                t.script_pos += 1;
                t.halted = false;
                t.fired.clear();
            }
        }

        // Phase 2: execute one abstract cycle of every live switch.
        let mut progress = false;
        for (i, s) in slots.iter().enumerate() {
            if st[i].halted || overran[i] {
                continue;
            }
            if st[i].pc >= s.program.len() {
                diags.push(
                    diag(
                        "RV203",
                        Analysis::Lockstep,
                        "switch ran off the end of its program without re-synchronizing at a \
                         WaitPc"
                            .into(),
                    )
                    .at_tile(s.tile)
                    .at_net(s.net)
                    .at_pc(st[i].pc)
                    .at_step(step as usize),
                );
                overran[i] = true;
                st[i].halted = true;
                progress = true;
                continue;
            }
            let instr = &s.program.instrs[st[i].pc];
            if st[i].fired.len() != instr.routes.len() {
                st[i].fired = vec![false; instr.routes.len()];
            }
            // Group-fire: all unfired routes sharing (net, src) fire
            // together once the source is visible (destinations always
            // have space in the abstract domain).
            let mut groups: BTreeMap<(usize, SwPort), Vec<usize>> = BTreeMap::new();
            for (r, route) in instr.routes.iter().enumerate() {
                if !st[i].fired[r] {
                    groups.entry((route.net, route.src)).or_default().push(r);
                }
            }
            for ((net, src), members) in groups {
                let available = match src {
                    SwPort::Proc => st[i].proc_left.map(|k| k > 0).unwrap_or(true),
                    _ => {
                        let d = src.dir().unwrap();
                        if model.dim.neighbor(s.tile, d).is_some() {
                            wires
                                .get(&(s.tile, net, d))
                                .map(|w| w.avail > 0)
                                .unwrap_or(false)
                        } else {
                            // Declared device: words on demand. Undeclared:
                            // nothing will ever arrive.
                            model.ext_in.contains(&(s.tile, net, d))
                        }
                    }
                };
                if !available {
                    continue;
                }
                // Pop the source once.
                match src {
                    SwPort::Proc => {
                        if let Some(k) = &mut st[i].proc_left {
                            *k -= 1;
                        }
                    }
                    _ => {
                        let d = src.dir().unwrap();
                        if model.dim.neighbor(s.tile, d).is_some() {
                            let w = wires.get_mut(&(s.tile, net, d)).unwrap();
                            w.avail -= 1;
                            w.popped += 1;
                        }
                    }
                }
                // Push to every destination in the group.
                for &r in &members {
                    let dst = instr.routes[r].dst;
                    if let Some(d) = dst.dir() {
                        if let Some(nb) = model.dim.neighbor(s.tile, d) {
                            let w = wires.entry((nb, net, d.opposite())).or_default();
                            w.fresh += 1;
                            w.pushed += 1;
                        }
                        // Off-grid: external sink (or dropped; conflict
                        // analysis flags the undeclared case).
                    }
                    // Proc destination: the csti FIFO, an abstract sink.
                    st[i].fired[r] = true;
                }
                progress = true;
            }
            if st[i].fired.iter().all(|&f| f) {
                match instr.ctrl {
                    SwitchCtrl::Next => st[i].pc += 1,
                    SwitchCtrl::Jump(t) => st[i].pc = t,
                    SwitchCtrl::WaitPc => st[i].halted = true,
                }
                st[i].fired.clear();
                progress = true;
            }
        }

        // Phase 3: merge fresh words and track the high-water mark.
        for w in wires.values_mut() {
            w.avail += w.fresh;
            w.fresh = 0;
            w.hw = w.hw.max(w.avail);
            max_hw = max_hw.max(w.hw);
        }

        let done = st
            .iter()
            .enumerate()
            .all(|(i, t)| t.halted && t.script_pos >= slots[i].script.len());
        if done {
            // Period-end checks: matched send/recv and the FIFO bound.
            for (key, w) in &wires {
                if w.avail > 0 {
                    diags.push(
                        diag(
                            "RV201",
                            Analysis::Lockstep,
                            format!(
                                "{} word(s) left unconsumed ({} pushed, {} popped)",
                                w.avail, w.pushed, w.popped
                            ),
                        )
                        .at_tile(key.0)
                        .at_net(key.1)
                        .at_wire(wire_label(key))
                        .at_step(step as usize),
                    );
                }
                if w.hw > LINK_FIFO_DEPTH {
                    diags.push(
                        diag(
                            "RV204",
                            Analysis::Lockstep,
                            format!(
                                "schedule requires {} buffered words; the link FIFO holds \
                                 {LINK_FIFO_DEPTH}",
                                w.hw
                            ),
                        )
                        .at_tile(key.0)
                        .at_net(key.1)
                        .at_wire(wire_label(key))
                        .at_step(step as usize),
                    );
                }
            }
            break;
        }

        if !progress {
            report_stall(model, &slots, &st, &by_loc, &wires, step, diags);
            break;
        }
        step += 1;
    }

    RunOutcome {
        steps: step,
        max_high_water: max_hw,
    }
}

/// A stalled step can never un-stall (the abstract state is a fixed
/// point), so classify it: a cycle in the wait-for graph is the static
/// deadlock of §5.5 (`RV301`); otherwise some switch waits on a producer
/// that is gone for good (`RV302`).
#[allow(clippy::too_many_arguments)]
fn report_stall(
    model: &FabricModel,
    slots: &[&SwitchSlot],
    st: &[SlotState],
    by_loc: &BTreeMap<(TileId, usize), usize>,
    wires: &BTreeMap<WireKey, WireState>,
    step: u64,
    diags: &mut Vec<Diag>,
) {
    // Blocked-on edges: slot index -> producer slot index.
    let mut edges: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    let mut terminal: Vec<(usize, String)> = Vec::new();
    for (i, s) in slots.iter().enumerate() {
        if st[i].halted || st[i].pc >= s.program.len() {
            continue;
        }
        let instr = &s.program.instrs[st[i].pc];
        for (r, route) in instr.routes.iter().enumerate() {
            if *st[i].fired.get(r).unwrap_or(&false) {
                continue;
            }
            match route.src {
                SwPort::Proc => {
                    if st[i].proc_left == Some(0) {
                        terminal.push((
                            i,
                            "waiting on $csto but the processor's word budget is exhausted".into(),
                        ));
                    }
                }
                src => {
                    let d = src.dir().unwrap();
                    if wires
                        .get(&(s.tile, route.net, d))
                        .map(|w| w.avail > 0)
                        .unwrap_or(false)
                    {
                        continue; // a different unfired route is the blocker
                    }
                    match model.dim.neighbor(s.tile, d) {
                        Some(nb) => match by_loc.get(&(nb, route.net)) {
                            Some(&j) if !st[j].halted => edges.entry(i).or_default().push(j),
                            _ => terminal.push((
                                i,
                                format!(
                                    "waiting on wire {} whose producer (tile {nb}) has halted \
                                     for the period",
                                    wire_label(&(s.tile, route.net, d))
                                ),
                            )),
                        },
                        None => {
                            if !model.ext_in.contains(&(s.tile, route.net, d)) {
                                terminal.push((
                                    i,
                                    format!(
                                        "waiting on off-grid link {d} where no device is declared"
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
        }
    }

    // Cycle detection over the wait-for edges.
    if let Some(cycle) = find_cycle(&edges) {
        let path: Vec<String> = cycle
            .iter()
            .map(|&i| format!("tile {} net {}", slots[i].tile, slots[i].net))
            .collect();
        let first = cycle[0];
        diags.push(
            Diag::new(
                "RV301",
                Analysis::Deadlock,
                &model.name,
                format!("cyclic wait-for among switches: {}", path.join(" -> ")),
            )
            .at_tile(slots[first].tile)
            .at_net(slots[first].net)
            .at_pc(st[first].pc)
            .at_step(step as usize),
        );
        return;
    }
    if terminal.is_empty() {
        // Defensive: a stall with neither a cycle nor a dead producer
        // should be impossible; report it rather than loop.
        terminal.push((0, "stalled with no identifiable blocker".into()));
    }
    for (i, why) in terminal {
        diags.push(
            Diag::new("RV302", Analysis::Deadlock, &model.name, why)
                .at_tile(slots[i].tile)
                .at_net(slots[i].net)
                .at_pc(st[i].pc)
                .at_step(step as usize),
        );
    }
}

/// First cycle found in the wait-for graph, as a slot-index path.
fn find_cycle(edges: &BTreeMap<usize, Vec<usize>>) -> Option<Vec<usize>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color: BTreeMap<usize, Color> = BTreeMap::new();
    let mut stack: Vec<usize> = Vec::new();

    fn dfs(
        u: usize,
        edges: &BTreeMap<usize, Vec<usize>>,
        color: &mut BTreeMap<usize, Color>,
        stack: &mut Vec<usize>,
    ) -> Option<Vec<usize>> {
        color.insert(u, Color::Gray);
        stack.push(u);
        if let Some(next) = edges.get(&u) {
            for &v in next {
                match color.get(&v).copied().unwrap_or(Color::White) {
                    Color::Gray => {
                        let start = stack.iter().position(|&x| x == v).unwrap();
                        return Some(stack[start..].to_vec());
                    }
                    Color::White => {
                        if let Some(c) = dfs(v, edges, color, stack) {
                            return Some(c);
                        }
                    }
                    Color::Black => {}
                }
            }
        }
        stack.pop();
        color.insert(u, Color::Black);
        None
    }

    for &u in edges.keys() {
        if color.get(&u).copied().unwrap_or(Color::White) == Color::White {
            if let Some(c) = dfs(u, edges, &mut color, &mut stack) {
                return Some(c);
            }
            stack.clear();
        }
    }
    None
}

/// The full router fabric — every generated switch program installed at
/// its Figure 7-2 tile — with no steering scripts. Input to the conflict
/// and geometry analysis.
pub fn router_fabric_model(
    layout: &RouterLayout,
    cs: &ConfigSpace,
    quantum: usize,
    name: &str,
) -> FabricModel {
    let mut m = FabricModel::new(name, layout.dim);
    for p in &layout.ports {
        let ig = gen_ingress_switch(p, quantum);
        let xb = gen_crossbar_switch(p, cs, quantum);
        let eg = gen_egress_switch(p, quantum);
        m.slots
            .push(SwitchSlot::new(p.ingress, NET0, ig.program, vec![]));
        m.slots
            .push(SwitchSlot::new(p.crossbar, NET0, xb.program, vec![]));
        m.slots
            .push(SwitchSlot::new(p.egress, NET0, eg.program, vec![]));
        let mut net1 = SwitchSlot::new(p.egress, NET1, gen_egress_net1(p), vec![]);
        net1.free_running = true;
        m.slots.push(net1);
        m.ext_in.push((p.ingress, NET0, p.in_edge));
        m.ext_out.push((p.egress, NET0, p.out_edge));
        m.ext_out.push((p.egress, NET1, p.out_edge));
    }
    m
}

/// Visit one lockstep scenario per *reachable joint configuration* of
/// the fabric: scan the jump table for distinct signatures (the four
/// tiles' local-config ids plus the four grant flags) and script one
/// schedule period for each — every ingress runs the bid/grant exchange
/// (granted ports then stream one fragment), every crossbar runs the
/// header exchange (non-idle tiles then run their body routine), and
/// every egress whose output is driven runs the cut-through routine.
/// Returns the number of distinct joint configurations visited.
///
/// The callback form reuses one model (programs are shared across
/// scenarios; only the steering scripts differ), so sweeping the
/// multicast space does not materialize thousands of program copies.
pub fn for_each_router_scenario(
    layout: &RouterLayout,
    cs: &ConfigSpace,
    quantum: usize,
    name: &str,
    mut f: impl FnMut(&FabricModel),
) -> u64 {
    let igs: Vec<_> = layout
        .ports
        .iter()
        .map(|p| gen_ingress_switch(p, quantum))
        .collect();
    let xbs: Vec<_> = layout
        .ports
        .iter()
        .map(|p| gen_crossbar_switch(p, cs, quantum))
        .collect();
    let egs: Vec<_> = layout
        .ports
        .iter()
        .map(|p| gen_egress_switch(p, quantum))
        .collect();

    let mut m = FabricModel::new(name, layout.dim);
    for (t, p) in layout.ports.iter().enumerate() {
        m.slots.push(SwitchSlot::new(
            p.ingress,
            NET0,
            igs[t].program.clone(),
            vec![],
        ));
        m.slots.push(SwitchSlot::new(
            p.crossbar,
            NET0,
            xbs[t].program.clone(),
            vec![],
        ));
        m.slots.push(SwitchSlot::new(
            p.egress,
            NET0,
            egs[t].program.clone(),
            vec![],
        ));
        m.ext_in.push((p.ingress, NET0, p.in_edge));
        m.ext_out.push((p.egress, NET0, p.out_edge));
    }

    let mut seen = std::collections::BTreeSet::new();
    let mut count = 0u64;
    let space = cs.jump[0].len();
    for gi in 0..space {
        let sig: ([u16; 4], [bool; 4]) = (
            std::array::from_fn(|t| cs.jump[t][gi]),
            std::array::from_fn(|t| cs.grant[t][gi]),
        );
        if !seen.insert(sig) {
            continue;
        }
        let (ids, grants) = sig;
        m.name = format!("{name}/joint{count}");
        for t in 0..layout.ports.len() {
            let lc = cs.configs[ids[t] as usize];
            let ig = &igs[t];
            let mut ig_script = vec![ig.bid_send_pc, ig.grant_recv_pc];
            if grants[t] {
                ig_script.push(ig.stream_wc_more_pc);
            }
            m.slots[3 * t].script = ig_script;
            let xb = &xbs[t];
            let mut xb_script = vec![xb.hdr_pc];
            if !lc.is_idle() {
                xb_script.push(xb.cfg_pc[ids[t] as usize]);
            }
            m.slots[3 * t + 1].script = xb_script;
            m.slots[3 * t + 2].script = if lc.out != Client::None {
                vec![egs[t].cut_pc]
            } else {
                vec![]
            };
        }
        f(&m);
        count += 1;
    }
    count
}

/// Collect the scenarios of [`for_each_router_scenario`] into a `Vec`
/// (fine for the unicast space; the multicast sweep should use the
/// callback form).
pub fn router_scenarios(
    layout: &RouterLayout,
    cs: &ConfigSpace,
    quantum: usize,
    name: &str,
) -> Vec<FabricModel> {
    let mut out = Vec::new();
    for_each_router_scenario(layout, cs, quantum, name, |m| out.push(m.clone()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FabricModel;
    use raw_sim::{GridDim, Route, SwitchInstr, SwitchProgram};

    fn relay_pair(t0: Vec<SwitchInstr>, t1: Vec<SwitchInstr>) -> FabricModel {
        let mut m = FabricModel::new("pair", GridDim::new(1, 2));
        m.slots.push(SwitchSlot::new(
            TileId(0),
            NET0,
            SwitchProgram::new(t0),
            vec![],
        ));
        m.slots.push(SwitchSlot::new(
            TileId(1),
            NET0,
            SwitchProgram::new(t1),
            vec![],
        ));
        m.ext_in.push((TileId(0), NET0, Dir::West));
        m.ext_out.push((TileId(1), NET0, Dir::East));
        m
    }

    fn fwd(src: SwPort, dst: SwPort) -> SwitchInstr {
        SwitchInstr::new(vec![Route::new(NET0, src, dst)], SwitchCtrl::Next)
    }

    fn run_codes(m: &FabricModel) -> (Vec<&'static str>, RunOutcome) {
        let mut diags = Vec::new();
        let out = run(m, &mut diags);
        (diags.iter().map(|d| d.code).collect(), out)
    }

    #[test]
    fn clean_relay_passes() {
        let k = 5;
        let mut t0: Vec<_> = (0..k).map(|_| fwd(SwPort::W, SwPort::E)).collect();
        t0.push(SwitchInstr::wait_pc());
        let mut t1: Vec<_> = (0..k).map(|_| fwd(SwPort::W, SwPort::E)).collect();
        t1.push(SwitchInstr::wait_pc());
        let (codes, out) = run_codes(&relay_pair(t0, t1));
        assert!(codes.is_empty(), "{codes:?}");
        assert!(out.max_high_water <= 2, "hw {}", out.max_high_water);
    }

    #[test]
    fn unmatched_send_is_rv201() {
        // Producer pushes two words, consumer takes one.
        let t0 = vec![
            fwd(SwPort::Proc, SwPort::E),
            fwd(SwPort::Proc, SwPort::E),
            SwitchInstr::wait_pc(),
        ];
        let t1 = vec![fwd(SwPort::W, SwPort::Proc), SwitchInstr::wait_pc()];
        let (codes, _) = run_codes(&relay_pair(t0, t1));
        assert_eq!(codes, vec!["RV201"]);
    }

    #[test]
    fn overfull_fifo_is_rv204() {
        // Producer streams 8 words while the consumer burns 8 cycles on
        // nops before draining all 8 — a schedule needing depth ~7.
        let n = 8;
        let mut t0: Vec<_> = (0..n).map(|_| fwd(SwPort::Proc, SwPort::E)).collect();
        t0.push(SwitchInstr::wait_pc());
        let mut t1: Vec<_> = (0..n).map(|_| SwitchInstr::nop()).collect();
        t1.extend((0..n).map(|_| fwd(SwPort::W, SwPort::Proc)));
        t1.push(SwitchInstr::wait_pc());
        let (codes, out) = run_codes(&relay_pair(t0, t1));
        assert_eq!(codes, vec!["RV204"]);
        assert!(out.max_high_water > LINK_FIFO_DEPTH);
    }

    #[test]
    fn program_overrun_is_rv203() {
        // No terminating WaitPc: the switch runs off the program's end.
        let t0 = vec![fwd(SwPort::W, SwPort::E)];
        let t1 = vec![fwd(SwPort::W, SwPort::Proc), SwitchInstr::wait_pc()];
        let (codes, _) = run_codes(&relay_pair(t0, t1));
        assert!(codes.contains(&"RV203"), "{codes:?}");
    }

    #[test]
    fn crossed_waits_are_rv301() {
        // Each tile's first instruction waits for a word only the other
        // tile's *second* instruction would send: the §5.5 deadlock.
        let t0 = vec![
            fwd(SwPort::E, SwPort::Proc),
            fwd(SwPort::Proc, SwPort::E),
            SwitchInstr::wait_pc(),
        ];
        let t1 = vec![
            fwd(SwPort::W, SwPort::Proc),
            fwd(SwPort::Proc, SwPort::W),
            SwitchInstr::wait_pc(),
        ];
        let (codes, _) = run_codes(&relay_pair(t0, t1));
        assert_eq!(codes, vec!["RV301"]);
    }

    #[test]
    fn waiting_on_halted_producer_is_rv302() {
        let t0 = vec![fwd(SwPort::E, SwPort::Proc), SwitchInstr::wait_pc()];
        let t1 = vec![SwitchInstr::wait_pc()];
        let (codes, _) = run_codes(&relay_pair(t0, t1));
        assert_eq!(codes, vec!["RV302"]);
    }

    #[test]
    fn exhausted_proc_budget_is_rv302() {
        let mut m = relay_pair(
            vec![fwd(SwPort::Proc, SwPort::E), SwitchInstr::wait_pc()],
            vec![fwd(SwPort::W, SwPort::Proc), SwitchInstr::wait_pc()],
        );
        m.slots[0].proc_words = Some(0);
        let (codes, _) = run_codes(&m);
        assert_eq!(codes, vec!["RV302"]);
    }

    #[test]
    fn livelock_is_rv202() {
        // A free jump loop that always fires never completes the period.
        let t0 = vec![SwitchInstr::new(
            vec![Route::new(NET0, SwPort::Proc, SwPort::E)],
            SwitchCtrl::Jump(0),
        )];
        let t1 = vec![SwitchInstr::new(
            vec![Route::new(NET0, SwPort::W, SwPort::Proc)],
            SwitchCtrl::Jump(0),
        )];
        let (codes, _) = run_codes(&relay_pair(t0, t1));
        assert_eq!(codes, vec!["RV202"]);
    }

    #[test]
    fn scripted_steering_follows_the_script() {
        // Tile 0's program has two routines behind WaitPc sync points;
        // the script runs the second then the first.
        let t0 = vec![
            SwitchInstr::wait_pc(),
            fwd(SwPort::Proc, SwPort::E), // routine A at pc 1
            SwitchInstr::wait_pc(),
            fwd(SwPort::Proc, SwPort::E), // routine B at pc 3
            fwd(SwPort::Proc, SwPort::E),
            SwitchInstr::wait_pc(),
        ];
        let t1 = vec![
            SwitchInstr::wait_pc(),
            fwd(SwPort::W, SwPort::Proc),
            fwd(SwPort::W, SwPort::Proc),
            fwd(SwPort::W, SwPort::Proc),
            SwitchInstr::wait_pc(),
        ];
        let mut m = relay_pair(t0, t1);
        m.slots[0].script = vec![3, 1];
        m.slots[1].script = vec![1];
        let (codes, _) = run_codes(&m);
        assert!(codes.is_empty(), "{codes:?}");
    }

    /// The centerpiece positive test: every reachable joint configuration
    /// of the generated router fabric completes its period with matched
    /// dataflow inside the hardware FIFO bound.
    #[test]
    fn all_router_joint_configs_verify() {
        use raw_xbar::config::SchedPolicy;
        let layout = RouterLayout::canonical();
        let cs = ConfigSpace::enumerate(SchedPolicy::ShortestFirst);
        let scenarios = router_scenarios(&layout, &cs, 16, "router-q16");
        assert!(scenarios.len() > 10, "only {} scenarios", scenarios.len());
        let mut max_hw = 0;
        for sc in &scenarios {
            let mut diags = Vec::new();
            let out = run(sc, &mut diags);
            assert!(diags.is_empty(), "{}: {diags:?}", sc.name);
            max_hw = max_hw.max(out.max_high_water);
        }
        assert!(max_hw <= LINK_FIFO_DEPTH, "hw {max_hw}");
    }

    /// Seeded-mutant negative test for the whole pipeline: rerouting one
    /// body-routine instruction of one crossbar tile must be caught.
    #[test]
    fn mutated_crossbar_body_is_flagged() {
        use raw_xbar::config::SchedPolicy;
        let layout = RouterLayout::canonical();
        let cs = ConfigSpace::enumerate(SchedPolicy::ShortestFirst);
        let mut scenarios = router_scenarios(&layout, &cs, 16, "router-q16");
        // Pick a scenario where tile 0 forwards (non-trivial script).
        let sc = scenarios
            .iter_mut()
            .find(|sc| sc.slots[1].script.len() == 2)
            .expect("a non-idle crossbar scenario");
        let pc = sc.slots[1].script[1];
        // Drop the body routine's first routed instruction.
        let prog = &mut sc.slots[1].program;
        let routed = (pc..prog.len())
            .find(|&i| !prog.instrs[i].routes.is_empty())
            .unwrap();
        prog.instrs[routed].routes.clear();
        let mut diags = Vec::new();
        run(sc, &mut diags);
        assert!(
            !diags.is_empty(),
            "dropping a body route must break matched dataflow"
        );
    }
}
