//! RV8xx — scheduler arbitration analyses.
//!
//! The `raw-sched` arbiters (token, iSLIP, crosspoint-queued) replace
//! the paper's token walk with a per-quantum matching computed by
//! replicated instances on the four Crossbar Processors. Three
//! properties make that substitution sound, and each is checked here by
//! driving the *executable* arbiter — the same object the router
//! instantiates — over exhaustive and adversarial request spaces:
//!
//! - **RV801 matching validity & routability** — every matching ever
//!   produced connects only requesting inputs, never double-grants an
//!   output, and (cross-checked against the `raw_xbar::config::schedule`
//!   walk with the token pinned at 0) is simultaneously routable on the
//!   ring, so the crossbar's jump-table realization never silently
//!   drops a granted flow.
//! - **RV802 starvation freedom / bounded wait** — under persistent
//!   demand, every requesting input is served within a fixed slot
//!   bound. This is the property iSLIP's pointer-advance rule exists
//!   for; a stuck grant pointer (the classic implementation bug) shadows
//!   an input forever and is caught here.
//! - **RV803 crosspoint occupancy bound** — buffered schedulers must
//!   keep every virtual crosspoint buffer within its declared capacity
//!   along every trace, in the inductive style of the RV7xx credit
//!   proof: the invariant is asserted after every slot, so the first
//!   violating transition is localized.
//!
//! The negative battery in this module's tests runs the same analyses
//! over `raw_sched::mutants` and demands each defect is rejected with
//! its specific code.

use raw_sched::{matching_is_valid, Scheduler};
use raw_xbar::config::{schedule, Bid, SchedPolicy};
use raw_xbar::NPORTS;

use crate::{Analysis, AnalysisReport, Diag};

/// Slots a persistently requesting input may go unserved before RV802
/// fires. All three shipped arbiters stay well inside `n*n` at 4 ports
/// (token: < n by the ring walk; iSLIP / crosspoint: round-robin
/// pointers); a stuck pointer starves forever and exceeds any bound.
pub const WAIT_BOUND: u64 = (NPORTS * NPORTS) as u64;

/// How hard to drive the arbiters.
#[derive(Clone, Copy, Debug)]
pub struct SchedVerifyOptions {
    /// Check the full 16⁴ one-shot request space and run the persistent-
    /// demand sweep over every request matrix (the `repro -- verify`
    /// release path). When false, corner matrices plus a deterministic
    /// sample keep debug-mode tests fast.
    pub exhaustive: bool,
    /// Slots per persistent-demand trace.
    pub trace_slots: u64,
}

impl Default for SchedVerifyOptions {
    fn default() -> Self {
        SchedVerifyOptions {
            exhaustive: true,
            trace_slots: 64,
        }
    }
}

/// The outcome of verifying one arbiter.
#[derive(Clone, Debug)]
pub struct SchedVerdict {
    pub name: String,
    pub diags: Vec<Diag>,
    /// Matchings checked for RV801 validity/routability.
    pub matchings_checked: u64,
    /// Persistent-demand trace slots driven for RV802/RV803.
    pub trace_slots: u64,
    /// Worst observed service wait under persistent demand.
    pub worst_wait: u64,
    /// Peak crosspoint occupancy observed (0 for bufferless arbiters).
    pub occupancy_peak: u64,
}

fn matrix_from_index(x: u32) -> [u16; NPORTS] {
    std::array::from_fn(|i| ((x >> (4 * i)) & 0xf) as u16)
}

/// The corner matrices every non-exhaustive run still covers: empty,
/// all-to-all, the four hotspot columns, the diagonal, and the shadowed
/// pair that exposes stuck iSLIP pointers.
fn corner_matrices() -> Vec<[u16; NPORTS]> {
    let mut v: Vec<[u16; NPORTS]> = vec![
        [0; NPORTS],
        [0xf; NPORTS],
        std::array::from_fn(|i| 1u16 << ((i + 1) % NPORTS)),
        [0b0001, 0b0001, 0, 0], // inputs 0 and 1 both want output 0 only
    ];
    for dst in 0..NPORTS {
        v.push([1u16 << dst; NPORTS]);
    }
    v
}

/// RV801 over one matching: validity, then (for valid matchings)
/// routability against the token-0 shortest-first walk.
fn check_matching(
    name: &str,
    requests: &[u16; NPORTS],
    matching: &[Option<u8>],
    diags: &mut Vec<Diag>,
) {
    if !matching_is_valid(requests, matching) {
        diags.push(Diag::new(
            "RV801",
            Analysis::SchedMatching,
            name,
            format!("invalid matching {matching:?} for requests {requests:?} (port conflict or unrequested grant)"),
        ));
        return;
    }
    let bids: [Bid; NPORTS] = std::array::from_fn(|i| match matching.get(i).copied().flatten() {
        Some(d) => Bid::unicast(d),
        None => Bid::EMPTY,
    });
    let s = schedule(bids, 0, SchedPolicy::ShortestFirst);
    for i in 0..NPORTS {
        if s.granted[i] != matching[i].is_some() {
            diags.push(Diag::new(
                "RV801",
                Analysis::SchedMatching,
                name,
                format!("matching {matching:?} not ring-routable at input {i}"),
            ));
        }
    }
}

/// RV803: assert the declared crosspoint bound after one slot.
fn check_occupancy(name: &str, s: &dyn Scheduler, peak: &mut u64, diags: &mut Vec<Diag>) {
    let Some((occ, cap)) = s.occupancy() else {
        return;
    };
    for (idx, &o) in occ.iter().enumerate() {
        *peak = (*peak).max(u64::from(o));
        if o > cap {
            diags.push(Diag::new(
                "RV803",
                Analysis::SchedOccupancy,
                name,
                format!(
                    "crosspoint ({},{}) holds {o} cells, capacity {cap}",
                    idx / NPORTS,
                    idx % NPORTS
                ),
            ));
            return; // first violating transition is enough
        }
    }
}

/// Verify one arbiter built by `build` (fresh instances per phase, so a
/// mutant's damage in one phase cannot mask another).
pub fn verify_arbiter(
    build: &dyn Fn() -> Box<dyn Scheduler>,
    opts: &SchedVerifyOptions,
) -> SchedVerdict {
    let mut diags = Vec::new();
    let probe = build();
    let name = probe.name().to_string();
    let mut matchings = 0u64;
    let mut trace_slots = 0u64;
    let mut worst_wait = 0u64;
    let mut occupancy_peak = 0u64;

    // --- RV801, one-shot: fresh state over the request space. ---
    let space = 1u32 << (4 * NPORTS as u32);
    let one_shot: Box<dyn Iterator<Item = u32>> = if opts.exhaustive {
        Box::new(0..space)
    } else {
        Box::new((0..space).step_by(97))
    };
    let mut s = build();
    for x in one_shot {
        let reqs = matrix_from_index(x);
        s.reset();
        let m = s.arbitrate(&reqs);
        matchings += 1;
        check_matching(&name, &reqs, &m, &mut diags);
        if diags.len() > 8 {
            break; // a broken arbiter fails everywhere; don't flood
        }
    }

    // --- RV801, stateful: a long deterministic xorshift trace. ---
    let mut s = build();
    let mut x = 0x9e37_79b9u32;
    for _ in 0..opts.trace_slots * 64 {
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        let reqs = matrix_from_index(x);
        let m = s.arbitrate(&reqs);
        matchings += 1;
        check_matching(&name, &reqs, &m, &mut diags);
        check_occupancy(&name, s.as_ref(), &mut occupancy_peak, &mut diags);
        if diags.len() > 8 {
            break;
        }
    }

    // --- RV802 + RV803: persistent demand, every (or sampled) matrix. ---
    let matrices: Box<dyn Iterator<Item = u32>> = if opts.exhaustive {
        Box::new(0..space)
    } else {
        Box::new((0..space).step_by(211))
    };
    struct TraceState {
        trace_slots: u64,
        worst_wait: u64,
        occupancy_peak: u64,
        starved: bool,
    }
    fn run_matrix(
        build: &dyn Fn() -> Box<dyn Scheduler>,
        name: &str,
        reqs: [u16; NPORTS],
        slots: u64,
        st: &mut TraceState,
        diags: &mut Vec<Diag>,
    ) {
        let mut s = build();
        let mut waits = [0u64; NPORTS];
        for _ in 0..slots {
            let m = s.arbitrate(&reqs);
            st.trace_slots += 1;
            check_occupancy(name, s.as_ref(), &mut st.occupancy_peak, diags);
            for i in 0..NPORTS {
                if reqs[i] == 0 || m[i].is_some() {
                    waits[i] = 0;
                    continue;
                }
                waits[i] += 1;
                st.worst_wait = st.worst_wait.max(waits[i]);
                if waits[i] > WAIT_BOUND && !st.starved {
                    st.starved = true;
                    diags.push(Diag::new(
                        "RV802",
                        Analysis::SchedStarvation,
                        name,
                        format!(
                            "input {i} unserved for {} slots under persistent requests {reqs:?} \
                             (bound {WAIT_BOUND})",
                            waits[i]
                        ),
                    ));
                }
            }
        }
    }
    let mut st = TraceState {
        trace_slots: 0,
        worst_wait: 0,
        occupancy_peak,
        starved: false,
    };
    for m in corner_matrices() {
        run_matrix(build, &name, m, opts.trace_slots, &mut st, &mut diags);
    }
    for x in matrices {
        if st.starved || diags.len() > 8 {
            break;
        }
        run_matrix(
            build,
            &name,
            matrix_from_index(x),
            opts.trace_slots,
            &mut st,
            &mut diags,
        );
    }
    trace_slots += st.trace_slots;
    worst_wait = worst_wait.max(st.worst_wait);
    occupancy_peak = st.occupancy_peak;

    SchedVerdict {
        name,
        diags,
        matchings_checked: matchings,
        trace_slots,
        worst_wait,
        occupancy_peak,
    }
}

/// Verify the three shipped arbiters at their reference parameters.
pub fn sched_verdicts(opts: &SchedVerifyOptions) -> Vec<SchedVerdict> {
    raw_sched::SchedKind::all()
        .iter()
        .map(|kind| verify_arbiter(&|| kind.build(NPORTS), opts))
        .collect()
}

/// Fold per-arbiter verdicts into the three RV8xx report rows
/// `repro -- verify` appends to `results/verify.json`.
pub fn sched_reports(verdicts: &[SchedVerdict]) -> Vec<AnalysisReport> {
    let count = |prefix: &str| {
        verdicts
            .iter()
            .flat_map(|v| &v.diags)
            .filter(|d| d.code.starts_with(prefix))
            .count()
    };
    let matchings: u64 = verdicts.iter().map(|v| v.matchings_checked).sum();
    let slots: u64 = verdicts.iter().map(|v| v.trace_slots).sum();
    let worst: u64 = verdicts.iter().map(|v| v.worst_wait).max().unwrap_or(0);
    let peak: u64 = verdicts.iter().map(|v| v.occupancy_peak).max().unwrap_or(0);
    let names: Vec<&str> = verdicts.iter().map(|v| v.name.as_str()).collect();
    vec![
        AnalysisReport {
            name: "sched-matching",
            code_prefix: "RV801",
            pass: count("RV801") == 0,
            checked: matchings,
            detail: format!(
                "matchings from {names:?} checked for validity and token-0 ring routability"
            ),
        },
        AnalysisReport {
            name: "sched-starvation",
            code_prefix: "RV802",
            pass: count("RV802") == 0,
            checked: slots,
            detail: format!(
                "persistent-demand traces over {names:?}; worst service wait {worst} \
                 (bound {WAIT_BOUND})"
            ),
        },
        AnalysisReport {
            name: "sched-occupancy",
            code_prefix: "RV803",
            pass: count("RV803") == 0,
            checked: slots,
            detail: format!("crosspoint bound asserted per slot; peak occupancy {peak}"),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use raw_sched::mutants::{ConflictArb, StuckPointerArb, UnboundedCqArb};

    fn fast() -> SchedVerifyOptions {
        SchedVerifyOptions {
            exhaustive: false,
            trace_slots: 48,
        }
    }

    #[test]
    fn shipped_arbiters_pass_all_rv8_analyses() {
        let verdicts = sched_verdicts(&fast());
        assert_eq!(verdicts.len(), 3);
        for v in &verdicts {
            assert!(v.diags.is_empty(), "{}: {:?}", v.name, v.diags);
            assert!(v.matchings_checked > 0);
            assert!(v.worst_wait <= WAIT_BOUND, "{}", v.name);
        }
        // The crosspoint-queued arbiter exercises its buffers without
        // ever exceeding them.
        let cq = verdicts.iter().find(|v| v.name == "cq").unwrap();
        assert!(cq.occupancy_peak > 0 && cq.occupancy_peak <= 4);
        for r in sched_reports(&verdicts) {
            assert!(r.pass, "{}: {}", r.name, r.detail);
            assert!(r.checked > 0);
        }
    }

    /// The mutant battery: each planted defect is rejected with its
    /// specific code — and no other.
    #[test]
    fn conflict_mutant_is_rejected_with_rv801() {
        let v = verify_arbiter(&|| Box::new(ConflictArb::new(NPORTS)), &fast());
        assert!(v.diags.iter().any(|d| d.code == "RV801"), "{:?}", v.diags);
        assert!(v.diags.iter().all(|d| d.code == "RV801"), "{:?}", v.diags);
        let reports = sched_reports(&[v]);
        assert!(!reports[0].pass && reports[1].pass && reports[2].pass);
    }

    #[test]
    fn stuck_pointer_mutant_is_rejected_with_rv802() {
        let v = verify_arbiter(&|| Box::new(StuckPointerArb::new(NPORTS, 4)), &fast());
        assert!(v.diags.iter().any(|d| d.code == "RV802"), "{:?}", v.diags);
        assert!(v.diags.iter().all(|d| d.code == "RV802"), "{:?}", v.diags);
        // The starving scenario is named in the diagnostic.
        let d = v.diags.iter().find(|d| d.code == "RV802").unwrap();
        assert!(d.msg.contains("unserved"), "{}", d.msg);
    }

    #[test]
    fn unbounded_crosspoint_mutant_is_rejected_with_rv803() {
        let v = verify_arbiter(&|| Box::new(UnboundedCqArb::new(NPORTS, 4)), &fast());
        assert!(v.diags.iter().any(|d| d.code == "RV803"), "{:?}", v.diags);
        assert!(
            v.diags.iter().all(|d| d.code != "RV801"),
            "the unbounded mutant's matchings are valid; only the bound breaks: {:?}",
            v.diags
        );
        assert!(v.occupancy_peak > 4);
    }
}
