//! Whole-fabric static verification (`RV5xx`–`RV7xx`): channel-dependency
//! deadlock proofs, routing soundness, and credit-sizing analysis for a
//! multi-router fabric, before any simulation runs.
//!
//! The input is a [`FabricSpec`] — an abstract description of a fabric's
//! wiring, per-router LPM tables, and flow-control constants that
//! `raw-fabric` derives from its `TopologyPlan` + `FabricConfig`. Three
//! analyses run over it:
//!
//! 1. **Routing soundness** (`RV6xx`): every per-router table covers the
//!    full fabric address space (`RV601`), every `(source, destination,
//!    spray)` walk terminates without revisiting a router (`RV602`), lands
//!    on exactly the right external output (`RV603`), never exits through
//!    a port that is neither a link nor a declared external output
//!    (`RV604`), and ingress tables agree with the declared uplink map, so
//!    a stamped middle octet always lands on a router whose table can
//!    complete delivery (`RV605`). The walks double as a reachability
//!    analysis: they record exactly which output ports traffic arriving on
//!    each router input can target, and that arrival-accurate target set
//!    is what keeps the deadlock analysis below sharp (an
//!    any-address-anywhere abstraction would manufacture cycles that no
//!    routed packet can drive).
//!
//! 2. **Channel-dependency deadlock freedom** (`RV5xx`): a
//!    channel-dependency graph in the Dally/Seitz tradition, built over
//!    link queues, router input line cards, and link-feeding egress
//!    ports. An edge means "this resource's progress waits on that one":
//!    egress emission waits on link credits (the per-epoch credit check
//!    stalls a sender whose link cannot absorb one emission burst), a
//!    link's packets wait on its receiver line card draining, and a line
//!    card's head waits on the egress its packet targets (a full VOQ
//!    blocks admission; a FIFO head blocks the whole queue). The two
//!    historical escape fixes are modeled *explicitly* as edges that
//!    appear when the fix is absent: without VOQ ingress, a blocked head
//!    holds its cut-through transfer on the shared crossbar ring, so
//!    every input of the router transitively waits on every blockable
//!    egress (`RV502` when that closes a cycle); without the min-1
//!    receive-window escape slot, a drain window can pin at zero whenever
//!    the receiver's backlog sits above the window, coupling the link to
//!    every blockable egress of its receiver (`RV503`). A cycle in the
//!    base graph alone — one no escape valve can break — is `RV501`.
//!
//! 3. **Credit sizing** (`RV7xx`): the symbolic generalization of
//!    `FabricConfig::validate`. From the epoch length and quantum the
//!    analysis re-derives the worst-case per-epoch emission burst
//!    `B = epoch/(quantum+1) + straddle` and proves, per link, the
//!    occupancy invariant `occ ≤ capacity − T + B` where `T` is the
//!    stall threshold (the declared emission bound): if credits ≥ T the
//!    sender may emit at most `B` before the next boundary; if credits
//!    < T the sender is stalled for the whole epoch and nothing arrives.
//!    The bound must not exceed the capacity (`RV703`), the capacity
//!    must leave one slot of progress room above the threshold
//!    (`RV701`), every link must drain (`RV702`), the egress must be
//!    cut-through so a per-epoch emission bound exists at all (`RV704`),
//!    and the epoch must be positive (`RV705`).

use raw_lookup::{reference_lpm, RouteEntry};

use crate::{Analysis, AnalysisReport, Diag};

/// One unidirectional inter-router link with its flow-control sizing.
#[derive(Clone, Copy, Debug)]
pub struct LinkEdge {
    /// Sending `(router, output port)`.
    pub from: (usize, usize),
    /// Receiving `(router, input port)`.
    pub to: (usize, usize),
    /// Bounded queue capacity (credits = free slots).
    pub capacity: usize,
    /// Maximum packets drained per epoch.
    pub rate: usize,
}

/// One router's place in the fabric: pipeline stage and LPM table.
#[derive(Clone, Debug)]
pub struct RouterNode {
    /// 0 = ingress/leaf, 1 = middle/spine, 2 = egress.
    pub stage: usize,
    pub routes: Vec<RouteEntry>,
}

/// The flow-control constants the credit analysis reasons over.
#[derive(Clone, Copy, Debug)]
pub struct CreditModel {
    pub epoch_cycles: u64,
    /// Egress quantum in words (one packet costs quantum + tag).
    pub quantum_words: usize,
    /// Cut-through egress is what bounds per-epoch emission.
    pub cut_through: bool,
    /// The stall threshold the executor compares credits against — the
    /// declared worst-case packets one egress port emits per epoch.
    pub emission_bound: usize,
    /// Extra packets allowed for emissions straddling a boundary.
    pub straddle_margin: usize,
}

impl CreditModel {
    /// Re-derive the worst-case per-epoch emission burst from first
    /// principles (epoch length, per-packet word cost, straddle).
    pub fn derived_burst(&self) -> usize {
        self.epoch_cycles as usize / (self.quantum_words + 1) + self.straddle_margin
    }
}

/// Abstract description of a fabric: everything the three static
/// analyses need, and nothing executor-specific.
#[derive(Clone, Debug)]
pub struct FabricSpec {
    pub name: String,
    pub ext_ports: usize,
    /// Middle-stage choices stamped at injection (1 = no spray).
    pub spray_width: usize,
    pub routers: Vec<RouterNode>,
    pub links: Vec<LinkEdge>,
    /// External input `e` attaches at router input `ext_in[e]`.
    pub ext_in: Vec<(usize, usize)>,
    /// External output `d` drains from router output `ext_out[d]`.
    pub ext_out: Vec<(usize, usize)>,
    /// For each router, the link index carrying spray choice `m`
    /// (empty when the router is not an ingress or there is no spray).
    pub uplinks: Vec<Vec<usize>>,
    /// `dest_addrs[d][m]` is the stamped address for destination `d`
    /// via middle `m` — the full fabric address space.
    pub dest_addrs: Vec<Vec<u32>>,
    pub credit: CreditModel,
    /// Per-output virtual queues at ingress (the HOL-cycle fix).
    pub voq_ingress: bool,
    /// Guaranteed receive-window slots per epoch (the livelock escape
    /// valve); 0 reconstructs the pre-fix behavior.
    pub min_receive_window: usize,
}

/// The outcome of verifying one fabric.
#[derive(Clone, Debug)]
pub struct FabricVerdict {
    pub name: String,
    pub diags: Vec<Diag>,
    /// Channel-dependency graph size (nodes / edges, escape edges
    /// included when their fix is absent).
    pub cdg_nodes: u64,
    pub cdg_edges: u64,
    /// `(source, destination, spray)` routing walks executed.
    pub route_walks: u64,
    /// Router × address coverage points checked for `RV601`.
    pub coverage_points: u64,
    pub links_checked: u64,
    /// Max symbolic worst-case occupancy proven over all links (equals
    /// the capacity when the sizing is tight).
    pub worst_link_occupancy: u64,
}

// ---------------------------------------------------------------------
// RV7xx — credit sizing
// ---------------------------------------------------------------------

fn check_credits(spec: &FabricSpec, diags: &mut Vec<Diag>) -> u64 {
    let c = &spec.credit;
    let name = &spec.name;
    if c.epoch_cycles == 0 {
        diags.push(Diag::new(
            "RV705",
            Analysis::FabricCredits,
            name,
            "epoch_cycles must be positive: the credit protocol samples once per epoch".into(),
        ));
    }
    if !c.cut_through {
        diags.push(Diag::new(
            "RV704",
            Analysis::FabricCredits,
            name,
            "store-and-forward egress has no per-epoch emission bound to size link credits \
             against"
                .into(),
        ));
    }
    let t = c.emission_bound;
    let burst = c.derived_burst();
    let mut worst = 0u64;
    for (li, l) in spec.links.iter().enumerate() {
        let wire = format!(
            "link{li} r{}:p{}->r{}:p{}",
            l.from.0, l.from.1, l.to.0, l.to.1
        );
        if l.rate < 1 {
            diags.push(
                Diag::new(
                    "RV702",
                    Analysis::FabricCredits,
                    name,
                    "link rate must be at least 1 packet/epoch or the queue never drains".into(),
                )
                .at_wire(wire.clone()),
            );
        }
        if l.capacity < t + 1 {
            diags.push(
                Diag::new(
                    "RV701",
                    Analysis::FabricCredits,
                    name,
                    format!(
                        "capacity {} cannot hold the stall threshold {t} plus one slot of \
                         progress room",
                        l.capacity
                    ),
                )
                .at_wire(wire.clone()),
            );
        }
        // Occupancy induction: below the threshold the sender is free
        // and at most `burst` packets arrive at the next boundary; at
        // or above it the sender is stalled for the whole epoch and
        // nothing arrives. Worst reachable occupancy is therefore one
        // burst above the largest free state.
        let w = l.capacity.saturating_sub(t) + burst;
        if w > l.capacity {
            diags.push(
                Diag::new(
                    "RV703",
                    Analysis::FabricCredits,
                    name,
                    format!(
                        "stall threshold {t} cannot absorb the derived worst-case epoch burst \
                         {burst} (epoch {} / quantum {} + straddle {}): worst-case occupancy \
                         {w} exceeds capacity {}",
                        c.epoch_cycles, c.quantum_words, c.straddle_margin, l.capacity
                    ),
                )
                .at_wire(wire),
            );
        }
        worst = worst.max(w.min(l.capacity) as u64);
    }
    worst
}

// ---------------------------------------------------------------------
// RV6xx — routing soundness (and arrival-set extraction for RV5xx)
// ---------------------------------------------------------------------

/// Per-router, per-input-port set of output ports that routed traffic
/// arriving there can target. Ext-input ports are included.
type TargetSets = Vec<Vec<Vec<usize>>>;

struct PortMaps {
    /// `(router, out port)` → link index.
    out_link: Vec<Vec<Option<usize>>>,
    /// `(router, out port)` → external output index.
    ext_out: Vec<Vec<Option<usize>>>,
}

fn port_maps(spec: &FabricSpec) -> PortMaps {
    let nports = |r: usize| {
        // Ports are dense and small; size each router's map to the
        // largest port index any wiring references, so a mutant route
        // to an absurd port is reported (RV604), not an index panic.
        let mut n = 1;
        for l in &spec.links {
            if l.from.0 == r {
                n = n.max(l.from.1 + 1);
            }
            if l.to.0 == r {
                n = n.max(l.to.1 + 1);
            }
        }
        for &(er, ep) in spec.ext_in.iter().chain(&spec.ext_out) {
            if er == r {
                n = n.max(ep + 1);
            }
        }
        n
    };
    let mut out_link = Vec::with_capacity(spec.routers.len());
    let mut ext_out = Vec::with_capacity(spec.routers.len());
    for r in 0..spec.routers.len() {
        out_link.push(vec![None; nports(r)]);
        ext_out.push(vec![None; nports(r)]);
    }
    for (li, l) in spec.links.iter().enumerate() {
        out_link[l.from.0][l.from.1] = Some(li);
    }
    for (d, &(r, p)) in spec.ext_out.iter().enumerate() {
        ext_out[r][p] = Some(d);
    }
    PortMaps { out_link, ext_out }
}

/// Is destination `d` local to router `r` (delivered without spray)?
fn is_local(spec: &FabricSpec, r: usize, d: usize) -> bool {
    spec.ext_out[d].0 == r
}

fn check_routing(
    spec: &FabricSpec,
    maps: &PortMaps,
    diags: &mut Vec<Diag>,
) -> (TargetSets, u64, u64) {
    let name = &spec.name;
    // RV601: full address-space coverage of every table.
    let mut coverage_points = 0u64;
    for (ri, node) in spec.routers.iter().enumerate() {
        for (d, ms) in spec.dest_addrs.iter().enumerate() {
            for (m, &addr) in ms.iter().enumerate() {
                coverage_points += 1;
                if reference_lpm(&node.routes, addr).is_none() {
                    diags.push(
                        Diag::new(
                            "RV601",
                            Analysis::FabricRouting,
                            name,
                            format!(
                                "router {ri} table has no route for fabric address {addr:#010x} \
                                 (dst {d} via middle {m}); the address space is not covered"
                            ),
                        )
                        .at_net(ri),
                    );
                }
            }
        }
    }

    // Walks: every (source ext, destination, spray) triple.
    let mut targets: TargetSets = maps
        .out_link
        .iter()
        .map(|ports| vec![Vec::new(); ports.len().max(crate::fabric::MAX_PORT_HINT)])
        .collect();
    let mut walks = 0u64;
    let hop_limit = spec.routers.len() + 1;
    for (src, &(r0, p0)) in spec.ext_in.iter().enumerate() {
        for d in 0..spec.ext_ports {
            let ms: Vec<usize> = if is_local(spec, r0, d) {
                vec![0]
            } else {
                (0..spec.spray_width).collect()
            };
            for m in ms {
                walks += 1;
                let addr = spec.dest_addrs[d][m];
                let (mut r, mut p) = (r0, p0);
                let mut visited = vec![false; spec.routers.len()];
                let mut first_hop = true;
                let mut hops = 0;
                loop {
                    if visited[r] {
                        diags.push(
                            Diag::new(
                                "RV602",
                                Analysis::FabricRouting,
                                name,
                                format!(
                                    "routing loop: walk src {src} -> dst {d} via middle {m} \
                                     revisits router {r}"
                                ),
                            )
                            .at_net(r),
                        );
                        break;
                    }
                    visited[r] = true;
                    hops += 1;
                    if hops > hop_limit {
                        break; // visited[] already reported the loop
                    }
                    let Some(out) = reference_lpm(&spec.routers[r].routes, addr) else {
                        break; // RV601 covers the hole; walk cannot proceed
                    };
                    let out = out as usize;
                    if out < targets[r].len() && !targets[r][p].contains(&out) {
                        targets[r][p].push(out);
                    }
                    // Ingress spray agreement: the table must steer a
                    // non-local (d, m) out the declared uplink for m,
                    // or the stamped middle octet lies about the path.
                    if first_hop
                        && !is_local(spec, r, d)
                        && spec.uplinks[r].len() == spec.spray_width
                    {
                        let want = spec.links[spec.uplinks[r][m]].from.1;
                        if out != want {
                            diags.push(
                                Diag::new(
                                    "RV605",
                                    Analysis::FabricRouting,
                                    name,
                                    format!(
                                        "ingress router {r} routes dst {d} via middle {m} out \
                                         port {out}, but the declared uplink for spray {m} is \
                                         port {want}"
                                    ),
                                )
                                .at_net(r),
                            );
                        }
                    }
                    first_hop = false;
                    let (linked, exted) = (
                        maps.out_link[r].get(out).copied().flatten(),
                        maps.ext_out[r].get(out).copied().flatten(),
                    );
                    match (linked, exted) {
                        (Some(li), _) => {
                            let l = &spec.links[li];
                            r = l.to.0;
                            p = l.to.1;
                        }
                        (None, Some(ext)) => {
                            if ext != d {
                                diags.push(
                                    Diag::new(
                                        "RV603",
                                        Analysis::FabricRouting,
                                        name,
                                        format!(
                                            "misdelivery: walk src {src} -> dst {d} via middle \
                                             {m} terminates at external output {ext}"
                                        ),
                                    )
                                    .at_net(r),
                                );
                            }
                            break;
                        }
                        (None, None) => {
                            diags.push(
                                Diag::new(
                                    "RV604",
                                    Analysis::FabricRouting,
                                    name,
                                    format!(
                                        "dangling egress: router {r} routes dst {d} via middle \
                                         {m} out port {out}, which feeds neither a link nor a \
                                         declared external output"
                                    ),
                                )
                                .at_net(r)
                                .at_wire(format!("r{r}:p{out}")),
                            );
                            break;
                        }
                    }
                }
            }
        }
    }
    (targets, walks, coverage_points)
}

// Router input/target vectors are sized to the wiring; routed ports can
// exceed that (mutants), so give every router this many slots minimum.
const MAX_PORT_HINT: usize = 8;

// ---------------------------------------------------------------------
// RV5xx — channel-dependency graph deadlock analysis
// ---------------------------------------------------------------------

/// CDG node: a resource whose progress another resource can wait on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Node {
    /// A bounded link queue.
    Lnk(usize),
    /// The egress port feeding link `li` (emission waits on credits).
    Out(usize),
    /// The line card at link `li`'s receiving input.
    LnkIn(usize),
    /// The line card at external input `e`.
    ExtIn(usize),
}

struct Cdg {
    nodes: Vec<Node>,
    edges: Vec<Vec<usize>>,
}

impl Cdg {
    fn node_name(&self, n: usize, spec: &FabricSpec) -> String {
        match self.nodes[n] {
            Node::Lnk(li) => {
                let l = &spec.links[li];
                format!(
                    "link{li}(r{}:p{}→r{}:p{})",
                    l.from.0, l.from.1, l.to.0, l.to.1
                )
            }
            Node::Out(li) => {
                let l = &spec.links[li];
                format!("out r{}:p{}", l.from.0, l.from.1)
            }
            Node::LnkIn(li) => {
                let l = &spec.links[li];
                format!("in r{}:p{}", l.to.0, l.to.1)
            }
            Node::ExtIn(e) => {
                let (r, p) = spec.ext_in[e];
                format!("ext-in{e}(r{r}:p{p})")
            }
        }
    }

    /// First directed cycle, as a node path `a → b → … → a`, or None.
    fn find_cycle(&self) -> Option<Vec<usize>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let n = self.nodes.len();
        let mut color = vec![Color::White; n];
        let mut parent = vec![usize::MAX; n];
        for start in 0..n {
            if color[start] != Color::White {
                continue;
            }
            // Iterative DFS with an explicit edge cursor per frame.
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            color[start] = Color::Gray;
            while let Some(&mut (u, ref mut cursor)) = stack.last_mut() {
                if *cursor < self.edges[u].len() {
                    let v = self.edges[u][*cursor];
                    *cursor += 1;
                    match color[v] {
                        Color::White => {
                            color[v] = Color::Gray;
                            parent[v] = u;
                            stack.push((v, 0));
                        }
                        Color::Gray => {
                            // Back edge u → v closes the cycle.
                            let mut path = vec![u];
                            let mut w = u;
                            while w != v {
                                w = parent[w];
                                path.push(w);
                            }
                            path.reverse();
                            path.push(v);
                            return Some(path);
                        }
                        Color::Black => {}
                    }
                } else {
                    color[u] = Color::Black;
                    stack.pop();
                }
            }
        }
        None
    }
}

/// Which escape-dependent edge families to include.
#[derive(Clone, Copy)]
struct EdgeSel {
    /// FIFO crossbar-jam coupling (absent when VOQ ingress is on).
    fifo_jam: bool,
    /// Zero-window coupling (absent when the min-1 escape slot is on).
    window_pin: bool,
}

fn build_cdg(spec: &FabricSpec, targets: &TargetSets, maps: &PortMaps, sel: EdgeSel) -> Cdg {
    let nlinks = spec.links.len();
    let mut nodes = Vec::new();
    for li in 0..nlinks {
        nodes.push(Node::Lnk(li));
        nodes.push(Node::Out(li));
        nodes.push(Node::LnkIn(li));
    }
    for e in 0..spec.ext_in.len() {
        nodes.push(Node::ExtIn(e));
    }
    let lnk = |li: usize| 3 * li;
    let out = |li: usize| 3 * li + 1;
    let lnk_in = |li: usize| 3 * li + 2;
    let ext_in = |e: usize| 3 * nlinks + e;

    let mut edges = vec![Vec::new(); nodes.len()];
    let push = |edges: &mut Vec<Vec<usize>>, a: usize, b: usize| {
        if !edges[a].contains(&b) {
            edges[a].push(b);
        }
    };
    // Link-feeding outputs per router, by link index.
    let mut feeding: Vec<Vec<usize>> = vec![Vec::new(); spec.routers.len()];
    for (li, l) in spec.links.iter().enumerate() {
        feeding[l.from.0].push(li);
    }

    for (li, l) in spec.links.iter().enumerate() {
        // E1 — credit return: emission onto the link waits on credits.
        push(&mut edges, out(li), lnk(li));
        // E2 — drain: the link's packets wait on the receiving line
        // card making progress.
        push(&mut edges, lnk(li), lnk_in(li));
        // E5 — window pinning (no min-1 escape): the drain window can
        // sit at zero while the receiver's backlog exceeds it, and that
        // backlog drains only as fast as the receiver's blockable
        // egresses; the escape slot statically bounds this wait.
        if sel.window_pin {
            for &lj in &feeding[l.to.0] {
                push(&mut edges, lnk(li), out(lj));
            }
        }
    }
    // E3 — admission: an input's head (FIFO) or targeted VOQ waits on
    // the egress its routed traffic targets, when that egress can block
    // (feeds a link; external egresses always drain).
    let admission = |edges: &mut Vec<Vec<usize>>, node: usize, r: usize, p: usize| {
        if p < targets[r].len() {
            for &o in &targets[r][p] {
                if let Some(&Some(lj)) = maps.out_link[r].get(o) {
                    push(edges, node, out(lj));
                }
            }
        }
        // E4 — crossbar jam (FIFO only): a blocked head's cut-through
        // transfer holds the shared rotating-crossbar ring, so any
        // input of the router can wait on any blockable egress.
        if sel.fifo_jam {
            for &lj in &feeding[r] {
                push(edges, node, out(lj));
            }
        }
    };
    for (li, l) in spec.links.iter().enumerate() {
        admission(&mut edges, lnk_in(li), l.to.0, l.to.1);
    }
    for (e, &(r, p)) in spec.ext_in.iter().enumerate() {
        admission(&mut edges, ext_in(e), r, p);
    }
    Cdg { nodes, edges }
}

fn check_deadlock(
    spec: &FabricSpec,
    targets: &TargetSets,
    maps: &PortMaps,
    diags: &mut Vec<Diag>,
) -> (u64, u64) {
    let name = &spec.name;
    let render = |cdg: &Cdg, cycle: &[usize]| {
        cycle
            .iter()
            .map(|&n| cdg.node_name(n, spec))
            .collect::<Vec<_>>()
            .join(" → ")
    };

    // The base graph models only waits that exist with both escape
    // fixes in place; a cycle here is structural and unfixable by
    // either valve.
    let base = build_cdg(
        spec,
        targets,
        maps,
        EdgeSel {
            fifo_jam: false,
            window_pin: false,
        },
    );
    let base_cyclic = if let Some(cycle) = base.find_cycle() {
        diags.push(Diag::new(
            "RV501",
            Analysis::FabricDeadlock,
            name,
            format!(
                "channel-dependency cycle independent of the escape valves: {}",
                render(&base, &cycle)
            ),
        ));
        true
    } else {
        false
    };

    // Escape-edge modeling: each absent fix adds its edge family to the
    // *base* graph separately, so the diagnostic names the exact fix
    // whose removal re-arms the deadlock.
    if !base_cyclic && !spec.voq_ingress {
        let g = build_cdg(
            spec,
            targets,
            maps,
            EdgeSel {
                fifo_jam: true,
                window_pin: false,
            },
        );
        if let Some(cycle) = g.find_cycle() {
            diags.push(Diag::new(
                "RV502",
                Analysis::FabricDeadlock,
                name,
                format!(
                    "FIFO-ingress head-of-line coupling closes a channel-dependency cycle \
                     (VOQ ingress breaks it): {}",
                    render(&g, &cycle)
                ),
            ));
        }
    }
    if !base_cyclic && spec.min_receive_window == 0 {
        let g = build_cdg(
            spec,
            targets,
            maps,
            EdgeSel {
                fifo_jam: !spec.voq_ingress,
                window_pin: true,
            },
        );
        if let Some(cycle) = g.find_cycle() {
            diags.push(Diag::new(
                "RV503",
                Analysis::FabricDeadlock,
                name,
                format!(
                    "receive-window pinning closes a channel-dependency cycle (the min-1 \
                     escape slot per epoch breaks it): {}",
                    render(&g, &cycle)
                ),
            ));
        }
    }

    // Stats reflect the graph as configured (escape edges included
    // exactly when their fix is absent).
    let full = build_cdg(
        spec,
        targets,
        maps,
        EdgeSel {
            fifo_jam: !spec.voq_ingress,
            window_pin: spec.min_receive_window == 0,
        },
    );
    let nedges: usize = full.edges.iter().map(Vec::len).sum();
    (full.nodes.len() as u64, nedges as u64)
}

// ---------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------

/// Run all three fabric analyses over one spec.
pub fn verify_fabric(spec: &FabricSpec) -> FabricVerdict {
    let mut diags = Vec::new();
    let worst = check_credits(spec, &mut diags);
    let maps = port_maps(spec);
    let (targets, walks, coverage_points) = check_routing(spec, &maps, &mut diags);
    let (cdg_nodes, cdg_edges) = check_deadlock(spec, &targets, &maps, &mut diags);
    FabricVerdict {
        name: spec.name.clone(),
        diags,
        cdg_nodes,
        cdg_edges,
        route_walks: walks,
        coverage_points,
        links_checked: spec.links.len() as u64,
        worst_link_occupancy: worst,
    }
}

/// Fold per-fabric verdicts into the three report rows `repro -- verify`
/// appends to `results/verify.json`.
pub fn fabric_reports(verdicts: &[FabricVerdict]) -> Vec<AnalysisReport> {
    let count = |prefix: &str| {
        verdicts
            .iter()
            .flat_map(|v| &v.diags)
            .filter(|d| d.code.starts_with(prefix))
            .count()
    };
    let walks: u64 = verdicts.iter().map(|v| v.route_walks).sum();
    let cov: u64 = verdicts.iter().map(|v| v.coverage_points).sum();
    let links: u64 = verdicts.iter().map(|v| v.links_checked).sum();
    let nodes: u64 = verdicts.iter().map(|v| v.cdg_nodes).sum();
    let edges: u64 = verdicts.iter().map(|v| v.cdg_edges).sum();
    let worst: u64 = verdicts
        .iter()
        .map(|v| v.worst_link_occupancy)
        .max()
        .unwrap_or(0);
    vec![
        AnalysisReport {
            name: "fabric-deadlock",
            code_prefix: "RV5",
            pass: count("RV5") == 0,
            checked: nodes,
            detail: format!(
                "channel-dependency graphs over {} fabrics ({nodes} nodes, {edges} edges), \
                 VOQ-ingress and min-1 receive-window escape edges modeled explicitly",
                verdicts.len()
            ),
        },
        AnalysisReport {
            name: "fabric-routing",
            code_prefix: "RV6",
            pass: count("RV6") == 0,
            checked: walks,
            detail: format!(
                "{walks} (src, dst, spray) walks over per-router LPM tables; {cov} \
                 address-coverage points"
            ),
        },
        AnalysisReport {
            name: "fabric-credits",
            code_prefix: "RV7",
            pass: count("RV7") == 0,
            checked: links,
            detail: format!(
                "symbolic per-link occupancy bound vs capacity over {links} links; worst-case \
                 occupancy {worst}"
            ),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built 2-router, 2-external-port fabric: router 0 owns ext
    /// port 0, router 1 owns ext port 1, one link each way. Port 0 is
    /// the external port, port 1 the link port, on both routers.
    fn toy(routes0: Vec<RouteEntry>, routes1: Vec<RouteEntry>) -> FabricSpec {
        FabricSpec {
            name: "toy".into(),
            ext_ports: 2,
            spray_width: 1,
            routers: vec![
                RouterNode {
                    stage: 0,
                    routes: routes0,
                },
                RouterNode {
                    stage: 0,
                    routes: routes1,
                },
            ],
            links: vec![
                LinkEdge {
                    from: (0, 1),
                    to: (1, 1),
                    capacity: 8,
                    rate: 4,
                },
                LinkEdge {
                    from: (1, 1),
                    to: (0, 1),
                    capacity: 8,
                    rate: 4,
                },
            ],
            ext_in: vec![(0, 0), (1, 0)],
            ext_out: vec![(0, 0), (1, 0)],
            uplinks: vec![Vec::new(), Vec::new()],
            dest_addrs: vec![vec![0x0a00_0001], vec![0x0a01_0001]],
            credit: CreditModel {
                epoch_cycles: 85,
                quantum_words: 16,
                cut_through: true,
                emission_bound: 7,
                straddle_margin: 2,
            },
            voq_ingress: true,
            min_receive_window: 1,
        }
    }

    fn d16(d: u8, port: u32) -> RouteEntry {
        RouteEntry::new(0x0a00_0000 | (u32::from(d) << 16), 16, port)
    }

    #[test]
    fn sound_toy_fabric_verifies_clean() {
        let v = verify_fabric(&toy(
            vec![d16(0, 0), d16(1, 1), RouteEntry::new(0, 0, 0)],
            vec![d16(0, 1), d16(1, 0), RouteEntry::new(0, 0, 0)],
        ));
        assert!(v.diags.is_empty(), "{:?}", v.diags);
        assert_eq!(v.route_walks, 4);
        assert!(v.cdg_nodes > 0 && v.cdg_edges > 0);
        assert_eq!(v.worst_link_occupancy, 8);
    }

    #[test]
    fn mutual_forwarding_is_a_structural_rv501_cycle_and_a_routing_loop() {
        // Both routers bounce destination 1 at each other: the walk
        // revisits a router (RV602) and the arrival sets close a
        // link0 -> in -> out -> link1 -> in -> out -> link0 cycle that
        // no escape valve can break (RV501).
        let v = verify_fabric(&toy(
            vec![d16(0, 0), d16(1, 1), RouteEntry::new(0, 0, 0)],
            vec![d16(0, 1), d16(1, 1), RouteEntry::new(0, 0, 0)],
        ));
        let codes: Vec<&str> = v.diags.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"RV501"), "{codes:?}");
        assert!(codes.contains(&"RV602"), "{codes:?}");
    }

    #[test]
    fn coverage_holes_and_dangling_ports_get_specific_codes() {
        // Router 1 has no rule at all for destination 0 (RV601), and
        // router 0 sends destination 1 to port 3, which is unwired
        // (RV604).
        let v = verify_fabric(&toy(vec![d16(0, 0), d16(1, 3)], vec![d16(1, 0)]));
        let codes: Vec<&str> = v.diags.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"RV601"), "{codes:?}");
        assert!(codes.contains(&"RV604"), "{codes:?}");
    }

    #[test]
    fn credit_mutants_map_to_their_codes() {
        let mut spec = toy(
            vec![d16(0, 0), d16(1, 1), RouteEntry::new(0, 0, 0)],
            vec![d16(0, 1), d16(1, 0), RouteEntry::new(0, 0, 0)],
        );
        spec.links[0].capacity = 5; // < threshold 7 + 1
        spec.links[1].rate = 0;
        spec.credit.cut_through = false;
        let codes: Vec<&str> = verify_fabric(&spec).diags.iter().map(|d| d.code).collect();
        for want in ["RV701", "RV702", "RV704"] {
            assert!(codes.contains(&want), "missing {want} in {codes:?}");
        }

        let mut spec = toy(
            vec![d16(0, 0), d16(1, 1), RouteEntry::new(0, 0, 0)],
            vec![d16(0, 1), d16(1, 0), RouteEntry::new(0, 0, 0)],
        );
        // Understating the stall threshold breaks the occupancy proof.
        spec.credit.emission_bound = 3;
        let codes: Vec<&str> = verify_fabric(&spec).diags.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"RV703"), "{codes:?}");

        let mut spec = toy(
            vec![d16(0, 0), d16(1, 1), RouteEntry::new(0, 0, 0)],
            vec![d16(0, 1), d16(1, 0), RouteEntry::new(0, 0, 0)],
        );
        spec.credit.epoch_cycles = 0;
        let codes: Vec<&str> = verify_fabric(&spec).diags.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"RV705"), "{codes:?}");
    }
}
