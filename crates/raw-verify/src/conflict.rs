//! Analysis 1: per-instruction route conflicts and mesh geometry
//! (`RV1xx`).
//!
//! Walks every instruction of every switch program installed in a
//! [`FabricModel`] and checks the properties a single instruction must
//! satisfy in isolation:
//!
//! * `RV101` — a crossbar output is selected by two routes on one
//!   network (the hardware muxes exactly one input per output);
//! * `RV102` — a route uses an off-grid link that is not a declared
//!   external port (the word would fall off the chip, or block forever
//!   waiting for a device that is not there);
//! * `RV103` — a `WaitPc` instruction carries routes (the sync point
//!   must be route-free so a processor-loaded PC cannot strand a
//!   half-fired instruction);
//! * `RV104` — the program exceeds the prototype's switch instruction
//!   memory (the §6.2 feasibility bound);
//! * `RV105` — a route is scheduled on a network other than the one the
//!   program is installed on;
//! * `RV106` — an instruction names more routes than the machine's fired
//!   mask can track;
//! * `RV107` — a jump targets an instruction outside the program.

use raw_sim::{SwPort, SwitchCtrl, MAX_ROUTES_PER_INSTR};

use crate::{Analysis, Diag, FabricModel, SwitchSlot};

fn wire_name(slot: &SwitchSlot, port: SwPort) -> String {
    match port.dir() {
        Some(d) => format!("{}:{}:{}", slot.tile, slot.net, d),
        None => format!("{}:{}:Proc", slot.tile, slot.net),
    }
}

/// Check one installed program. Returns the number of instructions
/// examined.
pub fn check_slot(model: &FabricModel, slot: &SwitchSlot, diags: &mut Vec<Diag>) -> u64 {
    let base = |code, msg| {
        Diag::new(code, Analysis::RouteConflict, &model.name, msg)
            .at_tile(slot.tile)
            .at_net(slot.net)
    };

    if !slot.program.fits_switch_imem() {
        diags.push(base(
            "RV104",
            format!(
                "switch program of {} instructions exceeds the {}-instruction switch memory",
                slot.program.len(),
                raw_sim::SWITCH_IMEM_INSTRS
            ),
        ));
    }

    let len = slot.program.len();
    for (pc, instr) in slot.program.instrs.iter().enumerate() {
        if instr.ctrl == SwitchCtrl::WaitPc && !instr.routes.is_empty() {
            diags.push(
                base(
                    "RV103",
                    format!("WaitPc sync point carries {} route(s)", instr.routes.len()),
                )
                .at_pc(pc),
            );
        }
        if let SwitchCtrl::Jump(target) = instr.ctrl {
            if target >= len {
                diags.push(
                    base(
                        "RV107",
                        format!("jump target {target} outside the {len}-instruction program"),
                    )
                    .at_pc(pc),
                );
            }
        }
        if instr.routes.len() > MAX_ROUTES_PER_INSTR {
            diags.push(
                base(
                    "RV106",
                    format!(
                        "{} routes exceed the {MAX_ROUTES_PER_INSTR}-route instruction limit",
                        instr.routes.len()
                    ),
                )
                .at_pc(pc),
            );
        }
        for (i, a) in instr.routes.iter().enumerate() {
            if a.net != slot.net {
                diags.push(
                    base(
                        "RV105",
                        format!(
                            "route {:?}->{:?} on net {} inside the net-{} program",
                            a.src, a.dst, a.net, slot.net
                        ),
                    )
                    .at_pc(pc)
                    .at_wire(wire_name(slot, a.src)),
                );
            }
            for b in &instr.routes[i + 1..] {
                if a.net == b.net && a.dst == b.dst {
                    diags.push(
                        base(
                            "RV101",
                            format!(
                                "output {:?} driven by both {:?} and {:?} on net {}",
                                a.dst, a.src, b.src, a.net
                            ),
                        )
                        .at_pc(pc)
                        .at_wire(wire_name(slot, a.dst)),
                    );
                }
            }
            // Geometry: an off-grid link must be a declared external port.
            if let Some(d) = a.src.dir() {
                if model.dim.neighbor(slot.tile, d).is_none()
                    && !model.ext_in.contains(&(slot.tile, slot.net, d))
                {
                    diags.push(
                        base(
                            "RV102",
                            format!("route reads off-grid link {d} with no device declared"),
                        )
                        .at_pc(pc)
                        .at_wire(wire_name(slot, a.src)),
                    );
                }
            }
            if let Some(d) = a.dst.dir() {
                if model.dim.neighbor(slot.tile, d).is_none()
                    && !model.ext_out.contains(&(slot.tile, slot.net, d))
                {
                    diags.push(
                        base(
                            "RV102",
                            format!("route drives off-grid link {d} with no device declared"),
                        )
                        .at_pc(pc)
                        .at_wire(wire_name(slot, a.dst)),
                    );
                }
            }
        }
    }
    len as u64
}

/// Check every program in the fabric. Returns total instructions
/// examined.
pub fn check_fabric(model: &FabricModel, diags: &mut Vec<Diag>) -> u64 {
    let mut n = 0;
    for slot in &model.slots {
        n += check_slot(model, slot, diags);
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use raw_sim::{Dir, GridDim, Route, SwitchInstr, SwitchProgram, TileId, NET0, NET1};

    fn model_with(program: SwitchProgram) -> FabricModel {
        let mut m = FabricModel::new("test", GridDim::new(1, 2));
        m.slots
            .push(SwitchSlot::new(TileId(0), NET0, program, vec![]));
        m
    }

    fn codes(model: &FabricModel) -> Vec<&'static str> {
        let mut diags = Vec::new();
        check_fabric(model, &mut diags);
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_program_passes() {
        let mut m = model_with(SwitchProgram::new(vec![
            SwitchInstr::new(
                vec![Route::new(NET0, SwPort::W, SwPort::E)],
                SwitchCtrl::Next,
            ),
            SwitchInstr::wait_pc(),
        ]));
        m.ext_in.push((TileId(0), NET0, Dir::West));
        assert!(codes(&m).is_empty());
    }

    #[test]
    fn double_driven_output_is_rv101() {
        // Public fields let a mutant bypass the validating constructor.
        let mut i = SwitchInstr::new(
            vec![Route::new(NET0, SwPort::Proc, SwPort::E)],
            SwitchCtrl::Next,
        );
        i.routes.push(Route::new(NET0, SwPort::W, SwPort::E));
        let mut m = model_with(SwitchProgram::new(vec![i, SwitchInstr::wait_pc()]));
        m.ext_in.push((TileId(0), NET0, Dir::West));
        assert_eq!(codes(&m), vec!["RV101"]);
    }

    #[test]
    fn undeclared_offgrid_link_is_rv102() {
        // Tile (0,0) of a 1x2 grid: North is off-grid and undeclared.
        let m = model_with(SwitchProgram::new(vec![
            SwitchInstr::new(
                vec![Route::new(NET0, SwPort::Proc, SwPort::N)],
                SwitchCtrl::Next,
            ),
            SwitchInstr::wait_pc(),
        ]));
        assert_eq!(codes(&m), vec!["RV102"]);
    }

    #[test]
    fn waitpc_with_routes_is_rv103() {
        let mut i = SwitchInstr::wait_pc();
        i.routes.push(Route::new(NET0, SwPort::Proc, SwPort::Proc));
        let m = model_with(SwitchProgram::new(vec![i]));
        assert_eq!(codes(&m), vec!["RV103"]);
    }

    #[test]
    fn imem_overflow_is_rv104() {
        let m = model_with(SwitchProgram::new(vec![
            SwitchInstr::nop();
            raw_sim::SWITCH_IMEM_INSTRS + 1
        ]));
        assert_eq!(codes(&m), vec!["RV104"]);
    }

    #[test]
    fn net_mismatch_is_rv105() {
        let m = model_with(SwitchProgram::new(vec![
            SwitchInstr::new(
                vec![Route::new(NET1, SwPort::Proc, SwPort::E)],
                SwitchCtrl::Next,
            ),
            SwitchInstr::wait_pc(),
        ]));
        assert_eq!(codes(&m), vec!["RV105"]);
    }

    #[test]
    fn route_overflow_is_rv106_and_rv101() {
        let mut i = SwitchInstr::nop();
        for _ in 0..MAX_ROUTES_PER_INSTR + 1 {
            i.routes.push(Route::new(NET0, SwPort::Proc, SwPort::E));
        }
        let m = model_with(SwitchProgram::new(vec![i]));
        assert!(codes(&m).contains(&"RV106"));
    }

    #[test]
    fn bad_jump_target_is_rv107() {
        let m = model_with(SwitchProgram::new(vec![SwitchInstr::new(
            vec![],
            SwitchCtrl::Jump(99),
        )]));
        assert_eq!(codes(&m), vec!["RV107"]);
    }

    #[test]
    fn generated_router_programs_are_clean() {
        use raw_xbar::config::{ConfigSpace, SchedPolicy};
        use raw_xbar::layout::RouterLayout;
        let layout = RouterLayout::canonical();
        let cs = ConfigSpace::enumerate(SchedPolicy::ShortestFirst);
        let model = crate::lockstep::router_fabric_model(&layout, &cs, 16, "router-q16");
        let mut diags = Vec::new();
        let n = check_fabric(&model, &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
        assert!(n > 100, "checked only {n} instructions");
    }
}
