//! Differential property test: the static verifier against the cycle
//! simulator (satellite S3).
//!
//! Start from a known-good relay schedule — two switches on a 1×2 grid
//! forwarding `K` words from a west-edge line card to an east-edge line
//! card — and apply a random mutation: drop an instruction, duplicate
//! one, or reroute one endpoint. The soundness property: either the
//! verifier flags the mutant, or the real machine runs it cleanly
//! (reaches quiescence with every switch halted at its sync point and no
//! blocked processor). A mutant the verifier passes but the simulator
//! chokes on would be a verifier soundness hole.

use proptest::prelude::*;
use raw_sim::{
    Dir, EdgePort, GridDim, RawConfig, RawMachine, Route, SwPort, SwitchCtrl, SwitchInstr,
    SwitchProgram, TileId, WordSink, WordSource, NET0,
};
use raw_verify::{conflict, lockstep, FabricModel, SwitchSlot};

/// Words the relay forwards per period. Small enough that a mutant
/// rerouting words into an unread `$csti` queue cannot fill it and
/// stall the switch (the verifier's processor model treats pushes to
/// the processor as always accepted).
const K: usize = 3;

fn relay(k: usize) -> SwitchProgram {
    let mut instrs: Vec<SwitchInstr> = (0..k)
        .map(|_| {
            SwitchInstr::new(
                vec![Route::new(NET0, SwPort::W, SwPort::E)],
                SwitchCtrl::Next,
            )
        })
        .collect();
    instrs.push(SwitchInstr::wait_pc());
    SwitchProgram::new(instrs)
}

#[derive(Clone, Copy, Debug)]
enum Mutation {
    Drop(usize),
    Dup(usize),
    RerouteDst(usize, SwPort),
    RerouteSrc(usize, SwPort),
}

fn port(i: usize) -> SwPort {
    [SwPort::N, SwPort::E, SwPort::S, SwPort::W, SwPort::Proc][i % 5]
}

/// Apply through the public fields — the validating constructors would
/// reject some of these, which is exactly the point.
fn apply(prog: &SwitchProgram, m: Mutation) -> SwitchProgram {
    let mut p = prog.clone();
    let len = p.instrs.len();
    match m {
        Mutation::Drop(i) => {
            p.instrs.remove(i % len);
        }
        Mutation::Dup(i) => {
            let ins = p.instrs[i % len].clone();
            p.instrs.insert(i % len, ins);
        }
        Mutation::RerouteDst(i, to) => {
            if let Some(r) = p.instrs[i % len].routes.first_mut() {
                r.dst = to;
            }
        }
        Mutation::RerouteSrc(i, to) => {
            if let Some(r) = p.instrs[i % len].routes.first_mut() {
                r.src = to;
            }
        }
    }
    p
}

/// Run the conflict and lockstep analyses on the two-switch fabric.
fn verifier_flags(p0: &SwitchProgram, p1: &SwitchProgram) -> bool {
    let mut m = FabricModel::new("differential-relay", GridDim::new(1, 2));
    for (t, p) in [(0u16, p0), (1u16, p1)] {
        let mut slot = SwitchSlot::new(TileId(t), NET0, p.clone(), vec![]);
        // The relay's processors push nothing: a mutant that reads
        // `$csto` must be reported as a dead-producer stall, matching
        // the real machine where the idle processor never writes it.
        slot.proc_words = Some(0);
        m.slots.push(slot);
    }
    m.ext_in.push((TileId(0), NET0, Dir::West));
    m.ext_out.push((TileId(1), NET0, Dir::East));
    let mut diags = Vec::new();
    conflict::check_fabric(&m, &mut diags);
    lockstep::run(&m, &mut diags);
    !diags.is_empty()
}

fn build_machine(p0: &SwitchProgram, p1: &SwitchProgram) -> (RawMachine, raw_sim::SinkHandle) {
    let cfg = RawConfig {
        dim: GridDim::new(1, 2),
        ..RawConfig::default()
    };
    let mut m = RawMachine::new(cfg);
    m.set_switch_program(TileId(0), NET0, p0.clone());
    m.set_switch_program(TileId(1), NET0, p1.clone());
    m.bind_device(
        EdgePort::new(TileId(0), Dir::West, NET0),
        Box::new(WordSource::new((0..K as u32).map(|w| 0xbeef_0000 + w))),
    );
    let (sink, handle) = WordSink::new();
    m.bind_device(EdgePort::new(TileId(1), Dir::East, NET0), Box::new(sink));
    (m, handle)
}

/// "Cleanly" = quiescent within the budget, no blocked processor, and
/// both switches halted at their WaitPc sync points.
fn sim_runs_cleanly(p0: &SwitchProgram, p1: &SwitchProgram) -> bool {
    let (mut m, _handle) = build_machine(p0, p1);
    let rep = m.run_until_quiescent(64, 20_000);
    let halted = (0..2).all(|t| m.switch_status(TileId(t), NET0).1);
    rep.quiescent && rep.blocked_tiles.is_empty() && halted
}

#[test]
fn pristine_relay_verifies_and_delivers() {
    let p = relay(K);
    assert!(!verifier_flags(&p, &p), "clean relay must verify");
    let (mut m, handle) = build_machine(&p, &p);
    let rep = m.run_until_quiescent(64, 20_000);
    assert!(rep.quiescent && rep.blocked_tiles.is_empty());
    let got = handle.lock().unwrap().len();
    assert_eq!(got, K, "sink must receive every relayed word");
}

fn arb_mutation() -> impl Strategy<Value = Mutation> {
    (0usize..4, 0usize..K + 1, 0usize..5).prop_map(|(kind, idx, p)| match kind {
        0 => Mutation::Drop(idx),
        1 => Mutation::Dup(idx),
        2 => Mutation::RerouteDst(idx, port(p)),
        _ => Mutation::RerouteSrc(idx, port(p)),
    })
}

proptest! {
    /// The S3 soundness property.
    #[test]
    fn mutants_are_flagged_or_run_cleanly(
        which in 0usize..2,
        m in arb_mutation(),
    ) {
        let good = relay(K);
        let (p0, p1) = if which == 0 {
            (apply(&good, m), good.clone())
        } else {
            (good.clone(), apply(&good, m))
        };
        prop_assert!(
            verifier_flags(&p0, &p1) || sim_runs_cleanly(&p0, &p1),
            "verifier passed mutant {m:?} of switch {which} but the simulator does not run it cleanly"
        );
    }
}
