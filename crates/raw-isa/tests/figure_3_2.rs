//! Reproduction of Figure 3-2: "The switch and tile code required for a
//! tile-to-tile send to the South from tile 0 to tile 4", and related
//! network-timing kernels, now in actual assembly.
//!
//! The paper's walkthrough: cycle 1 the `or` executes on tile 0 and the
//! value arrives at switch 0; cycle 2 switch 0 transmits to switch 4;
//! cycle 3 switch 4 transmits to the processor; cycle 4 decode; cycle 5
//! the `and` executes. Five cycles total, three of them send-to-use
//! latency.

use raw_isa::*;
use raw_sim::*;

/// Which static network a single-net switch source targets (test helper:
/// programs here are written per network).
fn net_of(src: &str) -> usize {
    if src.contains('2') {
        NET1
    } else {
        NET0
    }
}

#[test]
fn five_cycle_tile_to_tile_send() {
    let mut m = RawMachine::new(RawConfig::default());

    // Tile 0: or $csto, $0, $5   (with $5 preset to a marker value)
    let mut sender = IsaCore::from_asm(
        "
        or   $csto, $zero, $a1
        halt
        ",
    )
    .unwrap();
    sender.set_reg(Reg(5), 0xBEEF);
    let (sender, send_watch) = sender.watched();
    m.set_program(TileId(0), Box::new(sender));
    m.set_switch_program(
        TileId(0),
        net_of("route $csto->$cSo"),
        assemble_switch("route $csto->$cSo").unwrap(),
    );

    // Tile 4: and $5, $5, $csti
    let mut recv = IsaCore::from_asm(
        "
        and  $a1, $a1, $csti
        halt
        ",
    )
    .unwrap();
    recv.set_reg(Reg(5), 0xFFFF_FFFF);
    let (recv, recv_watch) = recv.watched();
    m.set_program(TileId(4), Box::new(recv));
    m.set_switch_program(
        TileId(4),
        net_of("route $cNi->$csti"),
        assemble_switch("route $cNi->$csti").unwrap(),
    );

    m.run(30);

    let sw = send_watch.lock().unwrap();
    let rw = recv_watch.lock().unwrap();
    assert!(rw.halted);
    assert_eq!(rw.regs[5], 0xBEEF, "the AND must see the sent word");

    let or_cycle = sw.retire_cycles[0];
    let and_cycle = rw.retire_cycles[0];
    assert_eq!(
        and_cycle - or_cycle,
        4,
        "or on cycle k, and on cycle k+4: the 5-cycle send of Figure 3-2 \
         (3-cycle send-to-use latency)"
    );
}

#[test]
fn unrolled_load_send_streams_one_word_per_cycle() {
    // §4.4: code is "carefully unrolled" and load-and-forward costs one
    // cycle per word. An 8-word unrolled burst must retire in 8
    // consecutive cycles once the first load has warmed the cache line.
    let mut m = RawMachine::new(RawConfig::default());

    let mut src = String::new();
    // Warm the line first so the burst itself is all hits.
    src.push_str("lw $t0, 0($s0)\n");
    for i in 0..8 {
        src.push_str(&format!("lw $csto, {i}($s0)\n"));
    }
    src.push_str("halt\n");
    let mut core = IsaCore::from_asm(&src).unwrap();
    core.set_reg(Reg(16), 0); // $s0 = base address 0
    let (core, watch) = core.watched();
    m.set_program(TileId(4), Box::new(core));
    m.set_switch_program(
        TileId(4),
        net_of("loop: route $csto->$cEo ; j loop"),
        assemble_switch("loop: route $csto->$cEo ; j loop").unwrap(),
    );
    // Tile 5 forwards east to the edge is unnecessary: drop at unbound
    // edge is fine for this timing test; route tile 5 west->east.
    m.set_switch_program(
        TileId(5),
        net_of("loop: route $cWi->$cEo ; j loop"),
        assemble_switch("loop: route $cWi->$cEo ; j loop").unwrap(),
    );

    for (i, w) in m.tile_mem_mut(TileId(4)).iter_mut().take(8).enumerate() {
        *w = 100 + i as u32;
    }

    m.run(200);
    let w = watch.lock().unwrap();
    assert!(w.halted);
    // The 8 lw-$csto retires are consecutive cycles.
    let burst = &w.retire_cycles[1..9];
    for pair in burst.windows(2) {
        assert_eq!(
            pair[1] - pair[0],
            1,
            "load-and-forward must be 1 cycle/word"
        );
    }
}

#[test]
fn receive_and_buffer_costs_two_cycles_per_word() {
    // §4.4: "buffering data on a tile's local memory requires two
    // processor cycles per word" — a move-from-csti plus a store.
    let mut m = RawMachine::new(RawConfig::default());

    // Feed 4 words into tile 4 from the west edge.
    m.bind_device(
        EdgePort::new(TileId(4), Dir::West, NET0),
        Box::new(WordSource::new([1u32, 2, 3, 4])),
    );
    m.set_switch_program(
        TileId(4),
        net_of("loop: route $cWi->$csti ; j loop"),
        assemble_switch("loop: route $cWi->$csti ; j loop").unwrap(),
    );

    // Warm the cache line, then buffer 4 words: or-from-csti + sw each.
    let mut src = String::from("lw $t0, 0($s0)\n");
    for i in 0..4 {
        src.push_str("or $t1, $zero, $csti\n");
        src.push_str(&format!("sw $t1, {i}($s0)\n"));
    }
    src.push_str("halt\n");
    let mut core = IsaCore::from_asm(&src).unwrap();
    core.set_reg(Reg(16), 0);
    let (core, watch) = core.watched();
    m.set_program(TileId(4), Box::new(core));

    m.run(300);
    let w = watch.lock().unwrap();
    assert!(w.halted);
    // Steady state: each (recv, store) pair retires 2 cycles apart.
    // Look at the last three pairs (the first may wait for arrival).
    let rc = &w.retire_cycles;
    let pair_starts: Vec<u64> = (0..4).map(|i| rc[1 + 2 * i]).collect();
    for pr in pair_starts.windows(2).skip(1) {
        assert_eq!(pr[1] - pr[0], 2, "buffering must cost 2 cycles/word");
    }
    // The words landed in memory.
    let mem = m.tile_mem_mut(TileId(4));
    assert_eq!(&mem[0..4], &[1, 2, 3, 4]);
}

#[test]
fn two_network_reads_in_one_instruction() {
    // add $1, $csti, $csti2 pops both static networks in a single cycle.
    let mut m = RawMachine::new(RawConfig::default());
    m.bind_device(
        EdgePort::new(TileId(4), Dir::West, NET0),
        Box::new(WordSource::new([40u32])),
    );
    m.bind_device(
        EdgePort::new(TileId(4), Dir::West, NET1),
        Box::new(WordSource::new([2u32])),
    );
    m.set_switch_program(
        TileId(4),
        NET0,
        assemble_switch("loop: route $cWi->$csti ; j loop").unwrap(),
    );
    m.set_switch_program(
        TileId(4),
        NET1,
        assemble_switch("loop: route $cWi2->$csti2 ; j loop").unwrap(),
    );
    let (core, watch) = IsaCore::from_asm(
        "
        add $t0, $csti, $csti2
        halt
        ",
    )
    .unwrap()
    .watched();
    m.set_program(TileId(4), Box::new(core));
    m.run(40);
    let w = watch.lock().unwrap();
    assert!(w.halted);
    assert_eq!(w.regs[8], 42);
    assert_eq!(w.retired, 2);
}

#[test]
fn swpc_steers_switch_from_assembly() {
    // The §6.5 idiom: the tile processor picks a switch routine by loading
    // the switch PC, then consumes the word the routine delivers.
    let mut m = RawMachine::new(RawConfig::default());
    m.bind_device(
        EdgePort::new(TileId(4), Dir::West, NET0),
        Box::new(WordSource::new([7u32])),
    );
    let (sw, labels) = raw_isa::asm::assemble_switch_labeled(
        "
        idle:  waitpc
        take:  route $cWi->$csti
               waitpc
        ",
    )
    .unwrap();
    m.set_switch_program(TileId(4), NET0, sw);
    let take = labels["take"];
    let (core, watch) = IsaCore::from_asm(&format!(
        "
        swpc 0, {take}
        or   $t0, $zero, $csti
        halt
        "
    ))
    .unwrap()
    .watched();
    m.set_program(TileId(4), Box::new(core));
    m.run(40);
    let w = watch.lock().unwrap();
    assert!(w.halted);
    assert_eq!(w.regs[8], 7);
}

#[test]
fn blocked_receive_shows_in_utilization() {
    // A core stuck on $csti is "blocked on receive" — gray in Figure 7-3.
    let mut m = RawMachine::new(RawConfig::default());
    let (core, _watch) = IsaCore::from_asm("or $t0, $zero, $csti\nhalt")
        .unwrap()
        .watched();
    m.set_program(TileId(4), Box::new(core));
    m.run(50);
    let stats = m.stats(TileId(4));
    assert!(stats.blocked() >= 48, "blocked: {}", stats.blocked());
}
