//! Property test: the cycle-accurate interpreter computes the same
//! architectural results as a simple functional golden model for random
//! straight-line ALU programs (timing differs; values must not).

use proptest::prelude::*;
use raw_isa::*;
use raw_sim::{RawConfig, RawMachine, TileId};

#[derive(Clone, Debug)]
enum GInstr {
    Alu(AluOp, u8, u8, u8),
    AluImm(AluImmOp, u8, u8, i16),
    Lui(u8, u16),
    Popc(u8, u8),
    Ext(u8, u8, u8, u8),
}

/// General registers only (skip $0 and the network-mapped 24..=28).
fn arb_reg() -> impl Strategy<Value = u8> {
    prop_oneof![1u8..24, 29u8..32]
}

fn arb_instr() -> impl Strategy<Value = GInstr> {
    let alu = prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Nor),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Sllv),
        Just(AluOp::Srlv),
        Just(AluOp::Srav),
        Just(AluOp::Mul),
    ];
    let alui = prop_oneof![
        Just(AluImmOp::Addi),
        Just(AluImmOp::Andi),
        Just(AluImmOp::Ori),
        Just(AluImmOp::Xori),
        Just(AluImmOp::Slti),
        Just(AluImmOp::Sll),
        Just(AluImmOp::Srl),
        Just(AluImmOp::Sra),
    ];
    prop_oneof![
        (alu, arb_reg(), arb_reg(), arb_reg()).prop_map(|(o, d, s, t)| GInstr::Alu(o, d, s, t)),
        (alui, arb_reg(), arb_reg(), any::<i16>())
            .prop_map(|(o, t, s, i)| GInstr::AluImm(o, t, s, i)),
        (arb_reg(), any::<u16>()).prop_map(|(t, i)| GInstr::Lui(t, i)),
        (arb_reg(), arb_reg()).prop_map(|(d, s)| GInstr::Popc(d, s)),
        (arb_reg(), arb_reg(), 0u8..32, 1u8..=32).prop_map(|(d, s, p, z)| GInstr::Ext(d, s, p, z)),
    ]
}

fn to_instr(g: &GInstr) -> Instr {
    match *g {
        GInstr::Alu(op, d, s, t) => Instr::Alu {
            op,
            rd: Reg(d),
            rs: Reg(s),
            rt: Reg(t),
        },
        GInstr::AluImm(op, t, s, i) => Instr::AluImm {
            op,
            rt: Reg(t),
            rs: Reg(s),
            imm: i as i32,
        },
        GInstr::Lui(t, i) => Instr::Lui {
            rt: Reg(t),
            imm: i as u32,
        },
        GInstr::Popc(d, s) => Instr::Popc {
            rd: Reg(d),
            rs: Reg(s),
        },
        GInstr::Ext(d, s, p, z) => Instr::Ext {
            rd: Reg(d),
            rs: Reg(s),
            pos: p,
            size: z,
        },
    }
}

/// The golden model: direct functional evaluation.
fn golden(prog: &[GInstr], init: &[u32; 32]) -> [u32; 32] {
    let mut r = *init;
    r[0] = 0;
    for g in prog {
        match *g {
            GInstr::Alu(op, d, s, t) => {
                let v = op.eval(r[s as usize], r[t as usize]);
                if d != 0 {
                    r[d as usize] = v;
                }
            }
            GInstr::AluImm(op, t, s, i) => {
                let v = op.eval(r[s as usize], i as i32);
                if t != 0 {
                    r[t as usize] = v;
                }
            }
            GInstr::Lui(t, i) => {
                if t != 0 {
                    r[t as usize] = (i as u32) << 16;
                }
            }
            GInstr::Popc(d, s) => {
                if d != 0 {
                    r[d as usize] = r[s as usize].count_ones();
                }
            }
            GInstr::Ext(d, s, p, z) => {
                let mask = if z >= 32 { u32::MAX } else { (1u32 << z) - 1 };
                if d != 0 {
                    r[d as usize] = (r[s as usize] >> p) & mask;
                }
            }
        }
    }
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn interpreter_matches_golden_model(
        prog in proptest::collection::vec(arb_instr(), 1..40),
        seeds in proptest::collection::vec(any::<u32>(), 8),
    ) {
        let mut instrs: Vec<Instr> = prog.iter().map(to_instr).collect();
        instrs.push(Instr::Halt);
        let mut core = IsaCore::new(instrs);
        let mut init = [0u32; 32];
        for (i, s) in seeds.iter().enumerate() {
            init[1 + i] = *s;
            core.set_reg(Reg(1 + i as u8), *s);
        }
        let (core, watch) = core.watched();
        let mut m = RawMachine::new(RawConfig::default());
        m.set_program(TileId(0), Box::new(core));
        m.run(prog.len() as u64 + 20);
        let w = watch.lock().unwrap();
        prop_assert!(w.halted, "straight-line program must halt");
        let want = golden(&prog, &init);
        #[allow(clippy::needless_range_loop)]
        for r in 1..24usize {
            prop_assert_eq!(w.regs[r], want[r], "register ${} diverged", r);
        }
        // One instruction per cycle: retire count == program length + halt.
        prop_assert_eq!(w.retired, prog.len() as u64 + 1);
    }
}
