//! Cycle-accurate interpreter for tile-processor programs.
//!
//! Each [`IsaCore`] implements [`raw_sim::TileProgram`]: one instruction
//! issues per cycle, network registers block, branches follow the static
//! prediction model (backward predicted taken, forward predicted
//! not-taken, three-cycle mispredict penalty), and memory operations go
//! through the simulated data cache.

use std::sync::{Arc, Mutex};

use raw_sim::{TileIo, TileProgram, NET0, NET1};

use crate::asm::{assemble, AsmError};
use crate::isa::*;

/// Observable snapshot of a core, shared with tests/harnesses through a
/// [`WatchHandle`]. Updated every time an instruction retires.
#[derive(Clone, Debug, Default)]
pub struct CoreWatch {
    pub regs: [u32; 32],
    pub pc: usize,
    pub retired: u64,
    pub halted: bool,
    /// Cycle at which each retired instruction completed, in order.
    pub retire_cycles: Vec<u64>,
}

pub type WatchHandle = Arc<Mutex<CoreWatch>>;

/// Pre-decoded stall-check operands for one instruction: the register
/// source/destination sets [`Instr::sources`] / [`Instr::dest`] would
/// recompute (allocating a fresh `Vec`) on every tick. Built once at
/// construction — the kernel IR the schedule-specialization compiler
/// pass relies on for decode-free interpreted kernels.
#[derive(Clone, Copy)]
struct DecodedOperands {
    srcs: [Reg; 2],
    nsrcs: u8,
    dest: Option<Reg>,
}

impl DecodedOperands {
    fn of(instr: &Instr) -> DecodedOperands {
        let v = instr.sources();
        debug_assert!(v.len() <= 2, "instruction reads more than two sources");
        let mut srcs = [ZERO; 2];
        srcs[..v.len()].copy_from_slice(&v);
        DecodedOperands {
            srcs,
            nsrcs: v.len() as u8,
            dest: instr.dest(),
        }
    }

    #[inline]
    fn srcs(&self) -> &[Reg] {
        &self.srcs[..self.nsrcs as usize]
    }
}

/// An interpreted tile processor.
pub struct IsaCore {
    instrs: Vec<Instr>,
    /// Per-instruction pre-decoded operand sets, same indexing as
    /// `instrs`.
    decoded: Vec<DecodedOperands>,
    regs: [u32; 32],
    pc: usize,
    /// Remaining branch-mispredict bubble cycles.
    penalty: u32,
    halted: bool,
    retired: u64,
    watch: Option<WatchHandle>,
    label: String,
}

impl IsaCore {
    /// Build a core from validated instructions.
    pub fn new(instrs: Vec<Instr>) -> IsaCore {
        assert!(
            instrs.len() <= TILE_IMEM_INSTRS,
            "program exceeds tile instruction memory"
        );
        for (i, instr) in instrs.iter().enumerate() {
            if let Err(e) = instr.validate() {
                panic!("invalid instruction at index {i}: {e}");
            }
        }
        let decoded = instrs.iter().map(DecodedOperands::of).collect();
        IsaCore {
            instrs,
            decoded,
            regs: [0; 32],
            pc: 0,
            penalty: 0,
            halted: false,
            retired: 0,
            watch: None,
            label: "isa".to_string(),
        }
    }

    /// Assemble and build in one step.
    pub fn from_asm(src: &str) -> Result<IsaCore, AsmError> {
        Ok(IsaCore::new(assemble(src)?))
    }

    /// Attach a watch handle for observing architectural state.
    pub fn watched(mut self) -> (IsaCore, WatchHandle) {
        let h: WatchHandle = Arc::new(Mutex::new(CoreWatch::default()));
        self.watch = Some(Arc::clone(&h));
        (self, h)
    }

    pub fn with_label(mut self, label: impl Into<String>) -> IsaCore {
        self.label = label.into();
        self
    }

    /// Preset a register before the machine starts.
    pub fn set_reg(&mut self, r: Reg, v: u32) {
        assert!(!r.is_network(), "cannot preset a network register");
        if r != ZERO {
            self.regs[r.0 as usize] = v;
        }
    }

    fn reg(&self, r: Reg) -> u32 {
        self.regs[r.0 as usize]
    }

    fn set(&mut self, r: Reg, v: u32) {
        if r != ZERO {
            self.regs[r.0 as usize] = v;
        }
    }

    fn publish(&self, cycle: u64) {
        if let Some(w) = &self.watch {
            let mut w = w.lock().unwrap();
            w.regs = self.regs;
            w.pc = self.pc;
            w.retired = self.retired;
            w.halted = self.halted;
            w.retire_cycles.push(cycle);
        }
    }

    fn retire(&mut self, cycle: u64) {
        self.retired += 1;
        self.publish(cycle);
    }

    /// Check availability of every network-input source; if one is dry,
    /// record the blocked cycle through `io` and return false.
    fn net_inputs_ready(&self, io: &mut TileIo<'_>, srcs: &[Reg]) -> bool {
        for s in srcs {
            let ready = match *s {
                CSTI => io.can_recv_static(NET0),
                CSTI2 => io.can_recv_static(NET1),
                CDNI => io.can_recv_dyn(0),
                _ => continue,
            };
            if !ready {
                // Record the blocked-receive cycle on the dry queue.
                match *s {
                    CSTI => {
                        let _ = io.recv_static(NET0);
                    }
                    CSTI2 => {
                        let _ = io.recv_static(NET1);
                    }
                    _ => {
                        let _ = io.recv_dyn(0);
                    }
                }
                return false;
            }
        }
        true
    }

    /// Read a source register, popping network queues as needed.
    /// `acted` tracks whether a retiring io call already happened this
    /// cycle so compound operations stay a single cycle.
    fn read_src(&self, io: &mut TileIo<'_>, acted: &mut bool, r: Reg) -> u32 {
        let pop = |io: &mut TileIo<'_>, acted: &mut bool, net: usize| -> u32 {
            if *acted {
                io.allow_compound();
            }
            *acted = true;
            io.recv_static(net).expect("availability checked")
        };
        match r {
            CSTI => pop(io, acted, NET0),
            CSTI2 => pop(io, acted, NET1),
            CDNI => {
                if *acted {
                    io.allow_compound();
                }
                *acted = true;
                io.recv_dyn(0).expect("availability checked")
            }
            _ => self.reg(r),
        }
    }

    /// Write a destination, pushing to network queues as needed. Space
    /// must have been checked already.
    fn write_dest(&mut self, io: &mut TileIo<'_>, acted: &mut bool, r: Reg, v: u32) {
        match r {
            CSTO => {
                if *acted {
                    io.allow_compound();
                }
                *acted = true;
                let ok = io.send_static(v);
                debug_assert!(ok, "csto space checked before execution");
            }
            CDNO => {
                if *acted {
                    io.allow_compound();
                }
                *acted = true;
                let ok = io.send_dyn(0, v);
                debug_assert!(ok, "cdno space checked before execution");
            }
            _ => self.set(r, v),
        }
    }

    /// Check output-queue space for the destination; records the blocked
    /// cycle and returns false when full.
    fn dest_ready(&self, io: &mut TileIo<'_>, dst: Option<Reg>) -> bool {
        match dst {
            Some(CSTO) if !io.can_send_static() => {
                let _ = io.send_static(0); // records BlockedSend, pushes nothing
                false
            }
            Some(CDNO) if !io.can_send_dyn(0) => {
                let _ = io.send_dyn(0, 0);
                false
            }
            _ => true,
        }
    }
}

impl TileProgram for IsaCore {
    fn tick(&mut self, io: &mut TileIo<'_>) {
        if self.halted {
            return;
        }
        if self.penalty > 0 {
            // Pipeline bubble from a mispredicted branch.
            self.penalty -= 1;
            io.compute();
            return;
        }
        let Some(&instr) = self.instrs.get(self.pc) else {
            self.halted = true;
            self.publish(io.cycle);
            return;
        };

        // Stall checks common to every instruction shape, over the
        // operand sets pre-decoded at construction (no per-tick
        // allocation).
        let ops = self.decoded[self.pc];
        if !self.net_inputs_ready(io, ops.srcs()) {
            return;
        }
        if !self.dest_ready(io, ops.dest) {
            return;
        }

        let mut acted = false;
        let cycle = io.cycle;
        match instr {
            Instr::Alu { op, rd, rs, rt } => {
                let a = self.read_src(io, &mut acted, rs);
                let b = self.read_src(io, &mut acted, rt);
                self.write_dest(io, &mut acted, rd, op.eval(a, b));
                self.pc += 1;
            }
            Instr::AluImm { op, rt, rs, imm } => {
                let a = self.read_src(io, &mut acted, rs);
                self.write_dest(io, &mut acted, rt, op.eval(a, imm));
                self.pc += 1;
            }
            Instr::Lui { rt, imm } => {
                self.write_dest(io, &mut acted, rt, imm << 16);
                self.pc += 1;
            }
            Instr::Lw { rt, base, off } => {
                let addr = self.reg(base).wrapping_add_signed(off);
                if rt == CSTO {
                    // One-cycle load-and-forward.
                    if !io.load_send(addr) {
                        return; // blocked-send or miss stall; retry
                    }
                    acted = true;
                } else if rt == CDNO {
                    match io.load(addr) {
                        Some(v) => {
                            io.allow_compound();
                            let ok = io.send_dyn(0, v);
                            debug_assert!(ok);
                            acted = true;
                        }
                        None => return, // miss stall
                    }
                } else {
                    match io.load(addr) {
                        Some(v) => {
                            self.set(rt, v);
                            acted = true;
                        }
                        None => return, // miss stall
                    }
                }
                self.pc += 1;
            }
            Instr::Sw { rt, base, off } => {
                let addr = self.reg(base).wrapping_add_signed(off);
                let v = self.reg(rt);
                if !io.store(addr, v) {
                    return; // miss stall
                }
                acted = true;
                self.pc += 1;
            }
            Instr::Branch {
                cond,
                rs,
                rt,
                target,
            } => {
                let taken = cond.eval(self.reg(rs), self.reg(rt));
                // Static prediction: backward taken, forward not-taken.
                let predicted_taken = target <= self.pc;
                if taken != predicted_taken {
                    self.penalty = BRANCH_MISPREDICT_PENALTY;
                }
                self.pc = if taken { target } else { self.pc + 1 };
            }
            Instr::J { target } => {
                self.pc = target;
            }
            Instr::Jal { target } => {
                let ra = (self.pc + 1) as u32;
                self.set(Reg(31), ra);
                self.pc = target;
            }
            Instr::Jr { rs } => {
                self.pc = self.reg(rs) as usize;
            }
            Instr::SwPc { net, target } => {
                io.set_switch_pc(net as usize, target);
                acted = true;
                self.pc += 1;
            }
            Instr::SwPcR { net, rs } => {
                io.set_switch_pc(net as usize, self.reg(rs) as usize);
                acted = true;
                self.pc += 1;
            }
            Instr::Popc { rd, rs } => {
                let v = self.reg(rs).count_ones();
                self.set(rd, v);
                self.pc += 1;
            }
            Instr::Ext { rd, rs, pos, size } => {
                let mask = if size >= 32 {
                    u32::MAX
                } else {
                    (1u32 << size) - 1
                };
                let v = (self.reg(rs) >> pos) & mask;
                self.set(rd, v);
                self.pc += 1;
            }
            Instr::Halt => {
                self.halted = true;
            }
            Instr::Nop => {}
        }
        if !acted {
            io.compute();
        }
        self.retire(cycle);
    }

    fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raw_sim::{RawConfig, RawMachine, TileId};

    fn run_solo(src: &str, cycles: u64) -> CoreWatch {
        let (core, watch) = IsaCore::from_asm(src).unwrap().watched();
        let mut m = RawMachine::new(RawConfig::default());
        m.set_program(TileId(0), Box::new(core));
        m.run(cycles);
        let w = watch.lock().unwrap().clone();
        w
    }

    #[test]
    fn straight_line_alu() {
        let w = run_solo(
            "
            addi $t0, $zero, 21
            add  $t1, $t0, $t0
            mul  $t2, $t1, $t0
            halt
            ",
            20,
        );
        assert!(w.halted);
        assert_eq!(w.regs[8], 21);
        assert_eq!(w.regs[9], 42);
        assert_eq!(w.regs[10], 882);
        // Four instructions retire on cycles 0..3.
        assert_eq!(w.retire_cycles, vec![0, 1, 2, 3]);
    }

    #[test]
    fn predicted_backward_branch_is_free() {
        // 5-iteration countdown loop: bgtz backward is predicted taken, so
        // only the final fall-through mispredicts.
        let w = run_solo(
            "
            addi $t0, $zero, 5
        loop:
            addi $t0, $t0, -1
            bgtz $t0, loop
            halt
            ",
            64,
        );
        assert!(w.halted);
        // Retired: 1 (addi) + 5*(addi+bgtz) + 1 (halt) = 12.
        assert_eq!(w.retired, 12);
        // Total cycles: 12 issue cycles + 3 mispredict bubbles.
        let last = *w.retire_cycles.last().unwrap();
        assert_eq!(last, 11 + 3);
    }

    #[test]
    fn forward_branch_not_taken_is_free() {
        let w = run_solo(
            "
            addi $t0, $zero, 1
            beq  $t0, $zero, skip   # not taken; forward => predicted right
            addi $t1, $zero, 7
        skip:
            halt
            ",
            20,
        );
        assert_eq!(w.regs[9], 7);
        assert_eq!(*w.retire_cycles.last().unwrap(), 3, "no bubbles");
    }

    #[test]
    fn forward_branch_taken_pays_penalty() {
        let w = run_solo(
            "
            beq  $zero, $zero, skip  # taken; forward => mispredicted
            addi $t1, $zero, 7
        skip:
            halt
            ",
            20,
        );
        assert_eq!(w.regs[9], 0, "skipped instruction must not execute");
        // beq at cycle 0, bubbles 1-3, halt at 4.
        assert_eq!(w.retire_cycles, vec![0, 4]);
    }

    #[test]
    fn jal_jr_roundtrip() {
        let w = run_solo(
            "
            jal  sub
            addi $t0, $t0, 100
            halt
        sub:
            addi $t0, $zero, 1
            jr   $ra
            ",
            30,
        );
        assert!(w.halted);
        assert_eq!(w.regs[8], 101);
    }

    #[test]
    fn bit_operations() {
        let w = run_solo(
            "
            li   $t0, 0xf0f0
            popc $t1, $t0
            ext  $t2, $t0, 4, 8
            halt
            ",
            20,
        );
        assert_eq!(w.regs[9], 8);
        assert_eq!(w.regs[10], 0x0f);
    }

    #[test]
    fn memory_load_store_with_cache() {
        let w = run_solo(
            "
            li   $t0, 64        # word address
            li   $t1, 1234
            sw   $t1, 0($t0)
            lw   $t2, 0($t0)
            halt
            ",
            100,
        );
        assert_eq!(w.regs[10], 1234);
        // The sw misses cold (30-cycle default stall); the lw hits.
        let cycles = w.retire_cycles.clone();
        let sw_cycle = cycles[2];
        let lw_cycle = cycles[3];
        assert!(sw_cycle >= 30, "first touch must stall: {sw_cycle}");
        assert_eq!(lw_cycle, sw_cycle + 1, "second access must hit");
    }

    #[test]
    fn halt_stops_execution() {
        let w = run_solo("halt\naddi $t0, $zero, 9", 20);
        assert!(w.halted);
        assert_eq!(w.regs[8], 0);
    }

    #[test]
    fn running_off_the_end_halts() {
        let w = run_solo("addi $t0, $zero, 3", 20);
        assert!(w.halted);
        assert_eq!(w.regs[8], 3);
    }

    #[test]
    #[should_panic(expected = "invalid instruction")]
    fn constructor_validates() {
        IsaCore::new(vec![Instr::Sw {
            rt: CSTI,
            base: Reg(2),
            off: 0,
        }]);
    }
}
