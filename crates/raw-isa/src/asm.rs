//! Two-pass assemblers for tile-processor and switch-processor programs.
//!
//! ## Tile syntax
//!
//! ```text
//! # comments with '#' or '//'
//!         addi  $t0, $zero, 16
//! loop:   lw    $csto, 0($t1)      # load-and-forward, 1 cycle/word
//!         addi  $t1, $t1, 1
//!         addi  $t0, $t0, -1
//!         bgtz  $t0, loop
//!         halt
//! ```
//!
//! Register aliases follow MIPS conventions plus the Raw network
//! registers `$csti`, `$csti2`, `$csto`, `$cdni`, `$cdno`. Memory offsets
//! are in **words**.
//!
//! ## Switch syntax
//!
//! ```text
//! start:  route $cWi->$cPo, $csto->$cEo    # two routes, one instruction
//!         route $cNi->$cSo2                # trailing 2 selects network 1
//!         j start
//!         waitpc                           # halt until the tile processor
//!                                          # loads a new PC
//! ```

use std::collections::HashMap;
use std::fmt;

use raw_sim::{Route, SwPort, SwitchCtrl, SwitchInstr, SwitchProgram, NET0, NET1};

use crate::isa::*;

/// An assembly error with its 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    pub line: usize,
    pub msg: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError {
        line,
        msg: msg.into(),
    })
}

fn strip_comment(s: &str) -> &str {
    let s = s.split('#').next().unwrap_or("");
    s.split("//").next().unwrap_or("").trim()
}

/// Parse a register name (`$5`, `$t0`, `$csti`, ...).
pub fn parse_reg(tok: &str, line: usize) -> Result<Reg, AsmError> {
    let t = tok.trim();
    let Some(name) = t.strip_prefix('$') else {
        return err(line, format!("expected register, got '{t}'"));
    };
    let n = match name {
        "zero" => 0,
        "at" => 1,
        "v0" => 2,
        "v1" => 3,
        "a0" => 4,
        "a1" => 5,
        "a2" => 6,
        "a3" => 7,
        "t0" => 8,
        "t1" => 9,
        "t2" => 10,
        "t3" => 11,
        "t4" => 12,
        "t5" => 13,
        "t6" => 14,
        "t7" => 15,
        "s0" => 16,
        "s1" => 17,
        "s2" => 18,
        "s3" => 19,
        "s4" => 20,
        "s5" => 21,
        "s6" => 22,
        "s7" => 23,
        "csti" => 24,
        "csti2" => 25,
        "csto" => 26,
        "cdni" => 27,
        "cdno" => 28,
        "sp" => 29,
        "fp" => 30,
        "ra" => 31,
        _ => match name.parse::<u8>() {
            Ok(n) if n < 32 => n,
            _ => return err(line, format!("unknown register '{t}'")),
        },
    };
    Ok(Reg(n))
}

fn parse_imm(tok: &str, line: usize) -> Result<i32, AsmError> {
    let t = tok.trim();
    let (neg, t) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    let v = if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u32::from_str_radix(hex, 16).map(|v| v as i64)
    } else {
        t.parse::<i64>().map_err(|_| "".parse::<u32>().unwrap_err())
    };
    match v {
        Ok(v) => {
            let v = if neg { -v } else { v };
            if v < i32::MIN as i64 || v > u32::MAX as i64 {
                err(line, format!("immediate out of range: '{tok}'"))
            } else {
                Ok(v as i32)
            }
        }
        Err(_) => err(line, format!("bad immediate '{tok}'")),
    }
}

/// Parse `off($reg)`.
fn parse_mem(tok: &str, line: usize) -> Result<(i32, Reg), AsmError> {
    let t = tok.trim();
    let Some(open) = t.find('(') else {
        return err(line, format!("expected off($reg), got '{t}'"));
    };
    if !t.ends_with(')') {
        return err(line, format!("expected off($reg), got '{t}'"));
    }
    let off_s = &t[..open];
    let reg_s = &t[open + 1..t.len() - 1];
    let off = if off_s.trim().is_empty() {
        0
    } else {
        parse_imm(off_s, line)?
    };
    Ok((off, parse_reg(reg_s, line)?))
}

enum PendingTarget {
    Label(String),
}

enum Draft {
    Done(Instr),
    Branch {
        cond: BranchCond,
        rs: Reg,
        rt: Reg,
        target: PendingTarget,
    },
    J(PendingTarget),
    Jal(PendingTarget),
}

/// Assemble tile-processor source into a validated instruction list.
pub fn assemble(src: &str) -> Result<Vec<Instr>, AsmError> {
    let mut labels: HashMap<String, usize> = HashMap::new();
    let mut drafts: Vec<(usize, Draft)> = Vec::new();

    for (line_no, raw) in src.lines().enumerate() {
        let line_no = line_no + 1;
        let mut text = strip_comment(raw);
        // Labels, possibly several, possibly followed by an instruction.
        while let Some(colon) = text.find(':') {
            let (label, rest) = text.split_at(colon);
            let label = label.trim();
            if label.is_empty() || !label.chars().all(|c| c.is_alphanumeric() || c == '_') {
                return err(line_no, format!("bad label '{label}'"));
            }
            if labels.insert(label.to_string(), drafts.len()).is_some() {
                return err(line_no, format!("duplicate label '{label}'"));
            }
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        let (mnem, rest) = match text.split_once(char::is_whitespace) {
            Some((m, r)) => (m, r.trim()),
            None => (text, ""),
        };
        let ops: Vec<&str> = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',').map(str::trim).collect()
        };
        let need = |n: usize| -> Result<(), AsmError> {
            if ops.len() == n {
                Ok(())
            } else {
                err(
                    line_no,
                    format!("{mnem} expects {n} operands, got {}", ops.len()),
                )
            }
        };

        let alu3 = |op: AluOp| -> Result<Draft, AsmError> {
            need(3)?;
            Ok(Draft::Done(Instr::Alu {
                op,
                rd: parse_reg(ops[0], line_no)?,
                rs: parse_reg(ops[1], line_no)?,
                rt: parse_reg(ops[2], line_no)?,
            }))
        };
        let alui = |op: AluImmOp| -> Result<Draft, AsmError> {
            need(3)?;
            Ok(Draft::Done(Instr::AluImm {
                op,
                rt: parse_reg(ops[0], line_no)?,
                rs: parse_reg(ops[1], line_no)?,
                imm: parse_imm(ops[2], line_no)?,
            }))
        };
        let branch2 = |cond: BranchCond| -> Result<Draft, AsmError> {
            need(3)?;
            Ok(Draft::Branch {
                cond,
                rs: parse_reg(ops[0], line_no)?,
                rt: parse_reg(ops[1], line_no)?,
                target: PendingTarget::Label(ops[2].to_string()),
            })
        };
        let branch1 = |cond: BranchCond| -> Result<Draft, AsmError> {
            need(2)?;
            Ok(Draft::Branch {
                cond,
                rs: parse_reg(ops[0], line_no)?,
                rt: ZERO,
                target: PendingTarget::Label(ops[1].to_string()),
            })
        };

        let draft = match mnem {
            "add" | "addu" => alu3(AluOp::Add)?,
            "sub" | "subu" => alu3(AluOp::Sub)?,
            "and" => alu3(AluOp::And)?,
            "or" => alu3(AluOp::Or)?,
            "xor" => alu3(AluOp::Xor)?,
            "nor" => alu3(AluOp::Nor)?,
            "slt" => alu3(AluOp::Slt)?,
            "sltu" => alu3(AluOp::Sltu)?,
            "sllv" => alu3(AluOp::Sllv)?,
            "srlv" => alu3(AluOp::Srlv)?,
            "srav" => alu3(AluOp::Srav)?,
            "mul" => alu3(AluOp::Mul)?,
            "addi" | "addiu" => alui(AluImmOp::Addi)?,
            "andi" => alui(AluImmOp::Andi)?,
            "ori" => alui(AluImmOp::Ori)?,
            "xori" => alui(AluImmOp::Xori)?,
            "slti" => alui(AluImmOp::Slti)?,
            "sll" => alui(AluImmOp::Sll)?,
            "srl" => alui(AluImmOp::Srl)?,
            "sra" => alui(AluImmOp::Sra)?,
            "lui" => {
                need(2)?;
                Draft::Done(Instr::Lui {
                    rt: parse_reg(ops[0], line_no)?,
                    imm: parse_imm(ops[1], line_no)? as u32 & 0xffff,
                })
            }
            "lw" => {
                need(2)?;
                let (off, base) = parse_mem(ops[1], line_no)?;
                Draft::Done(Instr::Lw {
                    rt: parse_reg(ops[0], line_no)?,
                    base,
                    off,
                })
            }
            "sw" => {
                need(2)?;
                let (off, base) = parse_mem(ops[1], line_no)?;
                Draft::Done(Instr::Sw {
                    rt: parse_reg(ops[0], line_no)?,
                    base,
                    off,
                })
            }
            "beq" => branch2(BranchCond::Eq)?,
            "bne" => branch2(BranchCond::Ne)?,
            "blez" => branch1(BranchCond::Lez)?,
            "bgtz" => branch1(BranchCond::Gtz)?,
            "bltz" => branch1(BranchCond::Ltz)?,
            "bgez" => branch1(BranchCond::Gez)?,
            "j" => {
                need(1)?;
                Draft::J(PendingTarget::Label(ops[0].to_string()))
            }
            "jal" => {
                need(1)?;
                Draft::Jal(PendingTarget::Label(ops[0].to_string()))
            }
            "jr" => {
                need(1)?;
                Draft::Done(Instr::Jr {
                    rs: parse_reg(ops[0], line_no)?,
                })
            }
            "swpc" => {
                // Operands: static network number, then an address in that
                // network's *switch* program memory (tile labels do not
                // apply; use [`assemble_switch_labeled`] for indices).
                need(2)?;
                let net = parse_imm(ops[0], line_no)?;
                let imm = parse_imm(ops[1], line_no)?;
                if !(0..2).contains(&net) {
                    return err(line_no, "swpc network must be 0 or 1");
                }
                if imm < 0 {
                    return err(line_no, "swpc target must be non-negative");
                }
                Draft::Done(Instr::SwPc {
                    net: net as u8,
                    target: imm as usize,
                })
            }
            "swpcr" => {
                // Operands: static network number, then the register
                // holding the switch-program address.
                need(2)?;
                let net = parse_imm(ops[0], line_no)?;
                if !(0..2).contains(&net) {
                    return err(line_no, "swpcr network must be 0 or 1");
                }
                Draft::Done(Instr::SwPcR {
                    net: net as u8,
                    rs: parse_reg(ops[1], line_no)?,
                })
            }
            "popc" => {
                need(2)?;
                Draft::Done(Instr::Popc {
                    rd: parse_reg(ops[0], line_no)?,
                    rs: parse_reg(ops[1], line_no)?,
                })
            }
            "ext" => {
                need(4)?;
                Draft::Done(Instr::Ext {
                    rd: parse_reg(ops[0], line_no)?,
                    rs: parse_reg(ops[1], line_no)?,
                    pos: parse_imm(ops[2], line_no)? as u8,
                    size: parse_imm(ops[3], line_no)? as u8,
                })
            }
            "halt" => {
                need(0)?;
                Draft::Done(Instr::Halt)
            }
            "nop" => {
                need(0)?;
                Draft::Done(Instr::Nop)
            }
            // Pseudo-instructions.
            "move" => {
                need(2)?;
                Draft::Done(Instr::Alu {
                    op: AluOp::Or,
                    rd: parse_reg(ops[0], line_no)?,
                    rs: parse_reg(ops[1], line_no)?,
                    rt: ZERO,
                })
            }
            "li" => {
                need(2)?;
                let imm = parse_imm(ops[1], line_no)?;
                if (-32768..=32767).contains(&imm) {
                    Draft::Done(Instr::AluImm {
                        op: AluImmOp::Addi,
                        rt: parse_reg(ops[0], line_no)?,
                        rs: ZERO,
                        imm,
                    })
                } else {
                    // li expands to lui+ori; emit the lui here and fall
                    // through to push the ori after the match.
                    let rt = parse_reg(ops[0], line_no)?;
                    drafts.push((
                        line_no,
                        Draft::Done(Instr::Lui {
                            rt,
                            imm: (imm as u32) >> 16,
                        }),
                    ));
                    Draft::Done(Instr::AluImm {
                        op: AluImmOp::Ori,
                        rt,
                        rs: rt,
                        imm: (imm & 0xffff),
                    })
                }
            }
            "b" => {
                need(1)?;
                Draft::Branch {
                    cond: BranchCond::Eq,
                    rs: ZERO,
                    rt: ZERO,
                    target: PendingTarget::Label(ops[0].to_string()),
                }
            }
            _ => return err(line_no, format!("unknown mnemonic '{mnem}'")),
        };
        drafts.push((line_no, draft));
    }

    // Second pass: resolve labels and validate.
    let resolve = |t: &PendingTarget, line: usize| -> Result<usize, AsmError> {
        let PendingTarget::Label(l) = t;
        match labels.get(l) {
            Some(&i) => Ok(i),
            None => err(line, format!("undefined label '{l}'")),
        }
    };
    let mut out = Vec::with_capacity(drafts.len());
    for (line, d) in &drafts {
        let instr = match d {
            Draft::Done(i) => *i,
            Draft::Branch {
                cond,
                rs,
                rt,
                target,
            } => Instr::Branch {
                cond: *cond,
                rs: *rs,
                rt: *rt,
                target: resolve(target, *line)?,
            },
            Draft::J(t) => Instr::J {
                target: resolve(t, *line)?,
            },
            Draft::Jal(t) => Instr::Jal {
                target: resolve(t, *line)?,
            },
        };
        if let Err(e) = instr.validate() {
            return err(*line, e);
        }
        out.push(instr);
    }
    if out.len() > TILE_IMEM_INSTRS {
        return err(
            0,
            format!(
                "program has {} instructions; tile instruction memory holds {}",
                out.len(),
                TILE_IMEM_INSTRS
            ),
        );
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Switch-processor assembler
// ---------------------------------------------------------------------

fn parse_sw_endpoint(
    tok: &str,
    line: usize,
    is_src: bool,
) -> Result<(SwPort, Option<usize>), AsmError> {
    let t = tok.trim();
    let Some(name) = t.strip_prefix('$') else {
        return err(line, format!("expected switch port, got '{t}'"));
    };
    // csto / csti are the processor ports.
    if is_src {
        if name == "csto" {
            return Ok((SwPort::Proc, None)); // csto is shared: net from dst
        }
    } else {
        if name == "csti" {
            return Ok((SwPort::Proc, Some(NET0)));
        }
        if name == "csti2" {
            return Ok((SwPort::Proc, Some(NET1)));
        }
    }
    let (body, net) = match name.strip_suffix('2') {
        Some(b) => (b, Some(NET1)),
        None => (name, Some(NET0)),
    };
    let expected_suffix = if is_src { 'i' } else { 'o' };
    let mut chars = body.chars();
    let (c, dirc, sufc) = (chars.next(), chars.next(), chars.next());
    if c != Some('c') || chars.next().is_some() {
        return err(line, format!("bad switch port '{t}'"));
    }
    let port = match dirc {
        Some('N') => SwPort::N,
        Some('E') => SwPort::E,
        Some('S') => SwPort::S,
        Some('W') => SwPort::W,
        Some('P') => SwPort::Proc,
        _ => return err(line, format!("bad switch port '{t}'")),
    };
    if sufc != Some(expected_suffix) {
        return err(
            line,
            format!(
                "'{t}' is not a valid {} port",
                if is_src { "source" } else { "destination" }
            ),
        );
    }
    Ok((port, net))
}

/// Assemble switch-processor source into a [`SwitchProgram`].
pub fn assemble_switch(src: &str) -> Result<SwitchProgram, AsmError> {
    assemble_switch_labeled(src).map(|(p, _)| p)
}

/// Assemble switch-processor source, also returning the label →
/// instruction-index map (needed by tile code that targets switch
/// routines with `swpc`).
pub fn assemble_switch_labeled(
    src: &str,
) -> Result<(SwitchProgram, HashMap<String, usize>), AsmError> {
    let mut labels: HashMap<String, usize> = HashMap::new();
    enum SwDraft {
        Routes(Vec<Route>, Option<String>),
        Jump(String),
        Nop,
        WaitPc,
    }
    let mut drafts: Vec<(usize, SwDraft)> = Vec::new();

    for (line_no, raw) in src.lines().enumerate() {
        let line_no = line_no + 1;
        let mut text = strip_comment(raw);
        while let Some(colon) = text.find(':') {
            let (label, rest) = text.split_at(colon);
            let label = label.trim();
            if label.is_empty() || !label.chars().all(|c| c.is_alphanumeric() || c == '_') {
                return err(line_no, format!("bad label '{label}'"));
            }
            if labels.insert(label.to_string(), drafts.len()).is_some() {
                return err(line_no, format!("duplicate label '{label}'"));
            }
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        let (mnem, rest) = match text.split_once(char::is_whitespace) {
            Some((m, r)) => (m, r.trim()),
            None => (text, ""),
        };
        let draft = match mnem {
            "nop" => SwDraft::Nop,
            "waitpc" => SwDraft::WaitPc,
            "j" => SwDraft::Jump(rest.to_string()),
            "route" => {
                // Optional "; j label" control suffix.
                let (routes_part, ctrl) = match rest.split_once(';') {
                    Some((r, c)) => {
                        let c = c.trim();
                        let Some(lbl) = c.strip_prefix("j ") else {
                            return err(line_no, format!("bad route control '{c}'"));
                        };
                        (r, Some(lbl.trim().to_string()))
                    }
                    None => (rest, None),
                };
                let mut routes = Vec::new();
                for pair in routes_part.split(',') {
                    let pair = pair.trim();
                    let Some((s, d)) = pair.split_once("->") else {
                        return err(line_no, format!("bad route '{pair}' (want src->dst)"));
                    };
                    let (src_port, src_net) = parse_sw_endpoint(s, line_no, true)?;
                    let (dst_port, dst_net) = parse_sw_endpoint(d, line_no, false)?;
                    let net = match (src_net, dst_net) {
                        (None, Some(n)) => n, // csto source: net from dst
                        (Some(a), Some(b)) if a == b => a,
                        _ => return err(line_no, format!("route '{pair}' mixes static networks")),
                    };
                    routes.push(Route::new(net, src_port, dst_port));
                }
                if routes.is_empty() {
                    return err(line_no, "route needs at least one src->dst pair");
                }
                SwDraft::Routes(routes, ctrl)
            }
            _ => return err(line_no, format!("unknown switch mnemonic '{mnem}'")),
        };
        drafts.push((line_no, draft));
    }

    let resolve = |l: &str, line: usize| -> Result<usize, AsmError> {
        match labels.get(l) {
            Some(&i) => Ok(i),
            None => err(line, format!("undefined label '{l}'")),
        }
    };
    let mut instrs = Vec::with_capacity(drafts.len());
    for (line, d) in &drafts {
        let instr = match d {
            SwDraft::Nop => SwitchInstr::nop(),
            SwDraft::WaitPc => SwitchInstr::wait_pc(),
            SwDraft::Jump(l) => SwitchInstr::new(Vec::new(), SwitchCtrl::Jump(resolve(l, *line)?)),
            SwDraft::Routes(routes, ctrl) => {
                let ctrl = match ctrl {
                    Some(l) => SwitchCtrl::Jump(resolve(l, *line)?),
                    None => SwitchCtrl::Next,
                };
                SwitchInstr::new(routes.clone(), ctrl)
            }
        };
        instrs.push(instr);
    }
    let prog = SwitchProgram::new(instrs);
    if !prog.fits_switch_imem() {
        return err(0, "switch program exceeds switch instruction memory");
    }
    Ok((prog, labels))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_basic_program() {
        let p = assemble(
            "
            # stream 4 words
            addi $t0, $zero, 4
            li   $t1, 0x100
        loop:
            lw   $csto, 0($t1)
            addi $t1, $t1, 1
            addi $t0, $t0, -1
            bgtz $t0, loop
            halt
        ",
        )
        .unwrap();
        assert_eq!(p.len(), 7);
        assert!(matches!(p[2], Instr::Lw { rt: CSTO, .. }));
        assert!(matches!(
            p[5],
            Instr::Branch {
                cond: BranchCond::Gtz,
                target: 2,
                ..
            }
        ));
    }

    #[test]
    fn li_expands_for_large_immediates() {
        let p = assemble("li $t0, 0x12345678").unwrap();
        assert_eq!(p.len(), 2);
        assert!(matches!(p[0], Instr::Lui { imm: 0x1234, .. }));
        assert!(matches!(
            p[1],
            Instr::AluImm {
                op: AluImmOp::Ori,
                imm: 0x5678,
                ..
            }
        ));
    }

    #[test]
    fn rejects_undefined_label() {
        let e = assemble("j nowhere").unwrap_err();
        assert!(e.msg.contains("undefined label"));
    }

    #[test]
    fn rejects_duplicate_label() {
        let e = assemble("a:\na:\nnop").unwrap_err();
        assert!(e.msg.contains("duplicate"));
    }

    #[test]
    fn rejects_invalid_network_usage() {
        let e = assemble("sw $csti, 0($t0)").unwrap_err();
        assert!(e.msg.contains("2 cycles/word"), "{e}");
        let e = assemble("add $t0, $csto, $t1").unwrap_err();
        assert!(e.msg.contains("write-only"));
    }

    #[test]
    fn rejects_unknown_mnemonic_and_register() {
        assert!(assemble("frobnicate $t0").is_err());
        assert!(assemble("addi $t9, $zero, 1").is_err());
    }

    #[test]
    fn negative_and_hex_immediates() {
        let p = assemble("addi $t0, $zero, -42\naddi $t1, $zero, 0x1f").unwrap();
        assert!(matches!(p[0], Instr::AluImm { imm: -42, .. }));
        assert!(matches!(p[1], Instr::AluImm { imm: 0x1f, .. }));
    }

    #[test]
    fn assembles_switch_program() {
        let p = assemble_switch(
            "
        start: route $cWi->$cPo, $csto->$cEo
               route $cNi2->$cSo2 ; j start
               waitpc
        ",
        )
        .unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.instrs[0].routes.len(), 2);
        assert_eq!(
            p.instrs[0].routes[0],
            Route::new(NET0, SwPort::W, SwPort::Proc)
        );
        assert_eq!(
            p.instrs[0].routes[1],
            Route::new(NET0, SwPort::Proc, SwPort::E)
        );
        assert_eq!(
            p.instrs[1].routes[0],
            Route::new(NET1, SwPort::N, SwPort::S)
        );
        assert_eq!(p.instrs[1].ctrl, SwitchCtrl::Jump(0));
        assert_eq!(p.instrs[2].ctrl, SwitchCtrl::WaitPc);
    }

    #[test]
    fn switch_csti_destination_selects_network() {
        let p = assemble_switch("route $cNi->$csti\nroute $cNi2->$csti2").unwrap();
        assert_eq!(
            p.instrs[0].routes[0],
            Route::new(NET0, SwPort::N, SwPort::Proc)
        );
        assert_eq!(
            p.instrs[1].routes[0],
            Route::new(NET1, SwPort::N, SwPort::Proc)
        );
    }

    #[test]
    fn switch_rejects_mixed_networks() {
        let e = assemble_switch("route $cNi2->$cEo").unwrap_err();
        assert!(e.msg.contains("mixes"));
    }

    #[test]
    fn switch_rejects_bad_ports() {
        assert!(assemble_switch("route $cXi->$cEo").is_err());
        assert!(
            assemble_switch("route $cNo->$cEo").is_err(),
            "output as source"
        );
        assert!(
            assemble_switch("route $cNi->$cEi").is_err(),
            "input as destination"
        );
    }
}
