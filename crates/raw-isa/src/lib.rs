//! # raw-isa — the Raw instruction set, assembler, and interpreter
//!
//! The paper's router is hand-written Raw assembly plus generated switch
//! code. This crate provides that layer over [`raw_sim`]:
//!
//! * [`isa`] — the MIPS-R4000-like tile instruction set with Raw's
//!   register-mapped network ports and bit-manipulation extensions;
//! * [`asm`] — two-pass assemblers for tile programs and for switch
//!   (`route`) programs;
//! * [`interp`] — a cycle-accurate interpreter implementing
//!   [`raw_sim::TileProgram`], used to validate the timing model against
//!   the paper's Figure 3-2 (the 5-cycle tile-to-tile send) and to run
//!   small kernels.
//!
//! The router itself (crate `raw-xbar`) runs as cycle-stepped native
//! state machines honoring the same per-cycle costs; this crate is the
//! proof that those costs match what real Raw assembly would see.

pub mod asm;
pub mod interp;
pub mod isa;
pub mod kernels;

pub use asm::{assemble, assemble_switch, AsmError};
pub use interp::{CoreWatch, IsaCore, WatchHandle};
pub use isa::{
    AluImmOp, AluOp, BranchCond, Instr, Reg, BRANCH_MISPREDICT_PENALTY, CDNI, CDNO, CSTI, CSTI2,
    CSTO, TILE_IMEM_INSTRS, ZERO,
};
