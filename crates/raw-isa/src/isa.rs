//! The tile-processor instruction set.
//!
//! "A tile processor is a 32-bit 8-stage pipelined MIPS-like processor …
//! roughly equivalent to that of a R4000 with a few additions for
//! communication applications, such as bit level extraction, masking and
//! population related operations" (§3.2). Networks are register-mapped:
//! reading `$csti` pops a word from static network 0 (blocking), writing
//! `$csto` pushes a word toward the switch.
//!
//! Instructions are kept in symbolic form (no binary encoding): the
//! simulator interprets [`Instr`] values directly, and the instruction
//! memory bound (8,192 words, one instruction per word) is enforced on the
//! symbolic program length.

use std::fmt;

/// A register number, 0..=31. Registers 24..=28 are network-mapped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Reg(pub u8);

/// `$0`: always zero.
pub const ZERO: Reg = Reg(0);
/// Static network 0 input (`$csti`).
pub const CSTI: Reg = Reg(24);
/// Static network 1 input (`$csti2`).
pub const CSTI2: Reg = Reg(25);
/// Static network output, shared by both networks (`$csto`).
pub const CSTO: Reg = Reg(26);
/// Dynamic network 0 input (`$cdni`).
pub const CDNI: Reg = Reg(27);
/// Dynamic network 0 output (`$cdno`).
pub const CDNO: Reg = Reg(28);

impl Reg {
    pub fn new(n: u8) -> Reg {
        assert!(n < 32, "register number out of range: {n}");
        Reg(n)
    }

    /// True for registers mapped to a network *input* queue.
    #[inline]
    pub fn is_net_input(self) -> bool {
        self == CSTI || self == CSTI2 || self == CDNI
    }

    /// True for registers mapped to a network *output* queue.
    #[inline]
    pub fn is_net_output(self) -> bool {
        self == CSTO || self == CDNO
    }

    #[inline]
    pub fn is_network(self) -> bool {
        self.is_net_input() || self.is_net_output()
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CSTI => write!(f, "$csti"),
            CSTI2 => write!(f, "$csti2"),
            CSTO => write!(f, "$csto"),
            CDNI => write!(f, "$cdni"),
            CDNO => write!(f, "$cdno"),
            Reg(n) => write!(f, "${n}"),
        }
    }
}

/// Three-register ALU operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AluOp {
    Add,
    Sub,
    And,
    Or,
    Xor,
    Nor,
    Slt,
    Sltu,
    Sllv,
    Srlv,
    Srav,
    /// Fully pipelined two-stage integer multiply (§3.2); one result per
    /// cycle in steady state, so it costs one issue cycle like the rest.
    Mul,
}

impl AluOp {
    pub fn eval(self, a: u32, b: u32) -> u32 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Nor => !(a | b),
            AluOp::Slt => ((a as i32) < (b as i32)) as u32,
            AluOp::Sltu => (a < b) as u32,
            AluOp::Sllv => a.wrapping_shl(b & 31),
            AluOp::Srlv => a.wrapping_shr(b & 31),
            AluOp::Srav => ((a as i32).wrapping_shr(b & 31)) as u32,
            AluOp::Mul => a.wrapping_mul(b),
        }
    }
}

/// Immediate ALU operations (shift amounts are immediates too).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AluImmOp {
    Addi,
    Andi,
    Ori,
    Xori,
    Slti,
    Sll,
    Srl,
    Sra,
}

impl AluImmOp {
    pub fn eval(self, a: u32, imm: i32) -> u32 {
        match self {
            AluImmOp::Addi => a.wrapping_add(imm as u32),
            // Logical immediates are zero-extended 16-bit, as on MIPS.
            AluImmOp::Andi => a & (imm as u32 & 0xffff),
            AluImmOp::Ori => a | (imm as u32 & 0xffff),
            AluImmOp::Xori => a ^ (imm as u32 & 0xffff),
            AluImmOp::Slti => ((a as i32) < imm) as u32,
            AluImmOp::Sll => a.wrapping_shl(imm as u32 & 31),
            AluImmOp::Srl => a.wrapping_shr(imm as u32 & 31),
            AluImmOp::Sra => ((a as i32).wrapping_shr(imm as u32 & 31)) as u32,
        }
    }
}

/// Branch conditions. `Lez/Gtz/Ltz/Gez` compare `rs` against zero.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BranchCond {
    Eq,
    Ne,
    Lez,
    Gtz,
    Ltz,
    Gez,
}

impl BranchCond {
    pub fn eval(self, rs: u32, rt: u32) -> bool {
        match self {
            BranchCond::Eq => rs == rt,
            BranchCond::Ne => rs != rt,
            BranchCond::Lez => (rs as i32) <= 0,
            BranchCond::Gtz => (rs as i32) > 0,
            BranchCond::Ltz => (rs as i32) < 0,
            BranchCond::Gez => (rs as i32) >= 0,
        }
    }
}

/// One tile-processor instruction. Branch and jump targets are resolved
/// instruction indices (the assembler resolves labels).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Instr {
    Alu {
        op: AluOp,
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    AluImm {
        op: AluImmOp,
        rt: Reg,
        rs: Reg,
        imm: i32,
    },
    Lui {
        rt: Reg,
        imm: u32,
    },
    /// Load word. Addresses are **word** addresses (the simulator's local
    /// memories are word-addressed); `off` is in words.
    Lw {
        rt: Reg,
        base: Reg,
        off: i32,
    },
    /// Store word. The stored value must come from a general register —
    /// not a network register — which is why buffering a network word to
    /// memory takes two instructions (two cycles per word, §4.4).
    Sw {
        rt: Reg,
        base: Reg,
        off: i32,
    },
    Branch {
        cond: BranchCond,
        rs: Reg,
        rt: Reg,
        target: usize,
    },
    J {
        target: usize,
    },
    Jal {
        target: usize,
    },
    Jr {
        rs: Reg,
    },
    /// Load a new program counter into the switch processor driving
    /// static network `net` (§6.5).
    SwPc {
        net: u8,
        target: usize,
    },
    /// Load the switch program counter from a register — the §6.5 jump
    /// table idiom ("loads the address of the configuration into the
    /// program counter of the switch processor").
    SwPcR {
        net: u8,
        rs: Reg,
    },
    /// Population count (a Raw "population related" bit operation).
    Popc {
        rd: Reg,
        rs: Reg,
    },
    /// Bit-field extract: `rd = (rs >> pos) & ((1 << size) - 1)`.
    Ext {
        rd: Reg,
        rs: Reg,
        pos: u8,
        size: u8,
    },
    Halt,
    Nop,
}

/// Instruction memory limit: each tile has 8,192 words of local
/// instruction memory, one instruction per 32-bit word.
pub const TILE_IMEM_INSTRS: usize = 8192;

/// Mispredicted branches pay a three-cycle penalty; predicted branches are
/// free (§3.2). Prediction is static: backward branches predicted taken,
/// forward branches predicted not-taken.
pub const BRANCH_MISPREDICT_PENALTY: u32 = 3;

impl Instr {
    /// Source registers read by this instruction.
    pub fn sources(&self) -> Vec<Reg> {
        match *self {
            Instr::Alu { rs, rt, .. } => vec![rs, rt],
            Instr::AluImm { rs, .. } => vec![rs],
            Instr::Lui { .. } => vec![],
            Instr::Lw { base, .. } => vec![base],
            Instr::Sw { rt, base, .. } => vec![rt, base],
            Instr::Branch { cond, rs, rt, .. } => match cond {
                BranchCond::Eq | BranchCond::Ne => vec![rs, rt],
                _ => vec![rs],
            },
            Instr::Jr { rs } => vec![rs],
            Instr::SwPcR { rs, .. } => vec![rs],
            Instr::Popc { rs, .. } | Instr::Ext { rs, .. } => vec![rs],
            _ => vec![],
        }
    }

    /// Destination register written, if any.
    pub fn dest(&self) -> Option<Reg> {
        match *self {
            Instr::Alu { rd, .. } | Instr::Popc { rd, .. } | Instr::Ext { rd, .. } => Some(rd),
            Instr::AluImm { rt, .. } | Instr::Lui { rt, .. } | Instr::Lw { rt, .. } => Some(rt),
            Instr::Jal { .. } => Some(Reg(31)),
            _ => None,
        }
    }

    /// Validate the structural constraints the hardware (and our cost
    /// model) imposes. Returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let srcs = self.sources();
        // Network inputs may appear as sources; network outputs may not.
        for s in &srcs {
            if s.is_net_output() {
                return Err(format!("{s} is write-only (network output)"));
            }
        }
        // At most one *copy* of each network input per instruction (a
        // single pop per queue per cycle).
        for (i, a) in srcs.iter().enumerate() {
            if a.is_net_input() && srcs[i + 1..].contains(a) {
                return Err(format!("{a} read twice in one instruction"));
            }
        }
        if let Some(d) = self.dest() {
            if d.is_net_input() {
                return Err(format!("{d} is read-only (network input)"));
            }
            if d == ZERO {
                // Writing $0 is legal and discarded, as on MIPS.
            }
        }
        match *self {
            // Memory addressing must come from general registers.
            Instr::Lw { base, .. } | Instr::Sw { base, .. } if base.is_network() => {
                Err("memory base register cannot be a network register".into())
            }
            // The paper's cost model: a store's data comes from a general
            // register, making receive+store two cycles per word.
            Instr::Sw { rt, .. } if rt.is_network() => {
                Err("sw source cannot be a network register (buffering is 2 cycles/word)".into())
            }
            Instr::Branch { rs, rt, .. } if rs.is_network() || rt.is_network() => {
                Err("branch operands cannot be network registers".into())
            }
            Instr::Jr { rs } if rs.is_network() => {
                Err("jr target cannot be a network register".into())
            }
            Instr::SwPcR { rs, .. } if rs.is_network() => {
                Err("swpcr source cannot be a network register".into())
            }
            // A variable shift amount feeds the shifter's control input in
            // decode, before a blocking queue read could resolve — the
            // amount must come from a general register.
            Instr::Alu {
                op: AluOp::Sllv | AluOp::Srlv | AluOp::Srav,
                rt,
                ..
            } if rt.is_net_input() => {
                Err("shift amount cannot come from a network input register".into())
            }
            Instr::Ext { pos, size, .. } if pos >= 32 || size == 0 || size > 32 => {
                Err("ext bit-field out of range".into())
            }
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.eval(u32::MAX, 1), 0);
        assert_eq!(AluOp::Sub.eval(3, 5), (-2i32) as u32);
        assert_eq!(AluOp::Slt.eval((-1i32) as u32, 0), 1);
        assert_eq!(AluOp::Sltu.eval((-1i32) as u32, 0), 0);
        assert_eq!(AluOp::Nor.eval(0, 0), u32::MAX);
        assert_eq!(AluOp::Srav.eval(0x8000_0000, 31), u32::MAX);
        assert_eq!(AluOp::Mul.eval(7, 6), 42);
    }

    #[test]
    fn imm_semantics() {
        assert_eq!(AluImmOp::Addi.eval(5, -3), 2);
        assert_eq!(AluImmOp::Andi.eval(0xffff_ffff, -1), 0xffff);
        assert_eq!(AluImmOp::Ori.eval(0, 0x1234), 0x1234);
        assert_eq!(AluImmOp::Sll.eval(1, 4), 16);
        assert_eq!(AluImmOp::Sra.eval(0x8000_0000, 4), 0xf800_0000);
        assert_eq!(AluImmOp::Slti.eval((-5i32) as u32, 0), 1);
    }

    #[test]
    fn branch_conditions() {
        assert!(BranchCond::Eq.eval(4, 4));
        assert!(BranchCond::Ne.eval(4, 5));
        assert!(BranchCond::Lez.eval(0, 0));
        assert!(BranchCond::Gtz.eval(1, 0));
        assert!(BranchCond::Ltz.eval((-1i32) as u32, 0));
        assert!(BranchCond::Gez.eval(0, 0));
    }

    #[test]
    fn network_register_predicates() {
        assert!(CSTI.is_net_input());
        assert!(CSTI2.is_net_input());
        assert!(CDNI.is_net_input());
        assert!(CSTO.is_net_output());
        assert!(CDNO.is_net_output());
        assert!(!Reg(5).is_network());
    }

    #[test]
    fn validation_rejects_bad_network_usage() {
        // csto as a source
        assert!(Instr::Alu {
            op: AluOp::Add,
            rd: Reg(1),
            rs: CSTO,
            rt: Reg(2)
        }
        .validate()
        .is_err());
        // csti as a destination
        assert!(Instr::AluImm {
            op: AluImmOp::Addi,
            rt: CSTI,
            rs: Reg(1),
            imm: 0
        }
        .validate()
        .is_err());
        // double read of one queue
        assert!(Instr::Alu {
            op: AluOp::Add,
            rd: Reg(1),
            rs: CSTI,
            rt: CSTI
        }
        .validate()
        .is_err());
        // two different queues is fine
        assert!(Instr::Alu {
            op: AluOp::Add,
            rd: Reg(1),
            rs: CSTI,
            rt: CSTI2
        }
        .validate()
        .is_ok());
        // sw from a network register is the forbidden 1-cycle buffering
        assert!(Instr::Sw {
            rt: CSTI,
            base: Reg(2),
            off: 0
        }
        .validate()
        .is_err());
        // lw into csto is the legal 1-cycle load-and-forward
        assert!(Instr::Lw {
            rt: CSTO,
            base: Reg(2),
            off: 0
        }
        .validate()
        .is_ok());
    }

    /// One case per rejection arm of `Instr::validate`, each asserting on
    /// the arm's distinctive message so a regrouped match can't silently
    /// drop a check.
    #[test]
    fn validation_covers_every_rejection_arm() {
        let err = |i: Instr| i.validate().unwrap_err();
        // Write-only register as a source.
        assert!(err(Instr::Alu {
            op: AluOp::Add,
            rd: Reg(1),
            rs: CDNO,
            rt: Reg(2)
        })
        .contains("write-only"));
        // Same queue read twice in one instruction.
        assert!(err(Instr::Alu {
            op: AluOp::Add,
            rd: Reg(1),
            rs: CSTI2,
            rt: CSTI2
        })
        .contains("read twice"));
        // Read-only register as a destination.
        assert!(err(Instr::AluImm {
            op: AluImmOp::Addi,
            rt: CDNI,
            rs: Reg(1),
            imm: 0
        })
        .contains("read-only"));
        // Memory base from a network register.
        assert!(err(Instr::Lw {
            rt: Reg(1),
            base: CSTI,
            off: 0
        })
        .contains("memory base"));
        assert!(err(Instr::Sw {
            rt: Reg(1),
            base: CSTI,
            off: 0
        })
        .contains("memory base"));
        // Store data straight from a queue (2-cycle buffering rule).
        assert!(err(Instr::Sw {
            rt: CSTI,
            base: Reg(2),
            off: 0
        })
        .contains("sw source"));
        // Branch on queue operands.
        assert!(err(Instr::Branch {
            cond: BranchCond::Eq,
            rs: CSTI,
            rt: Reg(1),
            target: 0
        })
        .contains("branch operands"));
        // Indirect jump through a queue.
        assert!(err(Instr::Jr { rs: CSTI }).contains("jr target"));
        // Switch-PC load from a queue.
        assert!(err(Instr::SwPcR { net: 0, rs: CSTI }).contains("swpcr source"));
        // Variable shift amount from a queue.
        for op in [AluOp::Sllv, AluOp::Srlv, AluOp::Srav] {
            assert!(err(Instr::Alu {
                op,
                rd: Reg(1),
                rs: Reg(2),
                rt: CSTI
            })
            .contains("shift amount"));
        }
        // Queue as the shifted *value* stays legal (one pop, data path).
        assert!(Instr::Alu {
            op: AluOp::Sllv,
            rd: Reg(1),
            rs: CSTI,
            rt: Reg(2)
        }
        .validate()
        .is_ok());
        // Bit-field extraction out of range.
        assert!(err(Instr::Ext {
            rd: Reg(1),
            rs: Reg(2),
            pos: 32,
            size: 1
        })
        .contains("bit-field"));
    }

    #[test]
    fn sources_and_dest() {
        let i = Instr::Alu {
            op: AluOp::Add,
            rd: Reg(3),
            rs: Reg(1),
            rt: Reg(2),
        };
        assert_eq!(i.sources(), vec![Reg(1), Reg(2)]);
        assert_eq!(i.dest(), Some(Reg(3)));
        assert_eq!(Instr::Jal { target: 0 }.dest(), Some(Reg(31)));
        assert_eq!(Instr::Halt.dest(), None);
    }
}
