//! Hand-written Raw assembly kernels.
//!
//! The router's hot loops (§4.2, §6.5) are built from a small set of
//! idioms — unrolled load-and-forward streaming, receive-and-buffer,
//! one's-complement checksumming, bit-field extraction. This module
//! provides those kernels as real assembly with reference
//! implementations and cycle-cost assertions, both as living
//! documentation of the cost model and as validation of the
//! interpreter beyond single instructions.

use crate::asm::AsmError;
use crate::interp::IsaCore;
use crate::isa::Reg;

/// Registers used by kernel calling conventions.
pub const A0: Reg = Reg(4); // first argument
pub const A1: Reg = Reg(5); // second argument
pub const V0: Reg = Reg(2); // result

/// One's-complement (Internet checksum) accumulation over `n` 32-bit
/// words starting at word address in `$a0`; 16-bit folded sum in `$v0`.
///
/// Two words per iteration, software style of the era: load, split into
/// halfwords with the Raw bit-field extract, accumulate, fold at the
/// end.
pub fn checksum_kernel(n_words: usize) -> Result<IsaCore, AsmError> {
    assert!(n_words >= 1);
    let mut src = String::new();
    src.push_str("  move $v0, $zero\n");
    src.push_str(&format!("  addi $t0, $zero, {n_words}\n"));
    src.push_str("  move $t1, $a0\n");
    src.push_str("loop:\n");
    src.push_str("  lw   $t2, 0($t1)\n");
    src.push_str("  ext  $t3, $t2, 16, 16\n"); // high halfword
    src.push_str("  andi $t4, $t2, 0xffff\n"); // low halfword
    src.push_str("  add  $v0, $v0, $t3\n");
    src.push_str("  add  $v0, $v0, $t4\n");
    src.push_str("  addi $t1, $t1, 1\n");
    src.push_str("  addi $t0, $t0, -1\n");
    src.push_str("  bgtz $t0, loop\n");
    // Fold carries: twice suffices for any count < 2^16 words.
    for _ in 0..2 {
        src.push_str("  ext  $t3, $v0, 16, 16\n");
        src.push_str("  andi $v0, $v0, 0xffff\n");
        src.push_str("  add  $v0, $v0, $t3\n");
    }
    src.push_str("  halt\n");
    IsaCore::from_asm(&src)
}

/// Reference one's-complement sum over words (big-endian halfword order
/// is irrelevant for the fold).
pub fn checksum_reference(words: &[u32]) -> u16 {
    let mut sum: u64 = 0;
    for w in words {
        sum += (w >> 16) as u64 + (w & 0xffff) as u64;
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    sum as u16
}

/// Unrolled memory-to-network streaming (`lw $csto, k($a0)` — the §4.4
/// one-cycle-per-word idiom), `n` words.
pub fn stream_kernel(n_words: usize) -> Result<IsaCore, AsmError> {
    let mut src = String::from("  lw $t0, 0($a0)\n"); // warm the first line
    for k in 0..n_words {
        src.push_str(&format!("  lw $csto, {k}($a0)\n"));
    }
    src.push_str("  halt\n");
    IsaCore::from_asm(&src)
}

/// Receive-and-buffer (`move` + `sw`, the §4.4 two-cycles-per-word
/// path), `n` words to the address in `$a0`.
pub fn buffer_kernel(n_words: usize) -> Result<IsaCore, AsmError> {
    let mut src = String::new();
    for k in 0..n_words {
        src.push_str("  move $t1, $csti\n");
        src.push_str(&format!("  sw $t1, {k}($a0)\n"));
    }
    src.push_str("  halt\n");
    IsaCore::from_asm(&src)
}

/// Population-count accumulation over `n` words at `$a0` (the "population
/// related operations" of §3.2), result in `$v0`.
pub fn popcount_kernel(n_words: usize) -> Result<IsaCore, AsmError> {
    let mut src = String::new();
    src.push_str("  move $v0, $zero\n");
    src.push_str(&format!("  addi $t0, $zero, {n_words}\n"));
    src.push_str("  move $t1, $a0\n");
    src.push_str("loop:\n");
    src.push_str("  lw   $t2, 0($t1)\n");
    src.push_str("  popc $t3, $t2\n");
    src.push_str("  add  $v0, $v0, $t3\n");
    src.push_str("  addi $t1, $t1, 1\n");
    src.push_str("  addi $t0, $t0, -1\n");
    src.push_str("  bgtz $t0, loop\n");
    src.push_str("  halt\n");
    IsaCore::from_asm(&src)
}

#[cfg(test)]
mod tests {
    use super::*;
    use raw_sim::{RawConfig, RawMachine, TileId};

    fn run_kernel_with_mem(
        mut core: IsaCore,
        base: u32,
        data: &[u32],
        cycles: u64,
    ) -> (crate::interp::CoreWatch, RawMachine) {
        use raw_sim::{Route, SwPort, SwitchCtrl, SwitchInstr, SwitchProgram, NET0};
        core.set_reg(A0, base);
        let (core, watch) = core.watched();
        let mut m = RawMachine::new(RawConfig::default());
        let mem = m.tile_mem_mut(TileId(0));
        mem[base as usize..base as usize + data.len()].copy_from_slice(data);
        m.set_program(TileId(0), Box::new(core));
        // Drain $csto off the north chip edge so streaming kernels never
        // back up (the unbound edge counts and drops).
        m.set_switch_program(
            TileId(0),
            NET0,
            SwitchProgram::new(vec![SwitchInstr::new(
                vec![Route::new(NET0, SwPort::Proc, SwPort::N)],
                SwitchCtrl::Jump(0),
            )]),
        );
        m.run(cycles);
        let w = watch.lock().unwrap().clone();
        (w, m)
    }

    #[test]
    fn checksum_matches_reference() {
        let data: Vec<u32> = (0..40u32).map(|i| i.wrapping_mul(0x9E3779B9)).collect();
        let core = checksum_kernel(data.len()).unwrap();
        let (w, _) = run_kernel_with_mem(core, 0x100, &data, 8000);
        assert!(w.halted, "kernel must finish");
        assert_eq!(w.regs[2] as u16, checksum_reference(&data));
        assert_eq!(w.regs[2] >> 16, 0, "result must be folded to 16 bits");
    }

    #[test]
    fn checksum_single_word() {
        let data = [0xffff_ffffu32];
        let core = checksum_kernel(1).unwrap();
        let (w, _) = run_kernel_with_mem(core, 0, &data, 200);
        assert_eq!(w.regs[2] as u16, checksum_reference(&data));
    }

    #[test]
    fn popcount_matches_reference() {
        let data: Vec<u32> = (0..16u32).map(|i| i.wrapping_mul(2654435761)).collect();
        let want: u32 = data.iter().map(|w| w.count_ones()).sum();
        let core = popcount_kernel(data.len()).unwrap();
        let (w, _) = run_kernel_with_mem(core, 0x40, &data, 4000);
        assert!(w.halted);
        assert_eq!(w.regs[2], want);
    }

    #[test]
    fn stream_kernel_is_one_cycle_per_word_after_warmup() {
        // 16 words in two cache lines; warm both, then the unrolled
        // burst must retire back-to-back. (The kernel warms only the
        // first line, so allow the one extra miss.)
        let data: Vec<u32> = (0..16).collect();
        let core = stream_kernel(data.len()).unwrap();
        let (w, m) = run_kernel_with_mem(core, 0, &data, 4000);
        assert!(w.halted);
        // Count retire gaps of exactly 1 among the streaming stores.
        let rc = &w.retire_cycles[1..17];
        let one_cycle = rc.windows(2).filter(|p| p[1] - p[0] == 1).count();
        assert!(one_cycle >= 13, "streaming broke pipeline: {rc:?}");
        let (hits, misses) = m.cache_stats(TileId(0));
        assert!(misses <= 2, "at most two cold line fills, got {misses}");
        assert!(hits >= 15);
    }

    #[test]
    fn buffer_kernel_costs_two_cycles_per_word() {
        use raw_sim::{Dir, EdgePort, SwitchCtrl, SwitchInstr, SwitchProgram, WordSource, NET0};
        let n = 8usize;
        let mut core = buffer_kernel(n).unwrap();
        core.set_reg(A0, 0x200);
        let (core, watch) = core.watched();
        let mut m = RawMachine::new(RawConfig::default());
        // Pre-warm the destination line is not possible from outside;
        // accept the cold-miss stalls and check the steady-state pairs.
        m.set_program(TileId(0), Box::new(core));
        m.set_switch_program(
            TileId(0),
            NET0,
            SwitchProgram::new(vec![SwitchInstr::new(
                vec![raw_sim::Route::new(
                    NET0,
                    raw_sim::SwPort::W,
                    raw_sim::SwPort::Proc,
                )],
                SwitchCtrl::Jump(0),
            )]),
        );
        m.bind_device(
            EdgePort::new(TileId(0), Dir::West, NET0),
            Box::new(WordSource::new((0..n as u32).map(|i| 100 + i))),
        );
        m.run(2000);
        let w = watch.lock().unwrap().clone();
        assert!(w.halted);
        // Words landed in memory.
        let mem = m.tile_mem_mut(TileId(0));
        assert_eq!(
            &mem[0x200..0x200 + n],
            &(0..n as u32).map(|i| 100 + i).collect::<Vec<_>>()[..]
        );
        // Steady state (away from the cold miss): move+sw pairs retire 2
        // cycles apart.
        let starts: Vec<u64> = (0..n).map(|i| w.retire_cycles[2 * i]).collect();
        let two_apart = starts.windows(2).filter(|p| p[1] - p[0] == 2).count();
        assert!(
            two_apart >= n - 3,
            "buffering pairs not 2-cycle: {starts:?}"
        );
    }

    #[test]
    fn kernels_fit_instruction_memory() {
        // The biggest practical unrolled stream (a full quantum) fits.
        assert!(stream_kernel(1023).is_ok());
        assert!(buffer_kernel(1023).is_ok());
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use raw_sim::{RawConfig, RawMachine, TileId};

    /// A classic control-flow kernel: iterative Fibonacci, validating
    /// loops + register dataflow against a Rust reference.
    #[test]
    fn fibonacci_kernel() {
        for n in [1u32, 2, 3, 10, 24] {
            let src = format!(
                "
                addi $t0, $zero, {n}
                move $v0, $zero
                addi $t1, $zero, 1
            loop:
                add  $t2, $v0, $t1
                move $v0, $t1
                move $t1, $t2
                addi $t0, $t0, -1
                bgtz $t0, loop
                halt
                "
            );
            let (core, watch) = IsaCore::from_asm(&src).unwrap().watched();
            let mut m = RawMachine::new(RawConfig::default());
            m.set_program(TileId(0), Box::new(core));
            m.run(400);
            let w = watch.lock().unwrap();
            assert!(w.halted);
            let (mut a, mut b) = (0u32, 1u32);
            for _ in 0..n {
                let t = a.wrapping_add(b);
                a = b;
                b = t;
            }
            assert_eq!(w.regs[2], a, "fib({n})");
        }
    }

    /// Loop timing: a predicted backward branch costs one cycle; the
    /// whole countdown loop is exactly 4 cycles per iteration + the
    /// final mispredict.
    #[test]
    fn loop_timing_is_exact() {
        let n = 20u32;
        let src = format!(
            "
            addi $t0, $zero, {n}
        loop:
            addi $t1, $t1, 2
            addi $t0, $t0, -1
            bgtz $t0, loop
            halt
            "
        );
        let (core, watch) = IsaCore::from_asm(&src).unwrap().watched();
        let mut m = RawMachine::new(RawConfig::default());
        m.set_program(TileId(0), Box::new(core));
        m.run(400);
        let w = watch.lock().unwrap();
        assert!(w.halted);
        assert_eq!(w.regs[9], 2 * n);
        // 1 setup + 3n loop instructions + 1 halt retires, and exactly
        // one 3-cycle mispredict bubble at loop exit.
        assert_eq!(w.retired, 1 + 3 * n as u64 + 1);
        let last = *w.retire_cycles.last().unwrap();
        assert_eq!(last, (1 + 3 * n as u64 + 1 - 1) + 3);
    }
}
