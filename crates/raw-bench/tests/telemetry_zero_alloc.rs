//! The disabled-path guarantee: with a [`NullSink`] attached, the
//! simulator's steady-state loop performs **zero heap allocations per
//! cycle** — telemetry off must cost nothing beyond the branch.
//!
//! This file holds exactly one test so the counting allocator observes
//! only its own workload (the default test harness runs tests
//! concurrently, and any neighbor would pollute the counter).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use raw_sim::{
    EngineMode, RawConfig, RawMachine, Route, SwPort, SwitchCtrl, SwitchInstr, SwitchProgram,
    TileId, TileIo, TileProgram, NET0,
};
use raw_telemetry::{shared, NullSink};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Streams a word into `$csto` every cycle, forever.
struct EndlessSender;

impl TileProgram for EndlessSender {
    fn tick(&mut self, io: &mut TileIo<'_>) {
        let _ = io.send_static(7);
    }
}

/// Drains `$csti` every cycle, forever.
struct EndlessDrain;

impl TileProgram for EndlessDrain {
    fn tick(&mut self, io: &mut TileIo<'_>) {
        let _ = io.recv_static(NET0);
    }
}

/// A machine-only scenario (line-card devices buffer and allocate; the
/// bare simulator hot loop must not): tile 0 streams words south to
/// tile 4 through the static network forever, keeping processors,
/// switches, and link FIFOs all active every cycle.
fn streaming_machine(engine: EngineMode) -> RawMachine {
    let cfg = RawConfig {
        engine,
        ..RawConfig::default()
    };
    let mut m = RawMachine::new(cfg);
    m.set_program(TileId(0), Box::new(EndlessSender));
    m.set_switch_program(
        TileId(0),
        NET0,
        SwitchProgram::new(vec![SwitchInstr::new(
            vec![Route::new(NET0, SwPort::Proc, SwPort::S)],
            SwitchCtrl::Jump(0),
        )]),
    );
    m.set_switch_program(
        TileId(4),
        NET0,
        SwitchProgram::new(vec![SwitchInstr::new(
            vec![Route::new(NET0, SwPort::N, SwPort::Proc)],
            SwitchCtrl::Jump(0),
        )]),
    );
    m.set_program(TileId(4), Box::new(EndlessDrain));
    m
}

#[test]
fn null_sink_steady_state_allocates_nothing() {
    for engine in [
        EngineMode::PerCycle,
        EngineMode::EventSkip,
        EngineMode::Compiled,
    ] {
        let mut m = streaming_machine(engine);
        if engine == EngineMode::Compiled {
            raw_compile::compile_machine(&mut m, &raw_compile::CompileOptions::default())
                .expect("streaming fabric compiles");
        }
        m.set_telemetry(shared(NullSink));
        // Warm up: fill pipelines and FIFOs, let any lazy setup happen.
        m.run(2_000);
        let before = ALLOCS.load(Ordering::Relaxed);
        m.run(10_000);
        let after = ALLOCS.load(Ordering::Relaxed);
        assert_eq!(
            after - before,
            0,
            "steady-state cycles allocated with NullSink ({engine:?})"
        );
    }
}
