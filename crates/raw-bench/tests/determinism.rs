//! Golden determinism tests.
//!
//! Two guarantees, both load-bearing for every number in `results/`:
//! 1. Reproducibility — the same experiment run twice produces
//!    byte-identical metrics and traces (no hidden host-dependent state).
//! 2. Engine equivalence — the event-skip fast-forward produces results
//!    bit-identical to per-cycle stepping: throughput, per-tile activity
//!    statistics, switch stalls, and the full Figure 7-3 trace.

use raw_sim::TileId;
use raw_telemetry::{shared, NullSink, Recorder, SharedSink};
use raw_workloads::{generate, Workload};
use raw_xbar::{RawRouter, RouterConfig};

/// A fig7-1-peak-style run at one packet size with a fig7-3-style trace
/// window, distilled to two strings: a metrics fingerprint and the full
/// per-cycle trace CSV.
fn traced_peak(bytes: usize, fast_forward: bool) -> (String, String) {
    traced_peak_with(bytes, fast_forward, None)
}

fn traced_peak_with(
    bytes: usize,
    fast_forward: bool,
    telemetry: Option<SharedSink>,
) -> (String, String) {
    let quantum = bytes / 4;
    let mut cfg = RouterConfig {
        quantum_words: quantum,
        cut_through: true,
        ..RouterConfig::default()
    };
    cfg.raw.fast_forward = fast_forward;
    let mut r = RawRouter::try_new_with_telemetry(cfg, raw_bench::experiment_table(), telemetry)
        .expect("router builds");
    for sp in generate(&Workload::peak(bytes, 800)) {
        r.offer(sp.port, sp.release, &sp.packet);
    }
    r.start_trace(10_000, 800);
    r.run(40_000);

    let mut metrics = format!(
        "gbps={:.9} mpps={:.9} delivered={} errors={}",
        r.throughput_gbps(10_000, 40_000),
        r.pps(10_000, 40_000) / 1e6,
        r.delivered_count(),
        r.parse_errors()
    );
    for t in 0..16u16 {
        let tile = TileId(t);
        metrics.push_str(&format!(
            " t{t}={:?}/{}",
            r.machine.stats(tile).counts,
            r.machine.switch_stall_cycles(tile)
        ));
    }
    let trace = r
        .take_trace()
        .expect("trace complete")
        .to_activity_trace()
        .to_csv();
    (metrics, trace)
}

#[test]
fn peak_run_is_reproducible() {
    assert_eq!(
        traced_peak(256, true),
        traced_peak(256, true),
        "identical runs diverged"
    );
}

#[test]
fn fast_forward_matches_per_cycle_reference() {
    let (m_skip, t_skip) = traced_peak(256, true);
    let (m_ref, t_ref) = traced_peak(256, false);
    assert_eq!(m_skip, m_ref, "metrics diverged between engine modes");
    assert_eq!(t_skip, t_ref, "trace diverged between engine modes");
}

#[test]
fn telemetry_sink_never_changes_the_golden_run() {
    // The instrumentation must be observation-only: detached, a no-op
    // NullSink, and a full Recorder all yield byte-identical metrics and
    // traces, in both engine modes.
    for ff in [true, false] {
        let detached = traced_peak_with(256, ff, None);
        let null = traced_peak_with(256, ff, Some(shared(NullSink)));
        let recorded = traced_peak_with(
            256,
            ff,
            Some(shared(Recorder::new(16, raw_sim::NUM_STATIC_NETS))),
        );
        assert_eq!(detached, null, "NullSink perturbed the run (ff={ff})");
        assert_eq!(detached, recorded, "Recorder perturbed the run (ff={ff})");
    }
}

#[test]
fn fig7_3_is_reproducible() {
    let (ascii_a, csv_a) = raw_bench::fig7_3(64);
    let (ascii_b, csv_b) = raw_bench::fig7_3(64);
    assert_eq!(ascii_a, ascii_b);
    assert_eq!(csv_a, csv_b);
}

#[test]
fn parallel_sweeps_are_reproducible() {
    // The fanned-out sweeps must return the same rows in the same order
    // every time (each point is a self-contained simulator instance).
    let a = raw_bench::scaling_study();
    let b = raw_bench::scaling_study();
    let key = |rows: &[raw_bench::ScalingRow]| -> Vec<(usize, String)> {
        rows.iter()
            .map(|r| {
                (
                    r.ports,
                    format!("{:.9}/{:.9}", r.ring_throughput, r.mesh_throughput),
                )
            })
            .collect()
    };
    assert_eq!(key(&a), key(&b));
}
