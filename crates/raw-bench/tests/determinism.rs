//! Golden determinism tests.
//!
//! Two guarantees, both load-bearing for every number in `results/`:
//! 1. Reproducibility — the same experiment run twice produces
//!    byte-identical metrics and traces (no hidden host-dependent state).
//! 2. Engine equivalence — event-skip fast-forwarding and the compiled
//!    engine produce results bit-identical to per-cycle stepping:
//!    throughput, per-tile activity statistics, switch stalls, the full
//!    Figure 7-3 trace, and chaos-campaign fingerprints under an active
//!    fault plan.

use raw_sim::{EngineMode, TileId};
use raw_telemetry::{shared, NullSink, Recorder, SharedSink};
use raw_workloads::{generate, Workload};
use raw_xbar::{RawRouter, RouterConfig};

const ALL_ENGINES: [EngineMode; 3] = [
    EngineMode::PerCycle,
    EngineMode::EventSkip,
    EngineMode::Compiled,
];

/// A fig7-1-peak-style run at one packet size with a fig7-3-style trace
/// window, distilled to two strings: a metrics fingerprint and the full
/// per-cycle trace CSV.
fn traced_peak(bytes: usize, engine: EngineMode) -> (String, String) {
    traced_peak_with(bytes, engine, None)
}

fn traced_peak_with(
    bytes: usize,
    engine: EngineMode,
    telemetry: Option<SharedSink>,
) -> (String, String) {
    let quantum = bytes / 4;
    let mut cfg = RouterConfig {
        quantum_words: quantum,
        cut_through: true,
        ..RouterConfig::default()
    };
    cfg.raw.engine = engine;
    let mut r = RawRouter::try_new_with_telemetry(cfg, raw_bench::experiment_table(), telemetry)
        .expect("router builds");
    assert_eq!(
        r.machine.has_compiled_plan(),
        engine == EngineMode::Compiled,
        "router must compile its fabric exactly when the compiled engine is selected"
    );
    for sp in generate(&Workload::peak(bytes, 800)) {
        r.offer(sp.port, sp.release, &sp.packet);
    }
    r.start_trace(10_000, 800);
    r.run(40_000);

    let mut metrics = format!(
        "gbps={:.9} mpps={:.9} delivered={} errors={}",
        r.throughput_gbps(10_000, 40_000),
        r.pps(10_000, 40_000) / 1e6,
        r.delivered_count(),
        r.parse_errors()
    );
    for t in 0..16u16 {
        let tile = TileId(t);
        metrics.push_str(&format!(
            " t{t}={:?}/{}",
            r.machine.stats(tile).counts,
            r.machine.switch_stall_cycles(tile)
        ));
    }
    let trace = r
        .take_trace()
        .expect("trace complete")
        .to_activity_trace()
        .to_csv();
    (metrics, trace)
}

#[test]
fn peak_run_is_reproducible() {
    assert_eq!(
        traced_peak(256, EngineMode::EventSkip),
        traced_peak(256, EngineMode::EventSkip),
        "identical runs diverged"
    );
}

#[test]
fn every_engine_matches_per_cycle_reference() {
    let (m_ref, t_ref) = traced_peak(256, EngineMode::PerCycle);
    for engine in [EngineMode::EventSkip, EngineMode::Compiled] {
        let (m, t) = traced_peak(256, engine);
        assert_eq!(m, m_ref, "metrics diverged ({engine:?} vs per-cycle)");
        assert_eq!(t, t_ref, "trace diverged ({engine:?} vs per-cycle)");
    }
}

#[test]
fn telemetry_sink_never_changes_the_golden_run() {
    // The instrumentation must be observation-only: detached, a no-op
    // NullSink, and a full Recorder all yield byte-identical metrics and
    // traces, in every engine mode.
    for engine in ALL_ENGINES {
        let detached = traced_peak_with(256, engine, None);
        let null = traced_peak_with(256, engine, Some(shared(NullSink)));
        let recorded = traced_peak_with(
            256,
            engine,
            Some(shared(Recorder::new(16, raw_sim::NUM_STATIC_NETS))),
        );
        assert_eq!(detached, null, "NullSink perturbed the run ({engine:?})");
        assert_eq!(
            detached, recorded,
            "Recorder perturbed the run ({engine:?})"
        );
    }
}

#[test]
fn engines_agree_under_an_active_fault_plan() {
    // The compiled engine must remain bit-identical to the interpreter
    // when a chaos fault plan is live: corrupted packets, forced lookup
    // misses, scheduled tile stalls, and input pauses all hit the
    // fallback-free compiled path.
    use raw_chaos::{run_chaos, FaultPlan};

    let sched = generate(&Workload::average(128, 120, 11));
    let mut results = Vec::new();
    for engine in ALL_ENGINES {
        let mut cfg = RouterConfig {
            quantum_words: 32,
            cut_through: true,
            ..RouterConfig::default()
        };
        cfg.raw.engine = engine;
        let out = run_chaos(
            cfg,
            raw_bench::experiment_table(),
            &FaultPlan::reference(),
            &sched,
            400_000,
        )
        .expect("chaos campaign runs");
        assert!(out.drained, "{engine:?}: campaign wedged");
        assert!(
            out.errors.is_empty(),
            "{engine:?}: conservation errors {:?}",
            out.errors
        );
        results.push((
            out.fingerprint,
            out.delivered,
            out.dropped,
            out.drops,
            out.cycles,
        ));
    }
    assert_eq!(
        results[0], results[1],
        "event-skip diverged from per-cycle under faults"
    );
    assert_eq!(
        results[0], results[2],
        "compiled diverged from per-cycle under faults"
    );
}

#[test]
fn fig7_3_is_reproducible() {
    let (ascii_a, csv_a) = raw_bench::fig7_3(64);
    let (ascii_b, csv_b) = raw_bench::fig7_3(64);
    assert_eq!(ascii_a, ascii_b);
    assert_eq!(csv_a, csv_b);
}

#[test]
fn parallel_sweeps_are_reproducible() {
    // The fanned-out sweeps must return the same rows in the same order
    // every time (each point is a self-contained simulator instance).
    let a = raw_bench::scaling_study();
    let b = raw_bench::scaling_study();
    let key = |rows: &[raw_bench::ScalingRow]| -> Vec<(usize, String)> {
        rows.iter()
            .map(|r| {
                (
                    r.ports,
                    format!("{:.9}/{:.9}", r.ring_throughput, r.mesh_throughput),
                )
            })
            .collect()
    };
    assert_eq!(key(&a), key(&b));
}
