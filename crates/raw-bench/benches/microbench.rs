//! Criterion micro-benchmarks over the reproduction's building blocks:
//! one group per paper artifact, so `cargo bench` exercises the same code
//! paths the tables are generated from at measurable scale.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::sync::Arc;

use raw_baselines::{internet_mix, BackplaneSim, CrossbarSim, FabricConfig, Granularity, Queueing};
use raw_bench::{engine_name, ENGINES};
use raw_lookup::{synth_addresses, synth_table, Engine, ForwardingTable};
use raw_net::{Ipv4Header, Packet};
use raw_sim::EngineMode;
use raw_workloads::{generate, Workload};
use raw_xbar::{config, RawRouter, RouterConfig};

/// A saturated 64-byte Figure 7-1 router, ready to run, in one engine
/// mode (the compiled engine lowers its fabric at construction).
fn saturated_router(engine: EngineMode, packets: usize) -> RawRouter {
    let mut cfg = RouterConfig {
        quantum_words: 16,
        cut_through: true,
        ..RouterConfig::default()
    };
    cfg.raw.engine = engine;
    let mut r = RawRouter::new(cfg, raw_bench::experiment_table());
    for sp in generate(&Workload::peak(64, packets)) {
        r.offer(sp.port, sp.release, &sp.packet);
    }
    r
}

/// Figure 7-1's engine: simulated router cycles per second of host time
/// (one granted 64-byte-packet pipeline per iteration).
fn bench_router(c: &mut Criterion) {
    let mut g = c.benchmark_group("router");
    g.sample_size(10);
    g.bench_function("simulate_64B_permutation_20kcycles", |b| {
        b.iter_batched(
            || {
                let table = raw_bench::experiment_table();
                let cfg = RouterConfig {
                    quantum_words: 16,
                    cut_through: true,
                    ..RouterConfig::default()
                };
                let mut r = RawRouter::new(cfg, table);
                for sp in generate(&Workload::peak(64, 400)) {
                    r.offer(sp.port, sp.release, &sp.packet);
                }
                r
            },
            |mut r| {
                r.run(20_000);
                r.delivered_count()
            },
            BatchSize::PerIteration,
        )
    });
    g.finish();
}

/// The cycle engine itself: simulated cycles per second of host time in
/// every engine mode, reported as Mcycles/s via the group throughput
/// (one element = one simulated machine cycle). The saturated router
/// isolates the hot step path (line cards offer a word every cycle, so
/// event-skip never engages); the throttled drip-feed pipe isolates the
/// skip.
fn bench_sim_speed(c: &mut Criterion) {
    const SPAN: u64 = 20_000;
    const DRIP_WORDS: u32 = 2_000;
    const DRIP_INTERVAL: u64 = 64;
    let mut g = c.benchmark_group("sim_speed");
    g.sample_size(10);
    for engine in ENGINES {
        let mode = engine_name(engine);
        g.throughput(Throughput::Elements(SPAN));
        g.bench_function(format!("router_64B_saturated_{mode}"), |b| {
            b.iter_batched(
                || saturated_router(engine, 2000),
                |mut r| {
                    r.run(SPAN);
                    r.delivered_count()
                },
                BatchSize::PerIteration,
            )
        });
        g.throughput(Throughput::Elements(
            (u64::from(DRIP_WORDS) + 16) * DRIP_INTERVAL,
        ));
        g.bench_function(format!("drip_feed_quiet_{mode}"), |b| {
            b.iter(|| {
                let rep = raw_bench::simspeed_drip_once(DRIP_WORDS, DRIP_INTERVAL, engine);
                std::hint::black_box(rep)
            })
        });
    }
    g.finish();
}

/// The tentpole guardrail: the schedule-specialized step function
/// against the interpreted step on a bare always-busy machine (a
/// saturated forwarding pipe across the top row — no line cards, no
/// packet framing), construction excluded, rates in Mcycles/s.
/// `compiled` must beat `event-skip` here or the specialization is
/// regressing.
fn bench_compiled_step(c: &mut Criterion) {
    use raw_sim::{
        Dir, EdgePort, NullSink, RawConfig, RawMachine, Route, SwPort, SwitchCtrl, SwitchInstr,
        SwitchProgram, WordSource, NET0,
    };
    const SPAN: u64 = 50_000;

    let streaming_machine = |engine: EngineMode| -> RawMachine {
        let cfg = RawConfig {
            engine,
            ..RawConfig::default()
        };
        let dim = cfg.dim;
        let mut m = RawMachine::new(cfg);
        let forward = SwitchProgram::new(vec![SwitchInstr::new(
            vec![Route::new(
                NET0,
                SwPort::from_dir(Dir::West),
                SwPort::from_dir(Dir::East),
            )],
            SwitchCtrl::Jump(0),
        )]);
        for c in 0..dim.cols {
            m.set_switch_program(dim.tile(0, c), NET0, forward.clone());
        }
        m.bind_device(
            EdgePort::new(dim.tile(0, 0), Dir::West, NET0),
            Box::new(WordSource::new(0..(SPAN as u32 + 64))),
        );
        m.bind_device(
            EdgePort::new(dim.tile(0, dim.cols - 1), Dir::East, NET0),
            Box::new(NullSink::default()),
        );
        if engine == EngineMode::Compiled {
            raw_compile::compile_machine(&mut m, &raw_compile::CompileOptions::default())
                .expect("pipe compiles");
        }
        m
    };

    let mut g = c.benchmark_group("compiled_step");
    g.sample_size(10);
    g.throughput(Throughput::Elements(SPAN));
    for engine in ENGINES {
        g.bench_function(format!("streaming_pipe_{}", engine_name(engine)), |b| {
            b.iter_batched(
                || streaming_machine(engine),
                |mut m| {
                    m.run(SPAN);
                    m.routes_fired
                },
                BatchSize::PerIteration,
            )
        });
    }
    g.finish();
}

/// Table 6.1's engine: the sequential-walk scheduler and the full
/// configuration-space enumeration.
fn bench_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler");
    g.bench_function("sequential_walk", |b| {
        let bids = [
            config::Bid::unicast(2),
            config::Bid::unicast(3),
            config::Bid::unicast(0),
            config::Bid::unicast(1),
        ];
        b.iter(|| {
            config::schedule(
                std::hint::black_box(bids),
                0,
                config::SchedPolicy::default(),
            )
        })
    });
    g.sample_size(10);
    g.bench_function("enumerate_2500_space", |b| {
        b.iter(|| {
            config::ConfigSpace::enumerate(config::SchedPolicy::ShortestFirst).minimized_len()
        })
    });
    g.finish();
}

/// The raw-sched arbiters at 16 ports: one arbitration slot per
/// iteration, under full load (every VOQ non-empty, the worst case for
/// iteration counts) and under a sparse near-diagonal load (the
/// common case once a matching has converged).
fn bench_sched_arbiter(c: &mut Criterion) {
    use raw_sched::SchedKind;
    const PORTS: usize = 16;
    let full = vec![0xffffu16; PORTS];
    let sparse: Vec<u16> = (0..PORTS).map(|i| 1u16 << ((i * 5) % PORTS)).collect();
    let mut g = c.benchmark_group("sched_arbiter");
    for kind in SchedKind::all() {
        for (load, reqs) in [("full", &full), ("sparse", &sparse)] {
            let mut s = kind.build(PORTS);
            g.bench_function(format!("{}_16port_{load}", kind.name()), |b| {
                b.iter(|| s.arbitrate(std::hint::black_box(reqs)))
            });
        }
    }
    g.finish();
}

/// The Lookup Processor's engines.
fn bench_lookup(c: &mut Criterion) {
    let routes = synth_table(10_000, 4, 1);
    let ft = Arc::new(ForwardingTable::build(&routes));
    let addrs = synth_addresses(&routes, 1024, 0.8, 2);
    let mut g = c.benchmark_group("lookup");
    for engine in [Engine::Patricia, Engine::Dir24_8] {
        g.bench_function(format!("{engine:?}_1k_lookups"), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for &a in &addrs {
                    acc += ft.lookup(engine, a).0.unwrap_or(0) as u64;
                }
                acc
            })
        });
    }
    g.finish();
}

/// The Ingress Processor's header work.
fn bench_ipv4(c: &mut Criterion) {
    let mut g = c.benchmark_group("ipv4");
    let p = Packet::synthetic(0x0a000001, 0x0a010001, 1024, 64, 3);
    let words = p.to_words();
    g.bench_function("parse_and_forward_hop", |b| {
        b.iter(|| {
            let mut hw = [0u32; 5];
            hw.copy_from_slice(&words[..5]);
            let mut h = Ipv4Header::from_words(std::hint::black_box(&hw)).unwrap();
            h.forward_hop().unwrap();
            h.checksum
        })
    });
    g.bench_function("packet_words_roundtrip_1024B", |b| {
        b.iter(|| {
            Packet::from_words(std::hint::black_box(&words))
                .unwrap()
                .total_bytes()
        })
    });
    g.finish();
}

/// The telemetry guardrail: the same saturated-router run detached and
/// with a NullSink attached. The two bars must stay within the <2%
/// regression budget the disabled path promises (compare
/// `router_64B_detached` against `router_64B_nullsink` in the report).
fn bench_telemetry(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry");
    g.sample_size(10);
    for attach in [false, true] {
        let name = if attach {
            "router_64B_nullsink"
        } else {
            "router_64B_detached"
        };
        g.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let cfg = RouterConfig {
                        quantum_words: 16,
                        cut_through: true,
                        ..RouterConfig::default()
                    };
                    let telemetry = attach.then(|| raw_telemetry::shared(raw_telemetry::NullSink));
                    let mut r = RawRouter::try_new_with_telemetry(
                        cfg,
                        raw_bench::experiment_table(),
                        telemetry,
                    )
                    .unwrap();
                    for sp in generate(&Workload::peak(64, 400)) {
                        r.offer(sp.port, sp.release, &sp.packet);
                    }
                    r
                },
                |mut r| {
                    r.run(20_000);
                    r.delivered_count()
                },
                BatchSize::PerIteration,
            )
        });
    }
    g.finish();
}

/// The §2.2.2 baseline fabrics.
fn bench_fabrics(c: &mut Criterion) {
    let mut g = c.benchmark_group("baseline_fabrics");
    g.sample_size(10);
    g.bench_function("islip_voq_16port_5kslots", |b| {
        b.iter(|| {
            let mut sim = CrossbarSim::new(FabricConfig {
                ports: 16,
                queueing: Queueing::Voq,
                islip_iters: 4,
                seed: 1,
                ..FabricConfig::default()
            });
            sim.run_uniform(1.0, 5_000);
            sim.report.delivered_cells
        })
    });
    g.bench_function("cells_backplane_8port_5kslots", |b| {
        b.iter(|| BackplaneSim::new(8, Granularity::Cells, internet_mix(), 1).run(5_000))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_router,
    bench_sim_speed,
    bench_compiled_step,
    bench_telemetry,
    bench_scheduler,
    bench_sched_arbiter,
    bench_lookup,
    bench_ipv4,
    bench_fabrics
);
criterion_main!(benches);
