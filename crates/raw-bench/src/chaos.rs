//! E19: the `repro -- chaos` soak — the reference fault plan against
//! the fig7-1 workloads, with graceful-degradation accounting and a
//! determinism cross-check (every scenario runs twice and must
//! fingerprint identically; the zero-rate plan must match the unwrapped
//! router bit for bit).

use serde::Serialize;

use raw_chaos::{chaos_table, fingerprint, run_chaos, ChaosRunResult, FaultPlan};
use raw_telemetry::{shared, DropReason, Recorder, SharedSink};
use raw_workloads::{generate, Workload};
use raw_xbar::{RawRouter, RouterConfig};

use crate::experiments::packets_for;

/// One soak scenario: identity, accounting, classified drops, and the
/// total-latency percentiles under fault load.
#[derive(Clone, Debug, Serialize)]
pub struct ChaosRun {
    pub name: String,
    pub bytes: usize,
    pub cycles: u64,
    pub offered: u64,
    pub delivered: u64,
    pub dropped: u64,
    /// `(reason, count)` rows for the classified drop buckets.
    pub drops: Vec<(String, u64)>,
    pub lookup_misses: u64,
    pub flow_order_violations: u64,
    /// Total ingress-to-egress latency under faults, in cycles.
    pub latency_p50: u64,
    pub latency_p99: u64,
    /// Hex FNV-1a digest of the full delivered streams + drop counters.
    pub fingerprint: String,
}

/// The payload of `results/chaos.json`.
#[derive(Clone, Debug, Serialize)]
pub struct ChaosReport {
    pub plan: FaultPlan,
    pub runs: Vec<ChaosRun>,
    /// Zero-rate differential: the wrapped router matched the unwrapped
    /// one bit for bit.
    pub zero_plan_identical: bool,
}

fn fig7_1_cfg(bytes: usize) -> RouterConfig {
    RouterConfig {
        quantum_words: (bytes / 4).min(256),
        cut_through: bytes / 4 <= 256,
        ..RouterConfig::default()
    }
}

fn to_run(name: &str, bytes: usize, res: &ChaosRunResult) -> ChaosRun {
    let total = res
        .summary
        .stages
        .iter()
        .find(|s| s.stage == "total")
        .expect("total stage present");
    ChaosRun {
        name: name.to_string(),
        bytes,
        cycles: res.cycles,
        offered: res.offered,
        delivered: res.delivered,
        dropped: res.dropped,
        drops: DropReason::ALL
            .iter()
            .map(|r| (r.name().to_string(), res.drops[r.index()]))
            .collect(),
        lookup_misses: res.lookup_misses,
        flow_order_violations: res.flow_order_violations,
        latency_p50: total.p50,
        latency_p99: total.p99,
        fingerprint: format!("{:016x}", res.fingerprint),
    }
}

/// Run one scenario twice under the reference plan; panic on any
/// conservation violation or determinism divergence (those are bugs,
/// not measurements).
fn soak_scenario(name: &str, w: &Workload, plan: &FaultPlan, max_cycles: u64) -> ChaosRun {
    let sched = generate(w);
    let run = || {
        run_chaos(
            fig7_1_cfg(w.packet_bytes),
            chaos_table(),
            plan,
            &sched,
            max_cycles,
        )
        .expect("valid plan")
    };
    let a = run();
    assert!(a.errors.is_empty(), "{name}: {:?}", a.errors);
    let b = run();
    assert_eq!(
        a.fingerprint, b.fingerprint,
        "{name}: same seed, different outcome"
    );
    to_run(name, w.packet_bytes, &a)
}

/// The zero-rate differential: a chaos wrapper with an all-zero plan
/// must be invisible — identical delivered streams and counters versus
/// the unwrapped router on the same workload.
fn zero_plan_differential(cycles: u64) -> bool {
    let w = Workload::peak(64, packets_for(64, cycles).min(400));
    let sched = generate(&w);
    let cfg = fig7_1_cfg(64);
    let chaos = run_chaos(
        cfg.clone(),
        chaos_table(),
        &FaultPlan::zero(0xC4A0),
        &sched,
        cycles * 8,
    )
    .expect("zero plan is valid");
    assert!(chaos.errors.is_empty(), "{:?}", chaos.errors);
    let sink: SharedSink = shared(Recorder::new(16, raw_sim::NUM_STATIC_NETS));
    let mut plain = RawRouter::new_with_telemetry(cfg, chaos_table(), sink);
    for sp in &sched {
        plain.offer(sp.port, sp.release, &sp.packet);
    }
    assert!(plain.run_until_drained(cycles * 8));
    chaos.fingerprint == fingerprint(&plain)
}

/// The `repro -- chaos` payload: the reference plan (seed 0xC4A0, 1%
/// header corruption, one 500-cycle stall window per tile, 0.5% forced
/// lookup misses) against the fig7-1 peak workload at both packet-size
/// corners plus the average workload, each run twice for determinism.
pub fn chaos_report(cycles: u64) -> ChaosReport {
    let plan = FaultPlan::reference();
    let mut runs = Vec::new();
    for &bytes in &[64usize, 1024] {
        let n = packets_for(bytes, cycles);
        runs.push(soak_scenario(
            &format!("fig7-1-peak-{bytes}B"),
            &Workload::peak(bytes, n),
            &plan,
            cycles * 8,
        ));
    }
    // Uniform traffic runs at ~69% of peak throughput and its releases
    // are spread across the schedule, so it needs a much longer drain
    // deadline than the permutation scenarios.
    let n = packets_for(64, cycles);
    runs.push(soak_scenario(
        "fig7-1-avg-64B",
        &Workload::average(64, n, 42),
        &plan,
        cycles * 24,
    ));
    ChaosReport {
        plan,
        runs,
        zero_plan_identical: zero_plan_differential(cycles.min(40_000)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_report_is_deterministic_and_conserves() {
        let a = chaos_report(12_000);
        let b = chaos_report(12_000);
        assert!(a.zero_plan_identical);
        assert_eq!(a.runs.len(), b.runs.len());
        for (x, y) in a.runs.iter().zip(&b.runs) {
            assert_eq!(x.fingerprint, y.fingerprint, "{} diverged", x.name);
            assert_eq!(x.delivered + x.dropped, x.offered, "{}", x.name);
            assert_eq!(x.flow_order_violations, 0, "{}", x.name);
            assert!(
                x.dropped > 0,
                "{}: the 1% corruption rate should drop something",
                x.name
            );
        }
    }
}
