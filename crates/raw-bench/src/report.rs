//! Paper-formatted table printing and JSON result persistence.

use std::io::Write as _;
use std::path::Path;

use serde::Serialize;

/// Write an experiment's result JSON under `results/`.
pub fn write_json<T: Serialize>(dir: &Path, name: &str, value: &T) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let mut f = std::fs::File::create(&path)?;
    let s = serde_json::to_string_pretty(value).expect("serializable");
    f.write_all(s.as_bytes())?;
    f.write_all(b"\n")?;
    Ok(())
}

/// Render a simple aligned table.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            widths[i] = widths[i].max(c.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &widths,
    ));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for r in rows {
        out.push_str(&fmt_row(r, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["size", "gbps"],
            &[
                vec!["64".into(), "7.3".into()],
                vec!["1024".into(), "26.9".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[3].contains("26.9"));
        // All rows have equal width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn json_roundtrips_to_disk() {
        let dir = std::env::temp_dir().join("raw-bench-test");
        write_json(&dir, "t", &vec![1, 2, 3]).unwrap();
        let s = std::fs::read_to_string(dir.join("t.json")).unwrap();
        let v: Vec<i32> = serde_json::from_str(&s).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }
}
