//! # raw-bench — the experiment harness
//!
//! One runner per table/figure of the paper's evaluation (see DESIGN.md's
//! per-experiment index). Each runner returns a serializable result the
//! `repro` binary prints in the paper's format and writes to
//! `results/<exp>.json`.

pub mod chaos;
pub mod experiments;
pub mod fabric;
pub mod report;
pub mod sched;
pub mod simspeed;
pub mod telemetry;

pub use chaos::*;
pub use experiments::*;
pub use fabric::*;
pub use report::*;
pub use sched::*;
pub use simspeed::*;
pub use telemetry::*;
